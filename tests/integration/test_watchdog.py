"""Progress-watchdog behaviour: deadlock abort vs. graceful fault stall.

A routing deadlock (no flit movement while flits are in flight, no fault
active) must raise :class:`~repro.exceptions.SimulationError` — at the
same cycle in every engine mode.  The same no-progress signature under an
active fault schedule is *not* a protocol deadlock: the run stops
gracefully with ``Simulator.stalled`` set and reports the delivered
fraction instead.
"""

import math

import pytest

from repro.exceptions import SimulationError
from repro.faults import FaultEvent, FaultSchedule
from repro.routing import registry
from repro.routing.base import RoutingAlgorithm
from repro.sim.config import SimulationConfig
from repro.sim.engine import DEADLOCK_WINDOW, Simulator
from repro.topology.ports import Direction
from repro.traffic.trace import TraceEvent


class _StuckRouting(RoutingAlgorithm):
    """Commits to the DOR port but never requests a VC: instant deadlock."""

    name = "stuck"

    def select_output(self, ctx):
        if ctx.current == ctx.destination:
            return Direction.LOCAL
        return ctx.mesh.dor_direction(ctx.current, ctx.destination)

    def vc_requests_at(self, ctx, direction):
        return []

    def allowed_directions(self, mesh, current, destination, source):
        if current == destination:
            return [Direction.LOCAL]
        return [mesh.dor_direction(current, destination)]


@pytest.fixture
def stuck_routing(monkeypatch):
    monkeypatch.setitem(registry._BASE_FACTORIES, "stuck", _StuckRouting)


def _deadlock_config(**overrides):
    base = dict(
        width=4,
        num_vcs=2,
        routing="stuck",
        traffic="trace",
        trace=[TraceEvent(1, 0, 5)],
        injection_rate=0.0,
        warmup_cycles=0,
        measure_cycles=50,
        drain_cycles=DEADLOCK_WINDOW + 1000,
        seed=1,
    )
    base.update(overrides)
    return SimulationConfig(**base)


@pytest.mark.parametrize("mode", ["legacy", "fast", "skip"])
def test_forced_deadlock_raises_in_every_mode(stuck_routing, mode):
    with pytest.raises(SimulationError) as excinfo:
        Simulator(_deadlock_config(), engine_mode=mode).run()
    assert "deadlock" in str(excinfo.value)
    assert "stuck" in str(excinfo.value)


def test_forced_deadlock_fires_identically_across_modes(stuck_routing):
    """The abort message embeds the firing cycle and in-flight count, so
    string equality pins the watchdog to the same cycle in all modes."""
    messages = set()
    for mode in ("legacy", "fast", "skip"):
        with pytest.raises(SimulationError) as excinfo:
            Simulator(_deadlock_config(), engine_mode=mode).run()
        messages.add(str(excinfo.value))
    assert len(messages) == 1


@pytest.mark.parametrize("mode", ["legacy", "fast", "skip"])
def test_unreachable_destination_stalls_gracefully(mode):
    """A packet routed toward a permanently dead router freezes in the
    network.  That is not a deadlock: the run stops with ``stalled`` set
    and the delivered fraction reflects the lost packet.

    The second packet takes a path disjoint from the dead router (a
    packet sharing the first one's input VC would be head-of-line
    blocked behind the frozen flit — also correct, but it would conflate
    the two effects)."""
    config = SimulationConfig(
        width=2,
        num_vcs=2,
        routing="dor",
        traffic="trace",
        trace=[TraceEvent(1, 0, 3), TraceEvent(2, 2, 0)],
        injection_rate=0.0,
        warmup_cycles=0,
        measure_cycles=50,
        drain_cycles=DEADLOCK_WINDOW + 1000,
        seed=1,
        faults=FaultSchedule((FaultEvent(0, "router", 3),)),
    )
    sim = Simulator(config, engine_mode=mode)
    result = sim.run()  # must not raise
    assert sim.stalled
    assert not result.drained
    assert result.measured_created == 2
    assert result.measured_ejected == 1
    assert result.delivered_fraction == 0.5


def test_pending_heal_defers_stall_verdict():
    """While a heal is still scheduled the watchdog keeps waiting instead
    of declaring the run stalled; after the heal the frozen packet
    delivers and the run drains normally."""
    heal_cycle = DEADLOCK_WINDOW + 2000
    config = SimulationConfig(
        width=2,
        num_vcs=2,
        routing="dor",
        traffic="trace",
        trace=[TraceEvent(1, 0, 3)],
        injection_rate=0.0,
        warmup_cycles=0,
        measure_cycles=50,
        drain_cycles=heal_cycle + 2000,
        seed=1,
        faults=FaultSchedule(
            (FaultEvent(0, "router", 3, duration=heal_cycle),)
        ),
    )
    sim = Simulator(config, engine_mode="skip")
    result = sim.run()
    assert not sim.stalled
    assert result.drained
    assert result.delivered_fraction == 1.0
    assert not math.isnan(result.latency.mean)
