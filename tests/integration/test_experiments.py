"""Integration tests for the experiment harness and CLI at SMOKE scale."""

import math

import pytest

from repro.harness import experiments as exp
from repro.harness import reporting
from repro.cli import main as cli_main


class TestFig2:
    def test_dor_endpoint_tree_is_thick(self):
        result = exp.fig2_congestion_tree("dor")
        assert result.endpoint_tree.max_thickness >= 3
        assert result.endpoint_tree.num_branches >= 2

    def test_xordet_tree_is_thin(self):
        result = exp.fig2_congestion_tree("dor+xordet")
        assert result.endpoint_tree.max_thickness == 1

    def test_footprint_thinner_than_dbar(self):
        dbar = exp.fig2_congestion_tree("dbar")
        fp = exp.fig2_congestion_tree("footprint")
        assert (
            fp.endpoint_tree.mean_thickness
            <= dbar.endpoint_tree.mean_thickness
        )

    def test_report_renders(self):
        text = reporting.report_fig2([exp.fig2_congestion_tree("dor")])
        assert "dor" in text and "endpoint" in text


class TestCurveDrivers:
    def test_fig5_smoke(self):
        results = exp.fig5_latency_throughput(
            exp.SMOKE,
            patterns=("uniform",),
            algorithms=("dor", "footprint"),
        )
        curves = results["uniform"]
        assert len(curves) == 2
        assert all(len(c.points) == len(exp.SMOKE.rates) for c in curves)
        text = reporting.report_fig5(results, "smoke")
        assert "footprint" in text

    def test_fig7_smoke(self):
        results = exp.fig7_vc_sweep(exp.SMOKE, "uniform", vc_counts=(2,))
        assert set(results) == {2}
        assert len(results[2]) == 2
        assert "2 VCs" in reporting.report_fig7(results, "uniform")

    def test_fig8_smoke(self):
        results = exp.fig8_network_size(
            exp.SMOKE, widths=(4,), patterns=("uniform",)
        )
        (entry,) = results
        assert entry.width == 4
        assert entry.footprint_saturation > 0
        assert not math.isnan(entry.dbar_normalized)
        assert "4x4" in reporting.report_fig8(results)


class TestFig9And10:
    def test_fig9_smoke(self):
        results = exp.fig9_hotspot(exp.SMOKE)
        assert set(results) == {"dbar", "footprint"}
        for series in results.values():
            assert len(series) == len(exp.SMOKE.hotspot_rates)
        assert "hotspot" in reporting.report_fig9(results).lower()

    def test_fig10_smoke(self):
        entries = exp.fig10_parsec(
            exp.SMOKE, pairs=(("bodytrack", "x264"),)
        )
        (entry,) = entries
        assert entry.workloads == ("bodytrack", "x264")
        assert entry.dbar_latency > 0
        assert 0.0 <= entry.dbar_purity <= 1.0
        assert "bodytrack+x264" in reporting.report_fig10(entries)


@pytest.mark.slow
class TestFullFigures:
    """Full-roster figure drivers at SMOKE scale — minutes, not seconds."""

    def test_fig5_full_roster(self):
        results = exp.fig5_latency_throughput(exp.SMOKE)
        assert set(results) == set(exp.FIG5_PATTERNS)
        for curves in results.values():
            assert [c.label for c in curves] == list(exp.FIG5_ALGORITHMS)
            assert all(len(c.points) == len(exp.SMOKE.rates) for c in curves)

    def test_fig6_full_roster(self):
        results = exp.fig6_variable_packet_size(
            exp.SMOKE, patterns=("uniform",)
        )
        for curves in results.values():
            assert [c.label for c in curves] == list(exp.FIG5_ALGORITHMS)

    def test_fig8_multiple_sizes(self):
        results = exp.fig8_network_size(
            exp.SMOKE, widths=(4, 8), patterns=("uniform", "transpose")
        )
        assert len(results) == 4
        assert all(e.footprint_saturation > 0 for e in results)

    def test_fig10_all_pairs(self):
        entries = exp.fig10_parsec(exp.SMOKE)
        assert len(entries) == 4
        assert all(e.dbar_latency > 0 for e in entries)


class TestRectangularScales:
    """Regression: a square mesh was once hardcoded in the drivers.

    ``fig10_parsec`` built ``Mesh2D(scale.width)`` and
    ``table1_adaptiveness`` built ``Mesh2D(width)``, so rectangular
    scales generated traces and adaptiveness tables for a network that
    did not match the simulated one.  Both must honour a 4x8 geometry.
    """

    def test_fig10_on_4x8(self):
        scale = exp.Scale(
            name="rect",
            width=4,
            height=8,
            num_vcs=4,
            warmup=60,
            measure=120,
            drain=400,
            trace_cycles=300,
        )
        assert scale.make_topology().height == 8
        entries = exp.fig10_parsec(scale, pairs=(("bodytrack", "x264"),))
        (entry,) = entries
        assert entry.dbar_latency > 0
        assert entry.footprint_latency > 0

    def test_table1_on_4x8(self):
        table = exp.table1_adaptiveness(width=4, height=8)
        assert table["footprint"]["P_adapt"] == 1.0
        assert table["dor"]["P_adapt"] < 1.0


class TestStaticTables:
    def test_table1(self):
        table = exp.table1_adaptiveness()
        assert table["footprint"]["P_adapt"] == 1.0
        assert "footprint" in reporting.report_table1(table)

    def test_cost_table(self):
        models = exp.cost_table()
        assert any(m.total_bits_per_port == 132 for m in models)
        assert "132" in reporting.report_cost(models)

    def test_scale_from_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert exp.scale_from_env() is exp.SMOKE
        monkeypatch.setenv("REPRO_SCALE", "nonsense")
        assert exp.scale_from_env() is exp.BENCH


class TestCli:
    def test_list(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "footprint" in out
        assert "hotspot" in out

    def test_run(self, capsys):
        code = cli_main(
            [
                "run",
                "--width", "4",
                "--vcs", "2",
                "--routing", "dor",
                "--injection-rate", "0.05",
                "--warmup", "30",
                "--measure", "60",
                "--drain", "400",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "avg latency" in out
        assert "drained       : yes" in out

    def test_experiment_table1(self, capsys):
        assert cli_main(["experiment", "table1"]) == 0
        assert "P_adapt" in capsys.readouterr().out

    def test_experiment_cost(self, capsys):
        assert cli_main(["experiment", "cost"]) == 0
        assert "132" in capsys.readouterr().out

    def test_experiment_fig9_smoke(self, capsys):
        assert cli_main(["experiment", "fig9", "--scale", "smoke"]) == 0
        assert "hotspot_rate" in capsys.readouterr().out
