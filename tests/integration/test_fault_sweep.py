"""End-to-end fault-sweep driver: shape, semantics, and cache reuse."""

import math

import pytest

from repro.exceptions import FaultError
from repro.harness import experiments as exp
from repro.harness.cache import ResultCache
from repro.harness.reporting import report_fault_sweep

# Two algorithms, two fault counts, two rates: 8 simulations — enough to
# exercise the full grid plumbing while staying test-suite fast.
_SCALE = exp.Scale(
    name="tiny",
    width=4,
    num_vcs=4,
    warmup=40,
    measure=80,
    drain=300,
    rates=(0.02, 0.05),
    fault_counts=(0, 2),
)
_ALGOS = ("dor", "footprint")


def _sweep(cache=None):
    return exp.fault_sweep(_SCALE, algorithms=_ALGOS, seed=3, cache=cache)


def test_fault_sweep_shape_and_ordering():
    entries = _sweep()
    assert len(entries) == len(_SCALE.fault_counts) * len(_ALGOS)
    assert [(e.num_faults, e.routing) for e in entries] == [
        (k, a) for k in _SCALE.fault_counts for a in _ALGOS
    ]
    for entry in entries:
        assert entry.fault_kind == "link"
        assert len(entry.points) == len(_SCALE.rates)
        assert [p.injection_rate for p in entry.points] == list(_SCALE.rates)


def test_fault_sweep_zero_fault_column_is_healthy():
    entries = _sweep()
    for entry in entries:
        if entry.num_faults:
            continue
        assert entry.delivered_fraction == 1.0
        assert not math.isnan(entry.zero_load_latency)
        assert entry.degraded_saturation > 0.0


def test_fault_sweep_faults_cost_delivery_or_latency():
    """Two permanent dead links on a 4x4 mesh must be visible somewhere:
    DOR (deterministic) loses delivery; for every algorithm the faulted
    column can never beat its own fault-free column on both metrics."""
    entries = {(e.routing, e.num_faults): e for e in _sweep()}
    dor_faulted = entries[("dor", 2)]
    assert dor_faulted.delivered_fraction < 1.0
    for algorithm in _ALGOS:
        clean = entries[(algorithm, 0)]
        faulted = entries[(algorithm, 2)]
        assert faulted.delivered_fraction <= clean.delivered_fraction
        assert faulted.degraded_saturation <= clean.degraded_saturation


def test_fault_sweep_router_kind_and_bad_kind():
    entries = exp.fault_sweep(
        _SCALE,
        algorithms=("footprint",),
        fault_counts=(1,),
        fault_kind="router",
        seed=3,
    )
    assert len(entries) == 1
    assert entries[0].fault_kind == "router"
    with pytest.raises(FaultError):
        exp.fault_sweep(_SCALE, algorithms=_ALGOS, fault_kind="wire")


def _entry_signature(entry):
    # NaN-tolerant equality: NaN != NaN would fail a naive comparison on
    # saturated points.
    def num(x):
        return "nan" if math.isnan(x) else x

    return (
        entry.routing,
        entry.num_faults,
        entry.fault_kind,
        num(entry.zero_load_latency),
        num(entry.degraded_saturation),
        num(entry.delivered_fraction),
        tuple(
            (p.injection_rate, num(p.avg_latency), num(p.accepted_rate),
             num(p.delivered_fraction))
            for p in entry.points
        ),
    )


def test_fault_sweep_deterministic_and_cache_warm_rerun(tmp_path):
    cold_cache = ResultCache(tmp_path / "cache")
    cold = _sweep(cache=cold_cache)
    assert cold_cache.hits == 0
    assert cold_cache.misses == len(_SCALE.fault_counts) * len(_ALGOS) * len(
        _SCALE.rates
    )

    warm_cache = ResultCache(tmp_path / "cache")
    warm = _sweep(cache=warm_cache)
    assert warm_cache.misses == 0
    assert warm_cache.hits == cold_cache.misses
    assert list(map(_entry_signature, warm)) == list(
        map(_entry_signature, cold)
    )


def test_fault_sweep_report_renders():
    entries = _sweep()
    text = report_fault_sweep(entries)
    assert "Fault sweep" in text
    for algorithm in _ALGOS:
        assert algorithm in text
