"""Idle-cycle skipping must be bit-identical to cycle-by-cycle stepping.

The ``skip`` engine mode jumps the clock over provably quiescent cycles
while consuming the traffic RNG exactly as per-cycle stepping would.
These tests pin the invariant on every routing algorithm and every
traffic family (synthetic, hotspot, trace), comparing results down to
individual latency samples.
"""

import pytest

from repro.faults import FaultEvent, FaultSchedule, random_link_faults
from repro.routing.registry import available_algorithms
from repro.sim.config import SimulationConfig
from repro.sim.engine import Simulator
from repro.topology.ports import Direction
from repro.traffic.trace import TraceEvent


def _signature(result):
    return (
        result.cycles_run,
        result.accepted_flits,
        result.offered_flits,
        result.measured_created,
        result.measured_ejected,
        result.blocking.blocking_events,
        result.blocking.busy_vc_samples,
        result.blocking.footprint_vc_samples,
        tuple(result.latency._samples),
        tuple(
            sorted(
                (flow, tuple(stats._samples))
                for flow, stats in result.latency_by_flow.items()
            )
        ),
    )


def _run(mode, **overrides):
    base = dict(
        width=4,
        num_vcs=4,
        routing="footprint",
        injection_rate=0.005,
        warmup_cycles=80,
        measure_cycles=200,
        drain_cycles=400,
        seed=7,
    )
    base.update(overrides)
    return Simulator(SimulationConfig(**base), engine_mode=mode).run()


@pytest.mark.parametrize("routing", available_algorithms())
def test_skip_matches_legacy_all_algorithms(routing):
    """Low injection rate so the network goes quiescent and skipping
    actually engages for every algorithm."""
    overrides = {"routing": routing}
    assert _signature(_run("skip", **overrides)) == _signature(
        _run("legacy", **overrides)
    )


@pytest.mark.parametrize("routing", ["footprint", "dor"])
def test_three_modes_agree_under_load(routing):
    overrides = {"routing": routing, "injection_rate": 0.15}
    legacy = _signature(_run("legacy", **overrides))
    assert _signature(_run("fast", **overrides)) == legacy
    assert _signature(_run("skip", **overrides)) == legacy


def test_skip_matches_legacy_hotspot():
    overrides = {
        "traffic": "hotspot",
        "injection_rate": 0.0,
        "hotspot_rate": 0.02,
        "background_rate": 0.01,
    }
    assert _signature(_run("skip", **overrides)) == _signature(
        _run("legacy", **overrides)
    )


def test_skip_matches_legacy_trace():
    # Sparse trace with long gaps: skipping jumps straight between events.
    events = [
        TraceEvent(5, 0, 15, size=2),
        TraceEvent(400, 3, 12),
        TraceEvent(401, 12, 3),
        TraceEvent(900, 15, 0, size=3),
    ]
    overrides = {
        "traffic": "trace",
        "trace": events,
        "injection_rate": 0.0,
        "warmup_cycles": 0,
        "measure_cycles": 1200,
        "drain_cycles": 600,
    }
    assert _signature(_run("skip", **overrides)) == _signature(
        _run("legacy", **overrides)
    )


def test_skip_matches_legacy_zero_load():
    # Nothing ever injects; the skip engine jumps straight through the
    # whole simulation while legacy steps every cycle.
    overrides = {"injection_rate": 0.0}
    assert _signature(_run("skip", **overrides)) == _signature(
        _run("legacy", **overrides)
    )


# ----------------------------------------------------------------------
# Fault-laden determinism: the fault gating runs inside the per-cycle
# pipeline, so every fault case must preserve mode equivalence too.
# ----------------------------------------------------------------------
@pytest.mark.parametrize("routing", available_algorithms())
def test_modes_agree_under_permanent_link_faults(routing):
    overrides = {
        "routing": routing,
        "injection_rate": 0.05,
        "faults": random_link_faults(4, k=2, seed=11),
    }
    legacy = _signature(_run("legacy", **overrides))
    assert _signature(_run("fast", **overrides)) == legacy
    assert _signature(_run("skip", **overrides)) == legacy


def test_modes_agree_with_mid_run_fault():
    """The fault activates after warmup, mid measurement window — the
    skip engine must not jump over the transition cycle."""
    overrides = {
        "faults": FaultSchedule(
            (FaultEvent(150, "link", 5, Direction.EAST),)
        ),
        "injection_rate": 0.05,
    }
    legacy = _signature(_run("legacy", **overrides))
    assert _signature(_run("fast", **overrides)) == legacy
    assert _signature(_run("skip", **overrides)) == legacy


def test_modes_agree_with_transient_router_fault():
    overrides = {
        "faults": FaultSchedule(
            (FaultEvent(100, "router", 10, duration=120),)
        ),
        "injection_rate": 0.05,
    }
    legacy = _signature(_run("legacy", **overrides))
    assert _signature(_run("fast", **overrides)) == legacy
    assert _signature(_run("skip", **overrides)) == legacy


def test_modes_agree_on_held_credit_release():
    """A transient link fault severs the reverse credit wire while flits
    are crossing it; the held credits must be re-delivered on heal at the
    same cycle in every mode.  The sparse trace leaves long quiescent
    stretches so the skip engine actually jumps across the fault window."""
    events = [
        TraceEvent(5, 0, 3, size=4),
        TraceEvent(6, 0, 3, size=4),
        TraceEvent(700, 3, 0, size=2),
    ]
    overrides = {
        "traffic": "trace",
        "trace": events,
        "injection_rate": 0.0,
        "warmup_cycles": 0,
        "measure_cycles": 1000,
        "drain_cycles": 600,
        "faults": FaultSchedule(
            (FaultEvent(8, "link", 0, Direction.EAST, duration=400),)
        ),
    }
    legacy = _signature(_run("legacy", **overrides))
    assert _signature(_run("fast", **overrides)) == legacy
    assert _signature(_run("skip", **overrides)) == legacy


@pytest.mark.parametrize("mode", ["legacy", "fast", "skip"])
def test_zero_fault_schedule_is_a_no_op(mode):
    """An empty FaultSchedule must reproduce the unfaulted results
    exactly (the engine skips the fault machinery entirely)."""
    assert _signature(_run(mode, faults=FaultSchedule())) == _signature(
        _run(mode)
    )


def test_warmup_zero_enables_blocking_sampling():
    """Regression: with ``warmup_cycles == 0`` the run loop used to skip
    the warmup→measurement transition and never enabled blocking
    sampling, silently zeroing the purity statistics."""
    config = SimulationConfig(
        width=4,
        num_vcs=2,
        routing="footprint",
        injection_rate=0.3,
        warmup_cycles=0,
        measure_cycles=400,
        drain_cycles=800,
        seed=3,
    )
    result = Simulator(config).run()
    assert result.blocking.busy_vc_samples > 0
