"""Deadlock-freedom stress tests.

The engine's watchdog raises :class:`SimulationError` if no flit moves for
a long window while packets are in flight — so running every algorithm at
deep saturation on adversarial patterns and reaching the cycle limit
without an exception demonstrates the absence of routing deadlock
(Duato escape channels for DBAR/Footprint; turn restrictions for DOR and
Odd-Even).
"""

import pytest

from repro.sim.config import SimulationConfig
from repro.sim.engine import Simulator


def stress(routing, traffic="transpose", cycles=1200, **cfg):
    defaults = dict(
        width=4,
        num_vcs=2,  # minimum for Duato: maximum pressure on the escape VC
        routing=routing,
        traffic=traffic,
        injection_rate=0.9,
        warmup_cycles=0,
        measure_cycles=cycles,
        drain_cycles=0,
        seed=17,
    )
    defaults.update(cfg)
    sim = Simulator(SimulationConfig(**defaults))
    for _ in range(cycles):
        sim.step()
    return sim


ALGOS = [
    "dor",
    "oddeven",
    "dbar",
    "footprint",
    "dor+xordet",
    "oddeven+xordet",
    "dbar+xordet",
    "footprint+xordet",
]


@pytest.mark.parametrize("routing", ALGOS)
def test_saturation_no_deadlock_transpose(routing):
    sim = stress(routing)
    assert sum(s.ejected_flits for s in sim.sinks) > 0


@pytest.mark.parametrize("routing", ["dbar", "footprint"])
def test_saturation_no_deadlock_hotspot(routing):
    sim = stress(
        routing,
        traffic="hotspot",
        hotspot_rate=0.9,
        background_rate=0.5,
    )
    assert sum(s.ejected_flits for s in sim.sinks) > 0


@pytest.mark.parametrize("routing", ["footprint", "dbar"])
def test_saturation_no_deadlock_slow_endpoints(routing):
    """Endpoint ejection at 20% bandwidth: severe tree saturation."""
    sim = stress(routing, traffic="uniform", ejection_rate=0.2)
    assert sum(s.ejected_flits for s in sim.sinks) > 0


@pytest.mark.parametrize("routing", ["footprint", "dbar", "oddeven"])
def test_saturation_no_deadlock_multiflit(routing):
    """Wormhole with long packets holds VCs across routers — the classic
    deadlock recipe when routing is unrestricted."""
    sim = stress(routing, packet_size=5, cycles=1500)
    assert sum(s.ejected_flits for s in sim.sinks) > 0


def test_progress_under_sustained_saturation():
    """Throughput at saturation remains nonzero in every window."""
    sim = stress("footprint", cycles=0)
    checkpoints = []
    for _ in range(4):
        for _ in range(300):
            sim.step()
        checkpoints.append(sum(s.ejected_flits for s in sim.sinks))
    deltas = [b - a for a, b in zip(checkpoints, checkpoints[1:])]
    assert all(d > 0 for d in deltas)
