"""Smoke test for the benchmark harness (``run_bench.py --quick``)."""

import importlib.util
import json
from pathlib import Path

import pytest

_RUN_BENCH = (
    Path(__file__).resolve().parent.parent.parent / "benchmarks" / "run_bench.py"
)


@pytest.fixture(scope="module")
def run_bench():
    spec = importlib.util.spec_from_file_location("run_bench", _RUN_BENCH)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_quick_bench_writes_report(run_bench, tmp_path):
    code = run_bench.main(
        ["--quick", "--no-baseline", "--output-dir", str(tmp_path)]
    )
    assert code == 0
    reports = list(tmp_path.glob("BENCH_*.json"))
    assert len(reports) == 1
    payload = json.loads(reports[0].read_text())

    assert payload["schema"] == "footprint-noc-bench/9"
    assert payload["quick"] is True

    engine = payload["engine"]
    assert len(engine["matrix"]) == len(run_bench.QUICK_MATRIX)
    for entry in engine["matrix"]:
        assert entry["results_identical"] is True
        assert entry["skip_cycles_per_sec"] > 0
        assert entry["fast_cycles_per_sec"] > 0
        assert entry["legacy_cycles_per_sec"] > 0
        assert entry["vector_cycles_per_sec"] > 0
        assert entry["vector_speedup"] > 0
    assert engine["summary"]["geomean_speedup"] > 0
    assert engine["summary"]["zero_load_geomean_speedup"] > 0
    assert engine["summary"]["geomean_vector_speedup"] > 0
    assert engine["summary"]["loaded_geomean_vector_speedup"] > 0

    auto = payload["auto"]
    assert auto["activity_threshold"] > 0
    assert {e["anchor"] for e in auto["matrix"]} == {
        "zero_load",
        "saturation",
    }
    for entry in auto["matrix"]:
        assert entry["results_identical"] is True
        assert entry["resolved_mode"] in ("vector", "skip")
        assert entry["auto_speedup"] > 0
        assert entry["auto_cycles_per_sec"] > 0

    torus = payload["torus"]
    assert len(torus["matrix"]) == len(run_bench.QUICK_TORUS_MATRIX)
    for entry in torus["matrix"]:
        assert entry["topology"] == "torus"
        assert entry["results_identical"] is True
        assert entry["drained"] is True
        assert "config.topology" in entry["vector_fallback"]
        assert entry["skip_cycles_per_sec"] > 0
        assert entry["fast_cycles_per_sec"] > 0
        assert entry["legacy_cycles_per_sec"] > 0
    assert torus["summary"]["all_drained"] is True
    assert torus["summary"]["results_identical"] is True

    assert payload["baseline"] == {"skipped": "--no-baseline"}

    cache = payload["cache"]
    assert cache["warm_misses"] == 0
    assert cache["warm_simulations"] == 0
    assert cache["warm_hits"] == cache["tasks"]
    assert cache["results_identical"] is True

    parallel = payload["parallel"]
    assert parallel["results_identical"] is True
    assert parallel["pool_results_identical"] is True
    assert parallel["tasks"] == len(run_bench.QUICK_PARALLEL_RATES)
    assert parallel["cpu_count"] >= 1
    # On multi-CPU hosts bench_parallel raises if the pool loses to
    # serial; single-CPU hosts record why the assertion was skipped.
    assert (
        parallel["speedup_assertion"] == "passed"
        or parallel["speedup_assertion"].startswith("skipped")
    )

    telemetry = payload["telemetry"]
    assert len(telemetry["matrix"]) == len(run_bench.QUICK_TELEMETRY_MATRIX)
    for entry in telemetry["matrix"]:
        assert entry["results_identical"] is True
        assert entry["off_cycles_per_sec"] > 0
        assert entry["sampling_cycles_per_sec"] > 0
        assert entry["tracing_cycles_per_sec"] > 0
    assert telemetry["overhead_budget"] == run_bench.TELEMETRY_OVERHEAD_BUDGET
    assert telemetry["baseline"] == {"skipped": "--no-baseline"}

    validate = payload["validate"]
    assert len(validate["matrix"]) == len(run_bench.QUICK_VALIDATE_MATRIX)
    for entry in validate["matrix"]:
        assert entry["results_identical"] is True
        assert entry["off_cycles_per_sec"] > 0
        assert entry["checked_cycles_per_sec"] > 0
        assert entry["checks_run"] > 0
    assert validate["overhead_budget"] == run_bench.VALIDATE_OVERHEAD_BUDGET
    assert validate["baseline"] == {"skipped": "--no-baseline"}

    tuner = payload["tuner"]
    assert tuner["frontier_size"] > 0
    assert tuner["full_fidelity_configs"] >= tuner["frontier_size"]
    assert tuner["cold_fresh_simulations"] > 0
    assert tuner["warm_fresh_simulations"] == 0
    assert tuner["warm_cache_hits"] == tuner["tasks"]
    assert tuner["warm_identical"] is True
    assert tuner["spent_cycles"] > 0
