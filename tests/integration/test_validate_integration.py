"""Integration tests for runtime invariant validation.

Pins the observation-only contract (validated runs are bit-identical to
unvalidated ones in every engine mode, including fault-laden and
telemetry-instrumented runs), the mutation self-test (every checker
provably fires), the differential harness, the ``$REPRO_VALIDATE``
plumbing through the harness and the pool, and the CLI surface.
"""

import pytest

from repro.cli import main as cli_main
from repro.exceptions import ConfigurationError, InvariantViolation
from repro.faults.schedule import random_link_faults, random_router_faults
from repro.harness.parallel import SimTask, run_tasks
from repro.harness.runner import run_simulation
from repro.sim.config import SimulationConfig
from repro.sim.engine import Simulator
from repro.telemetry import TelemetryConfig
from repro.validate import MUTATION_CHECKERS, VALIDATE_ENV, ValidationConfig
from repro.validate.differential import (
    random_configs,
    result_signature,
    run_differential,
    self_test,
)

MODES = ("skip", "fast", "legacy")


def _base_config(**overrides):
    base = dict(
        width=4,
        num_vcs=4,
        routing="footprint",
        injection_rate=0.2,
        warmup_cycles=40,
        measure_cycles=80,
        drain_cycles=400,
        seed=13,
    )
    base.update(overrides)
    return SimulationConfig(**base)


# The full-surface set from the acceptance criteria: baseline adaptive,
# escape-only, fault-laden (dead links and dead routers), and multi-flit.
SURFACE_CONFIGS = {
    "footprint": _base_config(),
    "dor": _base_config(routing="dor", num_vcs=2),
    "dbar-link-faults": _base_config(
        routing="dbar",
        faults=random_link_faults(4, k=2, cycle=30, duration=80, seed=5),
    ),
    "oddeven-router-fault": _base_config(
        routing="oddeven",
        faults=random_router_faults(4, k=1, cycle=25, duration=60, seed=9),
    ),
    "footprint-multiflit": _base_config(
        packet_size=4, packet_size_range=(1, 4)
    ),
}


class TestObservationOnly:
    @pytest.mark.parametrize("name", sorted(SURFACE_CONFIGS))
    @pytest.mark.parametrize("mode", MODES)
    def test_validated_run_is_bit_identical(self, name, mode):
        config = SURFACE_CONFIGS[name]
        plain = Simulator(config, engine_mode=mode).run()
        validated_sim = Simulator(
            config, engine_mode=mode, validation=ValidationConfig()
        )
        validated = validated_sim.run()  # raises on any violation
        assert validated_sim.validator.checks_run > 0
        assert result_signature(validated) == result_signature(plain)

    @pytest.mark.parametrize("mode", MODES)
    def test_validated_telemetry_run(self, mode):
        config = _base_config(
            telemetry=TelemetryConfig(
                sample_every=50, tree_nodes=(5, 10), trace_flits=True
            )
        )
        plain = Simulator(config, engine_mode=mode).run()
        validated = Simulator(
            config, engine_mode=mode, validation=ValidationConfig()
        ).run()
        assert result_signature(validated) == result_signature(plain)
        assert validated.telemetry is not None

    def test_disabled_validation_attaches_no_checker(self):
        sim = Simulator(_base_config())
        assert sim.validator is None
        inactive = ValidationConfig.only()
        assert Simulator(_base_config(), validation=inactive).validator is None


class TestMutationSelfTest:
    def test_every_mutation_is_caught(self):
        outcomes = self_test(seed=0)
        assert sorted(o.mutation for o in outcomes) == sorted(
            MUTATION_CHECKERS
        )
        missed = [o.mutation for o in outcomes if not o.ok]
        assert not missed, f"mutations not caught: {missed}"

    def test_direct_mutation_kill_carries_context(self):
        validation = ValidationConfig.only(
            "flit_conservation", mutate="flit_count", mutate_cycle=30
        )
        with pytest.raises(InvariantViolation) as excinfo:
            Simulator(_base_config(), validation=validation).run()
        assert excinfo.value.checker == "flit_conservation"
        assert excinfo.value.cycle is not None
        assert excinfo.value.cycle >= 30


class TestDifferential:
    def test_random_sweep_is_clean(self):
        report = run_differential(random_configs(3, seed=7), jobs=1)
        assert report.ok
        assert all(e.checks_run > 0 for e in report.entries)
        assert all(e.warm_misses == 0 for e in report.entries)

    def test_pow2_patterns_only_on_pow2_meshes(self):
        for config in random_configs(40, seed=11):
            if config.width == 3:
                assert config.traffic not in ("bitcomp", "bitrev", "shuffle")


class TestEnvPlumbing:
    def test_run_simulation_validates_under_env(self, monkeypatch):
        monkeypatch.setenv(VALIDATE_ENV, "1")
        plain_result = Simulator(_base_config()).run()
        result = run_simulation(_base_config())
        assert result_signature(result) == result_signature(plain_result)

    def test_run_simulation_rejects_bad_env(self, monkeypatch):
        monkeypatch.setenv(VALIDATE_ENV, "not_a_checker")
        with pytest.raises(ConfigurationError):
            run_simulation(_base_config())

    def test_env_mutation_kills_harness_tasks(self, monkeypatch):
        # Proof the env reaches pool workers' engines: a checker subset
        # is honored by run_tasks-driven runs exactly like direct runs.
        monkeypatch.setenv(VALIDATE_ENV, "flit_conservation,vc_states")
        results = run_tasks([SimTask(_base_config())], jobs=1)
        assert result_signature(results[0]) == result_signature(
            Simulator(_base_config()).run()
        )


class TestCliSurface:
    def test_validate_subcommand(self, capsys):
        code = cli_main(["validate", "--runs", "2", "--seed", "3", "--jobs", "1"])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "2/2 configurations clean" in out

    def test_validate_self_test(self, capsys):
        code = cli_main(["validate", "--self-test"])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "FIRED" in out and "MISSED" not in out
        assert "5/5 mutations caught" in out

    def test_validate_rejects_zero_runs(self, capsys):
        code = cli_main(["validate", "--runs", "0"])
        assert code == 2
        assert "--runs" in capsys.readouterr().err
