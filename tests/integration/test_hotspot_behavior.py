"""Integration tests of endpoint-congestion behaviour (the paper's core)."""

import pytest

from repro.core.congestion import extract_congestion_tree
from repro.sim.config import SimulationConfig
from repro.sim.engine import Simulator
from repro.traffic.hotspot import default_hotspot_flows


def run_hotspot(routing, hotspot_rate, **cfg):
    defaults = dict(
        width=8,
        num_vcs=10,
        routing=routing,
        traffic="hotspot",
        hotspot_rate=hotspot_rate,
        background_rate=0.3,
        warmup_cycles=100,
        measure_cycles=200,
        drain_cycles=500,
        seed=5,
    )
    defaults.update(cfg)
    return Simulator(SimulationConfig(**defaults)).run()


@pytest.mark.slow
class TestHotspotHoL:
    def test_background_latency_degrades_with_hotspot_rate(self):
        mild = run_hotspot("footprint", 0.1)
        severe = run_hotspot("footprint", 0.6)
        assert severe.flow_latency("background") > mild.flow_latency(
            "background"
        )

    def test_footprint_protects_background_better_than_dbar(self):
        """The paper's Fig. 9 claim, at reduced scale: under heavy hotspot
        load Footprint's background latency stays below DBAR's."""
        dbar = run_hotspot("dbar", 0.6)
        footprint = run_hotspot("footprint", 0.6)
        assert footprint.flow_latency("background") < dbar.flow_latency(
            "background"
        )

    def test_hotspot_latency_not_measured(self):
        result = run_hotspot("footprint", 0.4)
        assert "hotspot" not in result.latency_by_flow
        assert "background" in result.latency_by_flow


class TestCongestionTreeShape:
    def _tree_after(self, routing, cycles=400):
        config = SimulationConfig(
            width=4,
            num_vcs=4,
            routing=routing,
            traffic="hotspot",
            hotspot_rate=0.8,
            background_rate=0.2,
            warmup_cycles=0,
            measure_cycles=cycles,
            drain_cycles=0,
            seed=5,
        )
        sim = Simulator(config)
        for _ in range(cycles):
            sim.step()
        dst = default_hotspot_flows(sim.mesh)[0][1]
        return extract_congestion_tree(sim, dst, include_local=False)

    def test_tree_forms_under_oversubscription(self):
        tree = self._tree_after("dor")
        assert tree.num_branches > 0
        assert tree.total_vcs > 0

    def test_footprint_tree_slimmer_than_dor(self):
        dor = self._tree_after("dor")
        footprint = self._tree_after("footprint")
        assert footprint.mean_thickness <= dor.mean_thickness
