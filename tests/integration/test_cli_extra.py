"""Additional CLI coverage: argument plumbing into the configuration."""

import pytest

from repro.cli import main as cli_main


def test_run_with_packet_size_range(capsys):
    code = cli_main(
        [
            "run",
            "--width", "4",
            "--vcs", "4",
            "--routing", "footprint",
            "--packet-size-range", "1", "3",
            "--injection-rate", "0.1",
            "--warmup", "30",
            "--measure", "60",
            "--drain", "500",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "1-3f packets" in out


def test_run_hotspot_traffic(capsys):
    code = cli_main(
        [
            "run",
            "--width", "4",
            "--vcs", "4",
            "--traffic", "hotspot",
            "--hotspot-rate", "0.3",
            "--background-rate", "0.2",
            "--warmup", "30",
            "--measure", "60",
            "--drain", "500",
        ]
    )
    assert code == 0
    assert "accepted rate" in capsys.readouterr().out


def test_run_with_footprint_vc_limit(capsys):
    code = cli_main(
        [
            "run",
            "--width", "4",
            "--vcs", "4",
            "--routing", "footprint",
            "--footprint-vc-limit", "2",
            "--injection-rate", "0.1",
            "--warmup", "20",
            "--measure", "40",
            "--drain", "400",
        ]
    )
    assert code == 0


def test_invalid_algorithm_exits_cleanly(capsys):
    """Validation problems exit 2 with one stderr line, not a traceback."""
    code = cli_main(
        [
            "run",
            "--routing", "bogus",
            "--warmup", "1",
            "--measure", "1",
            "--drain", "1",
        ]
    )
    assert code == 2
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert "bogus" in err
    assert "Traceback" not in err


def test_invalid_pattern_exits_cleanly(capsys):
    code = cli_main(
        [
            "run",
            "--traffic", "nonesuch",
            "--warmup", "1",
            "--measure", "1",
            "--drain", "1",
        ]
    )
    assert code == 2
    err = capsys.readouterr().err
    assert err.startswith("error:")


def test_malformed_fault_spec_exits_cleanly(capsys):
    code = cli_main(
        [
            "run",
            "--width", "4",
            "--vcs", "4",
            "--faults", "link:notanode",
            "--warmup", "1",
            "--measure", "1",
            "--drain", "1",
        ]
    )
    assert code == 2
    err = capsys.readouterr().err
    assert err.startswith("error:")
    assert "fault" in err


def test_invalid_jobs_rejected_by_argparse(capsys):
    with pytest.raises(SystemExit) as excinfo:
        cli_main(["experiment", "fig5", "--jobs", "zero"])
    assert excinfo.value.code == 2
    assert "--jobs" in capsys.readouterr().err


def test_run_with_faults(capsys):
    code = cli_main(
        [
            "run",
            "--width", "4",
            "--vcs", "4",
            "--routing", "footprint",
            "--faults", "link:1:east,router:10@50+200",
            "--injection-rate", "0.05",
            "--warmup", "30",
            "--measure", "60",
            "--drain", "500",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "faults        :" in out
    assert "delivered frac:" in out
    assert "2 faults" in out


def test_experiment_fault_sweep_end_to_end(capsys, tmp_path):
    code = cli_main(
        [
            "experiment", "fault-sweep",
            "--scale", "smoke",
            "--fault-counts", "0,1",
            "--cache-dir", str(tmp_path / "cache"),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "Fault sweep" in out
    # All nine algorithms appear in the sweep table.
    from repro.routing.registry import available_algorithms

    for algorithm in available_algorithms():
        assert algorithm in out
    assert "cache" in out  # hit/miss summary printed via --cache-dir
    # And the cache directory was actually populated.
    assert list((tmp_path / "cache").glob("*.json"))


def test_experiment_rejects_bad_fault_counts(capsys):
    with pytest.raises(SystemExit) as excinfo:
        cli_main(
            ["experiment", "fault-sweep", "--fault-counts", "0,two"]
        )
    assert excinfo.value.code == 2
    assert "--fault-counts" in capsys.readouterr().err


def _fake_cache_entries(directory, count):
    import os

    directory.mkdir(parents=True, exist_ok=True)
    paths = []
    for i in range(count):
        path = directory / f"{i:064x}.json"
        path.write_text("{}")
        os.utime(path, (1000 + i, 1000 + i))
        paths.append(path)
    return paths


def test_cache_stats(capsys, tmp_path):
    directory = tmp_path / "cache"
    _fake_cache_entries(directory, 3)
    code = cli_main(["cache", "stats", "--cache-dir", str(directory)])
    assert code == 0
    out = capsys.readouterr().out
    assert str(directory) in out
    assert "3" in out


def test_cache_clear(capsys, tmp_path):
    directory = tmp_path / "cache"
    _fake_cache_entries(directory, 4)
    code = cli_main(["cache", "clear", "--cache-dir", str(directory)])
    assert code == 0
    assert "removed 4" in capsys.readouterr().out
    assert not list(directory.glob("*.json"))


def test_cache_prune_keeps_newest(capsys, tmp_path):
    directory = tmp_path / "cache"
    paths = _fake_cache_entries(directory, 5)
    code = cli_main(
        ["cache", "prune", "--cache-dir", str(directory), "--max-entries", "2"]
    )
    assert code == 0
    assert "removed 3" in capsys.readouterr().out
    survivors = sorted(directory.glob("*.json"))
    assert survivors == sorted(paths[-2:])


def test_cache_prune_rejects_negative(capsys, tmp_path):
    code = cli_main(
        [
            "cache", "prune",
            "--cache-dir", str(tmp_path / "cache"),
            "--max-entries", "-1",
        ]
    )
    assert code == 2
    assert "max-entries" in capsys.readouterr().err


def test_rectangular_mesh(capsys):
    code = cli_main(
        [
            "run",
            "--width", "4",
            "--height", "2",
            "--vcs", "2",
            "--routing", "dor",
            "--injection-rate", "0.05",
            "--warmup", "20",
            "--measure", "40",
            "--drain", "300",
        ]
    )
    assert code == 0
    assert "4x2" in capsys.readouterr().out
