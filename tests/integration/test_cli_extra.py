"""Additional CLI coverage: argument plumbing into the configuration."""

import pytest

from repro.cli import main as cli_main


def test_run_with_packet_size_range(capsys):
    code = cli_main(
        [
            "run",
            "--width", "4",
            "--vcs", "4",
            "--routing", "footprint",
            "--packet-size-range", "1", "3",
            "--injection-rate", "0.1",
            "--warmup", "30",
            "--measure", "60",
            "--drain", "500",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "1-3f packets" in out


def test_run_hotspot_traffic(capsys):
    code = cli_main(
        [
            "run",
            "--width", "4",
            "--vcs", "4",
            "--traffic", "hotspot",
            "--hotspot-rate", "0.3",
            "--background-rate", "0.2",
            "--warmup", "30",
            "--measure", "60",
            "--drain", "500",
        ]
    )
    assert code == 0
    assert "accepted rate" in capsys.readouterr().out


def test_run_with_footprint_vc_limit(capsys):
    code = cli_main(
        [
            "run",
            "--width", "4",
            "--vcs", "4",
            "--routing", "footprint",
            "--footprint-vc-limit", "2",
            "--injection-rate", "0.1",
            "--warmup", "20",
            "--measure", "40",
            "--drain", "400",
        ]
    )
    assert code == 0


def test_invalid_algorithm_raises():
    from repro.exceptions import RoutingError

    with pytest.raises(RoutingError):
        cli_main(
            [
                "run",
                "--routing", "bogus",
                "--warmup", "1",
                "--measure", "1",
                "--drain", "1",
            ]
        )


def test_rectangular_mesh(capsys):
    code = cli_main(
        [
            "run",
            "--width", "4",
            "--height", "2",
            "--vcs", "2",
            "--routing", "dor",
            "--injection-rate", "0.05",
            "--warmup", "20",
            "--measure", "40",
            "--drain", "300",
        ]
    )
    assert code == 0
    assert "4x2" in capsys.readouterr().out
