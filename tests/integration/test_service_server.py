"""Client-server integration tests over a localhost socket.

Each test boots a real :class:`ExperimentServer` on an ephemeral port
inside ``asyncio.run`` and drives it with the blocking
:class:`ServiceClient` from a worker thread (``asyncio.to_thread``), so
the event loop stays free to serve while the client polls — the same
topology as a figure driver talking to ``repro serve``.
"""

import asyncio
import os

import pytest

from repro.harness.cache import ResultCache
from repro.harness.parallel import SimTask, run_tasks
from repro.service import ServiceError
from repro.service.client import ServiceClient, parse_address
from repro.service.leaderboard import LeaderboardStore
from repro.service.scheduler import ExperimentScheduler
from repro.service.server import ExperimentServer
from repro.sim.config import SimulationConfig
from repro.sim.engine import Simulator


def _config(seed=1, rate=0.05, routing="footprint", **overrides):
    base = dict(
        width=4,
        num_vcs=4,
        routing=routing,
        injection_rate=rate,
        warmup_cycles=10,
        measure_cycles=30,
        drain_cycles=120,
        seed=seed,
    )
    base.update(overrides)
    return SimulationConfig(**base)


def _serve(tmp_path, client_fn):
    """Boot a server, run ``client_fn(client)`` in a thread, shut down."""

    async def main():
        scheduler = ExperimentScheduler(
            jobs=1,
            cache=ResultCache(tmp_path / "cache"),
            engine_mode="auto",
        )
        server = ExperimentServer(
            scheduler, LeaderboardStore(tmp_path / "state")
        )
        port = await server.start()
        try:
            client = ServiceClient("127.0.0.1", port, timeout=60.0)
            return await asyncio.to_thread(client_fn, client), scheduler
        finally:
            await server.close()

    return asyncio.run(main())


class TestParseAddress:
    def test_forms(self):
        assert parse_address("example:7000") == ("example", 7000)
        assert parse_address(":7000") == ("127.0.0.1", 7000)
        assert parse_address("7000") == ("127.0.0.1", 7000)

    def test_rejects_garbage(self):
        with pytest.raises(ServiceError):
            parse_address("host:notaport")
        with pytest.raises(ServiceError):
            parse_address("host:70000")


class TestServerRoundTrip:
    def test_submit_wait_results_and_dedup(self, tmp_path):
        def drive(client):
            assert client.ping()["ok"] is True
            tasks = [SimTask(_config(seed=1)), SimTask(_config(seed=2))]
            first = client.submit_tasks("grid", tasks, stream="s1")
            assert first["deduped"] is False
            summary = client.wait(first["job_id"], timeout=60)
            assert summary["state"] == "done"
            assert summary["counts"]["simulated"] == 2

            # Resubmitting the identical grid — different name and
            # stream — answers from the finished job: same id, zero new
            # simulations.
            again = client.submit_tasks("grid-again", tasks, stream="s2")
            assert again["deduped"] is True
            assert again["job_id"] == first["job_id"]
            totals = client.ping()["totals"]
            assert totals["simulated"] == 2

            results = client.results(first["job_id"])
            return results

        results, _ = _serve(tmp_path, drive)
        # Service results are bit-identical to a local run.
        direct = Simulator(_config(seed=1)).run()
        assert results[0].accepted_flits == direct.accepted_flits
        assert sorted(results[0].latency._samples) == sorted(
            direct.latency._samples
        )

    def test_overlapping_grids_share_work(self, tmp_path):
        def drive(client):
            grid_a = [SimTask(_config(seed=1)), SimTask(_config(seed=2))]
            grid_b = [SimTask(_config(seed=2)), SimTask(_config(seed=3))]
            a = client.submit_tasks("a", grid_a, stream="s1")
            b = client.submit_tasks("b", grid_b, stream="s2")
            done_a = client.wait(a["job_id"], timeout=60)
            done_b = client.wait(b["job_id"], timeout=60)
            assert done_a["state"] == "done"
            assert done_b["state"] == "done"
            totals = client.ping()["totals"]
            # Seed 2 overlaps: three distinct simulations, never four.
            assert totals["simulated"] == 3
            assert totals["shared"] + totals["cached"] == 1
            streams = client.streams()["streams"]
            assert {s["stream"] for s in streams} == {"s1", "s2"}
            return None

        _serve(tmp_path, drive)

    def test_cancel_and_status(self, tmp_path):
        def drive(client):
            # Heavy enough that the 3-task job cannot finish before the
            # cancel round-trip lands (only completion of *all* tasks
            # would make cancel report False).
            tasks = [
                SimTask(_config(seed=s, measure_cycles=4000))
                for s in (1, 2, 3)
            ]
            job = client.submit_tasks("doomed", tasks, stream="s1")
            cancelled = client.cancel(job["job_id"])
            assert cancelled["cancelled"] is True
            assert cancelled["state"] == "cancelled"
            # Cancelling a terminal job reports False, not an error.
            assert client.cancel(job["job_id"])["cancelled"] is False
            status = client.status(job["job_id"])["job"]
            assert status["state"] == "cancelled"
            listing = client.status()
            assert any(
                j["job_id"] == job["job_id"] for j in listing["jobs"]
            )
            return None

        _serve(tmp_path, drive)

    def test_error_paths(self, tmp_path):
        def drive(client):
            with pytest.raises(ServiceError, match="unknown verb"):
                client.call("frobnicate")
            with pytest.raises(ServiceError, match="unknown job"):
                client.status("j999")
            with pytest.raises(ServiceError, match="no tasks"):
                client.call("submit", name="empty", stream="s", tasks=[])
            return None

        _serve(tmp_path, drive)

    def test_done_jobs_feed_leaderboard(self, tmp_path):
        def drive(client):
            for routing in ("footprint", "dor"):
                job = client.submit_tasks(
                    f"grid-{routing}",
                    [SimTask(_config(seed=1, routing=routing))],
                    stream="s1",
                )
                client.wait(job["job_id"], timeout=60)
            board = client.leaderboard()
            assert "scenario:" in board["text"]
            (rows,) = board["standings"].values()
            assert {row["routing"] for row in rows} == {"footprint", "dor"}
            return None

        _serve(tmp_path, drive)
        # The ingested standings persist in the state dir across server
        # lifetimes.
        store = LeaderboardStore(tmp_path / "state")
        assert len(store.records()) == 2

    def test_shutdown_verb_stops_serve_loop(self, tmp_path):
        async def main():
            scheduler = ExperimentScheduler(jobs=1)
            server = ExperimentServer(
                scheduler, LeaderboardStore(tmp_path / "state")
            )
            port = await server.start()
            loop_task = asyncio.ensure_future(server.serve_until_shutdown())
            client = ServiceClient("127.0.0.1", port, timeout=30.0)
            ack = await asyncio.to_thread(client.shutdown)
            assert ack["stopping"] is True
            await asyncio.wait_for(loop_task, timeout=30)

        asyncio.run(main())


class TestHarnessHook:
    def test_run_tasks_routes_through_service(self, tmp_path, monkeypatch):
        tasks = [SimTask(_config(seed=1)), SimTask(_config(seed=2))]

        def drive(client):
            monkeypatch.setenv(
                "REPRO_SERVICE", f"127.0.0.1:{client.port}"
            )
            via_service = run_tasks(tasks)
            monkeypatch.delenv("REPRO_SERVICE")
            return via_service

        via_service, scheduler = _serve(tmp_path, drive)
        assert scheduler.totals()["simulated"] == 2
        stream_names = [s["stream"] for s in scheduler.stream_info()]
        assert f"pid-{os.getpid()}" in stream_names
        direct = [Simulator(t.resolved_config()).run() for t in tasks]
        for ours, theirs in zip(via_service, direct):
            assert ours.accepted_flits == theirs.accepted_flits
            assert sorted(ours.latency._samples) == sorted(
                theirs.latency._samples
            )
