"""Integration tests for the tuner: determinism and cache discipline.

The tuner's central contract is that the *search trajectory* — which
candidates are evaluated, in which rounds, and who survives each
promotion — is a pure function of (space, scenario, seed, budget).
Worker count and cache temperature may only change wall-clock and the
fresh/hit accounting, never a decision.
"""

import pytest

from repro.harness.cache import ResultCache
from repro.tuner.objectives import make_scenario
from repro.tuner.report import load_tune, write_tune_artifact
from repro.tuner.runner import run_tune


def _scenario():
    return make_scenario(
        "uniform",
        width=4,
        warmup=20,
        measure=40,
        drain=120,
        rates=(0.02, 0.08, 0.15),
    )


def _tune(cache, jobs):
    return run_tune(
        _scenario(),
        strategy="halving",
        budget_cycles=1_500_000,
        seed=5,
        jobs=jobs,
        cache=cache,
        n0=6,
        eta=2,
    )


def _trajectory(result):
    return [
        (r.label, r.rung, r.candidates, r.tasks, r.survivors)
        for r in result.rounds
    ]


def _frontier_keys(result):
    return sorted(e.candidate.key() for e in result.frontier)


def test_halving_identical_across_worker_counts(tmp_path):
    serial = _tune(ResultCache(tmp_path / "serial"), jobs=1)
    pooled = _tune(ResultCache(tmp_path / "pooled"), jobs=4)
    assert _trajectory(serial) == _trajectory(pooled)
    assert _frontier_keys(serial) == _frontier_keys(pooled)
    assert [e.candidate.key() for e in serial.evals] == [
        e.candidate.key() for e in pooled.evals
    ]
    for a, b in zip(serial.evals, pooled.evals):
        assert a.avg_latency == b.avg_latency
        assert a.saturation_throughput == b.saturation_throughput
        assert a.cost_bits == b.cost_bits
    assert serial.spent_cycles == pooled.spent_cycles


def test_warm_cache_replays_search_with_zero_fresh(tmp_path):
    cache_dir = tmp_path / "cache"
    cold = _tune(ResultCache(cache_dir), jobs=1)
    assert cold.total_fresh_simulations > 0
    warm = _tune(ResultCache(cache_dir), jobs=1)
    assert warm.total_fresh_simulations == 0
    assert all(r.fresh_simulations == 0 for r in warm.rounds)
    assert warm.total_cache_hits == warm.total_tasks
    assert _trajectory(cold) == _trajectory(warm)
    assert _frontier_keys(cold) == _frontier_keys(warm)
    assert cold.spent_cycles == warm.spent_cycles


def test_frontier_is_full_fidelity_and_contains_defaults_competitor(
    tmp_path,
):
    result = _tune(ResultCache(tmp_path / "c"), jobs=1)
    assert result.frontier
    assert all(e.rung == "full" for e in result.frontier)
    assert all(e.rung == "full" for e in result.evals)
    # The budget-exempt default baseline is always a full-fidelity eval.
    default_key = result.default_eval.candidate.key()
    assert default_key in {e.candidate.key() for e in result.evals}
    # Dominators, when present, must strictly beat the default somewhere
    # and never lose anywhere.
    for entry in result.dominators:
        assert entry.avg_latency <= result.default_eval.avg_latency
        assert (
            entry.saturation_throughput
            >= result.default_eval.saturation_throughput
        )
        assert entry.cost_bits <= result.default_eval.cost_bits


def test_budget_trims_work(tmp_path):
    scenario = _scenario()
    small = run_tune(
        scenario,
        strategy="halving",
        budget_cycles=10_000,
        seed=5,
        jobs=1,
        cache=ResultCache(tmp_path / "small"),
        n0=6,
    )
    big = run_tune(
        scenario,
        strategy="halving",
        budget_cycles=1_500_000,
        seed=5,
        jobs=1,
        cache=ResultCache(tmp_path / "big"),
        n0=6,
    )
    assert small.spent_cycles <= 10_000
    assert small.total_tasks < big.total_tasks
    # The default baseline is evaluated even when the budget covers
    # nothing else.
    assert small.default_eval is not None
    assert small.frontier


def test_artifact_roundtrip(tmp_path):
    result = _tune(ResultCache(tmp_path / "c"), jobs=1)
    path = write_tune_artifact(
        result, tmp_path, filename="TUNE_test.json"
    )
    loaded = load_tune(path)
    assert _frontier_keys(loaded) == _frontier_keys(result)
    assert _trajectory(loaded) == _trajectory(result)
    assert loaded.scenario == result.scenario
    assert loaded.spent_cycles == result.spent_cycles
    assert (
        loaded.default_eval.candidate == result.default_eval.candidate
    )


def test_random_strategy_deterministic(tmp_path):
    scenario = _scenario()
    kwargs = dict(
        strategy="random",
        budget_cycles=1_500_000,
        seed=9,
        jobs=1,
        n0=5,
    )
    a = run_tune(scenario, cache=ResultCache(tmp_path / "a"), **kwargs)
    b = run_tune(scenario, cache=ResultCache(tmp_path / "b"), **kwargs)
    assert [e.candidate.key() for e in a.evals] == [
        e.candidate.key() for e in b.evals
    ]


def test_tune_without_cache_runs_fresh(tmp_path):
    result = run_tune(
        _scenario(),
        strategy="random",
        budget_cycles=400_000,
        seed=2,
        jobs=1,
        cache=None,
        n0=3,
    )
    assert result.total_fresh_simulations == result.total_tasks
    assert result.total_cache_hits == 0


def test_invalid_budget_rejected(tmp_path):
    from repro.tuner import TunerError

    with pytest.raises(TunerError):
        run_tune(_scenario(), budget_cycles=0)
    with pytest.raises(TunerError):
        run_tune(_scenario(), strategy="genetic")
