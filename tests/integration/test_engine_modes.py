"""The fast (active-set) engine loop must match the legacy loop exactly.

The optimized scheduler skips routers that provably cannot make progress
in a cycle; these tests pin the invariant that doing so never changes a
simulation outcome, down to individual latency samples.
"""

import pytest

from repro.sim.config import SimulationConfig
from repro.sim.engine import Simulator


def _signature(result):
    return (
        result.cycles_run,
        result.accepted_flits,
        result.offered_flits,
        result.measured_created,
        result.measured_ejected,
        tuple(result.latency._samples),
        tuple(
            sorted(
                (flow, tuple(stats._samples))
                for flow, stats in result.latency_by_flow.items()
            )
        ),
    )


def _run(mode, **overrides):
    base = dict(
        width=4,
        num_vcs=4,
        routing="footprint",
        injection_rate=0.1,
        warmup_cycles=60,
        measure_cycles=120,
        drain_cycles=400,
        seed=4,
    )
    base.update(overrides)
    return Simulator(SimulationConfig(**base), engine_mode=mode).run()


@pytest.mark.parametrize(
    "overrides",
    [
        {},
        {"routing": "dor", "injection_rate": 0.3},
        {"routing": "dbar", "traffic": "transpose"},
        {"routing": "oddeven+xordet", "injection_rate": 0.02},
        {"traffic": "hotspot", "injection_rate": 0.0},
        {"packet_size_range": (1, 4)},
    ],
    ids=["footprint", "dor-high", "dbar-transpose", "oddeven-xordet-low",
         "hotspot", "multiflit"],
)
def test_fast_matches_legacy(overrides):
    assert _signature(_run("fast", **overrides)) == _signature(
        _run("legacy", **overrides)
    )


def test_unknown_mode_rejected():
    with pytest.raises(ValueError):
        Simulator(SimulationConfig(width=4, num_vcs=2), engine_mode="turbo")


def test_default_mode_is_fast():
    sim = Simulator(SimulationConfig(width=4, num_vcs=2))
    assert sim._step_impl == sim._step_fast
