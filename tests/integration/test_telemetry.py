"""Integration tests for the telemetry subsystem.

Pins the observation-only contract (telemetry never changes a result, in
any engine mode), cross-mode determinism of the recorded series and
events, the cache/parallel plumbing, the CLI surface, and the paper's
congestion-tree claim measured from the sampled time series.
"""

import pytest

from repro.cli import main as cli_main
from repro.harness.cache import ResultCache
from repro.harness.parallel import SimTask, run_tasks
from repro.sim.config import SimulationConfig
from repro.sim.engine import Simulator
from repro.telemetry import TelemetryConfig

MODES = ("skip", "fast", "legacy")


def _signature(result):
    return (
        result.cycles_run,
        result.accepted_flits,
        result.offered_flits,
        result.measured_created,
        result.measured_ejected,
        tuple(result.latency._samples),
    )


def _base_config(**overrides):
    base = dict(
        width=4,
        num_vcs=4,
        routing="footprint",
        injection_rate=0.2,
        warmup_cycles=50,
        measure_cycles=100,
        drain_cycles=400,
        seed=11,
    )
    base.update(overrides)
    return SimulationConfig(**base)


FULL_TELEMETRY = TelemetryConfig(
    sample_every=50, tree_nodes=(5, 10), trace_flits=True
)


class TestObservationOnly:
    @pytest.mark.parametrize("mode", MODES)
    def test_results_bit_identical_with_telemetry(self, mode):
        config = _base_config()
        plain = Simulator(config, engine_mode=mode).run()
        observed = Simulator(
            config.with_(telemetry=FULL_TELEMETRY), engine_mode=mode
        ).run()
        assert plain.telemetry is None
        assert observed.telemetry is not None
        assert _signature(plain) == _signature(observed)

    def test_inactive_telemetry_yields_none(self):
        config = _base_config(
            telemetry=TelemetryConfig(sample_every=0)
        )
        assert Simulator(config).run().telemetry is None


class TestCrossModeDeterminism:
    @pytest.mark.parametrize(
        "overrides",
        [
            {},
            # Idle-heavy: low load makes the skip engine jump over
            # quiescent stretches, exercising the synthesized-sample
            # path (TelemetryHub.on_skip).
            {"injection_rate": 0.02, "drain_cycles": 600},
            {"routing": "dor", "traffic": "transpose"},
        ],
    )
    def test_series_and_events_identical_across_modes(self, overrides):
        dicts = []
        for mode in MODES:
            config = _base_config(telemetry=FULL_TELEMETRY, **overrides)
            result = Simulator(config, engine_mode=mode).run()
            dicts.append(result.telemetry.to_dict())
        assert dicts[0] == dicts[1] == dicts[2]
        # The series really sampled something.
        assert dicts[0]["sample_cycles"]
        assert dicts[0]["events"]


class TestHarnessPlumbing:
    def test_cache_bypassed_for_telemetry_tasks(self, tmp_path):
        cache = ResultCache(tmp_path)
        config = _base_config()
        # Warm the cache with a telemetry-free run of the same config.
        [plain] = run_tasks([SimTask(config)], jobs=1, cache=cache)
        assert cache.get(config) is not None
        # A telemetry task must re-simulate (a hit has no series to give)
        # yet produce the identical result.
        tel_config = config.with_(telemetry=FULL_TELEMETRY)
        [observed] = run_tasks([SimTask(tel_config)], jobs=1, cache=cache)
        assert observed.telemetry is not None
        assert observed.telemetry.sample_cycles
        assert _signature(plain) == _signature(observed)
        # What went back into the cache is stripped of telemetry.
        cached = cache.get(config)
        assert cached is not None and cached.telemetry is None

    def test_pool_ships_telemetry_across_processes(self):
        configs = [
            _base_config(telemetry=FULL_TELEMETRY, seed=seed)
            for seed in (11, 12)
        ]
        tasks = [SimTask(c) for c in configs]
        serial = run_tasks(tasks, jobs=1)
        pooled = run_tasks(tasks, jobs=2)
        for s, p in zip(serial, pooled):
            assert p.telemetry is not None
            assert _signature(s) == _signature(p)
            assert s.telemetry.to_dict() == p.telemetry.to_dict()


_CLI_RUN = [
    "run",
    "--width", "4",
    "--vcs", "4",
    "--routing", "footprint",
    "--traffic", "transpose",
    "--injection-rate", "0.2",
    "--warmup", "30",
    "--measure", "60",
    "--drain", "400",
]


class TestCli:
    def test_run_telemetry_prints_summary(self, capsys):
        code = cli_main(_CLI_RUN + ["--telemetry", "--sample-every", "25"])
        assert code == 0
        out = capsys.readouterr().out
        assert "telemetry:" in out
        assert "(every 25 cycles)" in out
        assert "link util" in out

    def test_run_tree_node_summary(self, capsys):
        code = cli_main(_CLI_RUN + ["--telemetry", "--tree-node", "5"])
        assert code == 0
        assert "tree @ n5" in capsys.readouterr().out

    def test_run_trace_out_writes_both_formats(self, capsys, tmp_path):
        chrome = tmp_path / "run.json"
        jsonl = tmp_path / "run.jsonl"
        assert cli_main(_CLI_RUN + ["--trace-out", str(chrome)]) == 0
        assert cli_main(_CLI_RUN + ["--trace-out", str(jsonl)]) == 0
        out = capsys.readouterr().out
        assert "trace written" in out
        assert '"traceEvents"' in chrome.read_text()
        assert jsonl.read_text().startswith('{"kind"')

    def test_run_progress_reports_to_stderr(self, capsys):
        code = cli_main(_CLI_RUN + ["--progress"])
        assert code == 0
        err = capsys.readouterr().err
        assert "done: cycle" in err
        assert "measured packets" in err

    def test_trace_summarize_round_trip(self, capsys, tmp_path):
        trace = tmp_path / "run.jsonl"
        assert cli_main(_CLI_RUN + ["--trace-out", str(trace)]) == 0
        capsys.readouterr()
        assert cli_main(["trace", "summarize", str(trace)]) == 0
        out = capsys.readouterr().out
        assert "events over cycles" in out
        assert "packets        :" in out

    def test_trace_summarize_missing_file(self, capsys, tmp_path):
        code = cli_main(["trace", "summarize", str(tmp_path / "nope.jsonl")])
        assert code == 2
        assert "cannot read trace" in capsys.readouterr().err


# ----------------------------------------------------------------------
# The paper's congestion-tree claim, measured from the sampled series
# ----------------------------------------------------------------------
#: The four hotspot destinations of the 8x8 scenario (mesh corners).
_HOTSPOT_TREES = (0, 7, 56, 63)


def _hotspot_tree_stats(routing):
    """Mean branch count / mean thickness of the hotspot congestion
    trees, averaged over the sampled time series."""
    config = SimulationConfig(
        width=8,
        num_vcs=10,
        routing=routing,
        traffic="hotspot",
        hotspot_rate=0.9,
        background_rate=0.3,
        warmup_cycles=50,
        measure_cycles=300,
        drain_cycles=50,
        seed=7,
        telemetry=TelemetryConfig(
            sample_every=50, tree_nodes=_HOTSPOT_TREES
        ),
    )
    telemetry = Simulator(config).run().telemetry
    branches = vcs = 0.0
    for node in _HOTSPOT_TREES:
        tree = telemetry.tree_series(node)
        assert tree["branches"], f"no tree samples for node {node}"
        branches += sum(tree["branches"]) / len(tree["branches"])
        vcs += sum(tree["vcs"]) / len(tree["vcs"])
    return branches, vcs / branches


def test_footprint_regulates_congestion_tree_shape():
    """Fig. 2/4 of the paper, from the sampled tree series.

    Under hotspot traffic the congestion trees rooted at the hotspots
    take characteristic shapes per routing class: deterministic DOR
    piles every flow onto one path per source — few branches, each many
    VCs thick — while fully-adaptive DBAR spreads over every minimal
    path, growing the widest tree.  Footprint regulates adaptiveness,
    so its trees must stay strictly smaller than the fully-adaptive
    ones (fewer branches) while remaining strictly thinner-branched
    than DOR's single-path pile-up.
    """
    dor_branches, dor_thickness = _hotspot_tree_stats("dor")
    dbar_branches, _ = _hotspot_tree_stats("dbar")
    fp_branches, fp_thickness = _hotspot_tree_stats("footprint")

    # Adaptive routings grow more branches than deterministic DOR...
    assert dor_branches < fp_branches
    # ...but footprint's regulation keeps the tree strictly smaller
    # than fully-adaptive DBAR's (the paper's "fewer branches" claim).
    assert fp_branches < dbar_branches
    # And footprint's branches stay strictly thinner than the thick
    # single-path trunks DOR builds into the hotspot.
    assert fp_thickness < dor_thickness
