"""The vector (structure-of-arrays) engine must match ``skip`` exactly.

``engine_mode="vector"`` replays the scalar pipeline as whole-network
array operations; these tests pin the contract that doing so never
changes a simulation outcome — same cycles, same accepted flits, same
individual latency samples — across every routing algorithm and traffic
generator, and that unsupported configurations fall back to ``skip``
loudly (recorded reason) rather than erroring or silently diverging.
"""

import pytest

from repro.cli import main as cli_main
from repro.exceptions import ConfigurationError
from repro.faults.schedule import random_link_faults
from repro.harness.parallel import SimTask, run_tasks
from repro.harness.runner import run_simulation
from repro.sim.config import SimulationConfig
from repro.sim.engine import (
    AUTO_THRESHOLD_ENV,
    ENGINE_MODE_ENV,
    Simulator,
    engine_mode_from_env,
    resolve_auto_mode,
)
from repro.telemetry import TelemetryConfig
from repro.traffic.trace import TraceEvent
from repro.validate.config import ValidationConfig
from repro.validate.differential import result_signature

ALGORITHMS = (
    "dor",
    "oddeven",
    "dbar",
    "dbar-fine",
    "footprint",
    "dor+xordet",
    "oddeven+xordet",
    "dbar+xordet",
    "footprint+xordet",
)


def _config(**overrides):
    base = dict(
        width=4,
        num_vcs=4,
        vc_buffer_depth=4,
        routing="footprint",
        traffic="uniform",
        injection_rate=0.15,
        warmup_cycles=40,
        measure_cycles=80,
        drain_cycles=500,
        seed=11,
    )
    base.update(overrides)
    return SimulationConfig(**base)


def _sig(mode, **overrides):
    return result_signature(
        Simulator(_config(**overrides), engine_mode=mode).run()
    )


@pytest.mark.parametrize("routing", ALGORITHMS)
def test_vector_matches_skip_every_algorithm(routing):
    """Multi-flit transpose at moderate load, all nine algorithms."""
    overrides = dict(
        routing=routing,
        traffic="transpose",
        injection_rate=0.25,
        packet_size=3,
    )
    assert _sig("vector", **overrides) == _sig("skip", **overrides)


@pytest.mark.parametrize(
    "overrides",
    [
        {"traffic": "uniform", "packet_size_range": (1, 4)},
        {
            "traffic": "hotspot",
            "ejection_rate": 0.5,
            "footprint_vc_limit": 2,
        },
        {"traffic": "tornado", "width": 5, "height": 3, "routing": "dbar"},
        {"traffic": "bitrev", "routing": "oddeven+xordet", "num_vcs": 2},
        {"injection_rate": 0.0},
    ],
    ids=["multiflit", "hotspot", "tornado-rect", "bitrev", "zero-load"],
)
def test_vector_matches_skip_traffic_surface(overrides):
    assert _sig("vector", **overrides) == _sig("skip", **overrides)


def test_vector_matches_skip_trace_traffic():
    events = [
        TraceEvent(cycle=c, src=(3 * c) % 16, dst=(5 * c + 7) % 16, size=2)
        for c in range(0, 60, 2)
    ]
    overrides = dict(traffic="trace", trace=events, injection_rate=0.0)
    assert _sig("vector", **overrides) == _sig("skip", **overrides)


def test_vector_is_deterministic():
    assert _sig("vector") == _sig("vector")


def test_supported_config_reports_no_fallback():
    sim = Simulator(_config(), engine_mode="vector")
    assert sim.engine_mode == "vector"
    assert sim.requested_engine_mode == "vector"
    assert sim.vector_fallback is None


class TestFallback:
    """Unsupported configs degrade to skip with a recorded reason."""

    def test_fault_schedule_falls_back(self):
        faults = random_link_faults(4, k=1, cycle=20, duration=60, seed=3)
        config = _config(faults=faults)
        sim = Simulator(config, engine_mode="vector")
        assert sim.engine_mode == "skip"
        assert sim.vector_fallback == "config.faults: active fault schedule"
        # The fallback run is exactly the skip run.
        assert result_signature(sim.run()) == result_signature(
            Simulator(config, engine_mode="skip").run()
        )

    def test_telemetry_falls_back(self):
        sim = Simulator(
            _config(telemetry=TelemetryConfig(sample_every=10)),
            engine_mode="vector",
        )
        assert sim.engine_mode == "skip"
        assert (
            sim.vector_fallback == "config.telemetry: active telemetry/tracing"
        )

    def test_utilization_tracking_falls_back(self):
        sim = Simulator(_config(track_utilization=True), engine_mode="vector")
        assert sim.engine_mode == "skip"
        assert sim.vector_fallback == (
            "config.track_utilization: channel-utilization tracking"
        )

    def test_validation_hooks_fall_back(self):
        sim = Simulator(
            _config(), engine_mode="vector", validation=ValidationConfig()
        )
        assert sim.engine_mode == "skip"
        assert sim.vector_fallback == "validation: invariant validation hooks"

    def test_other_modes_never_record_fallback(self):
        faults = random_link_faults(4, k=1, cycle=20, duration=60, seed=3)
        sim = Simulator(_config(faults=faults), engine_mode="skip")
        assert sim.vector_fallback is None


class TestAutoMode:
    """``auto`` resolves to vector or skip per config, never changing
    results."""

    def test_loaded_config_resolves_to_vector(self):
        # 4x4 @ 0.25 offers 4 flits/cycle — above the 3.0 threshold.
        sim = Simulator(_config(injection_rate=0.25), engine_mode="auto")
        assert sim.requested_engine_mode == "auto"
        assert sim.auto_resolved == "vector"
        assert sim.engine_mode == "vector"

    def test_quiescent_config_resolves_to_skip(self):
        sim = Simulator(_config(injection_rate=0.001), engine_mode="auto")
        assert sim.auto_resolved == "skip"
        assert sim.engine_mode == "skip"

    def test_auto_matches_skip_either_side_of_threshold(self):
        for rate in (0.001, 0.25):
            assert _sig("auto", injection_rate=rate) == _sig(
                "skip", injection_rate=rate
            )

    def test_auto_inherits_vector_fallback(self):
        sim = Simulator(
            _config(injection_rate=0.25, track_utilization=True),
            engine_mode="auto",
        )
        assert sim.auto_resolved == "vector"
        assert sim.engine_mode == "skip"
        assert sim.vector_fallback is not None

    def test_threshold_env_override(self, monkeypatch):
        config = _config(injection_rate=0.25)
        monkeypatch.setenv(AUTO_THRESHOLD_ENV, "100")
        assert resolve_auto_mode(config) == "skip"
        monkeypatch.setenv(AUTO_THRESHOLD_ENV, "0")
        assert resolve_auto_mode(config) == "vector"

    def test_garbage_threshold_fails_loudly(self, monkeypatch):
        monkeypatch.setenv(AUTO_THRESHOLD_ENV, "fast-please")
        with pytest.raises(ConfigurationError):
            resolve_auto_mode(_config())

    def test_concrete_modes_record_no_auto_choice(self):
        assert Simulator(_config(), engine_mode="skip").auto_resolved is None

    def test_env_selects_auto(self, monkeypatch):
        monkeypatch.setenv(ENGINE_MODE_ENV, "auto")
        assert engine_mode_from_env() == "auto"


class TestEngineModeEnv:
    def test_unset_returns_default(self, monkeypatch):
        monkeypatch.delenv(ENGINE_MODE_ENV, raising=False)
        assert engine_mode_from_env() == "skip"
        assert engine_mode_from_env(default="fast") == "fast"

    def test_env_selects_mode(self, monkeypatch):
        monkeypatch.setenv(ENGINE_MODE_ENV, "vector")
        assert engine_mode_from_env() == "vector"

    def test_garbage_fails_loudly(self, monkeypatch):
        monkeypatch.setenv(ENGINE_MODE_ENV, "turbo")
        with pytest.raises(ConfigurationError):
            engine_mode_from_env()

    def test_runner_honors_env(self, monkeypatch):
        monkeypatch.setenv(ENGINE_MODE_ENV, "vector")
        via_env = run_simulation(_config())
        monkeypatch.delenv(ENGINE_MODE_ENV)
        assert result_signature(via_env) == _sig("skip")

    def test_runner_argument_beats_env(self, monkeypatch):
        monkeypatch.setenv(ENGINE_MODE_ENV, "turbo")
        result = run_simulation(_config(), engine_mode="vector")
        assert result_signature(result) == _sig("skip")


class TestParallelPlumbing:
    def test_pooled_vector_matches_serial_skip(self):
        tasks = [SimTask(_config(), rate=r) for r in (0.05, 0.2, 0.3)]
        serial = run_tasks(tasks, jobs=1, engine_mode="skip")
        pooled = run_tasks(tasks, jobs=2, engine_mode="vector")
        assert [result_signature(r) for r in pooled] == [
            result_signature(r) for r in serial
        ]

    def test_pool_workers_inherit_env_mode(self, monkeypatch):
        tasks = [SimTask(_config(), rate=r) for r in (0.05, 0.2)]
        serial = run_tasks(tasks, jobs=1)
        monkeypatch.setenv(ENGINE_MODE_ENV, "vector")
        pooled = run_tasks(tasks, jobs=2)
        assert [result_signature(r) for r in pooled] == [
            result_signature(r) for r in serial
        ]


def test_cli_run_engine_mode_vector(capsys):
    code = cli_main(
        [
            "run",
            "--width",
            "4",
            "--vcs",
            "4",
            "--routing",
            "footprint",
            "--injection-rate",
            "0.1",
            "--warmup",
            "30",
            "--measure",
            "60",
            "--drain",
            "300",
            "--engine-mode",
            "vector",
        ]
    )
    assert code == 0
    assert "accepted" in capsys.readouterr().out.lower()
