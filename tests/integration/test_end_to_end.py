"""End-to-end simulations: every algorithm and pattern on small meshes."""

import pytest

from repro.routing.registry import available_algorithms
from repro.sim.config import SimulationConfig
from repro.sim.engine import Simulator


def run(routing="footprint", traffic="uniform", rate=0.1, **cfg):
    defaults = dict(
        width=4,
        num_vcs=4,
        routing=routing,
        traffic=traffic,
        injection_rate=rate,
        warmup_cycles=60,
        measure_cycles=120,
        drain_cycles=1500,
        seed=13,
    )
    defaults.update(cfg)
    return Simulator(SimulationConfig(**defaults)).run()


class TestAllAlgorithmsDeliver:
    @pytest.mark.parametrize("routing", available_algorithms())
    def test_uniform_low_load_drains(self, routing):
        result = run(routing=routing)
        assert result.drained
        assert result.measured_created > 0
        assert result.avg_latency > 0

    @pytest.mark.parametrize("routing", ["dor", "oddeven", "dbar", "footprint"])
    @pytest.mark.parametrize("traffic", ["transpose", "shuffle", "bitcomp"])
    def test_permutations_drain(self, routing, traffic):
        result = run(routing=routing, traffic=traffic, rate=0.15)
        assert result.drained


class TestLatencySanity:
    def test_zero_load_latency_close_to_hop_bound(self):
        """At near-zero load the mean latency must sit near the structural
        minimum: ~2 cycles per hop plus injection/ejection overhead."""
        result = run(rate=0.02, traffic="neighbor")
        # Neighbor traffic is a single hop: latency must be small and flat.
        assert result.avg_latency < 12

    def test_latency_grows_under_load(self):
        low = run(rate=0.05, traffic="transpose", routing="dor")
        high = run(rate=0.5, traffic="transpose", routing="dor")
        assert high.avg_latency > low.avg_latency

    def test_min_latency_respects_distance(self):
        result = run(rate=0.05, traffic="bitcomp")
        # Bit-complement on 4x4: every packet crosses >= 2 hops.
        assert result.latency.minimum >= 4


class TestDeterminism:
    def test_same_seed_same_result(self):
        a = run(seed=21)
        b = run(seed=21)
        assert a.avg_latency == b.avg_latency
        assert a.accepted_flits == b.accepted_flits
        assert a.measured_created == b.measured_created

    def test_different_seed_different_result(self):
        a = run(seed=21)
        b = run(seed=22)
        assert (a.avg_latency, a.measured_created) != (
            b.avg_latency,
            b.measured_created,
        )


class TestThroughputAccounting:
    def test_accepted_tracks_offered_below_saturation(self):
        result = run(rate=0.2)
        assert result.accepted_rate == pytest.approx(0.2, abs=0.05)
        assert result.offered_rate == pytest.approx(0.2, abs=0.05)

    def test_multiflit_packets(self):
        result = run(rate=0.2, packet_size=4)
        assert result.drained
        assert result.accepted_rate == pytest.approx(0.2, abs=0.06)

    def test_variable_packet_size(self):
        result = run(rate=0.2, packet_size_range=(1, 6))
        assert result.drained

    def test_flow_latency_breakdown(self):
        result = run(rate=0.1)
        assert result.flow_latency("uniform") == result.avg_latency
        import math

        assert math.isnan(result.flow_latency("nonexistent"))


class TestConservation:
    def test_all_flits_accounted_for(self):
        config = SimulationConfig(
            width=4,
            num_vcs=4,
            routing="footprint",
            traffic="uniform",
            injection_rate=0.3,
            warmup_cycles=0,
            measure_cycles=200,
            drain_cycles=2000,
            seed=3,
        )
        sim = Simulator(config)
        result = sim.run()
        assert result.drained
        ejected = sum(s.ejected_flits for s in sim.sinks)
        offered = sum(s.offered_flits for s in sim.sources)
        in_network = sim.total_buffered_flits()
        # Every offered flit is ejected, still queued at a source, or in
        # flight inside the network — nothing is created or destroyed.
        queued = 0
        for src in sim.sources:
            queued += sum(p.size for p in src.queue)
            if src._current_flits is not None:
                queued += len(src._current_flits)
        assert ejected + in_network + queued == offered


class TestEjectionBandwidth:
    def test_reduced_ejection_rate_causes_endpoint_congestion(self):
        fast = run(rate=0.25, ejection_rate=1.0)
        slow = run(rate=0.25, ejection_rate=0.3, drain_cycles=4000)
        assert slow.avg_latency > fast.avg_latency
