"""Behavioural fault-injection tests with hand-crafted traces.

These pin the fault model's observable semantics: exact delivered
fractions, deterministic routing stuck on a dead path vs. adaptive
routing steering around it, transient faults delaying (not dropping)
delivery, and dead sources discarding generated packets while still
counting them as offered.
"""

import math

from repro.faults import FaultEvent, FaultSchedule
from repro.sim.config import SimulationConfig
from repro.sim.engine import Simulator
from repro.topology.ports import Direction
from repro.traffic.trace import TraceEvent


def _run(routing, trace, faults, *, drain=400, mode="fast"):
    config = SimulationConfig(
        width=4,
        num_vcs=4,
        routing=routing,
        traffic="trace",
        trace=trace,
        injection_rate=0.0,
        warmup_cycles=0,
        measure_cycles=50,
        drain_cycles=drain,
        seed=1,
        faults=faults,
    )
    return Simulator(config, engine_mode=mode).run()


# Link 0→east is on DOR's (X-then-Y) path from node 0 to node 5.
_DEAD_FIRST_HOP = FaultSchedule((FaultEvent(0, "link", 0, Direction.EAST),))


def test_dor_cannot_route_around_dead_link():
    """DOR commits to the east port at node 0 and waits forever: the
    packet freezes, and the run ends undrained with nothing delivered."""
    result = _run("dor", [TraceEvent(1, 0, 5)], _DEAD_FIRST_HOP)
    assert not result.drained
    assert result.measured_created == 1
    assert result.measured_ejected == 0
    assert result.delivered_fraction == 0.0


def test_footprint_routes_around_dead_link():
    """The adaptive minimal set at node 0 for destination 5 is
    {east, north}; with east dead, footprint takes north and delivers."""
    result = _run("footprint", [TraceEvent(1, 0, 5)], _DEAD_FIRST_HOP)
    assert result.drained
    assert result.delivered_fraction == 1.0


def test_adaptive_beats_dor_on_partial_fault_exact_fractions():
    """Two measured packets; one crosses the dead link's DOR path, one
    does not.  DOR delivers exactly half, footprint everything."""
    trace = [TraceEvent(1, 0, 5), TraceEvent(2, 15, 10)]
    dor = _run("dor", trace, _DEAD_FIRST_HOP)
    assert dor.measured_created == 2
    assert dor.measured_ejected == 1
    assert dor.delivered_fraction == 0.5
    footprint = _run("footprint", trace, _DEAD_FIRST_HOP)
    assert footprint.delivered_fraction == 1.0


def test_transient_link_fault_delays_but_delivers():
    """A 200-cycle fault on the only DOR path holds the packet; on heal
    it proceeds.  Delivery is delayed past the heal cycle, not dropped."""
    faults = FaultSchedule(
        (FaultEvent(0, "link", 0, Direction.EAST, duration=200),)
    )
    result = _run("dor", [TraceEvent(1, 0, 5)], faults, drain=600)
    assert result.drained
    assert result.delivered_fraction == 1.0
    assert result.latency.mean > 200


def test_dead_source_discards_generation_but_counts_it():
    """Packets generated at a dead endpoint never enter the network but
    still count as created, so the delivered fraction sees the loss."""
    faults = FaultSchedule((FaultEvent(0, "router", 0),))
    trace = [TraceEvent(1, 0, 5), TraceEvent(2, 15, 10)]
    result = _run("footprint", trace, faults)
    assert result.measured_created == 2
    assert result.measured_ejected == 1
    assert result.delivered_fraction == 0.5


def test_delivered_fraction_nan_without_measured_traffic():
    faults = FaultSchedule((FaultEvent(0, "router", 0),))
    result = _run("footprint", [], faults)
    assert result.measured_created == 0
    assert math.isnan(result.delivered_fraction)


def test_fault_free_delivered_fraction_is_one():
    result = _run("footprint", [TraceEvent(1, 0, 5)], None)
    assert result.delivered_fraction == 1.0
