"""Parallel execution must be bit-identical to serial execution.

These tests force the process pool (``jobs=4``) and compare against the
in-process serial path (``jobs=1``) at the level the harness consumes:
:class:`SweepPoint` lists, saturation throughputs, and figure-driver
outputs.  Equality here is exact, not approximate — per-task determinism
means the worker count can never change a result.
"""

import pytest

from repro.harness import experiments as exp
from repro.metrics.sweep import injection_sweep, saturation_throughput
from repro.sim.config import SimulationConfig


@pytest.fixture
def config():
    return SimulationConfig(
        width=4,
        num_vcs=4,
        routing="footprint",
        warmup_cycles=50,
        measure_cycles=100,
        drain_cycles=300,
        seed=2,
    )


class TestSweepDeterminism:
    def test_injection_sweep_jobs4_equals_jobs1(self, config):
        rates = [0.05, 0.2, 0.4]
        serial = injection_sweep(config, rates, jobs=1)
        pooled = injection_sweep(config, rates, jobs=4)
        assert serial == pooled

    def test_saturation_throughput_jobs4_equals_jobs1(self, config):
        kwargs = dict(start=0.1, stop=0.6, coarse_step=0.1, refine_steps=2)
        serial = saturation_throughput(config, jobs=1, **kwargs)
        pooled = saturation_throughput(config, jobs=4, **kwargs)
        assert serial == pooled


class TestDriverDeterminism:
    def test_curves_jobs4_equals_jobs1(self):
        serial = exp.latency_throughput_curves(
            exp.SMOKE, ("dor", "footprint"), "uniform", jobs=1
        )
        pooled = exp.latency_throughput_curves(
            exp.SMOKE, ("dor", "footprint"), "uniform", jobs=4
        )
        assert [c.label for c in serial] == [c.label for c in pooled]
        assert [c.points for c in serial] == [c.points for c in pooled]

    def test_fig9_jobs4_equals_jobs1(self):
        assert exp.fig9_hotspot(exp.SMOKE, jobs=1) == exp.fig9_hotspot(
            exp.SMOKE, jobs=4
        )
