"""End-to-end simulation on the 2D torus.

The acceptance bar for the topology layer: loaded torus runs drain
(the dateline VC classes really do break the wrap-link cycle), every
scalar engine mode produces bit-identical results, the vector core
refuses the topology with a field-named fallback reason, and the
mesh-only algorithms are rejected loudly at config time.
"""

import pytest

from repro.cli import main as cli_main
from repro.exceptions import ConfigurationError
from repro.faults import FaultEvent, FaultSchedule, random_link_faults
from repro.sim.config import SimulationConfig
from repro.sim.engine import Simulator
from repro.topology.ports import Direction


def _signature(result):
    return (
        result.cycles_run,
        result.accepted_flits,
        result.offered_flits,
        result.measured_created,
        result.measured_ejected,
        tuple(result.latency._samples),
    )


def _torus_config(routing, **overrides):
    base = dict(
        width=4,
        topology="torus",
        num_vcs=4,
        routing=routing,
        traffic="uniform",
        injection_rate=0.15,
        warmup_cycles=60,
        measure_cycles=120,
        drain_cycles=600,
        seed=7,
    )
    base.update(overrides)
    return SimulationConfig(**base)


class TestCrossEngineIdentity:
    @pytest.mark.parametrize(
        "routing", ["dor", "duato", "dbar", "dbar-fine", "footprint"]
    )
    def test_scalar_modes_bit_identical(self, routing):
        signatures = {
            mode: _signature(
                Simulator(_torus_config(routing), engine_mode=mode).run()
            )
            for mode in ("legacy", "fast", "skip")
        }
        assert signatures["legacy"] == signatures["fast"] == signatures["skip"]

    def test_multiflit_transpose_identical(self):
        config = _torus_config(
            "footprint", traffic="transpose", packet_size=3, injection_rate=0.2
        )
        signatures = [
            _signature(Simulator(config, engine_mode=mode).run())
            for mode in ("legacy", "fast", "skip")
        ]
        assert signatures[0] == signatures[1] == signatures[2]

    def test_rectangular_mesh_modes_identical(self):
        # Regression for the square-mesh hardcoding: a 4x8 mesh must run
        # and stay bit-identical across engines like the square one.
        config = SimulationConfig(
            width=4,
            height=8,
            num_vcs=4,
            routing="footprint",
            traffic="uniform",
            injection_rate=0.15,
            warmup_cycles=60,
            measure_cycles=120,
            drain_cycles=500,
            seed=5,
        )
        signatures = [
            _signature(Simulator(config, engine_mode=mode).run())
            for mode in ("legacy", "fast", "skip")
        ]
        assert signatures[0] == signatures[1] == signatures[2]

    def test_rectangular_torus_runs(self):
        result = Simulator(_torus_config("dor", height=6)).run()
        assert result.drained
        assert result.accepted_flits > 0


class TestSaturationDrain:
    @pytest.mark.parametrize("routing", ["dor", "duato", "footprint"])
    def test_saturated_torus_drains(self, routing):
        # Saturation load on an 8x8 torus: with wrap links in play, a
        # deadlock would show up as an undrained network here.
        config = _torus_config(
            routing,
            width=8,
            num_vcs=4,
            injection_rate=0.55,
            warmup_cycles=80,
            measure_cycles=150,
            # Saturated backlogs take ~10k cycles to clear (duato's
            # escape-first draining is the slowest); a deadlock would
            # still be pinned because the run is deterministic and
            # ``drained`` checks the network is actually empty.
            drain_cycles=15000,
        )
        result = Simulator(config).run()
        assert result.drained
        assert result.measured_ejected > 0


class TestTorusFaults:
    """Wrap-link faults must simulate — regression for the FaultManager
    re-validating its schedule against a hardcoded mesh."""

    def test_wrap_link_fault_modes_identical(self):
        # Node 3 is (3, 0): its EAST link is the x-ring wrap channel,
        # which only exists on the torus.
        schedule = FaultSchedule(
            (FaultEvent(50, "link", 3, Direction.EAST, duration=70),)
        )
        config = _torus_config("dor", faults=schedule)
        signatures = {
            mode: _signature(Simulator(config, engine_mode=mode).run())
            for mode in ("legacy", "fast", "skip")
        }
        assert signatures["legacy"] == signatures["fast"] == signatures["skip"]

    def test_random_link_faults_on_torus_drain(self):
        # Topology-aware random link faults draw from all torus channels
        # (wrap links included) — the differential sweep's fault path.
        schedule = random_link_faults(
            4, k=4, cycle=30, duration=60, seed=9, topology="torus"
        )
        result = Simulator(_torus_config("footprint", faults=schedule)).run()
        assert result.drained
        assert result.accepted_flits > 0


class TestVectorFallback:
    def test_vector_falls_back_with_field_named_reason(self):
        sim = Simulator(_torus_config("dor"), engine_mode="vector")
        assert sim.engine_mode != "vector"
        assert sim.vector_fallback is not None
        assert "config.topology" in sim.vector_fallback
        assert sim.run().drained

    def test_auto_mode_runs_torus(self):
        result = Simulator(_torus_config("dor"), engine_mode="auto").run()
        assert result.drained


class TestTopologyGating:
    @pytest.mark.parametrize(
        "routing", ["oddeven", "oddeven+xordet", "dor+xordet"]
    )
    def test_mesh_only_algorithms_rejected(self, routing):
        with pytest.raises(ConfigurationError, match="mesh-only"):
            _torus_config(routing)

    def test_torus_needs_dateline_vcs(self):
        with pytest.raises(ConfigurationError):
            _torus_config("dor", num_vcs=1)

    def test_escape_algorithms_need_three_vcs_on_torus(self):
        with pytest.raises(ConfigurationError):
            _torus_config("footprint", num_vcs=2)
        _torus_config("footprint", num_vcs=3)  # validates fine


class TestCli:
    def test_run_topology_flag(self, capsys):
        code = cli_main(
            [
                "run",
                "--width",
                "4",
                "--topology",
                "torus",
                "--vcs",
                "4",
                "--routing",
                "footprint",
                "--injection-rate",
                "0.1",
                "--warmup",
                "40",
                "--measure",
                "80",
                "--drain",
                "400",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "torus" in out

    def test_mesh_only_routing_on_torus_exits_cleanly(self, capsys):
        code = cli_main(
            [
                "run",
                "--width",
                "4",
                "--topology",
                "torus",
                "--routing",
                "oddeven",
            ]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert captured.err.startswith("error:")
        assert "mesh-only" in captured.err
        assert "Traceback" not in captured.err

    def test_incompatible_traffic_exits_cleanly(self, capsys):
        # Fail-fast traffic validation: a transpose pattern on a
        # non-square network dies at construction with one stderr line.
        code = cli_main(
            [
                "run",
                "--width",
                "4",
                "--height",
                "2",
                "--traffic",
                "transpose",
                "--routing",
                "dor",
            ]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert captured.err.startswith("error:")
        assert "square" in captured.err
        assert "Traceback" not in captured.err

    def test_list_mentions_topologies(self, capsys):
        code = cli_main(["list"])
        out = capsys.readouterr().out
        assert code == 0
        assert "torus" in out
