"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.sim.config import SimulationConfig
from repro.topology.mesh import Mesh2D


@pytest.fixture
def mesh4() -> Mesh2D:
    return Mesh2D(4)


@pytest.fixture
def mesh8() -> Mesh2D:
    return Mesh2D(8)


@pytest.fixture
def rng() -> random.Random:
    return random.Random(1234)


@pytest.fixture
def small_config() -> SimulationConfig:
    """A fast 4x4 configuration for end-to-end tests."""
    return SimulationConfig(
        width=4,
        num_vcs=4,
        routing="footprint",
        traffic="uniform",
        injection_rate=0.1,
        warmup_cycles=50,
        measure_cycles=100,
        drain_cycles=1000,
        seed=7,
    )


class FakeOutputView:
    """A scriptable OutputPortView for routing-algorithm unit tests."""

    def __init__(
        self,
        num_vcs: int = 4,
        escape_vc: int | None = 0,
        idle: list[int] | None = None,
        established: list[int] | None = None,
        owners: dict[int, int] | None = None,
        fresh: set[int] | None = None,
        credits: int = 0,
    ) -> None:
        self.num_vcs = num_vcs
        self.escape_vc = escape_vc
        self._adaptive = [v for v in range(num_vcs) if v != escape_vc]
        self._idle = list(idle) if idle is not None else list(self._adaptive)
        self._established = (
            list(established) if established is not None else list(self._idle)
        )
        self._owners = dict(owners or {})
        self._fresh = set(fresh or set())
        self._credits = credits

    def adaptive_vcs(self):
        return self._adaptive

    def idle_vcs(self):
        return self._idle

    def established_idle_vcs(self):
        return self._established

    def footprint_vcs(self, dst):
        return [
            v
            for v, owner in sorted(self._owners.items())
            if owner == dst and v not in self._idle and v != self.escape_vc
        ]

    def fresh_footprint_vcs(self, dst):
        return [
            v
            for v in sorted(self._fresh)
            if self._owners.get(v) == dst
            and v in self._idle
            and v != self.escape_vc
        ]

    def fresh_other_vcs(self, dst):
        return [
            v
            for v in sorted(self._fresh)
            if self._owners.get(v) != dst
            and v in self._idle
            and v != self.escape_vc
        ]

    def busy_vcs(self):
        return [
            v for v in self._adaptive if v not in self._idle
        ]

    def grantable(self, vc):
        return vc in self._idle or (
            vc == self.escape_vc and self._escape_grantable()
        )

    def _escape_grantable(self):
        return getattr(self, "escape_free", True)

    def free_credit_total(self):
        return self._credits


@pytest.fixture
def fake_view_factory():
    return FakeOutputView


def make_context(
    mesh: Mesh2D,
    current: int,
    destination: int,
    outputs,
    source: int | None = None,
    num_vcs: int = 4,
    congestion_threshold: int = 2,
    footprint_vc_limit: int | None = None,
    seed: int = 99,
):
    """Build a RouteContext for routing-algorithm unit tests."""
    from repro.routing.base import RouteContext
    from repro.topology.ports import Direction

    return RouteContext(
        mesh=mesh,
        current=current,
        destination=destination,
        source=source if source is not None else current,
        input_direction=Direction.LOCAL,
        outputs=outputs,
        num_vcs=num_vcs,
        congestion_threshold=congestion_threshold,
        footprint_vc_limit=footprint_vc_limit,
        rng=random.Random(seed),
    )

