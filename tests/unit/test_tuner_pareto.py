"""Unit tests for Pareto dominance, frontiers, and ranking."""

from repro.tuner.objectives import CandidateEval
from repro.tuner.pareto import (
    dominates,
    pareto_frontier,
    pareto_indices,
    rank_evals,
)
from repro.tuner.space import Candidate


def _eval(name, latency, throughput, cost):
    return CandidateEval(
        candidate=Candidate((("name", name),)),
        rung="full",
        avg_latency=latency,
        saturation_throughput=throughput,
        cost_bits=cost,
    )


def brute_force_indices(vectors):
    return [
        i
        for i, v in enumerate(vectors)
        if not any(
            dominates(w, v) for j, w in enumerate(vectors) if j != i
        )
    ]


def test_dominates_basics():
    assert dominates((1, 1), (2, 2))
    assert dominates((1, 2), (1, 3))
    assert not dominates((1, 1), (1, 1))  # equal: no strict improvement
    assert not dominates((1, 3), (2, 2))  # trade-off
    assert not dominates((2, 2), (1, 1))


def test_frontier_matches_brute_force_on_fixed_cases():
    cases = [
        [(1.0, 2.0), (2.0, 1.0), (3.0, 3.0)],
        [(1.0, 1.0), (1.0, 1.0), (2.0, 0.5)],  # duplicates both survive
        [(0.0,), (1.0,), (2.0,)],
        [(1.0, 2.0, 3.0), (3.0, 2.0, 1.0), (2.0, 2.0, 2.0)],
        [],
    ]
    for vectors in cases:
        assert pareto_indices(vectors) == brute_force_indices(vectors)


def test_frontier_keeps_input_order():
    evals = [
        _eval("b", 2.0, 0.5, 100.0),
        _eval("a", 1.0, 0.5, 200.0),
        _eval("worse", 3.0, 0.4, 300.0),
    ]
    frontier = pareto_frontier(evals)
    assert [e.candidate.key() for e in frontier] == ["name=b", "name=a"]


def test_maximized_objective_negated():
    # Same latency/cost, higher throughput must dominate.
    better = _eval("hi", 1.0, 0.9, 100.0)
    worse = _eval("lo", 1.0, 0.5, 100.0)
    assert pareto_frontier([worse, better]) == [better]


def test_rank_is_total_and_order_independent():
    evals = [
        _eval("a", 1.0, 0.5, 100.0),
        _eval("b", 2.0, 0.6, 100.0),
        _eval("c", 2.0, 0.5, 100.0),  # dominated by b
        _eval("d", 1.0, 0.5, 100.0),  # ties a on values, key breaks it
    ]
    ranked = [e.candidate.key() for e in rank_evals(evals)]
    reversed_rank = [
        e.candidate.key() for e in rank_evals(list(reversed(evals)))
    ]
    assert ranked == reversed_rank
    assert set(ranked[:3]) == {"name=a", "name=d", "name=b"}
    assert ranked[-1] == "name=c"  # dominated layer ranks last
    assert ranked.index("name=a") < ranked.index("name=d")  # key tiebreak
