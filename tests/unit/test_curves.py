"""Unit tests for latency-throughput curves and table rendering."""

from repro.metrics.curves import (
    LatencyThroughputCurve,
    render_curves,
    render_table,
)
from repro.metrics.sweep import SweepPoint


def point(rate, latency, drained=True):
    return SweepPoint(
        injection_rate=rate,
        avg_latency=latency,
        accepted_rate=rate,
        drained=drained,
    )


def curve(label, points):
    c = LatencyThroughputCurve(label=label)
    for p in points:
        c.add(p)
    return c


class TestCurve:
    def test_stable_points(self):
        c = curve("x", [point(0.1, 10), point(0.3, 25), point(0.5, 500)])
        stable = c.stable_points(zero_load=10)
        assert [p.injection_rate for p in stable] == [0.1, 0.3]

    def test_undrained_is_saturated(self):
        c = curve("x", [point(0.1, 10), point(0.3, 12, drained=False)])
        assert [p.injection_rate for p in c.stable_points(10)] == [0.1]

    def test_saturation_rate(self):
        c = curve("x", [point(0.1, 10), point(0.3, 20), point(0.5, 900)])
        assert c.saturation_rate(zero_load=10) == 0.3

    def test_saturation_rate_all_saturated(self):
        c = curve("x", [point(0.1, 999)])
        assert c.saturation_rate(zero_load=10) == 0.0


class TestRendering:
    def test_curves_table_contains_all_rates_and_labels(self):
        a = curve("alpha", [point(0.1, 10), point(0.2, 20)])
        b = curve("beta", [point(0.1, 11)])
        text = render_curves("demo", [a, b])
        assert "demo" in text
        assert "alpha" in text and "beta" in text
        assert "0.100" in text and "0.200" in text
        assert "20.0" in text

    def test_missing_point_rendered_as_dash(self):
        a = curve("alpha", [point(0.1, 10)])
        b = curve("beta", [point(0.2, 20)])
        text = render_curves("demo", [a, b])
        assert "-" in text

    def test_saturated_rendered_as_sat(self):
        a = curve("alpha", [point(0.4, 50, drained=False)])
        text = render_curves("demo", [a])
        assert "sat" in text

    def test_last_ulp_rate_shares_row(self):
        # Regression: bisection-refined rates differing from grid rates
        # only in the last ulp used to render as separate all-dash rows.
        grid_rate = 0.3
        refined_rate = 0.1 + 0.2  # 0.30000000000000004
        assert refined_rate != grid_rate
        a = curve("alpha", [point(grid_rate, 10)])
        b = curve("beta", [point(refined_rate, 12)])
        text = render_curves("demo", [a, b])
        rows = [ln for ln in text.splitlines() if ln.startswith(" ")]
        data_rows = [r for r in rows if "0.300" in r]
        assert len(data_rows) == 1
        assert "10.0" in data_rows[0] and "12.0" in data_rows[0]
        assert "-" not in data_rows[0]

    def test_render_table_alignment(self):
        text = render_table(
            "t", ["col1", "column2"], [["a", "b"], ["cc", "dd"]]
        )
        lines = text.splitlines()
        assert lines[0] == "t"
        assert len({len(line) for line in lines[1:]}) == 1
