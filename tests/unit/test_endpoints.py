"""Unit tests for injection sources and ejection sinks."""

import pytest

from repro.exceptions import FlowControlError
from repro.router.flit import Packet
from repro.router.router import Router
from repro.routing.registry import create_routing
from repro.sim.config import SimulationConfig
from repro.sim.endpoints import Sink, Source
from repro.sim.rng import RngStreams
from repro.topology.mesh import Mesh2D
from repro.topology.ports import Direction


def make_router(node=5, num_vcs=2):
    config = SimulationConfig(
        width=4, num_vcs=num_vcs, routing="dor", traffic="uniform"
    )
    mesh = Mesh2D(4)
    return Router(
        node, mesh, config, create_routing("dor"), RngStreams(1).stream("r")
    )


def packet(src=5, dst=6, size=1):
    return Packet(src=src, dst=dst, size=size, creation_time=0)


class TestSource:
    def test_injects_one_flit_per_cycle(self):
        router = make_router()
        source = Source(5, router, num_vcs=2)
        source.enqueue(packet(size=3))
        injected = sum(1 for c in range(3) if source.inject(c))
        assert injected == 3
        assert source.backlog == 0

    def test_injection_time_recorded(self):
        router = make_router()
        source = Source(5, router, num_vcs=2)
        p = packet(size=1)
        source.enqueue(p)
        source.inject(cycle=17)
        assert p.injection_time == 17

    def test_nothing_to_inject(self):
        source = Source(5, make_router(), num_vcs=2)
        assert not source.inject(0)

    def test_packets_round_robin_across_vcs(self):
        router = make_router()
        source = Source(5, router, num_vcs=2)
        source.enqueue(packet())
        source.enqueue(packet())
        assert source.inject(0)
        assert source.inject(1)
        occupied = [
            v
            for v, ivc in enumerate(router.input_vcs[Direction.LOCAL])
            if ivc.fifo
        ]
        assert occupied == [0, 1]

    def test_stalls_when_all_local_vcs_busy(self):
        router = make_router(num_vcs=2)
        source = Source(5, router, num_vcs=2)
        for _ in range(3):
            source.enqueue(packet())
        assert source.inject(0)
        assert source.inject(1)
        # Both local VCs now hold an unrouted packet; the third waits.
        assert not source.inject(2)
        assert source.backlog == 1

    def test_offered_flits_accounting(self):
        source = Source(5, make_router(), num_vcs=2)
        source.enqueue(packet(size=3))
        source.enqueue(packet(size=2))
        assert source.offered_flits == 5


class TestSink:
    def make_sink(self, rate=1.0, num_vcs=2, depth=4):
        ejected = []
        sink = Sink(
            node=6,
            num_vcs=num_vcs,
            buffer_depth=depth,
            ejection_rate=rate,
            on_packet=lambda p, c: ejected.append((p, c)),
        )
        return sink, ejected

    def test_drains_one_flit_per_cycle(self):
        sink, ejected = self.make_sink()
        for i, flit in enumerate(packet(dst=6, size=3).flits()):
            sink.receive(0, flit)
        consumed = []
        for cycle in range(3):
            consumed += sink.drain(cycle)
        assert len(consumed) == 3
        assert len(ejected) == 1
        assert ejected[0][1] == 2  # tail consumed at cycle 2

    def test_fractional_ejection_rate(self):
        sink, _ = self.make_sink(rate=0.5)
        for flit in packet(dst=6, size=2).flits():
            sink.receive(0, flit)
        consumed = sum(len(sink.drain(c)) for c in range(4))
        assert consumed == 2  # half bandwidth: 2 flits in 4 cycles

    def test_round_robin_across_vcs(self):
        sink, _ = self.make_sink()
        sink.receive(0, packet(dst=6).flits()[0])
        sink.receive(1, packet(dst=6).flits()[0])
        assert sink.drain(0) == [0]
        assert sink.drain(1) == [1]

    def test_misrouted_flit_rejected(self):
        sink, _ = self.make_sink()
        with pytest.raises(FlowControlError):
            sink.receive(0, packet(dst=9).flits()[0])

    def test_overflow_rejected(self):
        sink, _ = self.make_sink(depth=1)
        sink.receive(0, packet(dst=6).flits()[0])
        with pytest.raises(FlowControlError):
            sink.receive(0, packet(dst=6).flits()[0])

    def test_ejection_time_set_on_tail(self):
        sink, ejected = self.make_sink()
        p = packet(dst=6, size=1)
        sink.receive(0, p.flits()[0])
        sink.drain(9)
        assert p.ejection_time == 9
        assert ejected[0][0] is p
