"""Unit tests for the experiment-service job model."""

import pytest

from repro.service import ServiceError
from repro.service.jobs import (
    KIND_CACHED,
    KIND_SIMULATED,
    TASK_CANCELLED,
    TASK_DONE,
    TASK_PENDING,
    Job,
    JobSpec,
    JobState,
)
from repro.harness.parallel import SimTask
from repro.sim.config import SimulationConfig
from repro.sim.engine import Simulator
from repro.telemetry.config import TelemetryConfig


def _config(seed=1, **overrides):
    base = dict(
        width=4,
        num_vcs=4,
        routing="footprint",
        injection_rate=0.05,
        warmup_cycles=10,
        measure_cycles=30,
        drain_cycles=120,
        seed=seed,
    )
    base.update(overrides)
    return SimulationConfig(**base)


def _spec(name="grid", stream="s", seeds=(1, 2), weight=1.0, rate=None):
    tasks = tuple(SimTask(_config(seed=seed), rate=rate) for seed in seeds)
    return JobSpec(name=name, tasks=tasks, stream=stream, weight=weight)


@pytest.fixture(scope="module")
def tiny_result():
    return Simulator(_config()).run()


class TestJobSpec:
    def test_rejects_empty_name(self):
        with pytest.raises(ServiceError):
            JobSpec(name="", tasks=(SimTask(_config()),))

    def test_rejects_empty_stream(self):
        with pytest.raises(ServiceError):
            JobSpec(name="g", tasks=(SimTask(_config()),), stream="")

    def test_rejects_empty_grid(self):
        with pytest.raises(ServiceError):
            JobSpec(name="g", tasks=())

    def test_rejects_nonpositive_weight(self):
        for weight in (0.0, -1.0):
            with pytest.raises(ServiceError):
                JobSpec(name="g", tasks=(SimTask(_config()),), weight=weight)

    def test_rejects_active_telemetry(self):
        config = _config(telemetry=TelemetryConfig(sample_every=10))
        with pytest.raises(ServiceError, match="telemetry"):
            JobSpec(name="g", tasks=(SimTask(config),))

    def test_inactive_telemetry_accepted(self):
        config = _config(telemetry=TelemetryConfig(sample_every=0))
        assert not config.telemetry.active
        JobSpec(name="g", tasks=(SimTask(config),))

    def test_hash_ignores_task_order_name_and_stream(self):
        a = _spec(name="a", stream="x", seeds=(1, 2))
        b = _spec(name="b", stream="y", seeds=(2, 1))
        assert a.spec_hash() == b.spec_hash()

    def test_hash_distinguishes_grids(self):
        assert _spec(seeds=(1, 2)).spec_hash() != _spec(seeds=(1, 3)).spec_hash()

    def test_hash_uses_resolved_rates(self):
        # A task's rate override participates via the resolved config.
        base = _spec(seeds=(1,), rate=0.07)
        resolved = JobSpec(
            name="g", tasks=(SimTask(_config(seed=1, injection_rate=0.07)),)
        )
        assert base.spec_hash() == resolved.spec_hash()

    def test_round_trip(self):
        spec = _spec(name="rt", stream="z", seeds=(3, 4), weight=2.5, rate=0.08)
        clone = JobSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.spec_hash() == spec.spec_hash()

    def test_from_dict_malformed(self):
        with pytest.raises(ServiceError, match="malformed"):
            JobSpec.from_dict({"name": "g"})
        with pytest.raises(ServiceError, match="malformed"):
            JobSpec.from_dict({"name": "g", "tasks": [{}]})


class TestJobLifecycle:
    def test_initial_state(self):
        job = Job(id="j1", spec=_spec())
        assert job.state is JobState.QUEUED
        assert not job.state.terminal
        assert job.task_states == [TASK_PENDING, TASK_PENDING]
        assert job.next_pending() == 0

    def test_completes_when_all_tasks_land(self, tiny_result):
        job = Job(id="j1", spec=_spec())
        job.mark_running(0)
        assert job.state is JobState.RUNNING
        job.finish_task(0, tiny_result, KIND_SIMULATED)
        assert job.state is JobState.RUNNING
        job.finish_task(1, tiny_result, KIND_CACHED)
        assert job.state is JobState.DONE
        assert job.state.terminal
        assert job.finished_at is not None
        counts = job.counts()
        assert counts["done"] == 2
        assert counts[KIND_SIMULATED] == 1
        assert counts[KIND_CACHED] == 1

    def test_any_failed_task_fails_the_job(self, tiny_result):
        job = Job(id="j1", spec=_spec())
        job.fail_task(0, "boom")
        job.finish_task(1, tiny_result, KIND_SIMULATED)
        assert job.state is JobState.FAILED
        assert job.error == "boom"

    def test_cancel_drops_undone_keeps_done(self, tiny_result):
        job = Job(id="j1", spec=_spec(seeds=(1, 2, 3)))
        job.finish_task(0, tiny_result, KIND_SIMULATED)
        job.mark_running(1)
        assert job.cancel() is True
        assert job.state is JobState.CANCELLED
        assert job.task_states[0] == TASK_DONE
        assert job.task_states[1] == TASK_CANCELLED
        assert job.task_states[2] == TASK_CANCELLED
        # Cancelling twice is a no-op.
        assert job.cancel() is False

    def test_late_result_on_terminal_job_is_dropped(self, tiny_result):
        job = Job(id="j1", spec=_spec())
        job.cancel()
        job.finish_task(0, tiny_result, KIND_SIMULATED)
        assert job.state is JobState.CANCELLED
        assert job.results[0] is None

    def test_on_done_fires_exactly_once(self, tiny_result):
        seen = []
        job = Job(id="j1", spec=_spec(seeds=(1,)))
        job.on_done = seen.append
        job.finish_task(0, tiny_result, KIND_SIMULATED)
        assert seen == [job]
        assert job.on_done is None

    def test_events_are_bounded(self):
        job = Job(id="j1", spec=_spec())
        for i in range(Job.MAX_EVENTS * 3):
            job.record(f"event {i}")
        assert len(job.events) == Job.MAX_EVENTS
        assert job.events[-1][1] == f"event {Job.MAX_EVENTS * 3 - 1}"

    def test_summary_and_result_points(self, tiny_result):
        job = Job(id="j1", spec=_spec(seeds=(1, 2)))
        job.finish_task(0, tiny_result, KIND_SIMULATED)
        summary = job.summary()
        assert summary["job_id"] == "j1"
        assert summary["state"] == "running"
        assert summary["hash"] == job.spec.spec_hash()
        assert summary["counts"]["done"] == 1
        points = job.result_points()
        assert len(points) == 2
        assert points[0]["kind"] == KIND_SIMULATED
        assert points[0]["avg_latency"] is not None
        assert points[0]["drained"] is True
        assert points[1]["state"] == TASK_PENDING
        assert "avg_latency" not in points[1]
