"""Unit tests for the harness reporting renderers."""

from repro.core.congestion import CongestionTree
from repro.core.cost import CostModel
from repro.harness.experiments import Fig2Result, Fig8Result, Fig10Entry
from repro.harness.reporting import (
    report_cost,
    report_fig2,
    report_fig8,
    report_fig9,
    report_fig10,
    report_table1,
)
from repro.topology.ports import Direction


def test_report_fig2():
    tree = CongestionTree(destination=13)
    tree.branches[(12, Direction.EAST)] = {0, 1}
    result = Fig2Result(
        routing="dor", network_tree=CongestionTree(10), endpoint_tree=tree
    )
    text = report_fig2([result])
    assert "dor" in text
    assert "endpoint(n13)" in text
    assert "2" in text


def test_report_fig8():
    entry = Fig8Result(
        pattern="shuffle",
        width=8,
        dbar_saturation=0.40,
        footprint_saturation=0.50,
    )
    text = report_fig8([entry])
    assert "shuffle" in text
    assert "8x8" in text
    assert "0.800" in text  # 0.40 / 0.50


def test_fig8_normalization_handles_zero():
    import math

    entry = Fig8Result("u", 4, dbar_saturation=0.3, footprint_saturation=0.0)
    assert math.isnan(entry.dbar_normalized)


def test_report_fig9_marks_undrained():
    results = {
        "dbar": [(0.3, 20.0, True), (0.6, 80.0, False)],
        "footprint": [(0.3, 18.0, True), (0.6, 40.0, True)],
    }
    text = report_fig9(results)
    assert "80.0*" in text
    assert "40.0" in text
    assert "0.30" in text


def test_report_fig10():
    entry = Fig10Entry(
        workloads=("fluidanimate", "bodytrack"),
        dbar_latency=40.0,
        footprint_latency=30.0,
        dbar_purity=0.10,
        footprint_purity=0.30,
        dbar_hol_degree=900.0,
        footprint_hol_degree=700.0,
    )
    assert entry.latency_improvement == 0.25
    text = report_fig10([entry])
    assert "fluidanimate+bodytrack" in text
    assert "+25.0%" in text
    assert "10.0%" in text and "30.0%" in text


def test_fig10_zero_latency_guard():
    entry = Fig10Entry(
        workloads=("a", "b"),
        dbar_latency=0.0,
        footprint_latency=0.0,
        dbar_purity=0.0,
        footprint_purity=0.0,
        dbar_hol_degree=0.0,
        footprint_hol_degree=0.0,
    )
    assert entry.latency_improvement == 0.0


def test_report_table1():
    text = report_table1({"dor": {"P_adapt": 0.9, "VC_adapt": 0.0}})
    assert "dor" in text
    assert "0.900" in text


def test_report_cost():
    text = report_cost([CostModel(64, 16)])
    assert "132" in text
    assert "96" in text
