"""Unit tests for the XORDET static VC-mapping overlay."""

import pytest

from repro.routing.dbar import DbarRouting
from repro.routing.dor import DorRouting
from repro.routing.oddeven import OddEvenRouting
from repro.routing.requests import Priority
from repro.routing.xordet import XordetOverlay, xordet_vc
from repro.topology.mesh import Mesh2D
from repro.topology.ports import Direction

from tests.conftest import FakeOutputView, make_context


@pytest.fixture
def mesh():
    return Mesh2D(8)


class TestMapping:
    def test_pure_function_of_destination(self, mesh):
        for dst in range(mesh.num_nodes):
            first = xordet_vc(mesh, dst, 8)
            assert all(xordet_vc(mesh, dst, 8) == first for _ in range(3))

    def test_range(self, mesh):
        for dst in range(mesh.num_nodes):
            for n in (1, 2, 4, 9):
                assert 0 <= xordet_vc(mesh, dst, n) < n

    def test_spreads_destinations(self, mesh):
        """The mapping must not collapse all destinations onto few VCs."""
        n = 8
        buckets = [0] * n
        for dst in range(mesh.num_nodes):
            buckets[xordet_vc(mesh, dst, n)] += 1
        used = sum(1 for b in buckets if b)
        assert used >= n // 2
        assert max(buckets) <= 4 * (mesh.num_nodes // n)


class TestOverlay:
    def test_name_and_flags_follow_base(self):
        overlay = XordetOverlay(DbarRouting())
        assert overlay.name == "dbar+xordet"
        assert overlay.uses_escape
        assert overlay.atomic_vc_reallocation
        plain = XordetOverlay(DorRouting())
        assert plain.name == "dor+xordet"
        assert not plain.uses_escape

    def test_single_vc_requested(self, mesh):
        overlay = XordetOverlay(DorRouting())
        outputs = {
            d: FakeOutputView(escape_vc=None)
            for d in mesh.router_ports(0)
        }
        ctx = make_context(mesh, 0, 9, outputs)
        direction = overlay.select_output(ctx)
        reqs = overlay.vc_requests_at(ctx, direction)
        assert len(reqs) == 1
        assert reqs[0].vc == xordet_vc(mesh, 9, 4)

    def test_waits_when_mapped_vc_busy(self, mesh):
        overlay = XordetOverlay(DorRouting())
        vc = xordet_vc(mesh, 9, 4)
        idle = [v for v in range(4) if v != vc]
        outputs = {
            d: FakeOutputView(escape_vc=None, idle=idle)
            for d in mesh.router_ports(0)
        }
        ctx = make_context(mesh, 0, 9, outputs)
        assert overlay.vc_requests_at(ctx, Direction.EAST) == []

    def test_adaptive_base_keeps_escape(self, mesh):
        overlay = XordetOverlay(DbarRouting())
        outputs = {d: FakeOutputView() for d in mesh.router_ports(0)}
        ctx = make_context(mesh, 0, 9, outputs)
        direction = overlay.select_output(ctx)
        reqs = overlay.vc_requests_at(ctx, direction)
        priorities = {r.priority for r in reqs}
        assert Priority.LOWEST in priorities  # escape survives the overlay
        non_escape = [r for r in reqs if r.priority is not Priority.LOWEST]
        assert len(non_escape) == 1

    def test_port_selection_delegates(self, mesh):
        overlay = XordetOverlay(OddEvenRouting())
        assert overlay.allowed_directions(
            mesh, 0, 9, 0
        ) == OddEvenRouting().allowed_directions(mesh, 0, 9, 0)

    def test_eject_at_destination(self, mesh):
        overlay = XordetOverlay(DorRouting())
        outputs = {
            d: FakeOutputView(escape_vc=None)
            for d in mesh.router_ports(9)
        }
        ctx = make_context(mesh, 9, 9, outputs)
        assert overlay.select_output(ctx) is Direction.LOCAL
        assert overlay.vc_requests_at(ctx, Direction.LOCAL)
