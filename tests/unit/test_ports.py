"""Unit tests for port directions."""

import pytest

from repro.topology.ports import COMPASS, NUM_PORTS, OPPOSITE, Direction


def test_five_ports():
    assert NUM_PORTS == 5
    assert len(Direction) == 5


def test_compass_excludes_local():
    assert Direction.LOCAL not in COMPASS
    assert len(COMPASS) == 4


def test_opposites_are_involutions():
    for d in Direction:
        assert OPPOSITE[OPPOSITE[d]] is d


def test_opposite_pairs():
    assert OPPOSITE[Direction.EAST] is Direction.WEST
    assert OPPOSITE[Direction.NORTH] is Direction.SOUTH
    assert OPPOSITE[Direction.LOCAL] is Direction.LOCAL


def test_dimensions():
    assert Direction.EAST.dimension == 0
    assert Direction.WEST.dimension == 0
    assert Direction.NORTH.dimension == 1
    assert Direction.SOUTH.dimension == 1


def test_local_has_no_dimension():
    with pytest.raises(ValueError):
        Direction.LOCAL.dimension


def test_is_local():
    assert Direction.LOCAL.is_local
    assert not Direction.EAST.is_local


def test_stable_integer_values():
    # These values are used as array indices; they must not change.
    assert [d.value for d in COMPASS] == [0, 1, 2, 3]
    assert Direction.LOCAL.value == 4
