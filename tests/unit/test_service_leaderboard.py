"""Unit tests for the persistent leaderboard store."""

import json

import pytest

from repro.service.leaderboard import (
    LEADERBOARD_FILE,
    LeaderboardStore,
    result_record,
    scenario_key,
)
from repro.sim.config import SimulationConfig
from repro.sim.engine import Simulator


def _config(routing="footprint", seed=1, **overrides):
    base = dict(
        width=4,
        num_vcs=4,
        routing=routing,
        injection_rate=0.05,
        warmup_cycles=10,
        measure_cycles=30,
        drain_cycles=120,
        seed=seed,
    )
    base.update(overrides)
    return SimulationConfig(**base)


@pytest.fixture(scope="module")
def results():
    return {
        routing: Simulator(_config(routing=routing)).run()
        for routing in ("footprint", "dor")
    }


class TestScenarioKey:
    def test_routing_is_not_part_of_the_scenario(self):
        assert scenario_key(_config(routing="footprint")) == scenario_key(
            _config(routing="dor")
        )

    def test_other_knobs_are(self):
        base = scenario_key(_config())
        assert scenario_key(_config(seed=2)) != base
        assert scenario_key(_config(injection_rate=0.06)) != base
        assert scenario_key(_config(width=8)) != base

    def test_hotspot_rates_included(self):
        a = _config(
            traffic="hotspot", hotspot_rate=0.4, background_rate=0.01
        )
        b = _config(
            traffic="hotspot", hotspot_rate=0.5, background_rate=0.01
        )
        assert scenario_key(a) != scenario_key(b)
        assert "hs=0.4" in scenario_key(a)


class TestIngest:
    def test_ingest_results_round_trip(self, tmp_path, results):
        store = LeaderboardStore(tmp_path)
        added = store.ingest_results(results.values(), source="test:one")
        assert added == 2
        records = store.records()
        assert len(records) == 2
        assert {r["routing"] for r in records} == {"footprint", "dor"}
        assert all(r["kind"] == "result" for r in records)
        assert store.sources() == {"test:one"}

    def test_ingest_is_idempotent_per_source(self, tmp_path, results):
        store = LeaderboardStore(tmp_path)
        assert store.ingest_results(results.values(), source="s") == 2
        assert store.ingest_results(results.values(), source="s") == 0
        assert len(store.records()) == 2
        # A distinct source appends its own history.
        assert store.ingest_results(results.values(), source="s2") == 2
        assert len(store.records()) == 4

    def test_corrupt_lines_are_skipped(self, tmp_path, results):
        store = LeaderboardStore(tmp_path)
        store.ingest_results(results.values(), source="s")
        with open(store.path, "a") as handle:
            handle.write("not json\n{\"kind\":\n\n")
        assert len(store.records()) == 2

    def test_missing_store_is_empty(self, tmp_path):
        store = LeaderboardStore(tmp_path / "never-created")
        assert store.records() == []
        assert store.sources() == set()
        assert "empty" in store.render()

    def test_ingest_bench_dir(self, tmp_path):
        bench_dir = tmp_path / "benchmarks"
        bench_dir.mkdir()
        for stamp, speedup in (("20260101T000000", 1.5), ("20260102T000000", 1.8)):
            payload = {
                "timestamp": stamp,
                "engine": {
                    "matrix": [
                        {
                            "width": 8,
                            "routing": "footprint",
                            "injection_rate": 0.05,
                            "skip_cycles_per_sec": 1000.0,
                            "vector_cycles_per_sec": 1000.0 * speedup,
                            "vector_speedup": speedup,
                        }
                    ]
                },
            }
            (bench_dir / f"BENCH_{stamp}.json").write_text(
                json.dumps(payload)
            )
        (bench_dir / "BENCH_garbage.json").write_text("{")

        store = LeaderboardStore(tmp_path / "state")
        assert store.ingest_bench_dir(bench_dir) == 2
        # Re-ingesting a directory that has not grown adds nothing.
        assert store.ingest_bench_dir(bench_dir) == 0

        trajectory = store.bench_trajectory()
        (point,) = trajectory
        rows = trajectory[point]
        assert [row["vector_speedup"] for row in rows] == [1.5, 1.8]
        assert rows[0]["delta"] is None
        assert rows[1]["delta"] == pytest.approx(0.3)


class TestStandings:
    def test_rank_and_delta(self, tmp_path, results):
        store = LeaderboardStore(tmp_path)
        store.ingest_results(results.values(), source="round1")
        # A second, artificially slower footprint record: the delta
        # column must flag the regression while best-latency keeps the
        # original standing.
        slow = result_record(results["footprint"], source="round2")
        slow["avg_latency"] = slow["avg_latency"] + 5.0
        store.append([slow])

        tables = store.standings()
        (scenario,) = tables
        rows = tables[scenario]
        assert [row["routing"] for row in rows] == sorted(
            (row["routing"] for row in rows),
            key=lambda routing: next(
                r["best_avg_latency"] for r in rows if r["routing"] == routing
            ),
        )
        footprint = next(r for r in rows if r["routing"] == "footprint")
        assert footprint["runs"] == 2
        assert footprint["latest_delta"] == pytest.approx(5.0)
        dor = next(r for r in rows if r["routing"] == "dor")
        assert dor["latest_delta"] is None

    def test_render_lists_scenarios_and_contenders(self, tmp_path, results):
        store = LeaderboardStore(tmp_path)
        store.ingest_results(results.values(), source="s")
        text = store.render()
        assert "scenario:" in text
        assert "footprint" in text
        assert "dor" in text
        assert store.path.name == LEADERBOARD_FILE
