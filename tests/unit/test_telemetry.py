"""Unit tests for the telemetry layer: config, result, trace export."""

import importlib.util
import json
import math
from pathlib import Path

import pytest

from repro.exceptions import ConfigurationError
from repro.telemetry import TelemetryConfig, TelemetryResult
from repro.telemetry.config import DEFAULT_SAMPLE_EVERY, DEFAULT_TRACE_LIMIT
from repro.telemetry.result import EVENT_KINDS
from repro.telemetry.trace import (
    chrome_trace_events,
    event_to_record,
    iter_packet_lifetimes,
    load_trace_records,
    summarize_trace,
    write_chrome_trace,
    write_jsonl,
    write_trace,
)
from repro.topology.ports import Direction

_CHECK_TRACE = (
    Path(__file__).resolve().parent.parent.parent
    / "benchmarks"
    / "check_trace.py"
)


class TestTelemetryConfig:
    def test_defaults(self):
        config = TelemetryConfig()
        assert config.sample_every == DEFAULT_SAMPLE_EVERY
        assert config.tree_nodes == ()
        assert config.trace_flits is False
        assert config.trace_limit == DEFAULT_TRACE_LIMIT
        assert config.progress_every == 0
        assert config.active  # sampling alone makes it active

    def test_active_flags(self):
        assert not TelemetryConfig(sample_every=0).active
        assert TelemetryConfig(sample_every=0, trace_flits=True).active
        assert TelemetryConfig(sample_every=0, progress_every=50).active
        assert TelemetryConfig(sample_every=0, tree_nodes=(3,)).active

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"sample_every": -1},
            {"trace_limit": -1},
            {"progress_every": -5},
            {"tree_nodes": (-2,)},
            {"tree_nodes": ("n3",)},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigurationError):
            TelemetryConfig(**kwargs)

    def test_validate_for_mesh_bounds(self):
        config = TelemetryConfig(tree_nodes=(15,))
        config.validate_for(4, 4)  # node 15 exists on a 4x4 mesh
        with pytest.raises(ConfigurationError):
            config.validate_for(4, 3)

    def test_tree_nodes_list_coerced_to_tuple(self):
        config = TelemetryConfig(tree_nodes=[5, 9])
        assert config.tree_nodes == (5, 9)

    def test_dict_round_trip(self):
        config = TelemetryConfig(
            sample_every=25,
            tree_nodes=(1, 10),
            trace_flits=True,
            trace_limit=500,
            progress_every=200,
        )
        data = config.to_dict()
        assert data["tree_nodes"] == [1, 10]  # JSON-friendly
        assert json.loads(json.dumps(data)) == data
        assert TelemetryConfig.from_dict(data) == config


def _sample_result() -> TelemetryResult:
    return TelemetryResult(
        sample_every=50,
        sample_cycles=[49, 99, 149],
        series={
            "flits_in_network": [4.0, 10.0, 7.0],
            "tree/5/branches": [1.0, 3.0, 2.0],
            "tree/5/vcs": [1.0, 5.0, 3.0],
            "tree/5/max_thickness": [1.0, 2.0, 2.0],
            "tree/12/branches": [0.0, 1.0, 1.0],
            "tree/12/vcs": [0.0, 1.0, 1.0],
            "tree/12/max_thickness": [0.0, 1.0, 1.0],
        },
        router_occupancy=[[1, 0], [2, 3], [1, 1]],
        counters={"vc_allocs": 8, "footprint_hits": 2, "events_recorded": 3},
        events=[
            ("gen", 0, 0, 1, 5, 2, "hotspot"),
            ("va", 2, 0, 1, int(Direction.EAST), 0, 1),
            ("ej", 9, 0, 5),
        ],
    )


class TestTelemetryResult:
    def test_num_samples_and_series_stats(self):
        tel = _sample_result()
        assert tel.num_samples == 3
        assert tel.series_max("flits_in_network") == 10.0
        assert tel.series_mean("flits_in_network") == pytest.approx(7.0)
        assert math.isnan(tel.series_max("nope"))
        assert math.isnan(tel.series_mean("nope"))

    def test_tree_series_extraction(self):
        tel = _sample_result()
        assert tel.tree_nodes() == [5, 12]
        tree = tel.tree_series(5)
        assert tree["branches"] == [1.0, 3.0, 2.0]
        assert tree["vcs"] == [1.0, 5.0, 3.0]
        assert tree["max_thickness"] == [1.0, 2.0, 2.0]
        assert tel.tree_series(99) == {}

    def test_footprint_hit_rate(self):
        tel = _sample_result()
        assert tel.footprint_hit_rate == pytest.approx(0.25)
        assert math.isnan(TelemetryResult(sample_every=0).footprint_hit_rate)

    def test_dict_round_trip(self):
        tel = _sample_result()
        data = tel.to_dict()
        assert json.loads(json.dumps(data)) == data
        back = TelemetryResult.from_dict(data)
        assert back.sample_cycles == tel.sample_cycles
        assert back.series == tel.series
        assert back.router_occupancy == tel.router_occupancy
        assert back.counters == tel.counters
        assert back.events == tel.events  # tuples restored

    def test_summary_mentions_key_figures(self):
        text = _sample_result().summary()
        assert "samples       : 3 (every 50 cycles)" in text
        assert "footprint hits: 2/8" in text
        assert "tree @ n5" in text
        assert "trace events  : 3" in text


class TestEventRecords:
    def test_direction_fields_become_names(self):
        record = event_to_record(
            ("va", 7, 3, 9, int(Direction.NORTH), 2, 0)
        )
        assert record == {
            "kind": "va",
            "cycle": 7,
            "packet": 3,
            "node": 9,
            "out_dir": "NORTH",
            "out_vc": 2,
            "footprint_hit": False,
        }

    def test_every_kind_round_trips_through_jsonl(self, tmp_path):
        events = [
            ("gen", 0, 1, 0, 5, 3, "uniform"),
            ("inject", 1, 1, 0, 0),
            ("va", 2, 1, 0, int(Direction.EAST), 1, 1),
            ("st", 3, 1, 0, 0, int(Direction.LOCAL), int(Direction.EAST), 1),
            ("lt", 4, 1, 0, 0, int(Direction.EAST), 1),
            ("ej", 8, 1, 5),
        ]
        assert [e[0] for e in events] == list(EVENT_KINDS)
        tel = TelemetryResult(sample_every=0, events=events)
        path = tmp_path / "trace.jsonl"
        assert write_jsonl(tel, path) == len(events)
        records = load_trace_records(path)
        assert [r["kind"] for r in records] == list(EVENT_KINDS)
        assert records[3]["in_dir"] == "LOCAL"
        assert records[3]["out_dir"] == "EAST"
        assert records[2]["footprint_hit"] is True

    def test_chrome_trace_round_trip(self, tmp_path):
        tel = TelemetryResult(
            sample_every=0,
            events=[
                ("gen", 0, 4, 2, 7, 1, "transpose"),
                ("va", 1, 4, 2, int(Direction.SOUTH), 0, 0),
                ("ej", 6, 4, 7),
            ],
        )
        path = tmp_path / "trace.json"
        assert write_chrome_trace(tel, path) == 3
        payload = json.loads(path.read_text())
        assert payload["traceEvents"][0]["ph"] == "M"  # process metadata
        records = load_trace_records(path)
        assert [r["kind"] for r in records] == ["gen", "va", "ej"]
        assert records[0]["src"] == 2 and records[0]["dst"] == 7
        assert records[1]["out_dir"] == "SOUTH"
        assert records[2]["node"] == 7

    def test_write_trace_dispatches_on_suffix(self, tmp_path):
        tel = TelemetryResult(
            sample_every=0, events=[("gen", 0, 0, 0, 3, 1, "f")]
        )
        write_trace(tel, tmp_path / "t.jsonl")
        write_trace(tel, tmp_path / "t.json")
        assert (tmp_path / "t.jsonl").read_text().startswith('{"kind"')
        assert '"traceEvents"' in (tmp_path / "t.json").read_text()

    def test_summarize_trace(self, tmp_path):
        tel = TelemetryResult(
            sample_every=0,
            events=[
                ("gen", 0, 0, 0, 3, 1, "f"),
                ("va", 1, 0, 0, int(Direction.EAST), 0, 1),
                ("lt", 2, 0, 0, 0, int(Direction.EAST), 0),
                ("ej", 10, 0, 3),
            ],
        )
        path = tmp_path / "t.jsonl"
        write_jsonl(tel, path)
        text = summarize_trace(path)
        assert "4 events over cycles 0..10" in text
        assert "ej=1" in text and "gen=1" in text
        assert "1 created, 1 ejected (1 complete lifetimes)" in text
        assert "mean 10.0 cycles" in text
        assert "footprint hits : 1/1" in text
        assert "busiest routers" in text

    def test_summarize_empty_trace(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        assert "empty trace" in summarize_trace(path)

    def test_iter_packet_lifetimes(self):
        records = [
            {"kind": "gen", "cycle": 0, "packet": 1},
            {"kind": "gen", "cycle": 2, "packet": 2},
            {"kind": "ej", "cycle": 9, "packet": 1},
            {"kind": "ej", "cycle": 5, "packet": 7},  # never born: ignored
        ]
        assert iter_packet_lifetimes(records) == {1: (0, 9)}


@pytest.fixture(scope="module")
def check_trace_mod():
    spec = importlib.util.spec_from_file_location("check_trace", _CHECK_TRACE)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class TestCheckTrace:
    def _write(self, tmp_path, records):
        path = tmp_path / "t.jsonl"
        path.write_text("".join(json.dumps(r) + "\n" for r in records))
        return path

    def test_valid_trace_passes(self, check_trace_mod, tmp_path):
        tel = TelemetryResult(
            sample_every=0,
            events=[
                ("gen", 0, 0, 0, 3, 1, "f"),
                ("ej", 4, 0, 3),
            ],
        )
        path = tmp_path / "t.jsonl"
        write_jsonl(tel, path)
        assert check_trace_mod.check_trace(path) == []
        assert check_trace_mod.main([str(path)]) == 0

    def test_flags_schema_violations(self, check_trace_mod, tmp_path):
        path = self._write(
            tmp_path,
            [
                {"kind": "warp", "cycle": 0},
                {"kind": "ej", "cycle": -1, "packet": 0, "node": 1},
                {"kind": "va", "cycle": 3, "packet": 0, "node": 1,
                 "out_dir": "UP", "out_vc": 0, "footprint_hit": "yes"},
                {"kind": "ej", "cycle": 1, "packet": 0},  # missing node
            ],
        )
        errors = check_trace_mod.check_trace(path)
        assert any("unknown kind" in e for e in errors)
        assert any("bad cycle" in e for e in errors)
        assert any("bad direction out_dir" in e for e in errors)
        assert any("footprint_hit must be a bool" in e for e in errors)
        assert any("missing field 'node'" in e for e in errors)
        assert check_trace_mod.main([str(path)]) == 1

    def test_flags_order_violations(self, check_trace_mod, tmp_path):
        path = self._write(
            tmp_path,
            [
                {"kind": "gen", "cycle": 5, "packet": 0, "src": 0,
                 "dst": 1, "size": 1, "flow": "f"},
                {"kind": "ej", "cycle": 2, "packet": 0, "node": 1},
            ],
        )
        errors = check_trace_mod.check_trace(path)
        assert any("precedes" in e for e in errors)
        assert any("before its creation" in e for e in errors)

    def test_min_events(self, check_trace_mod, tmp_path):
        path = self._write(
            tmp_path,
            [{"kind": "ej", "cycle": 0, "packet": 0, "node": 1}],
        )
        assert check_trace_mod.check_trace(path, min_events=5)
        assert check_trace_mod.main([str(path), "--min-events", "5"]) == 1

    def test_unreadable_file(self, check_trace_mod, tmp_path):
        missing = tmp_path / "nope.jsonl"
        assert check_trace_mod.main([str(missing)]) == 2
