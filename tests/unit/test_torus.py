"""Unit tests for the 2D torus geometry and its dateline VC classes."""

import math

import pytest

from repro.exceptions import TopologyError
from repro.topology.base import TOPOLOGIES, Topology, create_topology
from repro.topology.mesh import Mesh2D
from repro.topology.ports import COMPASS, OPPOSITE, Direction
from repro.topology.torus import Torus2D


class TestGeometry:
    def test_square_by_default(self):
        torus = Torus2D(4)
        assert (torus.width, torus.height) == (4, 4)
        assert torus.num_nodes == 16

    def test_rejects_degenerate_rings(self):
        # A 1-wide ring would make every wrap link a self-loop.
        with pytest.raises(TopologyError):
            Torus2D(1, 4)
        with pytest.raises(TopologyError):
            Torus2D(4, 1)

    def test_every_router_fully_populated(self):
        torus = Torus2D(3, 4)
        for node in range(torus.num_nodes):
            assert torus.router_ports(node) == [*COMPASS, Direction.LOCAL]

    def test_edges_wrap(self):
        torus = Torus2D(4, 3)
        # East edge wraps to column 0, north edge to the bottom row.
        assert torus.neighbor(torus.node_at(3, 1), Direction.EAST) == (
            torus.node_at(0, 1)
        )
        assert torus.neighbor(torus.node_at(0, 1), Direction.WEST) == (
            torus.node_at(3, 1)
        )
        assert torus.neighbor(torus.node_at(2, 0), Direction.NORTH) == (
            torus.node_at(2, 2)
        )
        assert torus.neighbor(torus.node_at(2, 2), Direction.SOUTH) == (
            torus.node_at(2, 0)
        )

    def test_local_neighbor_raises(self):
        with pytest.raises(TopologyError):
            Torus2D(3).neighbor(0, Direction.LOCAL)

    def test_channel_count_includes_wraps(self):
        torus = Torus2D(4, 3)
        channels = torus.channels()
        assert len(channels) == 4 * torus.num_nodes
        for src, direction, dst in channels:
            assert torus.neighbor(src, direction) == dst

    def test_hop_distance_takes_shorter_way(self):
        torus = Torus2D(8)
        # 0 -> 7 along a ring is one wrap hop, not seven mesh hops.
        assert torus.hop_distance(0, 7) == 1
        assert torus.hop_distance(0, 4) == 4
        assert torus.hop_distance(torus.node_at(0, 0), torus.node_at(3, 7)) == 4

    def test_tie_breaks_to_positive_direction(self):
        torus = Torus2D(4)
        # Distance exactly k/2 both ways: EAST (and SOUTH) must win so
        # minimal routing is deterministic across engine modes.
        assert torus.minimal_directions(
            torus.node_at(0, 0), torus.node_at(2, 0)
        ) == [Direction.EAST]
        assert torus.minimal_directions(
            torus.node_at(0, 0), torus.node_at(0, 2)
        ) == [Direction.SOUTH]

    def test_dor_resolves_x_before_y(self):
        torus = Torus2D(4)
        cur = torus.node_at(3, 3)
        dst = torus.node_at(1, 1)
        # X first (wrapping east: 3 -> 0 -> 1), then Y.
        assert torus.dor_direction(cur, dst) is Direction.EAST
        assert torus.dor_direction(torus.node_at(1, 3), dst) in (
            Direction.NORTH,
            Direction.SOUTH,
        )
        assert torus.dor_direction(dst, dst) is Direction.LOCAL

    def test_num_minimal_paths_uses_ring_hops(self):
        torus = Torus2D(8)
        src = torus.node_at(0, 0)
        # 1 wrap hop west x 2 hops south -> C(3, 1) orderings.
        dst = torus.node_at(7, 2)
        assert torus.num_minimal_paths(src, dst) == math.comb(3, 1)
        assert torus.num_minimal_paths(src, src) == 1

    def test_satisfies_topology_protocol(self):
        assert isinstance(Torus2D(3), Topology)
        assert isinstance(Mesh2D(3), Topology)

    def test_equality_and_hash(self):
        assert Torus2D(4, 3) == Torus2D(4, 3)
        assert Torus2D(4, 3) != Torus2D(3, 4)
        assert Torus2D(4) != Mesh2D(4)
        assert hash(Torus2D(4)) == hash(Torus2D(4, 4))


class TestDateline:
    def test_two_vc_classes_on_torus_one_on_mesh(self):
        assert Torus2D(4).num_vc_classes == 2
        assert Mesh2D(4).num_vc_classes == 1

    def test_mesh_wrap_class_is_constant_zero(self):
        mesh = Mesh2D(4)
        for src, direction, _ in mesh.channels():
            assert mesh.wrap_vc_class(src, mesh.num_nodes - 1, direction) == 0

    def test_local_hop_has_no_class(self):
        with pytest.raises(TopologyError):
            Torus2D(4).wrap_vc_class(0, 1, Direction.LOCAL)

    def test_class_zero_before_the_wrap(self):
        torus = Torus2D(4)
        dst = torus.node_at(1, 0)
        # Heading east from x=2 to x=1 the wrap (3 -> 0) is still ahead.
        assert torus.wrap_vc_class(torus.node_at(2, 0), dst, Direction.EAST) == 0

    def test_class_one_from_the_wrap_hop_onward(self):
        torus = Torus2D(4)
        dst = torus.node_at(1, 0)
        # The wrap hop itself (x=3 -> x=0) and the post-wrap hop are 1.
        assert torus.wrap_vc_class(torus.node_at(3, 0), dst, Direction.EAST) == 1
        assert torus.wrap_vc_class(torus.node_at(0, 0), dst, Direction.EAST) == 1

    def test_non_wrapping_path_rides_class_one(self):
        torus = Torus2D(8)
        dst = torus.node_at(3, 0)
        for x in range(3):
            assert (
                torus.wrap_vc_class(torus.node_at(x, 0), dst, Direction.EAST)
                == 1
            )

    def test_negative_ring_is_symmetric(self):
        torus = Torus2D(4)
        dst = torus.node_at(2, 0)
        # Heading west from x=1 towards x=2 the wrap (0 -> 3) is ahead.
        assert torus.wrap_vc_class(torus.node_at(1, 0), dst, Direction.WEST) == 0
        assert torus.wrap_vc_class(torus.node_at(0, 0), dst, Direction.WEST) == 1
        assert torus.wrap_vc_class(torus.node_at(3, 0), dst, Direction.WEST) == 1


class TestRegistry:
    def test_names(self):
        assert TOPOLOGIES == ("mesh", "torus")

    def test_create_mesh_and_torus(self):
        assert isinstance(create_topology("mesh", 4), Mesh2D)
        assert isinstance(create_topology("torus", 4, 8), Torus2D)
        assert create_topology("torus", 4, 8).height == 8

    def test_name_is_normalized(self):
        assert isinstance(create_topology(" Torus ", 4), Torus2D)

    def test_unknown_name_lists_choices(self):
        with pytest.raises(TopologyError, match="mesh, torus"):
            create_topology("hypercube", 4)


class TestOppositeConsistency:
    def test_wrap_neighbors_are_mutual(self):
        torus = Torus2D(3, 5)
        for node in range(torus.num_nodes):
            for d in COMPASS:
                nbr = torus.neighbor(node, d)
                assert nbr is not None
                assert torus.neighbor(nbr, OPPOSITE[d]) == node
                assert torus.hop_distance(node, nbr) == 1
