"""Unit tests for synthetic traffic patterns."""

import random

import pytest

from repro.exceptions import TrafficError
from repro.sim.config import SimulationConfig
from repro.topology.mesh import Mesh2D
from repro.traffic.patterns import (
    PATTERNS,
    SyntheticTraffic,
    pattern_destination,
)


@pytest.fixture
def mesh():
    return Mesh2D(8)


@pytest.fixture
def rng():
    return random.Random(5)


class TestDestinationFunctions:
    def test_uniform_never_self(self, mesh, rng):
        for src in range(mesh.num_nodes):
            for _ in range(20):
                dst = pattern_destination("uniform", mesh, src, rng)
                assert dst is not None
                assert dst != src
                assert 0 <= dst < mesh.num_nodes

    def test_uniform_covers_all_destinations(self, mesh, rng):
        seen = {pattern_destination("uniform", mesh, 0, rng) for _ in range(2000)}
        assert seen == set(range(1, mesh.num_nodes))

    def test_transpose(self, mesh, rng):
        # (x, y) -> (y, x): node 1 = (1,0) -> (0,1) = node 8.
        assert pattern_destination("transpose", mesh, 1, rng) == 8
        # Diagonal nodes are silent.
        assert pattern_destination("transpose", mesh, 0, rng) is None
        assert pattern_destination("transpose", mesh, 9, rng) is None

    def test_transpose_requires_square(self, rng):
        with pytest.raises(TrafficError):
            pattern_destination("transpose", Mesh2D(4, 2), 0, rng)

    def test_shuffle_rotates_bits(self, mesh, rng):
        # 64 nodes -> 6 bits; 5 = 000101 -> 001010 = 10.
        assert pattern_destination("shuffle", mesh, 5, rng) == 10
        # MSB wraps: 32 = 100000 -> 000001 = 1.
        assert pattern_destination("shuffle", mesh, 32, rng) == 1
        assert pattern_destination("shuffle", mesh, 0, rng) is None

    def test_bitcomp(self, mesh, rng):
        assert pattern_destination("bitcomp", mesh, 0, rng) == 63
        assert pattern_destination("bitcomp", mesh, 21, rng) == 42

    def test_bitrev(self, mesh, rng):
        # 1 = 000001 -> 100000 = 32.
        assert pattern_destination("bitrev", mesh, 1, rng) == 32

    def test_tornado(self, mesh, rng):
        # (0, 0) -> (0 + 4 - 1, 0) = (3, 0) = node 3.
        assert pattern_destination("tornado", mesh, 0, rng) == 3

    def test_neighbor(self, mesh, rng):
        assert pattern_destination("neighbor", mesh, 0, rng) == 1
        assert pattern_destination("neighbor", mesh, 7, rng) == 0  # wraps

    def test_power_of_two_required_for_bit_patterns(self, rng):
        mesh6 = Mesh2D(6)
        for name in ("shuffle", "bitcomp", "bitrev"):
            with pytest.raises(TrafficError):
                pattern_destination(name, mesh6, 1, rng)

    def test_unknown_pattern(self, mesh, rng):
        with pytest.raises(TrafficError):
            pattern_destination("zigzag", mesh, 0, rng)

    def test_all_patterns_minimal_contract(self, mesh, rng):
        """Every pattern returns None or a valid non-self destination."""
        for name in PATTERNS:
            for src in range(mesh.num_nodes):
                dst = pattern_destination(name, mesh, src, rng)
                if dst is not None:
                    assert 0 <= dst < mesh.num_nodes
                    assert dst != src


class TestSyntheticTraffic:
    def _generator(self, mesh, rate=0.5, pattern="uniform", **cfg):
        config = SimulationConfig(
            width=mesh.width, injection_rate=rate, traffic=pattern, **cfg
        )
        return SyntheticTraffic(pattern, config, mesh, random.Random(3))

    def test_rejects_unknown_pattern(self, mesh):
        config = SimulationConfig(width=8)
        with pytest.raises(TrafficError):
            SyntheticTraffic("nope", config, mesh, random.Random(1))

    def test_validates_pattern_against_mesh_up_front(self):
        mesh = Mesh2D(4, 2)
        config = SimulationConfig(width=4, height=2)
        with pytest.raises(TrafficError):
            SyntheticTraffic("transpose", config, mesh, random.Random(1))

    def test_rate_matches_offered_load(self, mesh):
        gen = self._generator(mesh, rate=0.4)
        cycles = 500
        flits = sum(
            p.size for c in range(cycles) for p in gen.generate(c, True)
        )
        offered = flits / (mesh.num_nodes * cycles)
        assert offered == pytest.approx(0.4, rel=0.15)

    def test_variable_packet_sizes(self, mesh):
        gen = self._generator(mesh, rate=0.5, packet_size_range=(1, 6))
        sizes = {
            p.size for c in range(300) for p in gen.generate(c, True)
        }
        assert sizes == {1, 2, 3, 4, 5, 6}

    def test_measured_flag_propagates(self, mesh):
        gen = self._generator(mesh, rate=0.9)
        assert all(p.measured for p in gen.generate(0, True))
        assert all(not p.measured for p in gen.generate(1, False))

    def test_flow_label_is_pattern(self, mesh):
        gen = self._generator(mesh, rate=0.9)
        packets = gen.generate(0, True)
        assert packets
        assert all(p.flow == "uniform" for p in packets)

    def test_zero_rate_generates_nothing(self, mesh):
        gen = self._generator(mesh, rate=0.0)
        assert all(not gen.generate(c, True) for c in range(50))
