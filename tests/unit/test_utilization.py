"""Unit tests for channel-utilization accounting."""

import pytest

from repro.metrics.utilization import ChannelUtilization
from repro.sim.config import SimulationConfig
from repro.sim.engine import Simulator
from repro.topology.mesh import Mesh2D
from repro.topology.ports import Direction


@pytest.fixture
def util():
    return ChannelUtilization(Mesh2D(4), cycles=10)


class TestAccounting:
    def test_record_and_utilization(self, util):
        for _ in range(5):
            util.record(0, Direction.EAST)
        assert util.utilization(0, Direction.EAST) == 0.5
        assert util.utilization(0, Direction.SOUTH) == 0.0

    def test_zero_cycles(self):
        util = ChannelUtilization(Mesh2D(4), cycles=0)
        assert util.utilization(0, Direction.EAST) == 0.0

    def test_busiest(self, util):
        for _ in range(8):
            util.record(1, Direction.EAST)
        for _ in range(3):
            util.record(2, Direction.SOUTH)
        top = util.busiest(top=1)
        assert top == [(1, Direction.EAST, 0.8)]

    def test_mean_utilization(self, util):
        # 48 unidirectional channels on a 4x4 mesh; one fully busy.
        for _ in range(10):
            util.record(0, Direction.EAST)
        assert util.mean_utilization() == pytest.approx(1 / 48)

    def test_heatmap_marks_edges(self, util):
        util.record(0, Direction.EAST)
        text = util.heatmap(Direction.EAST)
        assert "--" in text  # east-edge nodes have no EAST channel
        assert "10" in text  # 1/10 cycles = 10%


class TestEngineIntegration:
    def test_disabled_by_default(self):
        sim = Simulator(SimulationConfig(width=4, num_vcs=2, routing="dor"))
        assert sim.utilization is None

    def test_tracks_flits_when_enabled(self):
        config = SimulationConfig(
            width=4,
            num_vcs=2,
            routing="dor",
            traffic="neighbor",
            injection_rate=0.3,
            warmup_cycles=20,
            measure_cycles=80,
            drain_cycles=400,
            seed=4,
            track_utilization=True,
        )
        sim = Simulator(config)
        result = sim.run()
        assert result.drained
        util = sim.utilization
        assert util is not None
        assert util.cycles == result.cycles_run
        # Neighbor traffic uses only EAST channels (plus ejection).
        east_total = sum(
            count
            for (node, d), count in util.counts.items()
            if d is Direction.EAST
        )
        vertical_total = sum(
            count
            for (node, d), count in util.counts.items()
            if d in (Direction.NORTH, Direction.SOUTH)
        )
        assert east_total > 0
        assert vertical_total == 0
        assert util.mean_utilization() > 0
        # Every ejected flit crossed exactly one LOCAL channel first; a
        # few more may still sit in sink buffers when the run stops.
        local_total = sum(
            count
            for (node, d), count in util.counts.items()
            if d is Direction.LOCAL
        )
        ejected = sum(s.ejected_flits for s in sim.sinks)
        assert ejected <= local_total <= ejected + 2 * 16
