"""Unit tests for channel-utilization accounting."""

import pytest

from repro.metrics.utilization import ChannelUtilization
from repro.sim.config import SimulationConfig
from repro.sim.engine import Simulator
from repro.topology.mesh import Mesh2D
from repro.topology.ports import Direction


@pytest.fixture
def util():
    return ChannelUtilization(Mesh2D(4), cycles=10)


class TestAccounting:
    def test_record_and_utilization(self, util):
        for _ in range(5):
            util.record(0, Direction.EAST)
        assert util.utilization(0, Direction.EAST) == 0.5
        assert util.utilization(0, Direction.SOUTH) == 0.0

    def test_zero_cycles(self):
        util = ChannelUtilization(Mesh2D(4), cycles=0)
        assert util.utilization(0, Direction.EAST) == 0.0

    def test_busiest(self, util):
        for _ in range(8):
            util.record(1, Direction.EAST)
        for _ in range(3):
            util.record(2, Direction.SOUTH)
        top = util.busiest(top=1)
        assert top == [(1, Direction.EAST, 0.8)]

    def test_mean_utilization(self, util):
        # 48 unidirectional channels on a 4x4 mesh; one fully busy.
        for _ in range(10):
            util.record(0, Direction.EAST)
        assert util.mean_utilization() == pytest.approx(1 / 48)

    def test_heatmap_marks_edges(self, util):
        util.record(0, Direction.EAST)
        text = util.heatmap(Direction.EAST)
        assert "--" in text  # east-edge nodes have no EAST channel
        assert "10" in text  # 1/10 cycles = 10%

    def test_count_and_counts_adapter(self, util):
        for _ in range(3):
            util.record(5, Direction.NORTH)
        assert util.count(5, Direction.NORTH) == 3
        assert util.count(5, Direction.SOUTH) == 0
        # The mapping adapter exposes only touched channels.
        assert util.counts == {(5, Direction.NORTH): 3}

    def test_seed_counts_round_trip(self):
        seeded = ChannelUtilization(
            Mesh2D(4), cycles=10, counts={(1, Direction.WEST): 7}
        )
        assert seeded.count(1, Direction.WEST) == 7
        assert seeded.counts == {(1, Direction.WEST): 7}


class TestBusiestOrdering:
    def test_descending_by_utilization(self, util):
        for node, reps in ((3, 2), (1, 9), (2, 5)):
            for _ in range(reps):
                util.record(node, Direction.EAST)
        ranked = util.busiest(top=3)
        assert [n for n, _, _ in ranked] == [1, 2, 3]
        assert [u for _, _, u in ranked] == [0.9, 0.5, 0.2]

    def test_ties_break_by_node_then_direction(self, util):
        # Same count on three channels: ordering must be deterministic —
        # ascending node, then ascending direction value.
        util.record(2, Direction.NORTH)
        util.record(2, Direction.EAST)
        util.record(1, Direction.SOUTH)
        ranked = util.busiest(top=3)
        assert ranked == [
            (1, Direction.SOUTH, 0.1),
            (2, Direction.EAST, 0.1),
            (2, Direction.NORTH, 0.1),
        ]

    def test_top_truncates(self, util):
        for node in range(6):
            util.record(node, Direction.LOCAL)
        assert len(util.busiest(top=4)) == 4
        assert len(util.busiest(top=50)) == 6


class TestHeatmapRendering:
    def test_grid_shape_and_values(self):
        mesh = Mesh2D(4)
        util = ChannelUtilization(mesh, cycles=4)
        for _ in range(4):
            util.record(0, Direction.EAST)  # 100%
        for _ in range(2):
            util.record(5, Direction.EAST)  # 50%
        text = util.heatmap(Direction.EAST)
        lines = text.splitlines()
        assert lines[0] == "channel utilization heatmap (EAST)"
        assert len(lines) == 1 + mesh.height
        assert " 100" in lines[1]  # node 0 sits in the first row
        assert "  50" in lines[2]  # node 5 in the second row
        # The east edge column renders as -- in every row.
        assert all("--" in line for line in lines[1:])

    def test_local_direction_has_no_edges(self):
        util = ChannelUtilization(Mesh2D(2), cycles=2)
        util.record(3, Direction.LOCAL)
        text = util.heatmap(Direction.LOCAL)
        assert "--" not in text
        assert "50" in text

    def test_zero_cycles_renders_zeros(self):
        util = ChannelUtilization(Mesh2D(2), cycles=0)
        text = util.heatmap(Direction.EAST)
        assert "   0" in text


class TestEngineIntegration:
    def test_disabled_by_default(self):
        sim = Simulator(SimulationConfig(width=4, num_vcs=2, routing="dor"))
        assert sim.utilization is None

    def test_tracks_flits_when_enabled(self):
        config = SimulationConfig(
            width=4,
            num_vcs=2,
            routing="dor",
            traffic="neighbor",
            injection_rate=0.3,
            warmup_cycles=20,
            measure_cycles=80,
            drain_cycles=400,
            seed=4,
            track_utilization=True,
        )
        sim = Simulator(config)
        result = sim.run()
        assert result.drained
        util = sim.utilization
        assert util is not None
        assert util.cycles == result.cycles_run
        # Neighbor traffic uses only EAST channels (plus ejection).
        east_total = sum(
            count
            for (node, d), count in util.counts.items()
            if d is Direction.EAST
        )
        vertical_total = sum(
            count
            for (node, d), count in util.counts.items()
            if d in (Direction.NORTH, Direction.SOUTH)
        )
        assert east_total > 0
        assert vertical_total == 0
        assert util.mean_utilization() > 0
        # Every ejected flit crossed exactly one LOCAL channel first; a
        # few more may still sit in sink buffers when the run stops.
        local_total = sum(
            count
            for (node, d), count in util.counts.items()
            if d is Direction.LOCAL
        )
        ejected = sum(s.ejected_flits for s in sim.sinks)
        assert ejected <= local_total <= ejected + 2 * 16
