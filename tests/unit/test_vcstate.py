"""Unit tests for the input-VC state machine."""

import pytest

from repro.exceptions import FlowControlError
from repro.router.flit import Packet
from repro.router.vcstate import InputVc, VcState
from repro.topology.ports import Direction


def flits_of(size=2, dst=5):
    return Packet(src=0, dst=dst, size=size, creation_time=0).flits()


@pytest.fixture
def vc():
    return InputVc(Direction.WEST, 1, depth=4)


class TestStateMachine:
    def test_starts_idle(self, vc):
        assert vc.state is VcState.IDLE
        assert vc.front() is None
        assert vc.occupancy == 0

    def test_head_promotes_to_routing(self, vc):
        vc.push(flits_of()[0])
        vc.refresh_state()
        assert vc.state is VcState.ROUTING

    def test_grant_moves_to_active(self, vc):
        vc.push(flits_of()[0])
        vc.refresh_state()
        vc.grant(Direction.EAST, 2)
        assert vc.state is VcState.ACTIVE
        assert vc.out_direction is Direction.EAST
        assert vc.out_vc == 2

    def test_grant_requires_routing_state(self, vc):
        with pytest.raises(FlowControlError):
            vc.grant(Direction.EAST, 0)

    def test_tail_pop_releases(self, vc):
        head, tail = flits_of(size=2)
        vc.push(head)
        vc.push(tail)
        vc.refresh_state()
        vc.grant(Direction.EAST, 0)
        assert vc.pop() is head
        assert vc.state is VcState.ACTIVE
        assert vc.pop() is tail
        assert vc.state is VcState.IDLE
        assert vc.out_direction is None
        assert vc.committed_dir is None

    def test_tail_pop_promotes_queued_head(self, vc):
        first = flits_of(size=1)[0]
        second = flits_of(size=1, dst=9)[0]
        vc.push(first)
        vc.push(second)
        vc.refresh_state()
        vc.grant(Direction.EAST, 0)
        vc.pop()
        # The next packet's head is at the front: straight to ROUTING.
        assert vc.state is VcState.ROUTING
        assert vc.front() is second


class TestFlowControl:
    def test_overflow_detected(self, vc):
        for flit in flits_of(size=4):
            vc.push(flit)
        with pytest.raises(FlowControlError):
            vc.push(flits_of(size=1)[0])

    def test_pop_empty_raises(self, vc):
        with pytest.raises(FlowControlError):
            vc.pop()

    def test_non_head_at_front_of_idle_vc_raises(self, vc):
        body = flits_of(size=3)[1]
        vc.push(body)
        with pytest.raises(FlowControlError):
            vc.refresh_state()

    def test_has_space(self, vc):
        assert vc.has_space
        for flit in flits_of(size=4):
            vc.push(flit)
        assert not vc.has_space


def test_repr(vc):
    text = repr(vc)
    assert "WEST" in text
    assert "idle" in text
