"""Unit tests for the implementation-cost model (paper §4.4)."""

import pytest

from repro.core.cost import CostModel


def test_paper_headline_number():
    """8x8 mesh with 16 VCs costs 132 bits per port, as §4.4 states."""
    model = CostModel(num_nodes=64, num_vcs=16)
    assert model.owner_bits_per_vc == 6
    assert model.owner_table_bits == 96
    assert model.state_bits == 32
    assert model.idle_counter_bits == 4
    assert model.total_bits_per_port == 132


def test_overhead_about_one_flit():
    """The paper argues the overhead is roughly one flit buffer entry."""
    model = CostModel(num_nodes=64, num_vcs=16)
    assert model.overhead_vs_flit_buffer(flit_bits=128) == pytest.approx(
        1.03, abs=0.01
    )
    assert model.overhead_vs_flit_buffer(flit_bits=256) < 1.0


def test_owner_bits_scale_with_network_size():
    assert CostModel(16, 4).owner_bits_per_vc == 4
    assert CostModel(256, 4).owner_bits_per_vc == 8
    assert CostModel(2, 4).owner_bits_per_vc == 1


def test_total_monotone_in_vcs():
    totals = [CostModel(64, v).total_bits_per_port for v in (2, 4, 8, 16)]
    assert totals == sorted(totals)
    assert len(set(totals)) == len(totals)


def test_describe():
    text = CostModel(64, 16).describe()
    assert "132" in text
    assert "N=64" in text
