"""Unit tests for the purity-of-blocking helpers (paper §4.3)."""

from repro.core.purity import (
    blocking_rate,
    hol_blocking_degree,
    purity_of_blocking,
)
from repro.metrics.stats import LatencyStats
from repro.router.router import BlockingStats
from repro.sim.config import SimulationConfig
from repro.sim.results import SimulationResult


def make_result(events=10, busy=40, footprint=10, cycles=100):
    blocking = BlockingStats()
    blocking.blocking_events = events
    blocking.busy_vc_samples = busy
    blocking.footprint_vc_samples = footprint
    return SimulationResult(
        config=SimulationConfig(width=4),
        cycles_run=cycles,
        latency=LatencyStats(),
        latency_by_flow={},
        accepted_flits=0,
        offered_flits=0,
        measured_created=0,
        measured_ejected=0,
        blocking=blocking,
    )


def test_purity():
    assert purity_of_blocking(make_result()) == 0.25


def test_hol_degree_is_impurity_times_events():
    # (1 - 0.25) * 10
    assert hol_blocking_degree(make_result()) == 7.5


def test_blocking_rate():
    assert blocking_rate(make_result()) == 0.1


def test_zero_cycles_rate():
    assert blocking_rate(make_result(cycles=0)) == 0.0


def test_fully_pure_blocking_has_zero_hol():
    result = make_result(events=5, busy=20, footprint=20)
    assert purity_of_blocking(result) == 1.0
    assert hol_blocking_degree(result) == 0.0
