"""Unit tests for the round-robin arbiter."""

import pytest

from repro.router.arbiter import RoundRobinArbiter


def test_requires_positive_size():
    with pytest.raises(ValueError):
        RoundRobinArbiter(0)


def test_no_requests_no_grant():
    assert RoundRobinArbiter(4).grant([]) is None


def test_single_requester_always_wins():
    arb = RoundRobinArbiter(4)
    for _ in range(6):
        assert arb.grant([2]) == 2


def test_round_robin_rotation():
    arb = RoundRobinArbiter(3)
    grants = [arb.grant([0, 1, 2]) for _ in range(6)]
    assert grants == [0, 1, 2, 0, 1, 2]


def test_pointer_skips_idle_requesters():
    arb = RoundRobinArbiter(4)
    assert arb.grant([1, 3]) == 1
    assert arb.grant([1, 3]) == 3
    assert arb.grant([1, 3]) == 1


def test_strong_fairness_under_persistent_load():
    arb = RoundRobinArbiter(5)
    counts = {i: 0 for i in range(5)}
    for _ in range(100):
        winner = arb.grant(range(5))
        counts[winner] += 1
    assert all(c == 20 for c in counts.values())


def test_rotation_view():
    arb = RoundRobinArbiter(3)
    assert list(arb.rotation()) == [0, 1, 2]
    arb.advance()
    assert list(arb.rotation()) == [1, 2, 0]
