"""Unit tests for deterministic RNG streams."""

from repro.sim.rng import RngStreams


def test_same_seed_same_streams():
    a = RngStreams(42).stream("traffic")
    b = RngStreams(42).stream("traffic")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_seeds_differ():
    a = RngStreams(1).stream("traffic")
    b = RngStreams(2).stream("traffic")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]


def test_streams_are_independent():
    streams = RngStreams(7)
    t = streams.stream("traffic")
    baseline = [t.random() for _ in range(5)]

    streams2 = RngStreams(7)
    r = streams2.stream("router/0")
    # Drawing from another stream must not perturb this one.
    for _ in range(100):
        r.random()
    t2 = streams2.stream("traffic")
    assert [t2.random() for _ in range(5)] == baseline


def test_stream_is_cached():
    streams = RngStreams(3)
    assert streams.stream("x") is streams.stream("x")


def test_distinct_names_distinct_sequences():
    streams = RngStreams(3)
    a = streams.stream("router/1")
    b = streams.stream("router/2")
    assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]
