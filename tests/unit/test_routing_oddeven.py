"""Unit tests for Odd-Even turn-model routing, including turn legality."""

import itertools

import pytest

from repro.routing.oddeven import OddEvenRouting
from repro.topology.mesh import Mesh2D
from repro.topology.ports import Direction

from tests.conftest import FakeOutputView, make_context


@pytest.fixture
def algo():
    return OddEvenRouting()


@pytest.fixture
def mesh():
    return Mesh2D(8)


def test_flags(algo):
    assert not algo.uses_escape
    assert not algo.atomic_vc_reallocation


def test_directions_are_minimal(algo, mesh):
    for src, dst in itertools.product(range(16), range(16)):
        if src == dst:
            continue
        allowed = algo.allowed_directions(mesh, src, dst, src)
        minimal = mesh.minimal_directions(src, dst)
        assert allowed, f"no productive direction from {src} to {dst}"
        assert set(allowed) <= set(minimal)


def test_routes_always_reach_destination(algo, mesh):
    """Every greedy walk over allowed directions is minimal and complete."""
    for src in range(mesh.num_nodes):
        for dst in range(mesh.num_nodes):
            if src == dst:
                continue
            node = src
            for _ in range(mesh.hop_distance(src, dst)):
                dirs = algo.allowed_directions(mesh, node, dst, src)
                assert dirs
                node = mesh.neighbor(node, dirs[0])
            assert node == dst


def _walk_all_paths(algo, mesh, src, dst):
    """Enumerate every (node, turn) pair reachable via allowed directions."""
    turns = set()
    stack = [(src, None)]
    seen = set()
    while stack:
        node, came_from = stack.pop()
        if node == dst:
            continue
        for d in algo.allowed_directions(mesh, node, dst, src):
            if came_from is not None and came_from is not d:
                turns.add((node, came_from, d))
            nxt = mesh.neighbor(node, d)
            state = (nxt, d)
            if state not in seen:
                seen.add(state)
                stack.append(state)
    return turns


def test_odd_even_turn_rules(algo, mesh):
    """No EN/ES turns at even columns; no NW/SW turns at odd columns."""
    east = Direction.EAST
    west = Direction.WEST
    vertical = (Direction.NORTH, Direction.SOUTH)
    for src in range(0, mesh.num_nodes, 3):
        for dst in range(0, mesh.num_nodes, 5):
            if src == dst:
                continue
            for node, frm, to in _walk_all_paths(algo, mesh, src, dst):
                x, _ = mesh.coords(node)
                if frm is east and to in vertical:
                    assert x % 2 == 1, (
                        f"EN/ES turn at even column {x} (node {node})"
                    )
                if frm in vertical and to is west:
                    assert x % 2 == 0, (
                        f"NW/SW turn at odd column {x} (node {node})"
                    )


def test_port_selection_prefers_more_idle(algo):
    mesh = Mesh2D(4)
    # From 5 to 15: east and south both allowed at odd column x=1.
    outputs = {d: FakeOutputView(escape_vc=None) for d in mesh.router_ports(5)}
    outputs[Direction.EAST] = FakeOutputView(escape_vc=None, idle=[0])
    outputs[Direction.SOUTH] = FakeOutputView(escape_vc=None, idle=[0, 1, 2])
    ctx = make_context(mesh, 5, 15, outputs)
    allowed = algo.allowed_directions(mesh, 5, 15, 5)
    if Direction.SOUTH in allowed and Direction.EAST in allowed:
        assert algo.select_output(ctx) is Direction.SOUTH


def test_ejects_at_destination(algo):
    mesh = Mesh2D(4)
    outputs = {d: FakeOutputView(escape_vc=None) for d in mesh.router_ports(5)}
    ctx = make_context(mesh, 5, 5, outputs)
    assert algo.select_output(ctx) is Direction.LOCAL


def test_all_vcs_usable(algo):
    mesh = Mesh2D(4)
    outputs = {d: FakeOutputView(escape_vc=None) for d in mesh.router_ports(0)}
    ctx = make_context(mesh, 0, 3, outputs)
    reqs = algo.vc_requests_at(ctx, Direction.EAST)
    assert {r.vc for r in reqs} == {0, 1, 2, 3}
