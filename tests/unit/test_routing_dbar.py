"""Unit tests for DBAR routing (and its fine-grained ablation variant)."""

import pytest

from repro.routing.dbar import DbarFineRouting, DbarRouting
from repro.routing.requests import Priority
from repro.topology.mesh import Mesh2D
from repro.topology.ports import Direction

from tests.conftest import FakeOutputView, make_context


@pytest.fixture
def mesh():
    return Mesh2D(4)


DST = 10


def outputs_for(mesh, node):
    return {d: FakeOutputView() for d in mesh.router_ports(node)}


def test_flags():
    algo = DbarRouting()
    assert algo.uses_escape
    assert algo.atomic_vc_reallocation


def test_fully_adaptive(mesh):
    algo = DbarRouting()
    assert set(algo.allowed_directions(mesh, 0, DST, 0)) == {
        Direction.EAST,
        Direction.SOUTH,
    }


def test_prefers_uncongested_port(mesh):
    algo = DbarRouting()
    outputs = outputs_for(mesh, 0)
    outputs[Direction.EAST] = FakeOutputView(idle=[1])  # below threshold
    outputs[Direction.SOUTH] = FakeOutputView(idle=[1, 2, 3])
    ctx = make_context(mesh, 0, DST, outputs, congestion_threshold=2)
    assert algo.select_output(ctx) is Direction.SOUTH


def test_tie_breaks_randomly_within_class(mesh):
    algo = DbarRouting()
    outputs = outputs_for(mesh, 0)
    outputs[Direction.EAST] = FakeOutputView(idle=[1, 2, 3])
    outputs[Direction.SOUTH] = FakeOutputView(idle=[1, 2])  # both uncongested
    seen = set()
    for seed in range(30):
        ctx = make_context(
            mesh, 0, DST, outputs, congestion_threshold=2, seed=seed
        )
        seen.add(algo.select_output(ctx))
    assert seen == {Direction.EAST, Direction.SOUTH}


def test_oblivious_vc_selection_flat_priority(mesh):
    algo = DbarRouting()
    outputs = outputs_for(mesh, 0)
    outputs[Direction.EAST] = FakeOutputView(idle=[1, 3], owners={2: DST})
    ctx = make_context(mesh, 0, DST, outputs)
    reqs = [
        r
        for r in algo.vc_requests_at(ctx, Direction.EAST)
        if r.priority is not Priority.LOWEST
    ]
    # No footprint awareness: just the free VCs, all LOW.
    assert {r.vc for r in reqs} == {1, 3}
    assert all(r.priority is Priority.LOW for r in reqs)


def test_escape_request_present(mesh):
    algo = DbarRouting()
    outputs = outputs_for(mesh, 0)
    ctx = make_context(mesh, 0, DST, outputs)
    reqs = algo.vc_requests_at(ctx, Direction.SOUTH)
    escape = [r for r in reqs if r.priority is Priority.LOWEST]
    assert len(escape) == 1
    # Escape uses the DOR direction (EAST from 0 to 10) and VC0.
    assert escape[0].direction is Direction.EAST
    assert escape[0].vc == 0


def test_fine_variant_uses_credit_totals(mesh):
    algo = DbarFineRouting()
    outputs = outputs_for(mesh, 0)
    outputs[Direction.EAST] = FakeOutputView(idle=[1, 2], credits=4)
    outputs[Direction.SOUTH] = FakeOutputView(idle=[1, 2], credits=9)
    ctx = make_context(mesh, 0, DST, outputs, congestion_threshold=2)
    assert algo.select_output(ctx) is Direction.SOUTH
