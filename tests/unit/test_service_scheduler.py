"""Unit tests for the multi-stream weighted-fair scheduler.

The fairness and dedup tests inject a stub ``run_task`` so dispatch
ordering is driven purely by the scheduler's virtual-time policy (the
stub returns instantly and the 1-worker executor serializes reaps); the
cache tests run real — tiny — simulations because the cache keys results
by their own config.
"""

import asyncio
import threading

import pytest

from repro.harness.cache import ResultCache
from repro.harness.parallel import SimTask
from repro.service import ServiceError
from repro.service.jobs import JobSpec, JobState
from repro.service.scheduler import ExperimentScheduler
from repro.sim.config import SimulationConfig
from repro.sim.engine import Simulator


def _config(seed=1, **overrides):
    base = dict(
        width=4,
        num_vcs=4,
        routing="footprint",
        injection_rate=0.05,
        warmup_cycles=10,
        measure_cycles=30,
        drain_cycles=120,
        seed=seed,
    )
    base.update(overrides)
    return SimulationConfig(**base)


def _spec(name, stream, seeds, weight=1.0):
    tasks = tuple(SimTask(_config(seed=seed)) for seed in seeds)
    return JobSpec(name=name, tasks=tasks, stream=stream, weight=weight)


@pytest.fixture(scope="module")
def canned_result():
    return Simulator(_config(seed=999)).run()


def _stub_runner(result, block_on=None, fail_keys=()):
    """A run_task stub: optionally blocks, optionally fails per seed."""

    def run(task, engine_mode):
        if block_on is not None:
            block_on.wait(timeout=30)
        if task.resolved_config().seed in fail_keys:
            raise ValueError(f"seed {task.resolved_config().seed} refused")
        return result

    return run


class TestLifecycleAndDedup:
    def test_job_runs_to_done(self, canned_result):
        async def main():
            sched = ExperimentScheduler(
                jobs=1, run_task=_stub_runner(canned_result)
            )
            job, deduped = sched.submit(_spec("g", "s", (1, 2)))
            assert deduped is False
            await sched.close()
            assert job.state is JobState.DONE
            assert job.counts()["simulated"] == 2
            assert sched.totals()["simulated"] == 2

        asyncio.run(main())

    def test_identical_grid_dedupes_to_same_job(self, canned_result):
        async def main():
            sched = ExperimentScheduler(
                jobs=1, run_task=_stub_runner(canned_result)
            )
            first, _ = sched.submit(_spec("a", "s1", (1, 2)))
            await sched.drain()
            # Content hash ignores name, stream, and task order.
            again, deduped = sched.submit(_spec("b", "s2", (2, 1)))
            assert deduped is True
            assert again is first
            assert sched.totals()["simulated"] == 2
            await sched.close()

        asyncio.run(main())

    def test_inflight_task_is_shared_not_rerun(self, canned_result):
        async def main():
            gate = threading.Event()
            sched = ExperimentScheduler(
                jobs=1,
                run_task=_stub_runner(canned_result, block_on=gate),
            )
            job_a, _ = sched.submit(_spec("a", "s1", (1,)))
            # Same task plus a fresh one => different grid hash, so this
            # is a new job whose overlapping task must subscribe to the
            # simulation job A already started.
            job_b, deduped = sched.submit(_spec("b", "s2", (1, 2)))
            assert deduped is False
            assert job_b.task_states[0] == "shared"
            gate.set()
            await sched.close()
            assert job_a.state is JobState.DONE
            assert job_b.state is JobState.DONE
            totals = sched.totals()
            assert totals["simulated"] == 2  # seeds 1 and 2, once each
            assert totals["shared"] == 1
            assert job_b.counts()["shared"] == 1

        asyncio.run(main())

    def test_persistent_cache_answers_overlap(self, tmp_path):
        async def main():
            cache = ResultCache(tmp_path / "cache")
            first = ExperimentScheduler(jobs=1, cache=cache)
            job, _ = first.submit(_spec("warm", "s", (1,)))
            await first.close()
            assert job.counts()["simulated"] == 1

            second = ExperimentScheduler(
                jobs=1, cache=ResultCache(tmp_path / "cache")
            )
            job2, _ = second.submit(_spec("reuse", "s", (1, 2)))
            await second.close()
            assert job2.state is JobState.DONE
            counts = job2.counts()
            assert counts["cached"] == 1
            assert counts["simulated"] == 1
            kinds = [kind for _, _, _, kind in second.dispatch_log]
            assert kinds.count("cached") == 1
            # Cache hits are bit-exact round trips of the stored run.
            direct = Simulator(_config(seed=1)).run()
            hit = job2.results[0]
            assert hit.accepted_flits == direct.accepted_flits
            assert sorted(hit.latency._samples) == sorted(
                direct.latency._samples
            )

        asyncio.run(main())

    def test_unknown_job_raises(self, canned_result):
        async def main():
            sched = ExperimentScheduler(
                jobs=1, run_task=_stub_runner(canned_result)
            )
            with pytest.raises(ServiceError, match="unknown job"):
                sched.get_job("j999")
            await sched.close()

        asyncio.run(main())


class TestFairness:
    def test_equal_weight_streams_alternate(self, canned_result):
        async def main():
            sched = ExperimentScheduler(
                jobs=1, run_task=_stub_runner(canned_result)
            )
            sched.submit(_spec("ga", "a", (1, 2, 3, 4)))
            sched.submit(_spec("gb", "b", (11, 12, 13, 14)))
            await sched.close()
            order = [stream for stream, _, _, kind in sched.dispatch_log]
            # b joins at a's vtime (the newborn floor) after a banked
            # one dispatch, so the alternation is offset by one at each
            # edge — but strictly alternating in steady state.
            assert order == ["a", "a", "b", "a", "b", "a", "b", "b"]
            assert order.count("a") == order.count("b") == 4

        asyncio.run(main())

    def test_weighted_stream_gets_proportional_share(self, canned_result):
        async def main():
            sched = ExperimentScheduler(
                jobs=1, run_task=_stub_runner(canned_result)
            )
            sched.submit(_spec("gw", "w", (1, 2, 3, 4, 5, 6), weight=2.0))
            sched.submit(_spec("gx", "x", (11, 12, 13), weight=1.0))
            await sched.close()
            order = [stream for stream, _, _, _ in sched.dispatch_log]
            # Weight 2 earns two dispatches per weight-1 dispatch; the
            # light stream is interleaved, not starved to the end.
            assert order.count("w") == 6
            assert order.count("x") == 3
            first_six = order[:6]
            assert first_six.count("w") == 4
            assert first_six.count("x") == 2

        asyncio.run(main())

    def test_late_stream_joins_at_vtime_floor(self, canned_result):
        async def main():
            gate = threading.Event()
            sched = ExperimentScheduler(
                jobs=1,
                run_task=_stub_runner(canned_result, block_on=gate),
            )
            sched.submit(_spec("ga", "a", (1, 2, 3, 4)))
            gate.set()
            await sched.drain()
            gate.clear()
            # Stream b arrives after a has banked vtime; it starts at
            # a's clock, so it cannot monopolize the executor.
            sched.submit(_spec("gb", "b", (11, 12)))
            sched.submit(_spec("ga2", "a", (5, 6)))
            gate.set()
            await sched.close()
            tail = [
                stream for stream, _, _, _ in sched.dispatch_log[4:]
            ]
            assert tail.count("a") == 2
            assert tail.count("b") == 2
            assert tail != ["b", "b", "a", "a"]

        asyncio.run(main())


class TestCancellationAndFailure:
    def test_cancel_mid_job_drops_pending(self, canned_result):
        async def main():
            gate = threading.Event()
            sched = ExperimentScheduler(
                jobs=1,
                run_task=_stub_runner(canned_result, block_on=gate),
            )
            job, _ = sched.submit(_spec("g", "s", (1, 2, 3)))
            assert job.task_states[0] == "running"
            assert sched.cancel(job.id) is True
            assert job.state is JobState.CANCELLED
            assert job.task_states[1] == "cancelled"
            assert job.task_states[2] == "cancelled"
            gate.set()
            await sched.close()
            # The in-flight simulation completed but its late result was
            # dropped; only one task ever reached the executor.
            assert job.state is JobState.CANCELLED
            assert job.results == [None, None, None]
            assert sched.totals()["simulated"] == 1
            # A cancelled grid does not shadow resubmission.
            retry, deduped = sched.submit(_spec("g", "s", (1, 2, 3)))
            assert deduped is False
            await sched.close()
            assert retry.state is JobState.DONE

        asyncio.run(main())

    def test_cancel_strips_shared_waiters(self, canned_result):
        async def main():
            gate = threading.Event()
            sched = ExperimentScheduler(
                jobs=1,
                run_task=_stub_runner(canned_result, block_on=gate),
            )
            job_a, _ = sched.submit(_spec("a", "s1", (1,)))
            job_b, _ = sched.submit(_spec("b", "s2", (1, 2)))
            assert job_b.task_states[0] == "shared"
            assert sched.cancel(job_b.id) is True
            gate.set()
            await sched.close()
            assert job_a.state is JobState.DONE
            assert job_b.state is JobState.CANCELLED
            assert sched.totals()["shared"] == 0

        asyncio.run(main())

    def test_worker_exception_fails_job_not_scheduler(self, canned_result):
        async def main():
            sched = ExperimentScheduler(
                jobs=1,
                run_task=_stub_runner(canned_result, fail_keys={2}),
            )
            job, _ = sched.submit(_spec("g", "s", (1, 2)))
            await sched.drain()
            assert job.state is JobState.FAILED
            assert "seed 2 refused" in job.error
            # The scheduler keeps serving after a task failure, and a
            # failed grid does not block resubmission.
            retry, deduped = sched.submit(_spec("g", "s", (3,)))
            await sched.close()
            assert deduped is False
            assert retry.state is JobState.DONE

        asyncio.run(main())
