"""Unit tests for ``TrafficGenerator.next_event_cycle`` lookahead."""

import random

from repro.router.flit import Packet
from repro.sim.config import SimulationConfig
from repro.topology.mesh import Mesh2D
from repro.traffic.hotspot import HotspotTraffic
from repro.traffic.patterns import SyntheticTraffic, TrafficGenerator
from repro.traffic.trace import TraceEvent, TraceTraffic


class _MinimalTraffic(TrafficGenerator):
    def generate(self, cycle, measured):
        return []


def _synthetic(rate, seed=1, width=4, pattern="uniform"):
    config = SimulationConfig(
        width=width, traffic=pattern, injection_rate=rate, seed=seed
    )
    mesh = Mesh2D(width)
    return SyntheticTraffic(pattern, config, mesh, random.Random(seed))


class TestDefaultContract:
    def test_default_returns_now(self):
        # Custom generators that know nothing about skipping must keep
        # their exact cycle-by-cycle behaviour: returning ``now``
        # disables skipping.
        traffic = _MinimalTraffic()
        assert traffic.next_event_cycle(17, 1000) == 17


class TestSyntheticLookahead:
    def test_rate_zero_is_provably_silent(self):
        traffic = _synthetic(0.0)
        assert traffic.next_event_cycle(0, 10_000) is None

    def test_scan_matches_per_cycle_generation(self):
        # The lookahead must find exactly the cycle at which a twin
        # generator, stepped cycle by cycle, first produces packets —
        # and hand back the same packets.
        scanner = _synthetic(0.004, seed=9)
        stepper = _synthetic(0.004, seed=9)

        event = scanner.next_event_cycle(0, 100_000)
        assert event is not None

        for cycle in range(event):
            assert stepper.generate(cycle, True) == []
        expected = stepper.generate(event, True)
        assert expected

        got = scanner.generate(event, True)
        assert [
            (p.src, p.dst, p.size, p.creation_time) for p in got
        ] == [(p.src, p.dst, p.size, p.creation_time) for p in expected]

    def test_replayed_cycles_do_not_touch_rng(self):
        traffic = _synthetic(0.004, seed=9)
        event = traffic.next_event_cycle(0, 100_000)
        state = traffic.rng.getstate()
        # Cycles the scan already consumed replay as empty without
        # advancing the RNG.
        for cycle in range(min(event, 5)):
            assert traffic.generate(cycle, True) == []
        assert traffic.rng.getstate() == state

    def test_buffered_event_returned_without_rescanning(self):
        traffic = _synthetic(0.004, seed=9)
        event = traffic.next_event_cycle(0, 100_000)
        state = traffic.rng.getstate()
        assert traffic.next_event_cycle(0, 100_000) == event
        assert traffic.rng.getstate() == state

    def test_none_before_horizon_then_scan_resumes(self):
        traffic = _synthetic(0.004, seed=9)
        stepper = _synthetic(0.004, seed=9)
        event = stepper.next_event_cycle(0, 100_000)

        # Scan in two bounded windows; the second resumes where the
        # first stopped and still lands on the same cycle.
        half = event // 2
        assert traffic.next_event_cycle(0, half) is None
        assert traffic.next_event_cycle(half, 100_000) == event

    def test_unmeasured_replay_downgrades_packets(self):
        traffic = _synthetic(0.004, seed=9)
        event = traffic.next_event_cycle(0, 100_000)
        packets = traffic.generate(event, False)
        assert packets and all(not p.measured for p in packets)


class TestTraceLookahead:
    def _traffic(self, events):
        config = SimulationConfig(width=4, traffic="trace", trace=events)
        return TraceTraffic(events, config, Mesh2D(4), random.Random(1))

    def test_returns_next_event_cycle(self):
        traffic = self._traffic([TraceEvent(50, 0, 5), TraceEvent(90, 1, 6)])
        assert traffic.next_event_cycle(0, 10_000) == 50
        traffic.generate(50, True)
        assert traffic.next_event_cycle(51, 10_000) == 90

    def test_past_event_clamps_to_now(self):
        # An event whose cycle already passed fires on the next generate
        # call, so the lookahead reports "now", never a cycle in the past.
        traffic = self._traffic([TraceEvent(5, 0, 5)])
        assert traffic.next_event_cycle(30, 10_000) == 30

    def test_exhausted_trace_is_silent(self):
        traffic = self._traffic([TraceEvent(2, 0, 5)])
        traffic.generate(2, True)
        assert traffic.next_event_cycle(3, 10_000) is None


class TestHotspotLookahead:
    def _traffic(self, hotspot_rate, background_rate, seed=1):
        config = SimulationConfig(
            width=4,
            traffic="hotspot",
            hotspot_rate=hotspot_rate,
            background_rate=background_rate,
            seed=seed,
        )
        return HotspotTraffic(config, Mesh2D(4), random.Random(seed))

    def test_both_rates_zero_is_silent(self):
        traffic = self._traffic(0.0, 0.0)
        assert traffic.next_event_cycle(0, 10_000) is None

    def test_scan_matches_per_cycle_generation(self):
        scanner = self._traffic(0.002, 0.002, seed=5)
        stepper = self._traffic(0.002, 0.002, seed=5)

        event = scanner.next_event_cycle(0, 100_000)
        assert event is not None
        for cycle in range(event):
            assert stepper.generate(cycle, True) == []
        expected = stepper.generate(event, True)
        got = scanner.generate(event, True)
        assert [
            (p.src, p.dst, p.size, p.measured) for p in got
        ] == [(p.src, p.dst, p.size, p.measured) for p in expected]
