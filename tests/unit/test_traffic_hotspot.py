"""Unit tests for hotspot traffic (Table 3)."""

import random

import pytest

from repro.exceptions import TrafficError
from repro.sim.config import SimulationConfig
from repro.topology.mesh import Mesh2D
from repro.traffic.hotspot import HotspotTraffic, default_hotspot_flows


@pytest.fixture
def mesh():
    return Mesh2D(8)


def make_traffic(mesh, hotspot_rate=0.5, background_rate=0.3, flows=None):
    config = SimulationConfig(
        width=mesh.width,
        hotspot_rate=hotspot_rate,
        background_rate=background_rate,
        traffic="hotspot",
    )
    return HotspotTraffic(config, mesh, random.Random(2), flows=flows)


class TestDefaultFlows:
    def test_exact_table3_flows_on_8x8(self, mesh):
        flows = set(default_hotspot_flows(mesh))
        expected = {
            (0, 63),
            (32, 63),
            (7, 56),
            (39, 56),
            (63, 0),
            (31, 0),
            (56, 7),
            (24, 7),
        }
        assert flows == expected

    def test_eight_flows_two_per_hotspot(self, mesh):
        flows = default_hotspot_flows(mesh)
        assert len(flows) == 8
        destinations = [d for _, d in flows]
        assert all(destinations.count(d) == 2 for d in set(destinations))

    def test_scales_to_other_sizes(self):
        for width in (4, 16):
            mesh = Mesh2D(width)
            flows = default_hotspot_flows(mesh)
            assert len(flows) == 8
            for src, dst in flows:
                assert src != dst
                mesh.coords(src)
                mesh.coords(dst)


class TestGeneration:
    def test_hotspot_packets_unmeasured(self, mesh):
        traffic = make_traffic(mesh, hotspot_rate=1.0, background_rate=0.0)
        packets = [p for c in range(50) for p in traffic.generate(c, True)]
        assert packets
        assert all(p.flow == "hotspot" for p in packets)
        assert all(not p.measured for p in packets)

    def test_background_is_uniform_from_non_participants(self, mesh):
        traffic = make_traffic(mesh, hotspot_rate=0.0, background_rate=1.0)
        participants = {s for s, _ in traffic.flows} | {
            d for _, d in traffic.flows
        }
        packets = [p for c in range(30) for p in traffic.generate(c, True)]
        assert packets
        assert all(p.flow == "background" for p in packets)
        assert all(p.src not in participants for p in packets)

    def test_background_measured_in_window(self, mesh):
        traffic = make_traffic(mesh, hotspot_rate=0.0, background_rate=1.0)
        assert all(p.measured for p in traffic.generate(0, True))
        assert all(not p.measured for p in traffic.generate(1, False))

    def test_hotspot_flow_rate(self, mesh):
        traffic = make_traffic(mesh, hotspot_rate=0.5, background_rate=0.0)
        cycles = 2000
        count = sum(
            len(traffic.generate(c, True)) for c in range(cycles)
        )
        per_flow = count / (8 * cycles)
        assert per_flow == pytest.approx(0.5, rel=0.1)

    def test_custom_flows(self, mesh):
        traffic = make_traffic(
            mesh, hotspot_rate=1.0, background_rate=0.0, flows=[(1, 2)]
        )
        packets = traffic.generate(0, True)
        assert all((p.src, p.dst) == (1, 2) for p in packets)

    def test_degenerate_flow_rejected(self, mesh):
        with pytest.raises(TrafficError):
            make_traffic(mesh, flows=[(3, 3)])
