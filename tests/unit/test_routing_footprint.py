"""Unit tests for the Footprint routing algorithm (Algorithm 1)."""

import pytest

from repro.routing.footprint import FootprintRouting
from repro.routing.requests import Priority
from repro.topology.mesh import Mesh2D
from repro.topology.ports import Direction

from tests.conftest import FakeOutputView, make_context


@pytest.fixture
def algo():
    return FootprintRouting()


@pytest.fixture
def mesh():
    return Mesh2D(4)


def outputs_for(mesh, node, view_factory):
    """A full output-view map with default (all-idle) state."""
    return {d: view_factory() for d in mesh.router_ports(node)}


DST = 10  # from node 0: minimal ports EAST and SOUTH


class TestProperties:
    def test_flags(self, algo):
        assert algo.uses_escape
        assert algo.atomic_vc_reallocation
        assert algo.name == "footprint"

    def test_fully_adaptive_directions(self, algo, mesh):
        dirs = algo.allowed_directions(mesh, 0, DST, 0)
        assert set(dirs) == {Direction.EAST, Direction.SOUTH}

    def test_eject_at_destination(self, algo, mesh):
        outputs = outputs_for(mesh, DST, FakeOutputView)
        ctx = make_context(mesh, DST, DST, outputs)
        assert algo.select_output(ctx) is Direction.LOCAL
        reqs = algo.vc_requests_at(ctx, Direction.LOCAL)
        assert all(r.direction is Direction.LOCAL for r in reqs)
        assert reqs  # free sink VCs exist


class TestPortSelection:
    """Step 2: idle count, then (gated) footprint count, then random."""

    def test_more_idle_wins(self, algo, mesh):
        outputs = outputs_for(mesh, 0, FakeOutputView)
        outputs[Direction.EAST] = FakeOutputView(idle=[1, 2, 3])
        outputs[Direction.SOUTH] = FakeOutputView(idle=[1])
        ctx = make_context(mesh, 0, DST, outputs)
        assert algo.select_output(ctx) is Direction.EAST

    def test_footprint_breaks_tie_under_congestion(self, algo, mesh):
        # Both ports congested (idle below threshold); SOUTH carries a
        # footprint for the destination.
        outputs = outputs_for(mesh, 0, FakeOutputView)
        outputs[Direction.EAST] = FakeOutputView(idle=[1])
        outputs[Direction.SOUTH] = FakeOutputView(idle=[1], owners={2: DST})
        ctx = make_context(mesh, 0, DST, outputs, congestion_threshold=2)
        assert algo.select_output(ctx) is Direction.SOUTH

    def test_footprint_tiebreak_gated_off_without_congestion(
        self, algo, mesh
    ):
        # Idle counts tie at/above the threshold: §3.2 says footprints are
        # not considered; selection falls through to the random tie-break.
        outputs = outputs_for(mesh, 0, FakeOutputView)
        outputs[Direction.EAST] = FakeOutputView(idle=[1, 2, 3])
        outputs[Direction.SOUTH] = FakeOutputView(
            idle=[1, 2, 3], owners={0: DST}
        )
        choices = set()
        for seed in range(30):
            ctx = make_context(
                mesh, 0, DST, outputs, congestion_threshold=2, seed=seed
            )
            choices.add(algo.select_output(ctx))
        assert choices == {Direction.EAST, Direction.SOUTH}

    def test_single_minimal_port(self, algo, mesh):
        outputs = outputs_for(mesh, 0, FakeOutputView)
        ctx = make_context(mesh, 0, 3, outputs)  # same row: EAST only
        assert algo.select_output(ctx) is Direction.EAST


class TestVcRequestRegimes:
    """Step 3: the three congestion regimes of Algorithm 1."""

    def test_uncongested_flat_low(self, algo, mesh):
        outputs = outputs_for(mesh, 0, FakeOutputView)
        outputs[Direction.EAST] = FakeOutputView(idle=[1, 2, 3])
        ctx = make_context(mesh, 0, DST, outputs, congestion_threshold=2)
        reqs = algo.vc_requests(ctx, Direction.EAST)
        assert {r.vc for r in reqs} == {1, 2, 3}
        assert all(r.priority is Priority.LOW for r in reqs)

    def test_intermediate_established_highest(self, algo, mesh):
        outputs = outputs_for(mesh, 0, FakeOutputView)
        outputs[Direction.EAST] = FakeOutputView(idle=[2], established=[2])
        ctx = make_context(mesh, 0, DST, outputs, congestion_threshold=2)
        reqs = algo.vc_requests(ctx, Direction.EAST)
        assert [(r.vc, r.priority) for r in reqs] == [(2, Priority.HIGHEST)]

    def test_intermediate_fresh_footprint_at_high(self, algo, mesh):
        # VC 3 freed this cycle and last carried traffic to DST.
        outputs = outputs_for(mesh, 0, FakeOutputView)
        outputs[Direction.EAST] = FakeOutputView(
            idle=[2, 3], established=[2], owners={3: DST}, fresh={3}
        )
        ctx = make_context(mesh, 0, DST, outputs, congestion_threshold=2)
        reqs = {r.vc: r.priority for r in algo.vc_requests(ctx, Direction.EAST)}
        assert reqs[2] is Priority.HIGHEST
        assert reqs[3] is Priority.HIGH

    def test_intermediate_fresh_other_at_low(self, algo, mesh):
        outputs = outputs_for(mesh, 0, FakeOutputView)
        outputs[Direction.EAST] = FakeOutputView(
            idle=[2, 3], established=[2], owners={3: 99}, fresh={3}
        )
        ctx = make_context(mesh, 0, DST, outputs, congestion_threshold=2)
        reqs = {r.vc: r.priority for r in algo.vc_requests(ctx, Direction.EAST)}
        assert reqs[3] is Priority.LOW

    def test_saturated_with_busy_footprint_waits(self, algo, mesh):
        # No idle VCs, footprint busy elsewhere: wait — no requests at all.
        outputs = outputs_for(mesh, 0, FakeOutputView)
        outputs[Direction.EAST] = FakeOutputView(
            idle=[], established=[], owners={1: DST}
        )
        ctx = make_context(mesh, 0, DST, outputs)
        assert algo.vc_requests(ctx, Direction.EAST) == []

    def test_saturated_reclaims_freed_footprint_at_high(self, algo, mesh):
        outputs = outputs_for(mesh, 0, FakeOutputView)
        outputs[Direction.EAST] = FakeOutputView(
            idle=[1], established=[], owners={1: DST}, fresh={1}
        )
        ctx = make_context(mesh, 0, DST, outputs)
        reqs = algo.vc_requests(ctx, Direction.EAST)
        assert [(r.vc, r.priority) for r in reqs] == [(1, Priority.HIGH)]

    def test_saturated_does_not_take_other_flows_freed_vcs(self, algo, mesh):
        # A footprint exists (busy); VC 2 freed but belonged to another
        # flow: the packet must NOT claim it — that is the regulation.
        outputs = outputs_for(mesh, 0, FakeOutputView)
        outputs[Direction.EAST] = FakeOutputView(
            idle=[2], established=[], owners={1: DST, 2: 99}, fresh={2}
        )
        ctx = make_context(mesh, 0, DST, outputs)
        assert algo.vc_requests(ctx, Direction.EAST) == []

    def test_saturated_no_footprint_takes_any_freed_vc(self, algo, mesh):
        outputs = outputs_for(mesh, 0, FakeOutputView)
        outputs[Direction.EAST] = FakeOutputView(
            idle=[2], established=[], owners={2: 99}, fresh={2}
        )
        ctx = make_context(mesh, 0, DST, outputs)
        reqs = algo.vc_requests(ctx, Direction.EAST)
        assert [(r.vc, r.priority) for r in reqs] == [(2, Priority.LOW)]


class TestEscapeHandling:
    def test_escape_requested_at_lowest(self, algo, mesh):
        outputs = outputs_for(mesh, 0, FakeOutputView)
        ctx = make_context(mesh, 0, DST, outputs)
        reqs = algo.vc_requests_at(ctx, Direction.EAST)
        escape = [r for r in reqs if r.priority is Priority.LOWEST]
        assert len(escape) == 1
        assert escape[0].vc == 0
        # Escape rides the DOR port (EAST for 0 -> 10).
        assert escape[0].direction is Direction.EAST

    def test_escape_suppressed_while_waiting_on_footprint(self, algo, mesh):
        outputs = outputs_for(mesh, 0, FakeOutputView)
        outputs[Direction.EAST] = FakeOutputView(
            idle=[], established=[], owners={1: DST}
        )
        ctx = make_context(mesh, 0, DST, outputs)
        assert algo.vc_requests_at(ctx, Direction.EAST) == []

    def test_escape_present_when_no_footprint(self, algo, mesh):
        outputs = outputs_for(mesh, 0, FakeOutputView)
        outputs[Direction.EAST] = FakeOutputView(idle=[], established=[])
        ctx = make_context(mesh, 0, DST, outputs)
        reqs = algo.vc_requests_at(ctx, Direction.EAST)
        assert [r.priority for r in reqs] == [Priority.LOWEST]


class TestFootprintVcLimit:
    def test_limit_blocks_new_vcs(self, algo, mesh):
        # DST already owns 2 busy VCs; with limit 2 the packet may only
        # re-claim freed footprint VCs, not plain idle ones.
        outputs = outputs_for(mesh, 0, FakeOutputView)
        outputs[Direction.EAST] = FakeOutputView(
            idle=[3], established=[3], owners={1: DST, 2: DST}
        )
        ctx = make_context(
            mesh, 0, DST, outputs, footprint_vc_limit=2
        )
        assert algo.vc_requests(ctx, Direction.EAST) == []

    def test_below_limit_unrestricted(self, algo, mesh):
        outputs = outputs_for(mesh, 0, FakeOutputView)
        outputs[Direction.EAST] = FakeOutputView(
            idle=[3], established=[3], owners={1: DST}
        )
        ctx = make_context(
            mesh, 0, DST, outputs, footprint_vc_limit=2
        )
        assert algo.vc_requests(ctx, Direction.EAST) != []
