"""Unit tests for dimension-order routing."""

import pytest

from repro.routing.dor import DorRouting
from repro.routing.requests import Priority
from repro.topology.mesh import Mesh2D
from repro.topology.ports import Direction

from tests.conftest import FakeOutputView, make_context


@pytest.fixture
def algo():
    return DorRouting()


@pytest.fixture
def mesh():
    return Mesh2D(4)


def test_flags(algo):
    assert not algo.uses_escape
    assert not algo.atomic_vc_reallocation


def test_x_before_y(algo, mesh):
    outputs = {d: FakeOutputView(escape_vc=None) for d in mesh.router_ports(0)}
    ctx = make_context(mesh, 0, 10, outputs)
    assert algo.select_output(ctx) is Direction.EAST


def test_y_after_x_resolved(algo, mesh):
    outputs = {d: FakeOutputView(escape_vc=None) for d in mesh.router_ports(2)}
    ctx = make_context(mesh, 2, 10, outputs)
    assert algo.select_output(ctx) is Direction.SOUTH


def test_requests_every_free_vc_flat(algo, mesh):
    outputs = {d: FakeOutputView(escape_vc=None) for d in mesh.router_ports(0)}
    ctx = make_context(mesh, 0, 10, outputs)
    reqs = algo.vc_requests_at(ctx, Direction.EAST)
    assert {r.vc for r in reqs} == {0, 1, 2, 3}
    assert all(r.priority is Priority.LOW for r in reqs)
    assert all(r.direction is Direction.EAST for r in reqs)


def test_busy_vcs_not_requested(algo, mesh):
    outputs = {d: FakeOutputView(escape_vc=None) for d in mesh.router_ports(0)}
    outputs[Direction.EAST] = FakeOutputView(escape_vc=None, idle=[2])
    ctx = make_context(mesh, 0, 10, outputs)
    reqs = algo.vc_requests_at(ctx, Direction.EAST)
    assert [r.vc for r in reqs] == [2]


def test_allowed_directions_single(algo, mesh):
    assert algo.allowed_directions(mesh, 0, 10, 0) == [Direction.EAST]
    assert algo.allowed_directions(mesh, 9, 9, 0) == [Direction.LOCAL]


def test_full_route_is_deterministic_and_minimal(algo, mesh):
    for src in range(mesh.num_nodes):
        for dst in range(mesh.num_nodes):
            if src == dst:
                continue
            node = src
            hops = 0
            while node != dst:
                d = algo.allowed_directions(mesh, node, dst, src)[0]
                node = mesh.neighbor(node, d)
                hops += 1
                assert hops <= mesh.hop_distance(src, dst)
            assert hops == mesh.hop_distance(src, dst)
