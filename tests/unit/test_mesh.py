"""Unit tests for 2D-mesh geometry."""

import pytest

from repro.exceptions import TopologyError
from repro.topology.mesh import Mesh2D
from repro.topology.ports import Direction


class TestConstruction:
    def test_square_default(self):
        mesh = Mesh2D(4)
        assert mesh.width == 4
        assert mesh.height == 4
        assert mesh.num_nodes == 16

    def test_rectangular(self):
        mesh = Mesh2D(4, 2)
        assert mesh.num_nodes == 8
        assert mesh.coords(7) == (3, 1)

    @pytest.mark.parametrize("w,h", [(1, 4), (4, 1), (0, 0), (1, 1)])
    def test_too_small_rejected(self, w, h):
        with pytest.raises(TopologyError):
            Mesh2D(w, h)

    def test_equality_and_hash(self):
        assert Mesh2D(4) == Mesh2D(4, 4)
        assert Mesh2D(4) != Mesh2D(4, 2)
        assert hash(Mesh2D(8)) == hash(Mesh2D(8, 8))


class TestCoordinates:
    def test_row_major_numbering(self, mesh4):
        # Node 10 in a 4x4 mesh is at column 2, row 2 (paper's Fig. 2).
        assert mesh4.coords(10) == (2, 2)
        assert mesh4.node_at(2, 2) == 10

    def test_roundtrip(self, mesh4):
        for node in range(mesh4.num_nodes):
            assert mesh4.node_at(*mesh4.coords(node)) == node

    def test_out_of_range_node(self, mesh4):
        with pytest.raises(TopologyError):
            mesh4.coords(16)
        with pytest.raises(TopologyError):
            mesh4.coords(-1)

    def test_out_of_range_coords(self, mesh4):
        with pytest.raises(TopologyError):
            mesh4.node_at(4, 0)
        with pytest.raises(TopologyError):
            mesh4.node_at(0, -1)


class TestNeighbors:
    def test_interior_node(self, mesh4):
        # Node 5 = (1, 1).
        assert mesh4.neighbor(5, Direction.EAST) == 6
        assert mesh4.neighbor(5, Direction.WEST) == 4
        assert mesh4.neighbor(5, Direction.NORTH) == 1
        assert mesh4.neighbor(5, Direction.SOUTH) == 9

    def test_corner_edges(self, mesh4):
        assert mesh4.neighbor(0, Direction.WEST) is None
        assert mesh4.neighbor(0, Direction.NORTH) is None
        assert mesh4.neighbor(15, Direction.EAST) is None
        assert mesh4.neighbor(15, Direction.SOUTH) is None

    def test_local_raises(self, mesh4):
        with pytest.raises(TopologyError):
            mesh4.neighbor(0, Direction.LOCAL)

    def test_router_ports_corner(self, mesh4):
        ports = mesh4.router_ports(0)
        assert set(ports) == {Direction.EAST, Direction.SOUTH, Direction.LOCAL}
        assert ports[-1] is Direction.LOCAL

    def test_router_ports_interior(self, mesh4):
        assert len(mesh4.router_ports(5)) == 5

    def test_channel_count(self, mesh4):
        # A k x k mesh has 2 * 2 * k * (k-1) unidirectional links.
        assert len(mesh4.channels()) == 2 * 2 * 4 * 3

    def test_channels_are_symmetric(self, mesh4):
        channels = set(mesh4.channels())
        from repro.topology.ports import OPPOSITE

        for src, d, dst in channels:
            assert (dst, OPPOSITE[d], src) in channels


class TestMinimalRouting:
    def test_hop_distance(self, mesh4):
        assert mesh4.hop_distance(0, 15) == 6
        assert mesh4.hop_distance(5, 5) == 0
        assert mesh4.hop_distance(0, 3) == 3

    def test_minimal_directions_quadrant(self, mesh4):
        dirs = mesh4.minimal_directions(0, 10)
        assert dirs == [Direction.EAST, Direction.SOUTH]

    def test_minimal_directions_same_row(self, mesh4):
        assert mesh4.minimal_directions(0, 3) == [Direction.EAST]
        assert mesh4.minimal_directions(3, 0) == [Direction.WEST]

    def test_minimal_directions_same_column(self, mesh4):
        assert mesh4.minimal_directions(0, 12) == [Direction.SOUTH]
        assert mesh4.minimal_directions(12, 0) == [Direction.NORTH]

    def test_minimal_directions_at_destination(self, mesh4):
        assert mesh4.minimal_directions(7, 7) == []

    def test_dor_is_x_first(self, mesh4):
        # Paper's Fig. 2: f1 = n0 -> n10 goes east through n1, n2 first.
        assert mesh4.dor_direction(0, 10) is Direction.EAST
        assert mesh4.dor_direction(2, 10) is Direction.SOUTH

    def test_dor_at_destination(self, mesh4):
        assert mesh4.dor_direction(9, 9) is Direction.LOCAL

    def test_fig2_flows_converge_on_n1_n2(self, mesh4):
        # f1 = n0->n10 and f2 = n1->n15 share the link n1 -> n2 under DOR.
        assert mesh4.dor_direction(1, 10) is Direction.EAST
        assert mesh4.dor_direction(1, 15) is Direction.EAST

    def test_num_minimal_paths(self, mesh4):
        assert mesh4.num_minimal_paths(0, 3) == 1
        assert mesh4.num_minimal_paths(0, 5) == 2
        assert mesh4.num_minimal_paths(0, 15) == 20  # C(6, 3)

    def test_minimal_direction_cache_consistency(self, mesh4):
        first = mesh4.minimal_directions(0, 10)
        second = mesh4.minimal_directions(0, 10)
        assert first == second


class TestRepr:
    def test_repr(self, mesh4):
        assert "4x4" in repr(mesh4)
