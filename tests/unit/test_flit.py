"""Unit tests for packets and flits."""

import pytest

from repro.router.flit import Packet


def make_packet(size=3, **kw):
    defaults = dict(src=0, dst=5, size=size, creation_time=10)
    defaults.update(kw)
    return Packet(**defaults)


class TestPacket:
    def test_invalid_size(self):
        with pytest.raises(ValueError):
            make_packet(size=0)

    def test_unique_ids(self):
        assert make_packet().packet_id != make_packet().packet_id

    def test_latency_requires_ejection(self):
        p = make_packet()
        with pytest.raises(ValueError):
            p.latency
        p.ejection_time = 42
        assert p.latency == 32

    def test_network_latency(self):
        p = make_packet()
        p.injection_time = 15
        p.ejection_time = 40
        assert p.network_latency == 25
        assert p.latency == 30

    def test_network_latency_requires_injection(self):
        p = make_packet()
        p.ejection_time = 42
        with pytest.raises(ValueError):
            p.network_latency

    def test_default_flow_and_measured(self):
        p = make_packet()
        assert p.flow == "default"
        assert p.measured


class TestFlitSerialization:
    def test_multi_flit_structure(self):
        flits = make_packet(size=4).flits()
        assert len(flits) == 4
        assert flits[0].is_head and not flits[0].is_tail
        assert flits[-1].is_tail and not flits[-1].is_head
        assert all(not f.is_head and not f.is_tail for f in flits[1:-1])

    def test_single_flit_is_head_and_tail(self):
        (flit,) = make_packet(size=1).flits()
        assert flit.is_head and flit.is_tail

    def test_flits_share_packet(self):
        p = make_packet(size=2)
        flits = p.flits()
        assert all(f.packet is p for f in flits)
        assert [f.index for f in flits] == [0, 1]

    def test_flit_accessors(self):
        flit = make_packet(src=3, dst=9, size=1).flits()[0]
        assert flit.src == 3
        assert flit.dst == 9
        assert flit.hops == 0

    def test_repr_marks_kinds(self):
        p = make_packet(size=3)
        head, body, tail = p.flits()
        assert "H" in repr(head)
        assert "B" in repr(body)
        assert "T" in repr(tail)
        single = make_packet(size=1).flits()[0]
        assert "HT" in repr(single)
