"""Unit tests for the priority-based VC allocator."""

import random

from repro.router.allocator import allocate_vcs
from repro.router.flit import Packet
from repro.router.output import OutputPort
from repro.router.vcstate import InputVc, VcState
from repro.routing.requests import Priority, VcRequest
from repro.topology.ports import Direction


def make_outputs(num_vcs=4):
    return {
        d: OutputPort(
            direction=d,
            num_vcs=num_vcs,
            downstream_depth=4,
            fifo_depth=8,
            speedup=2,
            escape_vc=None,
            atomic_realloc=False,
        )
        for d in (Direction.EAST, Direction.SOUTH)
    }


def make_input(direction=Direction.WEST, index=0, dst=9):
    ivc = InputVc(direction, index, depth=4)
    ivc.push(Packet(src=0, dst=dst, size=1, creation_time=0).flits()[0])
    ivc.refresh_state()
    assert ivc.state is VcState.ROUTING
    return ivc


def req(vc, pri=Priority.LOW, direction=Direction.EAST):
    return VcRequest(direction, vc, pri)


def test_single_request_granted():
    outputs = make_outputs()
    ivc = make_input()
    grants = allocate_vcs([(ivc, [req(1)])], outputs, random.Random(1))
    assert len(grants) == 1
    assert grants[0].input_vc is ivc
    assert grants[0].direction is Direction.EAST
    assert grants[0].out_vc == 1


def test_busy_vc_not_granted():
    outputs = make_outputs()
    outputs[Direction.EAST].allocate(1, dst=5)
    ivc = make_input()
    grants = allocate_vcs([(ivc, [req(1)])], outputs, random.Random(1))
    assert grants == []


def test_priority_wins_contention():
    outputs = make_outputs()
    low = make_input(index=0)
    high = make_input(index=1)
    grants = allocate_vcs(
        [(low, [req(2, Priority.LOW)]), (high, [req(2, Priority.HIGH)])],
        outputs,
        random.Random(1),
    )
    assert len(grants) == 1
    assert grants[0].input_vc is high
    assert grants[0].priority is Priority.HIGH


def test_input_prefers_its_highest_priority_request():
    outputs = make_outputs()
    ivc = make_input()
    grants = allocate_vcs(
        [(ivc, [req(0, Priority.LOW), req(3, Priority.HIGHEST)])],
        outputs,
        random.Random(1),
    )
    assert len(grants) == 1
    assert grants[0].out_vc == 3


def test_one_grant_per_input_vc():
    outputs = make_outputs()
    ivc = make_input()
    grants = allocate_vcs(
        [(ivc, [req(v, Priority.LOW) for v in range(4)])],
        outputs,
        random.Random(1),
    )
    assert len(grants) == 1


def test_distinct_vcs_allow_parallel_grants():
    outputs = make_outputs()
    a = make_input(index=0)
    b = make_input(index=1)
    grants = allocate_vcs(
        [(a, [req(0)]), (b, [req(1)])], outputs, random.Random(1)
    )
    assert len(grants) == 2
    assert {g.out_vc for g in grants} == {0, 1}


def test_collision_on_same_vc_grants_exactly_one():
    outputs = make_outputs()
    a = make_input(index=0)
    b = make_input(index=1)
    grants = allocate_vcs(
        [(a, [req(2)]), (b, [req(2)])], outputs, random.Random(1)
    )
    assert len(grants) == 1


def test_requests_to_different_ports():
    outputs = make_outputs()
    a = make_input(index=0)
    b = make_input(index=1)
    grants = allocate_vcs(
        [
            (a, [req(0, direction=Direction.EAST)]),
            (b, [req(0, direction=Direction.SOUTH)]),
        ],
        outputs,
        random.Random(1),
    )
    assert len(grants) == 2
    assert {g.direction for g in grants} == {Direction.EAST, Direction.SOUTH}


def test_deterministic_given_seed():
    def run(seed):
        outputs = make_outputs()
        inputs = [make_input(index=i) for i in range(3)]
        grants = allocate_vcs(
            [(ivc, [req(v) for v in range(4)]) for ivc in inputs],
            outputs,
            random.Random(seed),
        )
        return sorted((g.input_vc.index, g.out_vc) for g in grants)

    assert run(5) == run(5)
