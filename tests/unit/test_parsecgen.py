"""Unit tests for the synthetic PARSEC-like trace generator."""

import pytest

from repro.exceptions import TrafficError
from repro.topology.mesh import Mesh2D
from repro.traffic.parsecgen import (
    PARSEC_PROFILES,
    WorkloadProfile,
    generate_parsec_trace,
    home_tiles,
    merge_traces,
)


@pytest.fixture
def mesh():
    return Mesh2D(8)


class TestProfiles:
    def test_all_fig10_workloads_present(self):
        for name in ("bodytrack", "fluidanimate", "x264", "canneal"):
            assert name in PARSEC_PROFILES

    def test_calibration_ordering(self):
        """Fig. 10's narrative: bodytrack lightest, fluidanimate heaviest."""
        intensities = {
            name: p.intensity * p.memory_phase_fraction
            for name, p in PARSEC_PROFILES.items()
        }
        assert intensities["bodytrack"] == min(intensities.values())
        assert intensities["fluidanimate"] == max(intensities.values())
        skews = {name: p.hotspot_skew for name, p in PARSEC_PROFILES.items()}
        assert skews["bodytrack"] == min(skews.values())
        assert skews["fluidanimate"] == max(skews.values())

    def test_profile_validation(self):
        with pytest.raises(TrafficError):
            WorkloadProfile("x", intensity=0.0, memory_phase_fraction=0.5,
                            burst_length=10, hotspot_skew=0.1)
        with pytest.raises(TrafficError):
            WorkloadProfile("x", intensity=0.5, memory_phase_fraction=0.5,
                            burst_length=0.5, hotspot_skew=0.1)
        with pytest.raises(TrafficError):
            WorkloadProfile("x", intensity=0.5, memory_phase_fraction=0.5,
                            burst_length=10, hotspot_skew=1.0)


class TestHomeTiles:
    def test_homes_on_east_west_edges(self, mesh):
        for tile in home_tiles(mesh):
            x, _ = mesh.coords(tile)
            assert x in (0, mesh.width - 1)

    def test_home_count(self, mesh):
        assert len(home_tiles(mesh)) == 2 * mesh.height


class TestGeneration:
    def test_deterministic(self, mesh):
        a = generate_parsec_trace("x264", mesh, 200, seed=4)
        b = generate_parsec_trace("x264", mesh, 200, seed=4)
        assert a == b

    def test_seed_changes_trace(self, mesh):
        a = generate_parsec_trace("x264", mesh, 200, seed=4)
        b = generate_parsec_trace("x264", mesh, 200, seed=5)
        assert a != b

    def test_unknown_workload(self, mesh):
        with pytest.raises(TrafficError):
            generate_parsec_trace("doom", mesh, 100)

    def test_events_sorted_and_valid(self, mesh):
        trace = generate_parsec_trace("canneal", mesh, 300, seed=1)
        assert trace
        cycles = [e.cycle for e in trace]
        assert cycles == sorted(cycles)
        for e in trace:
            assert 0 <= e.src < mesh.num_nodes
            assert 0 <= e.dst < mesh.num_nodes
            assert e.src != e.dst

    def test_request_reply_structure(self, mesh):
        trace = generate_parsec_trace("ferret", mesh, 300, seed=1)
        homes = set(home_tiles(mesh))
        requests = [e for e in trace if e.size == 1 and e.dst in homes]
        replies = [e for e in trace if e.size > 1]
        assert requests and replies
        assert all(e.src in homes for e in replies)

    def test_relative_volume_matches_profiles(self, mesh):
        light = generate_parsec_trace("bodytrack", mesh, 500, seed=2)
        heavy = generate_parsec_trace("fluidanimate", mesh, 500, seed=2)
        assert len(heavy) > 1.5 * len(light)

    def test_scale_multiplies_volume(self, mesh):
        base = generate_parsec_trace("x264", mesh, 500, seed=2, scale=1.0)
        half = generate_parsec_trace("x264", mesh, 500, seed=2, scale=0.5)
        assert len(half) < len(base)


class TestMerge:
    def test_merge_preserves_order_and_count(self, mesh):
        a = generate_parsec_trace("x264", mesh, 200, seed=1)
        b = generate_parsec_trace("canneal", mesh, 200, seed=2)
        merged = merge_traces(a, b)
        assert len(merged) == len(a) + len(b)
        cycles = [e.cycle for e in merged]
        assert cycles == sorted(cycles)
