"""Unit tests for the VC router pipeline."""

import pytest

from repro.router.flit import Packet
from repro.router.router import BlockingStats, Router
from repro.router.vcstate import VcState
from repro.routing.registry import create_routing
from repro.sim.config import SimulationConfig
from repro.sim.rng import RngStreams
from repro.topology.mesh import Mesh2D
from repro.topology.ports import Direction


def make_router(node=5, routing="footprint", num_vcs=4, **cfg):
    config = SimulationConfig(
        width=4, num_vcs=num_vcs, routing=routing, traffic="uniform", **cfg
    )
    mesh = Mesh2D(4)
    return Router(
        node,
        mesh,
        config,
        create_routing(routing),
        RngStreams(9).stream(f"router/{node}"),
    )


def head_flit(src=4, dst=6, size=1):
    return Packet(src=src, dst=dst, size=size, creation_time=0).flits()[0]


class TestConstruction:
    def test_ports_match_mesh(self):
        interior = make_router(node=5)
        assert set(interior.input_vcs) == set(interior.output_ports)
        assert len(interior.input_vcs) == 5
        corner = make_router(node=0)
        assert len(corner.input_vcs) == 3

    def test_escape_vc_only_for_duato_algorithms(self):
        fp = make_router(routing="footprint")
        assert fp.output_ports[Direction.EAST].escape_vc == 0
        assert fp.output_ports[Direction.LOCAL].escape_vc is None
        dor = make_router(routing="dor")
        assert dor.output_ports[Direction.EAST].escape_vc is None


class TestPipeline:
    def test_flit_flows_through(self):
        router = make_router(node=5)
        router.receive_flit(Direction.WEST, 1, head_flit(src=4, dst=6))
        assert router.inflight == 1
        router.route_and_allocate()
        ivc = router.input_vcs[Direction.WEST][1]
        assert ivc.state is VcState.ACTIVE
        assert ivc.out_direction is Direction.EAST
        credits = router.switch_traversal()
        assert credits == [(Direction.WEST, 1)]
        sent = router.link_traversal()
        assert len(sent) == 1
        direction, _vc, flit = sent[0]
        assert direction is Direction.EAST
        assert flit.dst == 6
        assert router.inflight == 0

    def test_ejection_at_destination(self):
        router = make_router(node=5)
        router.receive_flit(Direction.WEST, 0, head_flit(src=4, dst=5))
        router.route_and_allocate()
        router.switch_traversal()
        sent = router.link_traversal()
        assert sent[0][0] is Direction.LOCAL

    def test_commitment_held_across_cycles(self):
        router = make_router(node=5)
        # Saturate EAST so the packet cannot win a VC immediately.
        east = router.output_ports[Direction.EAST]
        for v in range(4):
            east.allocate(v, dst=9)
        south = router.output_ports[Direction.SOUTH]
        for v in range(4):
            south.allocate(v, dst=9)
        router.receive_flit(Direction.WEST, 1, head_flit(src=4, dst=10))
        router.route_and_allocate()
        ivc = router.input_vcs[Direction.WEST][1]
        committed = ivc.committed_dir
        assert committed in (Direction.EAST, Direction.SOUTH)
        router.route_and_allocate()
        assert ivc.committed_dir is committed

    def test_quiescent_router_is_cheap(self):
        router = make_router()
        assert router.link_traversal() == []
        assert router.switch_traversal() == []
        router.route_and_allocate()  # must not raise
        assert router.occupancy() == 0

    def test_speedup_allows_two_flits_per_output(self):
        router = make_router(node=5, routing="dor")
        # Two single-flit packets from different inputs to the same output.
        router.receive_flit(Direction.WEST, 0, head_flit(src=4, dst=6))
        router.receive_flit(Direction.NORTH, 0, head_flit(src=1, dst=6))
        # Two VA rounds: the random VC picks may collide in the first.
        router.route_and_allocate()
        router.route_and_allocate()
        credits = router.switch_traversal()
        assert len(credits) == 2
        # The link still drains one flit per cycle.
        assert len(router.link_traversal()) == 1
        assert len(router.link_traversal()) == 1


class TestBlockingStats:
    def test_purity_math(self):
        stats = BlockingStats()
        stats.blocking_events = 4
        stats.busy_vc_samples = 10
        stats.footprint_vc_samples = 4
        assert stats.purity == 0.4
        assert stats.hol_degree == pytest.approx(2.4)

    def test_empty_purity(self):
        assert BlockingStats().purity == 0.0
        assert BlockingStats().hol_degree == 0.0

    def test_merge(self):
        a = BlockingStats()
        a.blocking_events = 1
        a.busy_vc_samples = 2
        b = BlockingStats()
        b.blocking_events = 3
        b.footprint_vc_samples = 5
        a.merge(b)
        assert a.blocking_events == 4
        assert a.busy_vc_samples == 2
        assert a.footprint_vc_samples == 5

    def test_sampling_counts_blocked_packets(self):
        router = make_router(node=5, routing="dor")
        router.enable_blocking_sampling(True)
        east = router.output_ports[Direction.EAST]
        for v in range(4):
            east.allocate(v, dst=6)
        router.receive_flit(Direction.WEST, 1, head_flit(src=4, dst=6))
        router.route_and_allocate()
        assert router.blocking.blocking_events == 1
        # All busy VCs at the port carry the same destination: pure.
        assert router.blocking.purity == 1.0

    def test_sampling_disabled_by_default(self):
        router = make_router(node=5, routing="dor")
        east = router.output_ports[Direction.EAST]
        for v in range(4):
            east.allocate(v, dst=6)
        router.receive_flit(Direction.WEST, 1, head_flit(src=4, dst=6))
        router.route_and_allocate()
        assert router.blocking.blocking_events == 0
