"""Unit tests for the single-simulation runner and Scale presets."""

from repro.harness.experiments import BENCH, PAPER, SMOKE, Scale
from repro.harness.runner import run_simulation
from repro.sim.config import SimulationConfig


def test_run_simulation_quiet():
    config = SimulationConfig(
        width=4,
        num_vcs=2,
        routing="dor",
        injection_rate=0.05,
        warmup_cycles=20,
        measure_cycles=40,
        drain_cycles=300,
    )
    result = run_simulation(config)
    assert result.drained


def test_run_simulation_verbose(capsys):
    config = SimulationConfig(
        width=4,
        num_vcs=2,
        routing="dor",
        injection_rate=0.05,
        warmup_cycles=10,
        measure_cycles=20,
        drain_cycles=200,
    )
    run_simulation(config, verbose=True)
    err = capsys.readouterr().err
    assert "cycles" in err


class TestScale:
    def test_presets_ordered_by_effort(self):
        assert SMOKE.measure < BENCH.measure < PAPER.measure
        assert SMOKE.width <= BENCH.width == PAPER.width
        assert len(SMOKE.rates) <= len(BENCH.rates) <= len(PAPER.rates)

    def test_config_builder_applies_scale(self):
        config = BENCH.config(routing="dbar", traffic="shuffle")
        assert config.width == BENCH.width
        assert config.num_vcs == BENCH.num_vcs
        assert config.warmup_cycles == BENCH.warmup
        assert config.routing == "dbar"

    def test_config_builder_overrides(self):
        config = SMOKE.config(num_vcs=8)
        assert config.num_vcs == 8
        assert config.width == SMOKE.width

    def test_custom_scale(self):
        scale = Scale(name="tiny", width=2, num_vcs=2, warmup=1,
                      measure=2, drain=3, rates=(0.1,))
        config = scale.config()
        assert config.num_nodes == 4
        assert config.max_cycles == 6
