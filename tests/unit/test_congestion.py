"""Unit tests for congestion-tree extraction."""

import pytest

from repro.core.congestion import CongestionTree, extract_congestion_tree
from repro.sim.config import SimulationConfig
from repro.sim.engine import Simulator
from repro.topology.ports import Direction


class TestCongestionTreeContainer:
    def test_empty_tree(self):
        tree = CongestionTree(destination=5)
        assert tree.num_branches == 0
        assert tree.total_vcs == 0
        assert tree.max_thickness == 0
        assert tree.mean_thickness == 0.0

    def test_metrics(self):
        tree = CongestionTree(destination=5)
        tree.branches[(0, Direction.EAST)] = {0, 1, 2}
        tree.branches[(1, Direction.EAST)] = {3}
        assert tree.num_branches == 2
        assert tree.total_vcs == 4
        assert tree.max_thickness == 3
        assert tree.mean_thickness == 2.0

    def test_describe(self):
        tree = CongestionTree(destination=5)
        tree.branches[(0, Direction.EAST)] = {1}
        text = tree.describe()
        assert "destination 5" in text
        assert "n0.EAST" in text


class TestExtraction:
    def make_sim(self):
        config = SimulationConfig(
            width=4,
            num_vcs=4,
            routing="footprint",
            traffic="uniform",
            injection_rate=0.0,
            warmup_cycles=0,
            measure_cycles=10,
            drain_cycles=0,
        )
        return Simulator(config)

    def test_empty_network_empty_tree(self):
        sim = self.make_sim()
        tree = extract_congestion_tree(sim, 5)
        assert tree.num_branches == 0

    def test_owner_table_contributes(self):
        sim = self.make_sim()
        sim.routers[0].output_ports[Direction.EAST].allocate(2, dst=5)
        tree = extract_congestion_tree(sim, 5)
        assert tree.branches == {(0, Direction.EAST): {2}}

    def test_stale_owner_not_counted(self):
        sim = self.make_sim()
        port = sim.routers[0].output_ports[Direction.EAST]
        port.allocate(2, dst=5)
        # Simulate full drain: release keeps the stale owner only.
        port._release(2)
        tree = extract_congestion_tree(sim, 5)
        assert tree.num_branches == 0

    def test_buffered_flits_contribute(self):
        from repro.router.flit import Packet

        sim = self.make_sim()
        flit = Packet(src=0, dst=5, size=1, creation_time=0).flits()[0]
        # A flit destined to 5 buffered in router 1's WEST input VC 3
        # marks the upstream channel (router 0 EAST output).
        sim.routers[1].receive_flit(Direction.WEST, 3, flit)
        tree = extract_congestion_tree(sim, 5)
        assert (0, Direction.EAST) in tree.branches
        assert 3 in tree.branches[(0, Direction.EAST)]

    def test_other_destination_ignored(self):
        sim = self.make_sim()
        sim.routers[0].output_ports[Direction.EAST].allocate(2, dst=9)
        tree = extract_congestion_tree(sim, 5)
        assert tree.num_branches == 0

    def test_local_port_filter(self):
        sim = self.make_sim()
        sim.routers[5].output_ports[Direction.LOCAL].allocate(1, dst=5)
        with_local = extract_congestion_tree(sim, 5, include_local=True)
        without = extract_congestion_tree(sim, 5, include_local=False)
        assert (5, Direction.LOCAL) in with_local.branches
        assert (5, Direction.LOCAL) not in without.branches
