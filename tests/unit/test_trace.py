"""Unit tests for trace-driven traffic."""

import random

import pytest

from repro.exceptions import TrafficError
from repro.sim.config import SimulationConfig
from repro.topology.mesh import Mesh2D
from repro.traffic.trace import (
    TraceEvent,
    TraceTraffic,
    load_trace,
    save_trace,
)


@pytest.fixture
def mesh():
    return Mesh2D(4)


def make_traffic(mesh, events):
    config = SimulationConfig(width=mesh.width, traffic="trace", trace=events)
    return TraceTraffic(events, config, mesh, random.Random(1))


class TestTraceEvent:
    def test_valid(self):
        e = TraceEvent(cycle=5, src=0, dst=3, size=2, flow="x")
        assert e.cycle == 5

    def test_invalid_cycle(self):
        with pytest.raises(TrafficError):
            TraceEvent(cycle=-1, src=0, dst=1)

    def test_invalid_size(self):
        with pytest.raises(TrafficError):
            TraceEvent(cycle=0, src=0, dst=1, size=0)


class TestReplay:
    def test_events_fire_at_their_cycle(self, mesh):
        traffic = make_traffic(
            mesh, [TraceEvent(2, 0, 5), TraceEvent(4, 1, 6)]
        )
        assert traffic.generate(0, True) == []
        assert len(traffic.generate(2, True)) == 1
        assert len(traffic.generate(3, True)) == 0
        assert len(traffic.generate(4, True)) == 1
        assert traffic.remaining == 0

    def test_late_start_catches_up(self, mesh):
        traffic = make_traffic(
            mesh, [TraceEvent(1, 0, 5), TraceEvent(2, 1, 6)]
        )
        packets = traffic.generate(10, True)
        assert len(packets) == 2

    def test_unsorted_events_are_sorted(self, mesh):
        traffic = make_traffic(
            mesh, [TraceEvent(9, 0, 5), TraceEvent(1, 1, 6)]
        )
        first = traffic.generate(1, True)
        assert len(first) == 1
        assert first[0].src == 1

    def test_packet_fields(self, mesh):
        traffic = make_traffic(
            mesh, [TraceEvent(0, 2, 7, size=3, flow="app")]
        )
        (packet,) = traffic.generate(0, True)
        assert (packet.src, packet.dst, packet.size) == (2, 7, 3)
        assert packet.flow == "app"
        assert packet.measured

    def test_out_of_mesh_event_rejected(self, mesh):
        with pytest.raises(TrafficError):
            make_traffic(mesh, [TraceEvent(0, 0, 99)])

    def test_self_addressed_rejected(self, mesh):
        with pytest.raises(TrafficError):
            make_traffic(mesh, [TraceEvent(0, 3, 3)])


class TestFileFormat:
    def test_roundtrip(self, tmp_path):
        events = [
            TraceEvent(0, 1, 2, 1, "a"),
            TraceEvent(5, 3, 4, 6, "b"),
        ]
        path = tmp_path / "trace.txt"
        save_trace(events, path)
        assert load_trace(path) == events

    def test_comments_and_defaults(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("# header\n3 1 2\n\n7 0 5 4  # inline\n")
        events = load_trace(path)
        assert events == [
            TraceEvent(3, 1, 2, 1, "trace"),
            TraceEvent(7, 0, 5, 4, "trace"),
        ]

    def test_short_line_rejected(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("3 1\n")
        with pytest.raises(TrafficError):
            load_trace(path)

    def test_loaded_events_sorted(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("9 0 1\n2 1 0\n")
        events = load_trace(path)
        assert [e.cycle for e in events] == [2, 9]
