"""Unit tests for the two-level adaptiveness metrics (paper §3.1)."""

from fractions import Fraction

import pytest

from repro.core.adaptiveness import (
    _minimal_dag_nodes,
    mean_port_adaptiveness,
    port_adaptiveness,
    qualitative_comparison,
    vc_adaptiveness,
)
from repro.routing.registry import create_routing
from repro.topology.mesh import Mesh2D
from repro.topology.torus import Torus2D


@pytest.fixture
def mesh():
    return Mesh2D(4)


class TestPortAdaptiveness:
    def test_fully_adaptive_is_one(self, mesh):
        algo = create_routing("footprint")
        for src, dst in [(0, 10), (0, 15), (5, 12)]:
            assert port_adaptiveness(algo, mesh, src, dst) == 1
            assert mean_port_adaptiveness(algo, mesh, src, dst) == 1.0

    def test_dor_single_port(self, mesh):
        algo = create_routing("dor")
        # Two minimal ports exist from 0 towards 10 but DOR allows one.
        assert port_adaptiveness(algo, mesh, 0, 10) == Fraction(1, 2)

    def test_single_minimal_port_pairs_are_one(self, mesh):
        algo = create_routing("dor")
        assert port_adaptiveness(algo, mesh, 0, 3) == 1

    def test_oddeven_between_dor_and_full(self, mesh):
        dor = create_routing("dor")
        oe = create_routing("oddeven")
        full = create_routing("dbar")
        pairs = [
            (s, d)
            for s in range(mesh.num_nodes)
            for d in range(mesh.num_nodes)
            if s != d
        ]
        mean = lambda a: sum(  # noqa: E731
            mean_port_adaptiveness(a, mesh, s, d) for s, d in pairs
        ) / len(pairs)
        assert mean(dor) < mean(oe) < mean(full)
        assert mean(full) == 1.0

    def test_at_destination(self, mesh):
        assert port_adaptiveness(create_routing("dor"), mesh, 5, 5) == 1


class TestTorusDag:
    """The minimal-path DAG must follow the topology's productive
    directions, not the mesh bounding rectangle (which names the
    complementary node set when the shorter ring path wraps)."""

    def test_wrap_pair_uses_wrap_side_nodes(self):
        torus = Torus2D(4)
        # (0,0) -> (3,1) minimally goes WEST across the wrap then SOUTH:
        # the DAG is {0, 3, 4}, not the 0..3 x 0..1 rectangle.
        assert _minimal_dag_nodes(torus, 0, 7) == [0, 3, 4]

    def test_all_dag_nodes_lie_on_minimal_paths(self):
        torus = Torus2D(4)
        for src in range(torus.num_nodes):
            for dst in range(torus.num_nodes):
                base = torus.hop_distance(src, dst)
                nodes = _minimal_dag_nodes(torus, src, dst)
                assert dst not in nodes
                for node in nodes:
                    assert (
                        torus.hop_distance(src, node)
                        + torus.hop_distance(node, dst)
                        == base
                    )

    def test_mesh_dag_matches_bounding_rectangle(self):
        mesh = Mesh2D(3, 5)
        for src in range(mesh.num_nodes):
            for dst in range(mesh.num_nodes):
                sx, sy = mesh.coords(src)
                dx, dy = mesh.coords(dst)
                rectangle = sorted(
                    mesh.node_at(x, y)
                    for x in range(min(sx, dx), max(sx, dx) + 1)
                    for y in range(min(sy, dy), max(sy, dy) + 1)
                    if (x, y) != (dx, dy)
                )
                assert _minimal_dag_nodes(mesh, src, dst) == rectangle

    def test_fully_adaptive_is_one_on_torus(self):
        torus = Torus2D(4)
        algo = create_routing("footprint")
        for src, dst in [(0, 7), (0, 10), (5, 12)]:
            assert mean_port_adaptiveness(algo, torus, src, dst) == 1.0


class TestVcAdaptiveness:
    def test_duato_based(self):
        algo = create_routing("footprint")
        assert vc_adaptiveness(algo, 10) == Fraction(9, 10)
        assert vc_adaptiveness(algo, 10, is_escape_channel=True) == 1

    def test_oblivious_is_zero(self):
        assert vc_adaptiveness(create_routing("dor"), 10) == 0
        assert vc_adaptiveness(create_routing("oddeven"), 10) == 0

    def test_xordet_static_is_zero(self):
        assert vc_adaptiveness(create_routing("dbar+xordet"), 10) == 0


class TestTable1:
    def test_qualitative_comparison_ranks_footprint_top(self, mesh):
        algorithms = {
            name: create_routing(name)
            for name in ("dor", "oddeven", "dbar", "footprint")
        }
        table = qualitative_comparison(algorithms, mesh, num_vcs=4)
        assert table["footprint"]["P_adapt"] == 1.0
        assert table["dbar"]["P_adapt"] == 1.0
        assert table["dor"]["P_adapt"] < table["oddeven"]["P_adapt"] < 1.0
        assert table["footprint"]["VC_adapt"] == 0.75
        assert table["dor"]["VC_adapt"] == 0.0
