"""Unit tests for tuner scenarios, rungs, and objective scoring."""

import math

import pytest

from repro.core.cost import CostModel
from repro.harness.cache import config_cache_key
from repro.metrics.stats import LatencyStats
from repro.router.router import BlockingStats
from repro.sim.config import SimulationConfig
from repro.sim.results import SimulationResult
from repro.tuner import TunerError
from repro.tuner.objectives import (
    FLIT_BITS,
    FULL_RUNG,
    Rung,
    Scenario,
    config_cost_bits,
    default_rungs,
    eval_from_results,
    make_scenario,
    tasks_for,
)
from repro.tuner.space import ParamSpace


BASE = SimulationConfig(
    width=4,
    num_vcs=4,
    routing="footprint",
    injection_rate=0.02,
    warmup_cycles=40,
    measure_cycles=100,
    drain_cycles=200,
)


def _result(config, latencies, accepted, created=10, ejected=10):
    stats = LatencyStats()
    stats.extend(latencies)
    return SimulationResult(
        config=config,
        cycles_run=config.warmup_cycles + config.measure_cycles,
        latency=stats,
        latency_by_flow={},
        accepted_flits=accepted,
        offered_flits=accepted,
        measured_created=created,
        measured_ejected=ejected,
        blocking=BlockingStats(),
    )


# ----------------------------------------------------------------------
# Cost objective
# ----------------------------------------------------------------------
def test_cost_bits_buffers_only_for_oblivious_routing():
    config = BASE.with_(routing="dor", num_vcs=4, vc_buffer_depth=4)
    assert config_cost_bits(config) == 4 * 4 * FLIT_BITS


def test_cost_bits_adds_congestion_and_footprint_state():
    dor = config_cost_bits(BASE.with_(routing="dor"))
    dbar = config_cost_bits(BASE.with_(routing="dbar"))
    footprint = config_cost_bits(BASE.with_(routing="footprint"))
    model = CostModel(BASE.num_nodes, BASE.num_vcs)
    assert dbar == dor + model.idle_counter_bits
    assert footprint == dbar + model.owner_table_bits + model.state_bits


def test_cost_bits_scales_with_buffering():
    small = config_cost_bits(BASE.with_(num_vcs=2, vc_buffer_depth=2))
    big = config_cost_bits(BASE.with_(num_vcs=8, vc_buffer_depth=4))
    assert big > small


# ----------------------------------------------------------------------
# Scenario
# ----------------------------------------------------------------------
def test_scenario_validation():
    with pytest.raises(TunerError):
        Scenario("s", BASE, rates=())
    with pytest.raises(TunerError):
        Scenario("s", BASE, rates=(0.2, 0.1))
    with pytest.raises(TunerError):
        Scenario("s", BASE, rates=(0.1, 0.1))
    with pytest.raises(TunerError):
        Scenario("s", BASE, rates=(0.1, 0.2), latency_rate=0.15)
    with pytest.raises(TunerError):
        Scenario("s", BASE, rates=(0.1,), rate_field="warmup_cycles")


def test_scenario_latency_rate_defaults_to_middle():
    scenario = Scenario("s", BASE, rates=(0.1, 0.2, 0.3))
    assert scenario.latency_rate == 0.2


def test_make_scenario_hotspot_sweeps_hotspot_rate():
    scenario = make_scenario("hotspot", width=4)
    assert scenario.rate_field == "hotspot_rate"
    assert scenario.base.traffic == "hotspot"
    uniform = make_scenario("uniform", width=4)
    assert uniform.rate_field == "injection_rate"


def test_scenario_roundtrip():
    scenario = make_scenario("transpose", width=4, rates=(0.05, 0.1))
    again = Scenario.from_dict(scenario.to_dict())
    assert again == scenario


# ----------------------------------------------------------------------
# Rungs
# ----------------------------------------------------------------------
def test_rung_scales_cycles_with_floors():
    rung = Rung("probe", 0.25)
    scaled = rung.apply(BASE)
    assert scaled.warmup_cycles == 10
    assert scaled.measure_cycles == 25
    assert scaled.drain_cycles == 50
    # Floors hold for very short bases.
    tiny = rung.apply(
        BASE.with_(warmup_cycles=8, measure_cycles=12, drain_cycles=20)
    )
    assert tiny.warmup_cycles == 10
    assert tiny.measure_cycles == 20
    assert tiny.drain_cycles == 50


def test_rung_width_override_changes_cache_key():
    big = SimulationConfig(
        width=8,
        num_vcs=4,
        routing="dor",
        injection_rate=0.05,
        warmup_cycles=40,
        measure_cycles=100,
        drain_cycles=200,
    )
    rung = Rung("probe", 0.25, width=4)
    scaled = rung.apply(big)
    assert scaled.width == 4
    assert config_cache_key(scaled) != config_cache_key(big)
    assert FULL_RUNG.apply(big) is big


def test_rung_validation():
    with pytest.raises(TunerError):
        Rung("bad", 0.0)
    with pytest.raises(TunerError):
        Rung("bad", 1.5)
    with pytest.raises(TunerError):
        Rung("bad", 0.5, width=1)


def test_default_rungs_end_full_fidelity():
    rungs = default_rungs(BASE)
    assert rungs[-1].full_fidelity
    assert rungs[0].cycle_scale < rungs[-1].cycle_scale


# ----------------------------------------------------------------------
# Evaluation
# ----------------------------------------------------------------------
def _scenario():
    return Scenario("s", BASE, rates=(0.05, 0.1, 0.2), latency_rate=0.1)


def test_tasks_for_covers_ladder_with_distinct_rungs():
    scenario = _scenario()
    space = ParamSpace.default()
    candidate = space.default_candidate()
    full = tasks_for(scenario, space, candidate, FULL_RUNG)
    probe = tasks_for(scenario, space, candidate, Rung("probe", 0.25))
    assert len(full) == len(scenario.rates)
    full_keys = {config_cache_key(t.resolved_config()) for t in full}
    probe_keys = {config_cache_key(t.resolved_config()) for t in probe}
    assert not full_keys & probe_keys  # rung configs never collide


def test_eval_scores_objectives():
    scenario = _scenario()
    space = ParamSpace.default()
    candidate = space.default_candidate()
    configs = [
        t.resolved_config()
        for t in tasks_for(scenario, space, candidate, FULL_RUNG)
    ]
    window = BASE.measure_cycles * BASE.num_nodes
    results = [
        _result(configs[0], [10, 10], int(0.05 * window)),
        _result(configs[1], [12, 12], int(0.10 * window)),
        # Saturated: latency > 3x the zero-load reference.
        _result(configs[2], [50, 50], int(0.12 * window)),
    ]
    evaluation = eval_from_results(scenario, candidate, FULL_RUNG, results)
    assert evaluation.avg_latency == 12.0
    # Best accepted rate over the stable (non-saturated) prefix.
    assert evaluation.saturation_throughput == pytest.approx(
        results[1].accepted_rate
    )
    assert evaluation.points[2].saturated
    assert not evaluation.points[1].saturated
    assert evaluation.cost_bits == config_cost_bits(configs[1])
    assert evaluation.config == configs[1]


def test_eval_nan_reference_saturates_everything():
    scenario = _scenario()
    space = ParamSpace.default()
    candidate = space.default_candidate()
    configs = [
        t.resolved_config()
        for t in tasks_for(scenario, space, candidate, FULL_RUNG)
    ]
    results = [
        _result(c, [], 0, created=5, ejected=0) for c in configs
    ]
    evaluation = eval_from_results(scenario, candidate, FULL_RUNG, results)
    assert math.isinf(evaluation.avg_latency)
    assert evaluation.saturation_throughput == 0.0
    assert all(p.saturated for p in evaluation.points)


def test_eval_undrained_point_is_saturated():
    scenario = _scenario()
    space = ParamSpace.default()
    candidate = space.default_candidate()
    configs = [
        t.resolved_config()
        for t in tasks_for(scenario, space, candidate, FULL_RUNG)
    ]
    results = [
        _result(configs[0], [10], 5),
        _result(configs[1], [11], 8, created=10, ejected=9),  # undrained
        _result(configs[2], [12], 9),
    ]
    evaluation = eval_from_results(scenario, candidate, FULL_RUNG, results)
    assert not evaluation.points[0].saturated
    assert evaluation.points[1].saturated
    # Stable prefix stops at the first saturated point.
    assert evaluation.saturation_throughput == pytest.approx(
        results[0].accepted_rate
    )


def test_eval_roundtrip_dict():
    scenario = _scenario()
    space = ParamSpace.default()
    candidate = space.default_candidate()
    configs = [
        t.resolved_config()
        for t in tasks_for(scenario, space, candidate, FULL_RUNG)
    ]
    results = [_result(c, [10, 14], 6) for c in configs]
    evaluation = eval_from_results(scenario, candidate, FULL_RUNG, results)
    again = type(evaluation).from_dict(evaluation.to_dict())
    assert again.candidate == evaluation.candidate
    assert again.avg_latency == evaluation.avg_latency
    assert again.cost_bits == evaluation.cost_bits
    assert again.points == evaluation.points
    assert again.config == evaluation.config


def test_eval_result_count_mismatch_raises():
    scenario = _scenario()
    space = ParamSpace.default()
    candidate = space.default_candidate()
    with pytest.raises(TunerError):
        eval_from_results(scenario, candidate, FULL_RUNG, [])
