"""Unit tests for latency statistics."""

import math

import pytest

from repro.metrics.stats import LatencyStats


def filled(values):
    stats = LatencyStats()
    stats.extend(values)
    return stats


class TestBasics:
    def test_empty(self):
        stats = LatencyStats()
        assert stats.count == 0
        assert math.isnan(stats.mean)
        # Regression: empty stddev used to report 0.0 while mean reported
        # NaN; empty aggregates must agree that there is no data.
        assert math.isnan(stats.stddev)
        with pytest.raises(ValueError):
            stats.minimum
        with pytest.raises(ValueError):
            stats.percentile(50)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            LatencyStats().add(-1)

    def test_mean_min_max(self):
        stats = filled([1, 2, 3, 4])
        assert stats.mean == 2.5
        assert stats.minimum == 1
        assert stats.maximum == 4

    def test_single_sample(self):
        stats = filled([7])
        assert stats.mean == 7
        assert stats.percentile(50) == 7
        assert stats.stddev == 0.0


class TestPercentiles:
    def test_median(self):
        assert filled(range(1, 101)).percentile(50) == 50

    def test_extremes(self):
        stats = filled(range(1, 101))
        assert stats.percentile(0) == 1
        assert stats.percentile(100) == 100

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            filled([1]).percentile(101)

    def test_order_independent(self):
        a = filled([5, 1, 9, 3])
        b = filled([1, 3, 5, 9])
        assert a.percentile(75) == b.percentile(75)

    def test_adding_after_query(self):
        stats = filled([1, 2, 3])
        stats.percentile(50)
        stats.add(100)
        assert stats.maximum == 100
        assert stats.percentile(100) == 100


class TestAggregation:
    def test_stddev(self):
        stats = filled([2, 4, 4, 4, 5, 5, 7, 9])
        assert stats.stddev == pytest.approx(2.138, abs=0.01)

    def test_merge(self):
        a = filled([1, 2])
        b = filled([3, 4])
        a.merge(b)
        assert a.count == 4
        assert a.mean == 2.5

    def test_repr(self):
        assert "empty" in repr(LatencyStats())
        assert "n=3" in repr(filled([1, 2, 3]))
