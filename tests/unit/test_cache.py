"""Unit tests for the persistent result cache."""

import dataclasses
import json
import random

import pytest

from repro.faults import FaultEvent, FaultSchedule
from repro.harness.cache import (
    CACHE_ENV,
    DEFAULT_CACHE_DIR,
    ResultCache,
    config_cache_key,
    default_cache_dir,
)
from repro.sim.config import SimulationConfig
from repro.sim.engine import Simulator
from repro.telemetry.config import TelemetryConfig
from repro.traffic.trace import TraceEvent


def _config(**overrides):
    base = dict(
        width=4,
        num_vcs=4,
        routing="footprint",
        injection_rate=0.05,
        warmup_cycles=20,
        measure_cycles=60,
        drain_cycles=200,
        seed=2,
    )
    base.update(overrides)
    return SimulationConfig(**base)


def _result(**overrides):
    return Simulator(_config(**overrides)).run()


def _signature(result):
    return (
        result.cycles_run,
        result.accepted_flits,
        result.offered_flits,
        result.measured_created,
        result.measured_ejected,
        result.blocking.blocking_events,
        result.blocking.busy_vc_samples,
        result.blocking.footprint_vc_samples,
        sorted(result.latency._samples),
        result.config.to_dict(),
    )


class TestCacheKey:
    def test_same_config_same_key(self):
        assert config_cache_key(_config()) == config_cache_key(_config())

    def test_every_field_change_changes_key(self):
        base = _config()
        base_key = config_cache_key(base)
        tweaks = {
            "width": 8,
            "height": 2,
            "num_vcs": 6,
            "vc_buffer_depth": 8,
            "routing": "dor",
            "traffic": "transpose",
            "injection_rate": 0.06,
            "packet_size": 2,
            "packet_size_range": (1, 4),
            "warmup_cycles": 21,
            "measure_cycles": 61,
            "drain_cycles": 201,
            "hotspot_rate": 0.2,
            "background_rate": 0.4,
            "footprint_vc_limit": 3,
            "seed": 3,
            "internal_speedup": 3,
            "output_buffer_depth": 16,
            "ejection_rate": 0.5,
            "congestion_threshold": 0.25,
            "track_utilization": True,
            "faults": FaultSchedule((FaultEvent(0, "router", 5),)),
            "topology": "torus",
        }
        # Every SimulationConfig field must feed the hash — except
        # telemetry, which is observation-only and deliberately excluded
        # (see test_telemetry_does_not_change_key).  A stale field here
        # means a config knob was added without extending the test.
        covered = set(tweaks) | {"trace", "telemetry"}
        assert covered == {f.name for f in dataclasses.fields(base)}
        for field, value in tweaks.items():
            changed = dataclasses.replace(base, **{field: value})
            assert config_cache_key(changed) != base_key, field

    def test_telemetry_does_not_change_key(self):
        base = _config()
        with_telemetry = _config(
            telemetry=TelemetryConfig(
                sample_every=10, tree_nodes=(5,), trace_flits=True
            )
        )
        assert config_cache_key(with_telemetry) == config_cache_key(base)

    def test_trace_events_feed_the_key(self):
        with_trace = _config(
            traffic="trace", trace=[TraceEvent(1, 0, 5)], injection_rate=0.0
        )
        other_trace = _config(
            traffic="trace", trace=[TraceEvent(2, 0, 5)], injection_rate=0.0
        )
        assert config_cache_key(with_trace) != config_cache_key(other_trace)

    def test_reordered_dict_fields_same_key(self):
        config = _config()
        shuffled_items = list(config.to_dict().items())
        random.Random(0).shuffle(shuffled_items)
        rebuilt = SimulationConfig.from_dict(dict(shuffled_items))
        assert config_cache_key(rebuilt) == config_cache_key(config)

    def test_engine_version_feeds_the_key(self, monkeypatch):
        import repro.sim.engine as engine

        key = config_cache_key(_config())
        monkeypatch.setattr(engine, "ENGINE_VERSION", engine.ENGINE_VERSION + 1)
        assert config_cache_key(_config()) != key


class TestResultCache:
    def test_miss_then_hit_round_trips(self, tmp_path):
        cache = ResultCache(tmp_path)
        result = _result()
        assert cache.get(result.config) is None
        cache.put(result)
        cached = cache.get(result.config)
        assert cached is not None
        assert _signature(cached) == _signature(result)
        assert (cache.hits, cache.misses, cache.lookups) == (1, 1, 2)

    def test_distinct_configs_do_not_collide(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(_result())
        assert cache.get(_config(seed=99)) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        result = _result()
        cache.put(result)
        cache._path(config_cache_key(result.config)).write_text("{not json")
        assert cache.get(result.config) is None

    def test_put_overwrites_corrupt_entry(self, tmp_path):
        cache = ResultCache(tmp_path)
        result = _result()
        path = cache._path(config_cache_key(result.config))
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("garbage")
        cache.put(result)
        assert cache.get(result.config) is not None

    def test_no_stray_temp_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.put(_result())
        assert not list(tmp_path.glob("*.tmp"))

    def test_describe_mentions_counts(self, tmp_path):
        cache = ResultCache(tmp_path)
        cache.get(_config())
        text = cache.describe()
        assert "0 hits" in text and "1 misses" in text


class TestConcurrentWriters:
    def test_parallel_puts_with_racing_prune(self, tmp_path):
        """Writer threads racing prune never tear, crash, or leak.

        ``prune`` only sweeps temp files old enough that no live writer
        can own them, so concurrent stores must always succeed.
        (``clear`` is the exclusive admin reset — it sweeps everything
        and is not part of the concurrent-writer contract.)
        """
        import threading

        results = [_result(seed=seed) for seed in range(3, 7)]
        cache = ResultCache(tmp_path / "cache")
        stop = threading.Event()
        errors = []

        def writer(result):
            while not stop.is_set():
                try:
                    cache.put(result)
                except Exception as exc:  # noqa: BLE001 - collect all
                    errors.append(exc)
                    return

        def sweeper():
            while not stop.is_set():
                try:
                    cache.prune(2)
                except Exception as exc:  # noqa: BLE001 - collect all
                    errors.append(exc)
                    return

        threads = [
            threading.Thread(target=writer, args=(r,)) for r in results
        ] + [threading.Thread(target=sweeper)]
        for thread in threads:
            thread.start()
        import time as _time

        _time.sleep(0.4)
        stop.set()
        for thread in threads:
            thread.join(timeout=30)
        assert errors == []
        # The store is still fully functional and entries round-trip.
        cache.put(results[0])
        fresh = ResultCache(tmp_path / "cache")
        hit = fresh.get(results[0].config)
        assert hit is not None
        assert _signature(hit) == _signature(results[0])
        # No temp files were leaked by the racing writers.
        assert list((tmp_path / "cache").glob(".*.tmp")) == []

    def test_prune_spares_fresh_tmp_sweeps_stale(self, tmp_path):
        import os as _os
        import time as _time

        from repro.harness.cache import STALE_TMP_SECONDS

        cache = ResultCache(tmp_path / "cache")
        cache.put(_result(seed=3))
        fresh_tmp = tmp_path / "cache" / ".abc.live.tmp"
        fresh_tmp.write_text("{}")
        stale_tmp = tmp_path / "cache" / ".def.dead.tmp"
        stale_tmp.write_text("{}")
        old = _time.time() - STALE_TMP_SECONDS - 10
        _os.utime(stale_tmp, (old, old))

        cache.prune(10)
        # A live writer's temp file survives; the orphan is swept.
        assert fresh_tmp.exists()
        assert not stale_tmp.exists()

        cache.clear()
        assert not fresh_tmp.exists()

    def test_put_survives_directory_removal(self, tmp_path):
        import shutil

        cache = ResultCache(tmp_path / "cache")
        result = _result(seed=3)
        cache.put(result)
        shutil.rmtree(tmp_path / "cache")
        # put() recreates the directory and retries the atomic publish.
        cache.put(result)
        assert cache.get(result.config) is not None


class TestDefaultDirectory:
    def test_env_var_overrides(self, monkeypatch, tmp_path):
        monkeypatch.setenv(CACHE_ENV, str(tmp_path / "envcache"))
        assert default_cache_dir() == tmp_path / "envcache"
        assert ResultCache().directory == tmp_path / "envcache"

    def test_fallback_without_env(self, monkeypatch):
        monkeypatch.delenv(CACHE_ENV, raising=False)
        assert str(default_cache_dir()) == DEFAULT_CACHE_DIR

    def test_blank_env_falls_back(self, monkeypatch):
        monkeypatch.setenv(CACHE_ENV, "   ")
        assert str(default_cache_dir()) == DEFAULT_CACHE_DIR


class TestConfigRoundTrip:
    def test_to_from_dict_preserves_key(self):
        config = _config(packet_size_range=(1, 6))
        blob = json.dumps(config.to_dict())
        rebuilt = SimulationConfig.from_dict(json.loads(blob))
        assert config_cache_key(rebuilt) == config_cache_key(config)

    def test_trace_round_trip_preserves_key(self):
        config = _config(
            traffic="trace",
            trace=[TraceEvent(3, 1, 9, size=2, flow="app")],
            injection_rate=0.0,
        )
        blob = json.dumps(config.to_dict())
        rebuilt = SimulationConfig.from_dict(json.loads(blob))
        assert config_cache_key(rebuilt) == config_cache_key(config)
