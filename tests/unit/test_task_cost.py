"""Direct tests for the shared per-task cost model (repro.harness.cost).

The estimate is the currency of both the service scheduler's fair
queueing and the tuner's budget accounting, so its invariants get
pinned here: pure function of the config, cache-independent, monotone
in cycles and mesh size, drain discounted.
"""

from repro.harness.cost import (
    DRAIN_WEIGHT_DIVISOR,
    estimate_config_cycles,
    estimate_task_cycles,
)
from repro.harness.parallel import SimTask
from repro.sim.config import SimulationConfig


def _config(**overrides):
    base = dict(
        width=4,
        num_vcs=4,
        routing="dor",
        injection_rate=0.05,
        warmup_cycles=100,
        measure_cycles=200,
        drain_cycles=400,
    )
    base.update(overrides)
    return SimulationConfig(**base)


def test_estimate_is_cycles_times_nodes():
    config = _config()
    expected = (100 + 200 + 400 // DRAIN_WEIGHT_DIVISOR) * 16
    assert estimate_config_cycles(config) == expected


def test_drain_is_discounted():
    light = _config(drain_cycles=400)
    heavy = _config(drain_cycles=400 + 4 * DRAIN_WEIGHT_DIVISOR)
    # DRAIN_WEIGHT_DIVISOR extra drain cycles cost like 1 normal cycle.
    assert (
        estimate_config_cycles(heavy) - estimate_config_cycles(light)
        == 4 * 16
    )


def test_rectangular_mesh_uses_height():
    square = _config(width=4)
    rect = _config(width=4, height=8)
    assert estimate_config_cycles(rect) == 2 * estimate_config_cycles(square)


def test_monotone_in_mesh_and_cycles():
    assert estimate_config_cycles(_config(width=8)) > estimate_config_cycles(
        _config(width=4)
    )
    assert estimate_config_cycles(
        _config(measure_cycles=500)
    ) > estimate_config_cycles(_config(measure_cycles=200))


def test_never_below_one():
    tiny = _config(warmup_cycles=0, measure_cycles=0, drain_cycles=0)
    assert estimate_config_cycles(tiny) == 1


def test_task_estimate_uses_resolved_config():
    config = _config(injection_rate=0.05)
    task = SimTask(config, rate=0.3)
    # The rate override changes the config identity but not its cost.
    assert estimate_task_cycles(task) == estimate_config_cycles(
        task.resolved_config()
    )
    assert estimate_task_cycles(task) == estimate_config_cycles(config)


def test_estimate_ignores_seed_and_routing():
    a = estimate_config_cycles(_config(seed=1, routing="dor"))
    b = estimate_config_cycles(_config(seed=99, routing="footprint"))
    assert a == b
