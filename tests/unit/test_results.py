"""Unit tests for SimulationResult accounting."""

import math

import pytest

from repro.metrics.stats import LatencyStats
from repro.router.router import BlockingStats
from repro.sim.config import SimulationConfig
from repro.sim.results import SimulationResult


def make_result(**overrides):
    latency = LatencyStats()
    latency.extend([10, 20, 30])
    by_flow = {"uniform": latency}
    defaults = dict(
        config=SimulationConfig(width=4, measure_cycles=100),
        cycles_run=400,
        latency=latency,
        latency_by_flow=by_flow,
        accepted_flits=320,
        offered_flits=330,
        measured_created=3,
        measured_ejected=3,
        blocking=BlockingStats(),
    )
    defaults.update(overrides)
    return SimulationResult(**defaults)


def test_accepted_rate():
    result = make_result()
    # 320 flits / (16 nodes * 100 cycles)
    assert result.accepted_rate == pytest.approx(0.2)


def test_offered_rate():
    assert make_result().offered_rate == pytest.approx(330 / 1600)


def test_drained():
    assert make_result().drained
    assert not make_result(measured_ejected=2).drained


def test_avg_latency():
    assert make_result().avg_latency == 20


def test_flow_latency():
    result = make_result()
    assert result.flow_latency("uniform") == 20
    assert math.isnan(result.flow_latency("missing"))


def test_summary_mentions_outcome():
    text = make_result().summary()
    assert "drained=yes" in text
    assert "footprint" in text
    undrained = make_result(measured_ejected=0).summary()
    assert "drained=NO" in undrained


def test_summary_handles_no_samples():
    result = make_result(latency=LatencyStats())
    assert "n/a" in result.summary()


def test_zero_measure_window_rates_are_nan():
    result = make_result(
        config=SimulationConfig(width=4, measure_cycles=0)
    )
    assert math.isnan(result.accepted_rate)
    assert math.isnan(result.offered_rate)
