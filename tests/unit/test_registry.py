"""Unit tests for the routing-algorithm registry."""

import pytest

from repro.exceptions import RoutingError
from repro.routing.dbar import DbarFineRouting, DbarRouting
from repro.routing.dor import DorRouting
from repro.routing.footprint import FootprintRouting
from repro.routing.oddeven import OddEvenRouting
from repro.routing.registry import available_algorithms, create_routing
from repro.routing.xordet import XordetOverlay


@pytest.mark.parametrize(
    "name,cls",
    [
        ("dor", DorRouting),
        ("oddeven", OddEvenRouting),
        ("odd-even", OddEvenRouting),
        ("dbar", DbarRouting),
        ("dbar-fine", DbarFineRouting),
        ("footprint", FootprintRouting),
    ],
)
def test_base_algorithms(name, cls):
    assert isinstance(create_routing(name), cls)


def test_case_insensitive():
    assert isinstance(create_routing("FootPrint"), FootprintRouting)
    assert isinstance(create_routing(" DBAR "), DbarRouting)


@pytest.mark.parametrize("base", ["dor", "oddeven", "dbar", "footprint"])
def test_xordet_overlays(base):
    algo = create_routing(f"{base}+xordet")
    assert isinstance(algo, XordetOverlay)
    assert algo.name == f"{base}+xordet"


def test_unknown_algorithm():
    with pytest.raises(RoutingError):
        create_routing("warp-speed")


def test_unknown_overlay():
    with pytest.raises(RoutingError):
        create_routing("dor+banana")


def test_available_names_all_resolve():
    for name in available_algorithms():
        create_routing(name)


def test_fresh_instances():
    assert create_routing("footprint") is not create_routing("footprint")


def test_duato_alias_is_dbar():
    # Hidden alias for plain Duato minimal fully-adaptive routing.
    assert isinstance(create_routing("duato"), DbarRouting)
    assert "duato" not in available_algorithms()


class TestTopologySupport:
    def test_torus_capable_algorithms_pass(self):
        from repro.routing.registry import check_topology_support

        for name in ("dor", "duato", "dbar", "dbar-fine", "footprint"):
            check_topology_support(name, "torus")
            check_topology_support(name, "mesh")

    def test_mesh_structural_algorithms_rejected(self):
        from repro.exceptions import ConfigurationError
        from repro.routing.registry import check_topology_support

        for name in ("oddeven", "dor+xordet", "footprint+xordet"):
            with pytest.raises(ConfigurationError, match="mesh-only"):
                check_topology_support(name, "torus")

    def test_unknown_names_fall_through(self):
        from repro.routing.registry import check_topology_support

        # Unknown algorithms are create_routing's problem, not the
        # topology gate's — no exception here.
        check_topology_support("warp-speed", "torus")
