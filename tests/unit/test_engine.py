"""Unit tests for the simulation engine's phases and bookkeeping."""

import pytest

from repro.exceptions import SimulationError, TrafficError
from repro.router.flit import Packet
from repro.sim.config import SimulationConfig
from repro.sim.engine import Simulator
from repro.traffic.patterns import TrafficGenerator


class OnePacket(TrafficGenerator):
    """Injects exactly one packet at cycle 0."""

    def __init__(self, src=0, dst=3, size=1):
        self.spec = (src, dst, size)
        self.sent = False

    def generate(self, cycle, measured):
        if self.sent:
            return []
        self.sent = True
        src, dst, size = self.spec
        return [
            Packet(src=src, dst=dst, size=size, creation_time=cycle,
                   measured=True)
        ]


def make_sim(traffic=None, **cfg):
    defaults = dict(
        width=4,
        num_vcs=2,
        routing="dor",
        traffic="uniform",
        injection_rate=0.0,
        warmup_cycles=0,
        measure_cycles=50,
        drain_cycles=200,
        seed=1,
    )
    defaults.update(cfg)
    return Simulator(SimulationConfig(**defaults), traffic=traffic)


class TestSinglePacketDelivery:
    def test_same_row_delivery(self):
        sim = make_sim(traffic=OnePacket(src=0, dst=3))
        result = sim.run()
        assert result.measured_created == 1
        assert result.measured_ejected == 1
        # 3 hops at ~2 cycles/hop plus injection/ejection: single digits.
        assert 6 <= result.avg_latency <= 14

    def test_multi_flit_delivery(self):
        sim = make_sim(traffic=OnePacket(src=0, dst=15, size=4))
        result = sim.run()
        assert result.drained
        assert sim.sinks[15].ejected_flits == 4

    def test_one_hop_latency_is_minimal(self):
        result = make_sim(traffic=OnePacket(src=0, dst=1)).run()
        # Injection + 1 link + ejection.
        assert result.avg_latency <= 8

    def test_latency_scales_with_distance(self):
        near = make_sim(traffic=OnePacket(src=0, dst=1)).run()
        far = make_sim(traffic=OnePacket(src=0, dst=15)).run()
        assert far.avg_latency > near.avg_latency + 4

    def test_early_exit_after_drain(self):
        sim = make_sim(traffic=OnePacket(src=0, dst=1))
        result = sim.run()
        # Stops right after the measurement window, not at max_cycles.
        assert result.cycles_run <= 60


class TestWindows:
    def test_warmup_packets_not_measured(self):
        config = SimulationConfig(
            width=4,
            num_vcs=2,
            routing="dor",
            traffic="uniform",
            injection_rate=0.2,
            warmup_cycles=40,
            measure_cycles=40,
            drain_cycles=400,
            seed=2,
        )
        sim = Simulator(config)
        result = sim.run()
        # Offered flits counted only within the window.
        assert result.offered_flits < sum(
            s.offered_flits for s in sim.sources
        )
        assert result.drained

    def test_blocking_sampling_only_in_window(self):
        sim = make_sim(
            traffic=None,
            injection_rate=0.6,
            routing="footprint",
            num_vcs=2,
            warmup_cycles=30,
            measure_cycles=50,
        )
        sim.run()
        # Sampling happened (saturating load on 2 VCs blocks packets).
        total = sum(r.blocking.blocking_events for r in sim.routers)
        assert total > 0


class TestWatchdog:
    def test_deadlock_detection_fires_on_stuck_network(self):
        sim = make_sim(traffic=OnePacket(src=0, dst=3))
        # Artificially wedge the network before any cycle runs: seize
        # every VC of router 1's EAST port so the packet can never
        # advance past it.
        from repro.topology.ports import Direction

        east = sim.routers[1].output_ports[Direction.EAST]
        for v in range(2):
            east.allocate(v, dst=99)
        import repro.sim.engine as engine_mod

        with pytest.raises(SimulationError):
            for _ in range(engine_mod.DEADLOCK_WINDOW + 50):
                sim.step()

    def test_idle_network_never_trips_watchdog(self):
        sim = make_sim()  # zero injection
        for _ in range(300):
            sim.step()  # must not raise


class TestConstruction:
    def test_trace_traffic_requires_trace(self):
        with pytest.raises(TrafficError):
            Simulator(
                SimulationConfig(width=4, num_vcs=2, traffic="trace")
            )

    def test_component_counts(self):
        sim = make_sim()
        assert len(sim.routers) == 16
        assert len(sim.sources) == 16
        assert len(sim.sinks) == 16
