"""Unit tests for the tuner's parameter space layer."""

import pytest

from repro.sim.config import SimulationConfig
from repro.tuner import TunerError
from repro.tuner.space import Axis, Candidate, ParamSpace


BASE = SimulationConfig(
    width=4,
    num_vcs=4,
    routing="footprint",
    injection_rate=0.05,
    warmup_cycles=20,
    measure_cycles=40,
    drain_cycles=100,
)


# ----------------------------------------------------------------------
# Axis
# ----------------------------------------------------------------------
def test_axis_validation():
    with pytest.raises(TunerError):
        Axis("x", (), default=1)
    with pytest.raises(TunerError):
        Axis("x", (1, 2), default=3)
    with pytest.raises(TunerError):
        Axis("x", (1, 1), default=1)
    with pytest.raises(TunerError):
        Axis("x", (1, 2), default=1, kind="weird")


def test_log_range_includes_default():
    axis = Axis.log_range("vc_buffer_depth", 2, 8, default=4)
    assert axis.values == (2, 4, 8)
    axis = Axis.log_range("vc_buffer_depth", 2, 8, default=6)
    assert 6 in axis.values  # off-grid default is spliced in, sorted
    assert axis.values == tuple(sorted(axis.values))


def test_index_of_rejects_foreign_value():
    axis = Axis("num_vcs", (2, 4), default=2)
    with pytest.raises(TunerError):
        axis.index_of(3)


# ----------------------------------------------------------------------
# ParamSpace basics
# ----------------------------------------------------------------------
def test_space_rejects_non_config_fields():
    with pytest.raises(TunerError):
        ParamSpace((Axis("not_a_field", (1,), default=1),))


def test_default_candidate_is_table2():
    space = ParamSpace.default()
    overrides = space.default_candidate().overrides()
    assert overrides["num_vcs"] == 10
    assert overrides["vc_buffer_depth"] == 4
    assert overrides["routing"] == "footprint"
    assert overrides["congestion_threshold"] == 0.5
    assert overrides["footprint_vc_limit"] is None


def test_candidate_defaults_fill_and_membership_checked():
    space = ParamSpace.default()
    candidate = space.candidate(num_vcs=4)
    assert candidate["num_vcs"] == 4
    assert candidate["routing"] == "footprint"
    with pytest.raises(TunerError):
        space.candidate(num_vcs=3)  # not on the axis
    with pytest.raises(TunerError):
        space.candidate(nope=1)


def test_apply_produces_overridden_config():
    space = ParamSpace.default()
    candidate = space.candidate(num_vcs=4, routing="dor")
    config = space.apply(BASE, candidate)
    assert config.num_vcs == 4
    assert config.routing == "dor"
    assert config.width == BASE.width


def test_roundtrip_dict():
    space = ParamSpace.default()
    again = ParamSpace.from_dict(space.to_dict())
    assert [a.name for a in again.axes] == [a.name for a in space.axes]
    assert again.default_candidate() == space.default_candidate()


# ----------------------------------------------------------------------
# Canonicalization
# ----------------------------------------------------------------------
def test_canonical_resets_unread_knobs():
    space = ParamSpace.default()
    raw = space.candidate(
        routing="dor", congestion_threshold=0.75, footprint_vc_limit=2
    )
    canon = space.canonical(raw)
    assert canon["congestion_threshold"] == 0.5
    assert canon["footprint_vc_limit"] is None


def test_canonical_keeps_read_knobs():
    space = ParamSpace.default()
    # dbar reads the threshold but not the footprint VC limit.
    raw = space.candidate(
        routing="dbar", congestion_threshold=0.75, footprint_vc_limit=2
    )
    canon = space.canonical(raw)
    assert canon["congestion_threshold"] == 0.75
    assert canon["footprint_vc_limit"] is None
    # footprint reads both.
    raw = space.candidate(
        routing="footprint", congestion_threshold=0.75, footprint_vc_limit=2
    )
    assert space.canonical(raw) == raw


def test_canonical_collapses_equivalent_candidates():
    space = ParamSpace.default()
    variants = {
        space.canonical(
            space.candidate(
                routing="dor",
                congestion_threshold=t,
                footprint_vc_limit=limit,
            )
        )
        for t in (0.25, 0.5, 0.75)
        for limit in (None, 1, 2, 4)
    }
    assert len(variants) == 1


# ----------------------------------------------------------------------
# Sampling / neighbors
# ----------------------------------------------------------------------
def test_sample_deterministic_and_distinct():
    space = ParamSpace.default()
    a = space.sample(10, seed=7, base=BASE)
    b = space.sample(10, seed=7, base=BASE)
    assert a == b
    assert len(set(a)) == len(a)
    assert space.sample(10, seed=8, base=BASE) != a


def test_sample_returns_canonical_valid_candidates():
    space = ParamSpace.default()
    for candidate in space.sample(20, seed=3, base=BASE):
        assert space.canonical(candidate) == candidate
        assert space.is_valid(BASE, candidate)


def test_neighbors_one_step_no_origin():
    space = ParamSpace.default()
    origin = space.canonical(space.default_candidate())
    moves = space.neighbors(origin, BASE)
    assert origin not in moves
    assert len(set(moves)) == len(moves)
    for moved in moves:
        diffs = [
            name
            for name, value in moved.items
            if origin[name] != value
        ]
        # One visible axis changed; canonicalization may reset the
        # footprint-only knobs alongside a routing change.
        assert 1 <= len(diffs) <= 3
        assert space.is_valid(BASE, moved)


def test_iter_all_covers_canonical_space():
    space = ParamSpace(
        (
            Axis("num_vcs", (2, 4), default=4),
            Axis("routing", ("dor", "footprint"), default="footprint"),
            Axis("congestion_threshold", (0.25, 0.5), default=0.5),
        )
    )
    everything = list(space.iter_all(BASE))
    assert len(everything) == len(set(everything))
    # dor collapses the threshold axis: 2 VC x (1 dor + 2 footprint).
    assert len(everything) == 6


def test_candidate_key_stable():
    space = ParamSpace.default()
    candidate = space.candidate(num_vcs=4)
    assert Candidate(candidate.items).key() == candidate.key()
    assert "num_vcs=4" in candidate.key()
