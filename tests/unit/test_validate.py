"""Unit tests for the runtime invariant validation subsystem."""

import pytest

from repro.exceptions import ConfigurationError, InvariantViolation
from repro.router.allocator import VaGrant, verify_grants
from repro.router.output import OutputPort
from repro.router.vcstate import InputVc, VcState
from repro.routing.requests import Priority
from repro.topology.ports import Direction
from repro.validate import (
    CHECKER_NAMES,
    MUTATION_CHECKERS,
    VALIDATE_ENV,
    ValidationConfig,
    validation_from_env,
)


class TestValidationConfig:
    def test_default_enables_everything(self):
        config = ValidationConfig()
        assert config.active
        assert config.enabled_checkers() == CHECKER_NAMES

    def test_only_selects_a_subset(self):
        config = ValidationConfig.only("vc_states")
        assert config.enabled_checkers() == ("vc_states",)
        assert config.active

    def test_only_rejects_unknown_checker(self):
        with pytest.raises(ConfigurationError, match="unknown checkers"):
            ValidationConfig.only("no_such_checker")

    def test_nothing_enabled_is_inactive(self):
        config = ValidationConfig.only()
        assert not config.active
        assert config.enabled_checkers() == ()

    def test_mutation_alone_is_active(self):
        config = ValidationConfig.only("vc_states", mutate="vc_state")
        assert config.active

    def test_check_every_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="check_every"):
            ValidationConfig(check_every=0)

    def test_unknown_mutation_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown mutation"):
            ValidationConfig(mutate="bogus")

    def test_negative_mutate_cycle_rejected(self):
        with pytest.raises(ConfigurationError, match="mutate_cycle"):
            ValidationConfig(mutate_cycle=-1)

    def test_every_mutation_maps_to_a_checker(self):
        assert set(MUTATION_CHECKERS.values()) <= set(CHECKER_NAMES)


class TestValidationFromEnv:
    def test_unset_means_disabled(self, monkeypatch):
        monkeypatch.delenv(VALIDATE_ENV, raising=False)
        assert validation_from_env() is None

    @pytest.mark.parametrize("value", ["", "0", "off", "false", "no", "OFF"])
    def test_disabling_values(self, monkeypatch, value):
        monkeypatch.setenv(VALIDATE_ENV, value)
        assert validation_from_env() is None

    @pytest.mark.parametrize("value", ["1", "on", "true", "yes", "all", "ALL"])
    def test_enabling_values(self, monkeypatch, value):
        monkeypatch.setenv(VALIDATE_ENV, value)
        config = validation_from_env()
        assert config is not None
        assert config.enabled_checkers() == CHECKER_NAMES

    def test_subset_list(self, monkeypatch):
        monkeypatch.setenv(VALIDATE_ENV, "flit_conservation, vc_states")
        config = validation_from_env()
        assert config.enabled_checkers() == ("flit_conservation", "vc_states")

    def test_unknown_name_rejected(self, monkeypatch):
        monkeypatch.setenv(VALIDATE_ENV, "flit_conservation,bogus")
        with pytest.raises(ConfigurationError, match="bogus"):
            validation_from_env()


class TestInvariantViolation:
    def test_context_in_message(self):
        exc = InvariantViolation(
            "credit_accounting",
            "credit count off by one",
            cycle=42,
            node=7,
            direction=Direction.EAST,
            vc=3,
        )
        assert exc.checker == "credit_accounting"
        assert exc.cycle == 42 and exc.node == 7 and exc.vc == 3
        assert "[cycle 42, node 7, port EAST, vc 3]" in str(exc)

    def test_context_optional(self):
        exc = InvariantViolation("flit_conservation", "mismatch")
        assert "[" not in str(exc)


def make_port(direction=Direction.EAST, num_vcs=2):
    return OutputPort(
        direction=direction,
        num_vcs=num_vcs,
        downstream_depth=4,
        fifo_depth=2,
        speedup=1,
        escape_vc=0,
        atomic_realloc=True,
    )


def make_routing_vc(index=0):
    ivc = InputVc(Direction.WEST, index, depth=4)
    ivc.state = VcState.ROUTING
    return ivc


class TestVerifyGrants:
    """Grant verification against hand-corrupted allocation rounds."""

    def test_clean_grants_pass(self):
        outputs = {Direction.EAST: make_port()}
        grants = [
            VaGrant(make_routing_vc(0), Direction.EAST, 0, Priority.LOW),
            VaGrant(make_routing_vc(1), Direction.EAST, 1, Priority.LOW),
        ]
        verify_grants(grants, outputs)

    def test_duplicate_downstream_vc(self):
        outputs = {Direction.EAST: make_port()}
        grants = [
            VaGrant(make_routing_vc(0), Direction.EAST, 1, Priority.LOW),
            VaGrant(make_routing_vc(1), Direction.EAST, 1, Priority.LOW),
        ]
        with pytest.raises(InvariantViolation, match="two input VCs"):
            verify_grants(grants, outputs)

    def test_grant_to_non_routing_input(self):
        outputs = {Direction.EAST: make_port()}
        ivc = make_routing_vc(0)
        ivc.state = VcState.ACTIVE
        grants = [VaGrant(ivc, Direction.EAST, 1, Priority.LOW)]
        with pytest.raises(InvariantViolation, match="expected routing"):
            verify_grants(grants, outputs)

    def test_grant_to_busy_downstream_vc(self):
        port = make_port()
        port.allocate(1, dst=5)
        grants = [VaGrant(make_routing_vc(0), Direction.EAST, 1, Priority.LOW)]
        with pytest.raises(InvariantViolation, match="busy downstream"):
            verify_grants(grants, {Direction.EAST: port})

    def test_violation_carries_checker_name(self):
        port = make_port()
        port.allocate(0, dst=5)
        grants = [VaGrant(make_routing_vc(0), Direction.EAST, 0, Priority.LOW)]
        with pytest.raises(InvariantViolation) as excinfo:
            verify_grants(grants, {Direction.EAST: port})
        assert excinfo.value.checker == "vc_allocation"
        assert excinfo.value.vc == 0
