"""Unit tests for the fault subsystem: schedule model, parser, manager."""

import json

import pytest

from repro.exceptions import ConfigurationError, FaultError
from repro.faults import (
    FaultEvent,
    FaultManager,
    FaultSchedule,
    parse_fault_spec,
    random_link_faults,
    random_router_faults,
)
from repro.harness.cache import config_cache_key
from repro.sim.config import SimulationConfig
from repro.topology.mesh import Mesh2D
from repro.topology.ports import Direction
from repro.topology.torus import Torus2D


# ----------------------------------------------------------------------
# FaultEvent
# ----------------------------------------------------------------------
def test_event_validation():
    with pytest.raises(FaultError):
        FaultEvent(-1, "link", 0, Direction.EAST)
    with pytest.raises(FaultError):
        FaultEvent(0, "wire", 0)
    with pytest.raises(FaultError):
        FaultEvent(0, "link", 0)  # missing direction
    with pytest.raises(FaultError):
        FaultEvent(0, "link", 0, Direction.LOCAL)
    with pytest.raises(FaultError):
        FaultEvent(0, "router", 0, Direction.EAST)  # spurious direction
    with pytest.raises(FaultError):
        FaultEvent(0, "router", 0, duration=0)


def test_event_properties_and_round_trip():
    transient = FaultEvent(10, "link", 3, Direction.WEST, duration=5)
    assert not transient.permanent
    assert transient.end_cycle == 15
    permanent = FaultEvent(0, "router", 7)
    assert permanent.permanent
    assert permanent.end_cycle is None
    for event in (transient, permanent):
        blob = json.dumps(event.to_dict())
        assert FaultEvent.from_dict(json.loads(blob)) == event


def test_event_direction_coerced_to_enum():
    event = FaultEvent(0, "link", 1, 0)  # raw int for EAST
    assert event.direction is Direction.EAST


# ----------------------------------------------------------------------
# FaultSchedule
# ----------------------------------------------------------------------
def test_schedule_normalizes_event_order():
    a = FaultEvent(5, "router", 1)
    b = FaultEvent(0, "link", 2, Direction.EAST)
    assert FaultSchedule((a, b)) == FaultSchedule((b, a))
    assert FaultSchedule((a, b)).events[0] is b


def test_schedule_bool_and_len():
    assert not FaultSchedule()
    assert len(FaultSchedule()) == 0
    schedule = FaultSchedule((FaultEvent(0, "router", 0),))
    assert schedule
    assert len(schedule) == 1


def test_schedule_validate_for_rejects_out_of_mesh():
    with pytest.raises(FaultError):
        FaultSchedule((FaultEvent(0, "router", 16),)).validate_for(4, 4)
    # Node 3 is the NE corner of a 4x4 mesh: no EAST link.
    with pytest.raises(FaultError):
        FaultSchedule(
            (FaultEvent(0, "link", 3, Direction.EAST),)
        ).validate_for(4, 4)
    FaultSchedule((FaultEvent(0, "link", 3, Direction.WEST),)).validate_for(
        4, 4
    )


def test_schedule_round_trip():
    schedule = FaultSchedule(
        (
            FaultEvent(0, "link", 1, Direction.EAST, duration=100),
            FaultEvent(50, "router", 9),
        )
    )
    blob = json.dumps(schedule.to_dict())
    assert FaultSchedule.from_dict(json.loads(blob)) == schedule


# ----------------------------------------------------------------------
# Config integration and cache keys
# ----------------------------------------------------------------------
def test_config_rejects_non_schedule_faults():
    with pytest.raises(ConfigurationError):
        SimulationConfig(width=4, faults=[("link", 0)])


def test_config_rejects_invalid_schedule_for_mesh():
    schedule = FaultSchedule((FaultEvent(0, "router", 99),))
    with pytest.raises(FaultError):
        SimulationConfig(width=4, faults=schedule)


def test_cache_keys_distinguish_fault_schedules():
    base = SimulationConfig(width=4, num_vcs=4)
    empty = base.with_(faults=FaultSchedule())
    faulted = base.with_(
        faults=FaultSchedule((FaultEvent(0, "router", 5),))
    )
    keys = {
        config_cache_key(base),
        config_cache_key(empty),
        config_cache_key(faulted),
    }
    assert len(keys) == 3


# ----------------------------------------------------------------------
# Generators
# ----------------------------------------------------------------------
def test_random_link_faults_deterministic_and_distinct():
    a = random_link_faults(4, k=5, seed=3)
    b = random_link_faults(4, k=5, seed=3)
    c = random_link_faults(4, k=5, seed=4)
    assert a == b
    assert a != c
    assert len(a) == 5
    keys = {(e.node, e.direction) for e in a.events}
    assert len(keys) == 5  # distinct channels
    a.validate_for(4, 4)


def test_random_router_faults_bounds():
    schedule = random_router_faults(4, k=16, seed=0)
    assert len(schedule) == 16
    with pytest.raises(FaultError):
        random_router_faults(4, k=17, seed=0)
    with pytest.raises(FaultError):
        random_link_faults(4, k=1000, seed=0)


def test_generator_cycle_and_duration_forwarded():
    schedule = random_link_faults(4, k=2, cycle=40, duration=60, seed=1)
    assert all(e.cycle == 40 and e.duration == 60 for e in schedule.events)


# ----------------------------------------------------------------------
# Spec parser
# ----------------------------------------------------------------------
def test_parse_explicit_items():
    schedule = parse_fault_spec("link:5:east@10+20,router:9", 4, 4)
    assert len(schedule) == 2
    link = next(e for e in schedule.events if e.kind == "link")
    router = next(e for e in schedule.events if e.kind == "router")
    assert link.node == 5 and link.direction is Direction.EAST
    assert link.cycle == 10 and link.duration == 20
    assert router.node == 9 and router.permanent


def test_parse_direction_aliases():
    for alias, direction in (
        ("e", Direction.EAST),
        ("West", Direction.WEST),
        ("n", Direction.NORTH),
        ("south", Direction.SOUTH),
    ):
        schedule = parse_fault_spec(f"link:5:{alias}", 4, 4)
        assert schedule.events[0].direction is direction


def test_parse_generator_items_seeded():
    a = parse_fault_spec("links:3~7", 4, 4)
    b = parse_fault_spec("links:3~7", 4, 4)
    assert a == b == random_link_faults(4, 4, k=3, seed=7)
    # Without ~SEED the item index offsets the default seed, so repeated
    # generator items draw different components.
    schedule = parse_fault_spec("routers:1,routers:1", 4, 4, default_seed=0)
    assert schedule == FaultSchedule(
        random_router_faults(4, 4, k=1, seed=0).events
        + random_router_faults(4, 4, k=1, seed=1).events
    )


@pytest.mark.parametrize(
    "spec",
    [
        "",
        "link:5",  # missing direction
        "link:5:up",  # bad direction
        "router:5:east",  # spurious direction
        "links:2:east",  # generator takes no direction
        "wire:5",  # unknown kind
        "link:notanode",
        "router:5~3",  # seed on explicit item
        "router:5@1@2",  # duplicate modifier
        "link:3:east",  # NE corner has no east link in 4x4
        "router:99",  # outside mesh
    ],
)
def test_parse_rejects_malformed(spec):
    with pytest.raises(FaultError):
        parse_fault_spec(spec, 4, 4)


# ----------------------------------------------------------------------
# FaultManager
# ----------------------------------------------------------------------
def _manager(events):
    mesh = Mesh2D(4, 4)
    return FaultManager(FaultSchedule(tuple(events)), mesh), mesh


def test_manager_activation_window():
    fm, _ = _manager([FaultEvent(10, "link", 1, Direction.EAST, duration=5)])
    assert fm.next_transition_cycle() == 10
    assert not fm.pending_at(9)
    assert fm.pending_at(10)

    changed, released = fm.advance_to(10)
    assert changed == [1]
    assert released == []
    assert fm.blocked_out[1] == 1 << Direction.EAST
    assert fm.credit_blocked(1, Direction.EAST)
    assert not fm.credit_blocked(1, Direction.WEST)
    assert fm.next_transition_cycle() == 15

    changed, _ = fm.advance_to(15)
    assert changed == [1]
    assert fm.blocked_out[1] == 0
    assert not fm.has_pending_transitions()


def test_manager_router_fault_blocks_neighbor_launches():
    fm, mesh = _manager([FaultEvent(0, "router", 5)])
    changed, _ = fm.advance_to(0)
    # Node 5's own mask and all four neighbours' masks change.
    assert 5 in changed
    assert fm.router_dead[5]
    for direction in (
        Direction.EAST,
        Direction.WEST,
        Direction.NORTH,
        Direction.SOUTH,
    ):
        nbr = mesh.neighbor(5, direction)
        assert nbr in changed
        # The neighbour's link *toward* node 5 is blocked.
        from repro.topology.ports import OPPOSITE

        assert (fm.blocked_out[nbr] >> OPPOSITE[direction]) & 1
    # Credits into the dead router are blocked on every port.
    assert fm.credit_blocked(5, Direction.LOCAL)
    assert fm.credit_blocked(5, Direction.EAST)


def test_manager_holds_and_releases_credits_in_order():
    fm, _ = _manager([FaultEvent(0, "link", 1, Direction.EAST, duration=10)])
    fm.advance_to(0)
    fm.hold_credit(1, Direction.EAST, 2)
    fm.hold_credit(1, Direction.EAST, 0)
    assert fm.held_credits == 2
    changed, released = fm.advance_to(10)
    assert released == [(1, Direction.EAST, 2), (1, Direction.EAST, 0)]
    assert fm.held_credits == 0


def test_manager_accepts_torus_wrap_link_fault():
    # Regression: the manager re-validated its schedule against a
    # hardcoded mesh, so a wrap-link fault that passed config validation
    # raised "no EAST link at node 3 in Mesh2D(4x4)" at build time.
    fm = FaultManager(
        FaultSchedule(
            (FaultEvent(0, "link", 3, Direction.EAST, duration=5),)
        ),
        Torus2D(4),
    )
    fm.advance_to(0)
    assert fm.blocked_out[3] == 1 << Direction.EAST
    assert fm.credit_blocked(3, Direction.EAST)
    fm.advance_to(5)
    assert fm.blocked_out[3] == 0


def test_manager_overlapping_faults_reference_counted():
    fm, _ = _manager(
        [
            FaultEvent(0, "link", 1, Direction.EAST, duration=10),
            FaultEvent(5, "link", 1, Direction.EAST, duration=10),
        ]
    )
    fm.advance_to(5)
    assert fm.credit_blocked(1, Direction.EAST)
    fm.advance_to(10)  # first fault heals; second still active
    assert fm.credit_blocked(1, Direction.EAST)
    fm.advance_to(15)
    assert not fm.credit_blocked(1, Direction.EAST)
