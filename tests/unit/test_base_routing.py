"""Unit tests for shared RoutingAlgorithm helpers."""

import pytest

from repro.routing.dor import DorRouting
from repro.routing.footprint import FootprintRouting
from repro.routing.requests import Priority
from repro.topology.mesh import Mesh2D
from repro.topology.ports import Direction

from tests.conftest import FakeOutputView, make_context


@pytest.fixture
def mesh():
    return Mesh2D(4)


class TestEjectRequests:
    def test_targets_free_local_vcs(self, mesh):
        algo = DorRouting()
        outputs = {
            d: FakeOutputView(escape_vc=None)
            for d in mesh.router_ports(5)
        }
        outputs[Direction.LOCAL] = FakeOutputView(escape_vc=None, idle=[1, 3])
        ctx = make_context(mesh, 5, 5, outputs)
        reqs = algo.eject_requests(ctx)
        assert {(r.direction, r.vc) for r in reqs} == {
            (Direction.LOCAL, 1),
            (Direction.LOCAL, 3),
        }
        assert all(r.priority is Priority.LOW for r in reqs)

    def test_empty_when_sink_full(self, mesh):
        algo = DorRouting()
        outputs = {
            d: FakeOutputView(escape_vc=None, idle=[])
            for d in mesh.router_ports(5)
        }
        ctx = make_context(mesh, 5, 5, outputs)
        assert algo.eject_requests(ctx) == []


class TestEscapeRequest:
    def test_rides_dor_port(self, mesh):
        algo = FootprintRouting()
        outputs = {d: FakeOutputView() for d in mesh.router_ports(5)}
        # From 5 to 7: DOR port is EAST.
        ctx = make_context(mesh, 5, 7, outputs)
        (req,) = algo.escape_request(ctx)
        assert req.direction is Direction.EAST
        assert req.vc == 0
        assert req.priority is Priority.LOWEST

    def test_absent_when_escape_busy(self, mesh):
        algo = FootprintRouting()
        outputs = {d: FakeOutputView() for d in mesh.router_ports(5)}
        outputs[Direction.EAST].escape_free = False
        ctx = make_context(mesh, 5, 7, outputs)
        assert algo.escape_request(ctx) == []

    def test_absent_without_escape_vc(self, mesh):
        algo = DorRouting()
        outputs = {
            d: FakeOutputView(escape_vc=None)
            for d in mesh.router_ports(5)
        }
        ctx = make_context(mesh, 5, 7, outputs)
        assert algo.escape_request(ctx) == []


class TestRouteComposition:
    def test_route_equals_two_stage_composition(self, mesh):
        algo = DorRouting()
        outputs = {
            d: FakeOutputView(escape_vc=None)
            for d in mesh.router_ports(0)
        }
        ctx = make_context(mesh, 0, 3, outputs)
        composed = algo.vc_requests_at(ctx, algo.select_output(ctx))
        assert algo.route(ctx) == composed

    def test_repr(self):
        assert "DorRouting" in repr(DorRouting())
