"""Unit tests for injection sweeps and saturation search."""

import pytest

from repro.metrics import sweep as sweep_mod
from repro.metrics.sweep import (
    SweepPoint,
    injection_sweep,
    run_point,
    saturation_throughput,
)
from repro.sim.config import SimulationConfig


@pytest.fixture
def config():
    return SimulationConfig(
        width=4,
        num_vcs=2,
        routing="dor",
        traffic="uniform",
        warmup_cycles=30,
        measure_cycles=60,
        drain_cycles=400,
        seed=3,
    )


class TestSweepPoint:
    def test_saturated_by_latency(self):
        p = SweepPoint(0.5, avg_latency=100, accepted_rate=0.4, drained=True)
        assert p.is_saturated(10.0)
        assert not p.is_saturated(50.0)

    def test_saturated_by_drain_failure(self):
        p = SweepPoint(0.5, avg_latency=12, accepted_rate=0.4, drained=False)
        assert p.is_saturated(10.0)

    def test_nan_latency_is_saturated(self):
        p = SweepPoint(
            0.5, avg_latency=float("nan"), accepted_rate=0.4, drained=True
        )
        assert p.is_saturated(10.0)

    def test_nan_zero_load_raises(self):
        # Regression: NaN zero-load used to make the latency comparison
        # silently False, classifying every drained point as stable.
        p = SweepPoint(0.5, avg_latency=100, accepted_rate=0.4, drained=True)
        with pytest.raises(ValueError, match="zero-load"):
            p.is_saturated(float("nan"))

    def test_nan_zero_load_raises_even_when_undrained(self):
        p = SweepPoint(0.5, avg_latency=12, accepted_rate=0.4, drained=False)
        with pytest.raises(ValueError, match="zero-load"):
            p.is_saturated(float("nan"))


class TestRealSweeps:
    def test_run_point(self, config):
        p = run_point(config, 0.05)
        assert p.injection_rate == 0.05
        assert p.drained
        assert p.avg_latency > 0
        assert p.accepted_rate == pytest.approx(0.05, abs=0.03)

    def test_injection_sweep_latency_grows_with_load(self, config):
        # Low-load points are statistically noisy; compare far-apart loads
        # where queueing delay must dominate.
        points = injection_sweep(config, [0.05, 0.55])
        assert points[0].avg_latency < points[1].avg_latency

    def test_saturation_search_on_simulator(self, monkeypatch):
        """Bisection against a synthetic latency model (fast, exact)."""

        def fake_run_point(config, rate):
            saturated = rate > 0.42
            return SweepPoint(
                injection_rate=rate,
                avg_latency=1000.0 if saturated else 10.0,
                accepted_rate=rate,
                drained=not saturated,
            )

        monkeypatch.setattr(sweep_mod, "run_point", fake_run_point)
        sat = saturation_throughput(
            SimulationConfig(width=4, num_vcs=2, routing="dor"),
            start=0.1,
            stop=0.9,
            coarse_step=0.2,
            refine_steps=4,
            zero_load=10.0,
        )
        assert 0.35 <= sat <= 0.42

    def test_saturation_search_never_saturates(self, monkeypatch):
        def fake_run_point(config, rate):
            return SweepPoint(rate, 10.0, rate, True)

        monkeypatch.setattr(sweep_mod, "run_point", fake_run_point)
        sat = saturation_throughput(
            SimulationConfig(width=4, num_vcs=2, routing="dor"),
            start=0.2,
            stop=0.6,
            coarse_step=0.2,
            zero_load=10.0,
        )
        assert sat == pytest.approx(0.6)
