"""Unit tests for output-port state: credits, allocation, footprints."""

import pytest

from repro.exceptions import AllocationError, FlowControlError
from repro.router.flit import Packet
from repro.router.output import OutputPort
from repro.topology.ports import Direction


def make_port(num_vcs=4, escape=0, atomic=True, depth=4, speedup=2, fifo=8):
    return OutputPort(
        direction=Direction.EAST,
        num_vcs=num_vcs,
        downstream_depth=depth,
        fifo_depth=fifo,
        speedup=speedup,
        escape_vc=escape,
        atomic_realloc=atomic,
    )


def flit(size=1, dst=7, idx=0):
    return Packet(src=0, dst=dst, size=size, creation_time=0).flits()[idx]


class TestViews:
    def test_adaptive_excludes_escape(self):
        assert make_port().adaptive_vcs() == [1, 2, 3]
        assert make_port(escape=None).adaptive_vcs() == [0, 1, 2, 3]

    def test_initially_all_idle(self):
        port = make_port()
        assert port.idle_vcs() == [1, 2, 3]
        assert port.busy_vcs() == []
        assert port.footprint_vcs(7) == []

    def test_allocation_updates_views(self):
        port = make_port()
        port.allocate(2, dst=7)
        assert 2 not in port.idle_vcs()
        assert port.busy_vcs() == [2]
        assert port.footprint_vcs(7) == [2]
        assert port.footprint_vcs(9) == []

    def test_free_credit_total_tracks_sends(self):
        port = make_port()
        start = port.free_credit_total()
        assert start == 3 * 4
        port.allocate(1, dst=7)
        port.send(flit(), 1)
        assert port.free_credit_total() == start - 1
        port.pop_link()
        port.credit_return(1)
        assert port.free_credit_total() == start

    def test_escape_credits_not_in_adaptive_total(self):
        port = make_port()
        port.allocate(0, dst=7)
        total = port.free_credit_total()
        port.send(flit(), 0)
        assert port.free_credit_total() == total


class TestAllocation:
    def test_double_allocation_rejected(self):
        port = make_port()
        port.allocate(1, dst=7)
        with pytest.raises(AllocationError):
            port.allocate(1, dst=8)

    def test_grantable(self):
        port = make_port()
        assert port.grantable(1)
        port.allocate(1, dst=7)
        assert not port.grantable(1)


class TestAtomicReallocation:
    def test_vc_held_until_tail_credit_returns(self):
        port = make_port(atomic=True)
        port.allocate(1, dst=7)
        port.send(flit(size=1), 1)  # single flit: head and tail
        # Tail sent but credit not returned: still not grantable, and the
        # owner remains visible as a footprint.
        assert not port.grantable(1)
        assert port.footprint_vcs(7) == [1]
        port.credit_return(1)
        assert port.grantable(1)
        assert port.footprint_vcs(7) == []

    def test_non_atomic_frees_on_tail_send(self):
        port = make_port(atomic=False, escape=None)
        port.allocate(1, dst=7)
        port.send(flit(size=1), 1)
        assert port.grantable(1)

    def test_multi_flit_drain(self):
        port = make_port(atomic=True)
        port.allocate(2, dst=7)
        head, tail = Packet(src=0, dst=7, size=2, creation_time=0).flits()
        port.send(head, 2)
        port.send(tail, 2)
        port.credit_return(2)
        assert not port.grantable(2)  # one credit still outstanding
        port.credit_return(2)
        assert port.grantable(2)


class TestFreshRelease:
    def test_release_marks_fresh_with_stale_owner(self):
        port = make_port(atomic=True)
        port.allocate(1, dst=7)
        port.send(flit(), 1)
        port.credit_return(1)
        assert port.fresh_footprint_vcs(7) == [1]
        assert port.fresh_other_vcs(7) == []
        assert port.fresh_other_vcs(9) == [1]
        assert port.established_idle_vcs() == [2, 3]
        assert sorted(port.idle_vcs()) == [1, 2, 3]

    def test_clear_fresh(self):
        port = make_port(atomic=True)
        port.allocate(1, dst=7)
        port.send(flit(), 1)
        port.credit_return(1)
        version = port.version
        port.clear_fresh()
        assert port.fresh_footprint_vcs(7) == []
        assert port.established_idle_vcs() == [1, 2, 3]
        assert port.version > version

    def test_reallocation_clears_fresh(self):
        port = make_port(atomic=True)
        port.allocate(1, dst=7)
        port.send(flit(), 1)
        port.credit_return(1)
        port.allocate(1, dst=9)
        assert port.fresh_footprint_vcs(7) == []
        assert port.footprint_vcs(9) == [1]

    def test_version_bumps_on_state_changes(self):
        port = make_port()
        v0 = port.version
        port.allocate(1, dst=7)
        assert port.version > v0


class TestSwitchTraversal:
    def test_speedup_limits_acceptance(self):
        port = make_port(speedup=2)
        port.allocate(1, dst=7)
        assert port.accept_capacity() == 2
        port.send(flit(size=3, idx=0), 1)
        port.send(flit(size=3, idx=1), 1)
        assert port.accept_capacity() == 0
        assert not port.can_send(1)
        port.new_cycle()
        assert port.accept_capacity() == 2

    def test_fifo_capacity_limits_acceptance(self):
        port = make_port(speedup=2, fifo=2, depth=8)
        port.allocate(1, dst=7)
        for i in range(2):
            port.send(flit(size=8, idx=i), 1)
            port.new_cycle()
        assert port.accept_capacity() == 0

    def test_credit_underflow_rejected(self):
        port = make_port(depth=1)
        port.allocate(1, dst=7)
        port.send(flit(size=2, idx=0), 1)
        with pytest.raises(FlowControlError):
            port.send(flit(size=2, idx=1), 1)

    def test_credit_overflow_rejected(self):
        port = make_port()
        with pytest.raises(FlowControlError):
            port.credit_return(1)

    def test_link_pops_in_fifo_order(self):
        port = make_port()
        port.allocate(1, dst=7)
        a = flit(size=2, idx=0)
        b = flit(size=2, idx=1)
        port.send(a, 1)
        port.send(b, 1)
        assert port.pop_link() == (a, 1)
        assert port.pop_link() == (b, 1)
        assert port.pop_link() is None
