"""Unit tests for the parallel execution layer."""

import subprocess
import sys

import pytest

from repro.harness.parallel import (
    SimTask,
    derive_task_seed,
    estimate_task_cycles,
    partition_tasks,
    resolve_jobs,
    run_tasks,
)
from repro.sim.config import SimulationConfig


@pytest.fixture
def config():
    return SimulationConfig(
        width=4,
        num_vcs=2,
        routing="dor",
        warmup_cycles=20,
        measure_cycles=40,
        drain_cycles=200,
        seed=5,
    )


class TestResolveJobs:
    def test_explicit_integer(self):
        assert resolve_jobs(3) == 3

    def test_explicit_string(self):
        assert resolve_jobs("2") == 2

    def test_auto_is_cpu_count(self):
        import os

        assert resolve_jobs("auto") == max(1, os.cpu_count() or 1)

    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("REPRO_JOBS", raising=False)
        assert resolve_jobs(None) == 1

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "6")
        assert resolve_jobs(None) == 6

    def test_explicit_beats_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "6")
        assert resolve_jobs(2) == 2

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            resolve_jobs(0)

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            resolve_jobs("many")


class TestSimTask:
    def test_rate_override(self, config):
        task = SimTask(config, rate=0.25)
        assert task.resolved_config().injection_rate == 0.25

    def test_no_rate_keeps_config(self, config):
        assert SimTask(config).resolved_config() is config

    def test_task_is_picklable(self, config):
        import pickle

        task = SimTask(config, rate=0.1, key=("dor", 0.1))
        clone = pickle.loads(pickle.dumps(task))
        assert clone.rate == task.rate
        assert clone.key == task.key
        assert clone.resolved_config().injection_rate == 0.1


class TestDeriveTaskSeed:
    def test_deterministic(self):
        assert derive_task_seed(1, "fig5/dor/0.1") == derive_task_seed(
            1, "fig5/dor/0.1"
        )

    def test_distinct_names_distinct_seeds(self):
        seeds = {derive_task_seed(1, f"task-{i}") for i in range(100)}
        assert len(seeds) == 100

    def test_distinct_bases_distinct_seeds(self):
        assert derive_task_seed(1, "t") != derive_task_seed(2, "t")

    def test_in_range(self):
        for i in range(10):
            assert 0 <= derive_task_seed(i, "x") < 2**63

    def test_stable_across_process_boundary(self):
        """hash() is salted per process; derive_task_seed must not be."""
        import os
        from pathlib import Path

        import repro

        src = str(Path(repro.__file__).resolve().parent.parent)
        env = dict(os.environ, PYTHONPATH=src, PYTHONHASHSEED="random")
        snippet = (
            "from repro.harness.parallel import derive_task_seed;"
            "print(derive_task_seed(7, 'fig8/footprint/16'))"
        )
        outs = set()
        for _ in range(2):
            proc = subprocess.run(
                [sys.executable, "-c", snippet],
                capture_output=True,
                text=True,
                check=True,
                env=env,
            )
            outs.add(int(proc.stdout.strip()))
        assert outs == {derive_task_seed(7, "fig8/footprint/16")}


class TestEstimateTaskCycles:
    def test_scales_with_mesh_and_cycles(self, config):
        small = estimate_task_cycles(SimTask(config))
        bigger = estimate_task_cycles(
            SimTask(config.with_(width=8, height=8))
        )
        longer = estimate_task_cycles(
            SimTask(config.with_(measure_cycles=config.measure_cycles * 10))
        )
        assert bigger == small * 4
        assert longer > small

    def test_rate_override_resolves(self, config):
        # Cost comes from the resolved config, not the template.
        assert estimate_task_cycles(
            SimTask(config, rate=0.4)
        ) == estimate_task_cycles(SimTask(config))

    def test_always_positive(self, config):
        zero = config.with_(
            warmup_cycles=0, measure_cycles=0, drain_cycles=0
        )
        assert estimate_task_cycles(SimTask(zero)) >= 1


class TestPartitionTasks:
    def test_covers_every_index_once(self):
        costs = [5, 1, 9, 3, 3, 7, 2]
        batches = partition_tasks(costs, 3)
        flat = sorted(i for batch in batches for i in batch)
        assert flat == list(range(len(costs)))

    def test_never_more_batches_than_tasks(self):
        assert partition_tasks([4, 4], 8) == [[0], [1]]

    def test_batches_sorted_and_ordered(self):
        batches = partition_tasks([1, 8, 2, 8, 1, 2], 2)
        for batch in batches:
            assert batch == sorted(batch)
        firsts = [batch[0] for batch in batches]
        assert firsts == sorted(firsts)

    def test_lpt_balances_loads(self):
        # LPT keeps the spread within one task: the load gap between the
        # heaviest and lightest bucket never exceeds the largest cost.
        costs = [13, 11, 7, 5, 5, 3, 2, 2, 1]
        batches = partition_tasks(costs, 3)
        loads = [sum(costs[i] for i in batch) for batch in batches]
        assert max(loads) - min(loads) <= max(costs)
        # One giant task dominating everything still lands alone.
        batches = partition_tasks([100, 1, 1, 1], 2)
        singleton = [b for b in batches if len(b) == 1]
        assert singleton == [[0]]

    def test_single_bucket_is_identity(self):
        assert partition_tasks([3, 1, 2], 1) == [[0, 1, 2]]


class TestRunTasks:
    def test_results_in_task_order(self, config):
        tasks = [SimTask(config, rate=r) for r in (0.3, 0.05)]
        results = run_tasks(tasks, jobs=1)
        assert [r.config.injection_rate for r in results] == [0.3, 0.05]

    def test_empty_grid(self):
        assert run_tasks([], jobs=4) == []

    def test_pool_matches_serial(self, config):
        """jobs=4 must reproduce jobs=1 bit-for-bit (forces the pool)."""
        tasks = [SimTask(config, rate=r) for r in (0.05, 0.2)]
        serial = run_tasks(tasks, jobs=1)
        pooled = run_tasks(tasks, jobs=4)
        for a, b in zip(serial, pooled):
            assert a.cycles_run == b.cycles_run
            assert a.accepted_flits == b.accepted_flits
            assert tuple(a.latency._samples) == tuple(b.latency._samples)


class TestServiceFallback:
    """$REPRO_SERVICE must degrade loudly, never fail the sweep."""

    def test_unreachable_service_falls_back_to_local_pool(
        self, config, monkeypatch, capsys
    ):
        # Port 1 on loopback: connection is refused immediately.
        monkeypatch.setenv("REPRO_SERVICE", "127.0.0.1:1")
        tasks = [SimTask(config, rate=0.05)]
        results = run_tasks(tasks, jobs=1)
        err = capsys.readouterr().err
        assert "REPRO_SERVICE=127.0.0.1:1" in err
        assert "falling back to the local pool" in err
        monkeypatch.delenv("REPRO_SERVICE")
        local = run_tasks(tasks, jobs=1)
        assert results[0].accepted_flits == local[0].accepted_flits
        assert results[0].cycles_run == local[0].cycles_run

    def test_unset_service_stays_silent(self, config, monkeypatch, capsys):
        monkeypatch.delenv("REPRO_SERVICE", raising=False)
        run_tasks([SimTask(config, rate=0.05)], jobs=1)
        assert capsys.readouterr().err == ""
