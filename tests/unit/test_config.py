"""Unit tests for SimulationConfig validation and helpers."""

import pytest

from repro.exceptions import ConfigurationError
from repro.sim.config import SimulationConfig


class TestDefaults:
    def test_paper_defaults(self):
        config = SimulationConfig()
        assert config.width == 8
        assert config.height == 8
        assert config.num_vcs == 10
        assert config.vc_buffer_depth == 4
        assert config.internal_speedup == 2
        assert config.packet_size == 1
        assert config.routing == "footprint"

    def test_height_defaults_to_width(self):
        assert SimulationConfig(width=4).height == 4
        assert SimulationConfig(width=4, height=6).height == 6

    def test_num_nodes(self):
        assert SimulationConfig(width=4).num_nodes == 16
        assert SimulationConfig(width=4, height=2).num_nodes == 8


class TestValidation:
    def test_mesh_too_small(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(width=1)

    def test_zero_vcs(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(num_vcs=0)

    @pytest.mark.parametrize("routing", ["dbar", "footprint"])
    def test_escape_algorithms_need_two_vcs(self, routing):
        with pytest.raises(ConfigurationError):
            SimulationConfig(num_vcs=1, routing=routing)
        SimulationConfig(num_vcs=2, routing=routing)  # must not raise

    def test_dor_allows_single_vc(self):
        SimulationConfig(num_vcs=1, routing="dor")

    def test_injection_rate_bounds(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(injection_rate=-0.1)
        with pytest.raises(ConfigurationError):
            SimulationConfig(injection_rate=1.5)

    def test_packet_size_range(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(packet_size_range=(0, 6))
        with pytest.raises(ConfigurationError):
            SimulationConfig(packet_size_range=(6, 1))
        SimulationConfig(packet_size_range=(1, 6))

    def test_output_buffer_fits_speedup(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(internal_speedup=4, output_buffer_depth=2)

    def test_ejection_rate_bounds(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(ejection_rate=0.0)
        with pytest.raises(ConfigurationError):
            SimulationConfig(ejection_rate=1.5)

    def test_footprint_vc_limit(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(footprint_vc_limit=0)
        SimulationConfig(footprint_vc_limit=2)
        SimulationConfig(footprint_vc_limit=None)

    def test_negative_cycles(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(warmup_cycles=-1)


class TestHelpers:
    def test_with_overrides_and_revalidates(self):
        config = SimulationConfig(width=4)
        other = config.with_(injection_rate=0.5)
        assert other.injection_rate == 0.5
        assert other.width == 4
        assert config.injection_rate != 0.5  # original untouched
        with pytest.raises(ConfigurationError):
            config.with_(injection_rate=2.0)

    def test_routing_needs_escape(self):
        assert SimulationConfig(routing="footprint").routing_needs_escape
        assert SimulationConfig(routing="dbar+xordet").routing_needs_escape
        assert not SimulationConfig(routing="dor").routing_needs_escape
        assert not SimulationConfig(routing="oddeven").routing_needs_escape

    def test_mean_packet_size(self):
        assert SimulationConfig(packet_size=3).mean_packet_size == 3.0
        assert (
            SimulationConfig(packet_size_range=(1, 6)).mean_packet_size == 3.5
        )

    def test_max_cycles(self):
        config = SimulationConfig(
            warmup_cycles=10, measure_cycles=20, drain_cycles=30
        )
        assert config.max_cycles == 60

    def test_describe_mentions_key_facts(self):
        text = SimulationConfig(routing="dbar", traffic="shuffle").describe()
        assert "dbar" in text
        assert "shuffle" in text
        assert "8x8" in text


class TestTopology:
    def test_mesh_is_the_default(self):
        assert SimulationConfig().topology == "mesh"

    def test_unknown_topology_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown topology"):
            SimulationConfig(topology="hypercube")

    def test_torus_rejects_mesh_only_routing(self):
        with pytest.raises(ConfigurationError, match="mesh-only"):
            SimulationConfig(topology="torus", routing="oddeven")
        with pytest.raises(ConfigurationError, match="mesh-only"):
            SimulationConfig(topology="torus", routing="footprint+xordet")

    def test_torus_vc_minimums(self):
        # Dateline deadlock avoidance needs one VC per class...
        with pytest.raises(ConfigurationError):
            SimulationConfig(topology="torus", routing="dor", num_vcs=1)
        SimulationConfig(topology="torus", routing="dor", num_vcs=2)
        # ...and the Duato-style escape algorithms need an adaptive VC
        # on top of the two escape classes.
        with pytest.raises(ConfigurationError):
            SimulationConfig(topology="torus", routing="footprint", num_vcs=2)
        SimulationConfig(topology="torus", routing="footprint", num_vcs=3)

    def test_make_topology(self):
        from repro.topology.mesh import Mesh2D
        from repro.topology.torus import Torus2D

        assert isinstance(SimulationConfig().make_topology(), Mesh2D)
        torus = SimulationConfig(
            width=4, height=6, topology="torus"
        ).make_topology()
        assert isinstance(torus, Torus2D)
        assert (torus.width, torus.height) == (4, 6)

    def test_mesh_payload_has_no_topology_key(self):
        # Cache-key stability: mesh configs must serialize byte-identically
        # to payloads written before the topology field existed.
        assert "topology" not in SimulationConfig().to_dict()
        assert SimulationConfig.from_dict(
            SimulationConfig().to_dict()
        ).topology == "mesh"

    def test_torus_round_trips(self):
        config = SimulationConfig(width=4, topology="torus", num_vcs=4)
        data = config.to_dict()
        assert data["topology"] == "torus"
        assert SimulationConfig.from_dict(data) == config

    def test_describe_mentions_topology(self):
        assert "torus" in SimulationConfig(
            topology="torus", num_vcs=4
        ).describe()
