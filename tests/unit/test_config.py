"""Unit tests for SimulationConfig validation and helpers."""

import pytest

from repro.exceptions import ConfigurationError
from repro.sim.config import SimulationConfig


class TestDefaults:
    def test_paper_defaults(self):
        config = SimulationConfig()
        assert config.width == 8
        assert config.height == 8
        assert config.num_vcs == 10
        assert config.vc_buffer_depth == 4
        assert config.internal_speedup == 2
        assert config.packet_size == 1
        assert config.routing == "footprint"

    def test_height_defaults_to_width(self):
        assert SimulationConfig(width=4).height == 4
        assert SimulationConfig(width=4, height=6).height == 6

    def test_num_nodes(self):
        assert SimulationConfig(width=4).num_nodes == 16
        assert SimulationConfig(width=4, height=2).num_nodes == 8


class TestValidation:
    def test_mesh_too_small(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(width=1)

    def test_zero_vcs(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(num_vcs=0)

    @pytest.mark.parametrize("routing", ["dbar", "footprint"])
    def test_escape_algorithms_need_two_vcs(self, routing):
        with pytest.raises(ConfigurationError):
            SimulationConfig(num_vcs=1, routing=routing)
        SimulationConfig(num_vcs=2, routing=routing)  # must not raise

    def test_dor_allows_single_vc(self):
        SimulationConfig(num_vcs=1, routing="dor")

    def test_injection_rate_bounds(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(injection_rate=-0.1)
        with pytest.raises(ConfigurationError):
            SimulationConfig(injection_rate=1.5)

    def test_packet_size_range(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(packet_size_range=(0, 6))
        with pytest.raises(ConfigurationError):
            SimulationConfig(packet_size_range=(6, 1))
        SimulationConfig(packet_size_range=(1, 6))

    def test_output_buffer_fits_speedup(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(internal_speedup=4, output_buffer_depth=2)

    def test_ejection_rate_bounds(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(ejection_rate=0.0)
        with pytest.raises(ConfigurationError):
            SimulationConfig(ejection_rate=1.5)

    def test_footprint_vc_limit(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(footprint_vc_limit=0)
        SimulationConfig(footprint_vc_limit=2)
        SimulationConfig(footprint_vc_limit=None)

    def test_negative_cycles(self):
        with pytest.raises(ConfigurationError):
            SimulationConfig(warmup_cycles=-1)


class TestHelpers:
    def test_with_overrides_and_revalidates(self):
        config = SimulationConfig(width=4)
        other = config.with_(injection_rate=0.5)
        assert other.injection_rate == 0.5
        assert other.width == 4
        assert config.injection_rate != 0.5  # original untouched
        with pytest.raises(ConfigurationError):
            config.with_(injection_rate=2.0)

    def test_routing_needs_escape(self):
        assert SimulationConfig(routing="footprint").routing_needs_escape
        assert SimulationConfig(routing="dbar+xordet").routing_needs_escape
        assert not SimulationConfig(routing="dor").routing_needs_escape
        assert not SimulationConfig(routing="oddeven").routing_needs_escape

    def test_mean_packet_size(self):
        assert SimulationConfig(packet_size=3).mean_packet_size == 3.0
        assert (
            SimulationConfig(packet_size_range=(1, 6)).mean_packet_size == 3.5
        )

    def test_max_cycles(self):
        config = SimulationConfig(
            warmup_cycles=10, measure_cycles=20, drain_cycles=30
        )
        assert config.max_cycles == 60

    def test_describe_mentions_key_facts(self):
        text = SimulationConfig(routing="dbar", traffic="shuffle").describe()
        assert "dbar" in text
        assert "shuffle" in text
        assert "8x8" in text
