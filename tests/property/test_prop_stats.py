"""Property-based tests for statistics and traffic invariants."""

import math
import random

from hypothesis import given, strategies as st

from repro.metrics.stats import LatencyStats
from repro.topology.mesh import Mesh2D
from repro.traffic.patterns import PATTERNS, pattern_destination

samples = st.lists(st.integers(0, 10_000), min_size=1, max_size=500)
maybe_empty = st.lists(st.integers(0, 10_000), max_size=500)


def aggregates(stats):
    """Every observable aggregate, for whole-object comparison.

    Percentiles are queried first: they sort the retained samples in
    place, which pins the float summation order inside ``stddev`` so two
    logically equal accumulators compare bit-identical.
    """
    if stats.count == 0:
        return (0,)
    pcts = tuple(stats.percentile(q) for q in (0, 25, 50, 75, 90, 99, 100))
    return (
        stats.count,
        stats.mean,
        stats.stddev,
        stats.minimum,
        stats.maximum,
        pcts,
    )


@given(samples)
def test_mean_within_bounds(values):
    stats = LatencyStats()
    stats.extend(values)
    assert stats.minimum <= stats.mean <= stats.maximum


@given(samples)
def test_percentiles_monotone(values):
    stats = LatencyStats()
    stats.extend(values)
    qs = [0, 10, 25, 50, 75, 90, 99, 100]
    ps = [stats.percentile(q) for q in qs]
    assert ps == sorted(ps)
    assert ps[0] == stats.minimum
    assert ps[-1] == stats.maximum


@given(maybe_empty, maybe_empty)
def test_merge_equals_concatenation(a, b):
    merged = LatencyStats()
    merged.extend(a)
    other = LatencyStats()
    other.extend(b)
    merged.merge(other)
    combined = LatencyStats()
    combined.extend(a + b)
    assert aggregates(merged) == aggregates(combined)


@given(samples, samples)
def test_merge_leaves_argument_untouched(a, b):
    left = LatencyStats()
    left.extend(a)
    right = LatencyStats()
    right.extend(b)
    before = aggregates(right)
    left.merge(right)
    assert aggregates(right) == before


@given(
    samples,
    st.floats(min_value=0.0, max_value=100.0),
    st.floats(min_value=0.0, max_value=100.0),
)
def test_percentile_monotone_at_arbitrary_floats(values, q1, q2):
    stats = LatencyStats.from_samples(values)
    lo, hi = sorted((q1, q2))
    assert stats.percentile(lo) <= stats.percentile(hi)


@given(maybe_empty)
def test_round_trip_preserves_aggregates(values):
    original = LatencyStats.from_samples(values)
    rebuilt = LatencyStats.from_samples(original.samples())
    assert aggregates(rebuilt) == aggregates(original)


@given(maybe_empty)
def test_samples_is_a_copy(values):
    stats = LatencyStats.from_samples(values)
    exported = stats.samples()
    exported.append(999_999)
    assert stats.count == len(values)


@given(maybe_empty)
def test_empty_aggregates_agree(values):
    # Regression companion: mean and stddev must agree on "no data".
    stats = LatencyStats.from_samples(values)
    if stats.count == 0:
        assert math.isnan(stats.mean) and math.isnan(stats.stddev)
    else:
        assert not math.isnan(stats.mean)
        assert not math.isnan(stats.stddev)


@given(samples)
def test_order_invariance(values):
    a = LatencyStats()
    a.extend(values)
    b = LatencyStats()
    b.extend(sorted(values, reverse=True))
    assert a.mean == b.mean
    assert a.percentile(75) == b.percentile(75)


@given(
    st.sampled_from(sorted(PATTERNS)),
    st.sampled_from([2, 4, 8]),
    st.integers(0, 10_000),
)
def test_patterns_never_self_address(name, width, seed):
    mesh = Mesh2D(width)
    rng = random.Random(seed)
    for src in range(mesh.num_nodes):
        dst = pattern_destination(name, mesh, src, rng)
        if dst is not None:
            assert dst != src
            assert 0 <= dst < mesh.num_nodes


@given(st.sampled_from([2, 4, 8]), st.integers(0, 1000))
def test_deterministic_patterns_are_permutations(width, seed):
    """Transpose/shuffle/bitcomp/bitrev map distinct sources to distinct
    destinations (they are partial permutations)."""
    mesh = Mesh2D(width)
    rng = random.Random(seed)
    for name in ("transpose", "shuffle", "bitcomp", "bitrev"):
        mapping = {}
        for src in range(mesh.num_nodes):
            dst = pattern_destination(name, mesh, src, rng)
            if dst is not None:
                mapping[src] = dst
        assert len(set(mapping.values())) == len(mapping)
