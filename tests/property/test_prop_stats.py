"""Property-based tests for statistics and traffic invariants."""

import random

from hypothesis import given, strategies as st

from repro.metrics.stats import LatencyStats
from repro.topology.mesh import Mesh2D
from repro.traffic.patterns import PATTERNS, pattern_destination

samples = st.lists(st.integers(0, 10_000), min_size=1, max_size=500)


@given(samples)
def test_mean_within_bounds(values):
    stats = LatencyStats()
    stats.extend(values)
    assert stats.minimum <= stats.mean <= stats.maximum


@given(samples)
def test_percentiles_monotone(values):
    stats = LatencyStats()
    stats.extend(values)
    qs = [0, 10, 25, 50, 75, 90, 99, 100]
    ps = [stats.percentile(q) for q in qs]
    assert ps == sorted(ps)
    assert ps[0] == stats.minimum
    assert ps[-1] == stats.maximum


@given(samples, samples)
def test_merge_equals_concatenation(a, b):
    merged = LatencyStats()
    merged.extend(a)
    other = LatencyStats()
    other.extend(b)
    merged.merge(other)
    combined = LatencyStats()
    combined.extend(a + b)
    assert merged.count == combined.count
    assert merged.mean == combined.mean
    assert merged.percentile(50) == combined.percentile(50)


@given(samples)
def test_order_invariance(values):
    a = LatencyStats()
    a.extend(values)
    b = LatencyStats()
    b.extend(sorted(values, reverse=True))
    assert a.mean == b.mean
    assert a.percentile(75) == b.percentile(75)


@given(
    st.sampled_from(sorted(PATTERNS)),
    st.sampled_from([2, 4, 8]),
    st.integers(0, 10_000),
)
def test_patterns_never_self_address(name, width, seed):
    mesh = Mesh2D(width)
    rng = random.Random(seed)
    for src in range(mesh.num_nodes):
        dst = pattern_destination(name, mesh, src, rng)
        if dst is not None:
            assert dst != src
            assert 0 <= dst < mesh.num_nodes


@given(st.sampled_from([2, 4, 8]), st.integers(0, 1000))
def test_deterministic_patterns_are_permutations(width, seed):
    """Transpose/shuffle/bitcomp/bitrev map distinct sources to distinct
    destinations (they are partial permutations)."""
    mesh = Mesh2D(width)
    rng = random.Random(seed)
    for name in ("transpose", "shuffle", "bitcomp", "bitrev"):
        mapping = {}
        for src in range(mesh.num_nodes):
            dst = pattern_destination(name, mesh, src, rng)
            if dst is not None:
                mapping[src] = dst
        assert len(set(mapping.values())) == len(mapping)
