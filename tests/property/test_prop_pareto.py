"""Property tests: the sort-based Pareto frontier is exactly brute force.

:func:`repro.tuner.pareto.pareto_indices` uses a lexicographic-sort
single pass; the reference implementation here is the O(n^2) pairwise
dominance filter straight from the definition.  They must agree on any
objective set — including duplicates, ties, negative values, and
mixed-direction objectives mapped through ``Objective.minimized``.
"""

from hypothesis import given, strategies as st

from repro.tuner.objectives import CandidateEval
from repro.tuner.pareto import (
    dominates,
    pareto_frontier,
    pareto_indices,
    rank_evals,
)
from repro.tuner.space import Candidate

# Small value pool on purpose: collisions and ties are the hard cases.
values = st.one_of(
    st.integers(-3, 3).map(float),
    st.floats(
        min_value=-10.0,
        max_value=10.0,
        allow_nan=False,
        allow_infinity=False,
    ),
)


def vector_lists(dims):
    return st.lists(
        st.tuples(*[values] * dims), min_size=0, max_size=40
    )


def brute_force_indices(vectors):
    return [
        i
        for i, v in enumerate(vectors)
        if not any(
            dominates(w, v) for j, w in enumerate(vectors) if j != i
        )
    ]


@given(vector_lists(2))
def test_frontier_matches_brute_force_2d(vectors):
    assert pareto_indices(vectors) == brute_force_indices(vectors)


@given(vector_lists(3))
def test_frontier_matches_brute_force_3d(vectors):
    assert pareto_indices(vectors) == brute_force_indices(vectors)


@given(vector_lists(1))
def test_frontier_matches_brute_force_1d(vectors):
    assert pareto_indices(vectors) == brute_force_indices(vectors)


@given(vector_lists(3))
def test_frontier_members_are_mutually_non_dominated(vectors):
    frontier = pareto_indices(vectors)
    for i in frontier:
        for j in frontier:
            assert not dominates(vectors[i], vectors[j])


@given(vector_lists(3))
def test_non_frontier_points_have_a_dominator_on_the_frontier(vectors):
    frontier = set(pareto_indices(vectors))
    for i, v in enumerate(vectors):
        if i in frontier:
            continue
        assert any(dominates(vectors[j], v) for j in frontier)


def _evals_from(vectors):
    return [
        CandidateEval(
            candidate=Candidate((("i", index),)),
            rung="full",
            avg_latency=latency,
            saturation_throughput=-throughput,  # maximized → negate back
            cost_bits=cost,
        )
        for index, (latency, throughput, cost) in enumerate(vectors)
    ]


@given(vector_lists(3))
def test_eval_frontier_agrees_with_vector_frontier(vectors):
    evals = _evals_from(vectors)
    by_vectors = [evals[i] for i in brute_force_indices(vectors)]
    assert pareto_frontier(evals) == by_vectors


@given(vector_lists(3), st.randoms(use_true_random=False))
def test_rank_is_permutation_invariant(vectors, rng):
    evals = _evals_from(vectors)
    shuffled = list(evals)
    rng.shuffle(shuffled)
    original = [e.candidate.key() for e in rank_evals(evals)]
    permuted = [e.candidate.key() for e in rank_evals(shuffled)]
    assert original == permuted
    assert sorted(original) == sorted(e.candidate.key() for e in evals)
