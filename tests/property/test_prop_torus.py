"""Property-based tests for torus geometry and the dateline VC scheme."""

from hypothesis import given, strategies as st

from repro.topology.ports import COMPASS, OPPOSITE, Direction
from repro.topology.torus import Torus2D

dims = st.integers(min_value=2, max_value=16)


@st.composite
def torus_and_node(draw):
    torus = Torus2D(draw(dims), draw(dims))
    node = draw(st.integers(0, torus.num_nodes - 1))
    return torus, node


@st.composite
def torus_and_pair(draw):
    torus = Torus2D(draw(dims), draw(dims))
    src = draw(st.integers(0, torus.num_nodes - 1))
    dst = draw(st.integers(0, torus.num_nodes - 1))
    return torus, src, dst


@given(torus_and_node())
def test_coords_roundtrip(tn):
    torus, node = tn
    x, y = torus.coords(node)
    assert 0 <= x < torus.width and 0 <= y < torus.height
    assert torus.node_at(x, y) == node


@given(torus_and_node())
def test_every_port_has_a_mutual_neighbor(tn):
    torus, node = tn
    for d in COMPASS:
        nbr = torus.neighbor(node, d)
        assert nbr is not None
        assert torus.neighbor(nbr, OPPOSITE[d]) == node
        assert torus.hop_distance(node, nbr) == 1


@given(torus_and_pair())
def test_hop_distance_metric(tp):
    torus, src, dst = tp
    d = torus.hop_distance(src, dst)
    assert d == torus.hop_distance(dst, src)
    assert (d == 0) == (src == dst)
    # Shorter-way bound: half of each ring, not the mesh diameter.
    assert d <= torus.width // 2 + torus.height // 2


@given(torus_and_pair())
def test_minimal_directions_reduce_distance(tp):
    torus, src, dst = tp
    dirs = torus.minimal_directions(src, dst)
    assert (not dirs) == (src == dst)
    assert len(dirs) == len(set(d.dimension for d in dirs))
    for d in dirs:
        nbr = torus.neighbor(src, d)
        assert torus.hop_distance(nbr, dst) == torus.hop_distance(src, dst) - 1


@given(torus_and_pair())
def test_dor_walk_terminates_minimally(tp):
    torus, src, dst = tp
    cur = src
    hops = 0
    while cur != dst:
        direction = torus.dor_direction(cur, dst)
        assert direction is not Direction.LOCAL
        cur = torus.neighbor(cur, direction)
        hops += 1
        assert hops <= torus.num_nodes
    assert hops == torus.hop_distance(src, dst)
    assert torus.dor_direction(dst, dst) is Direction.LOCAL


@given(torus_and_pair())
def test_dateline_classes_never_fall_back_to_zero(tp):
    """Along any DOR path each ring's VC class is 0...0 then 1...1.

    This monotonicity is the whole deadlock-freedom argument: a packet
    that has crossed a ring's dateline (class 1) must never re-enter
    class 0 on that ring, otherwise the class-0 channel cycle closes.
    """
    torus, src, dst = tp
    cur = src
    last_class = {0: -1, 1: -1}  # per dimension
    while cur != dst:
        direction = torus.dor_direction(cur, dst)
        vc_class = torus.wrap_vc_class(cur, dst, direction)
        assert vc_class in (0, 1)
        assert vc_class >= last_class[direction.dimension]
        last_class[direction.dimension] = vc_class
        cur = torus.neighbor(cur, direction)


@given(torus_and_pair())
def test_wrap_hop_is_always_class_one(tp):
    """The hop that crosses a ring's wrap link rides the high class."""
    torus, src, dst = tp
    cur = src
    while cur != dst:
        direction = torus.dor_direction(cur, dst)
        nxt = torus.neighbor(cur, direction)
        cx, cy = torus.coords(cur)
        nx, ny = torus.coords(nxt)
        wrapped = (
            abs(nx - cx) > 1 if direction.dimension == 0 else abs(ny - cy) > 1
        )
        if wrapped:
            assert torus.wrap_vc_class(cur, dst, direction) == 1
        cur = nxt


@given(torus_and_pair())
def test_num_minimal_paths_positive(tp):
    torus, src, dst = tp
    paths = torus.num_minimal_paths(src, dst)
    assert paths >= 1
    assert paths == torus.num_minimal_paths(dst, src)
