"""Property-based tests over whole simulations.

Random small configurations must always deliver every packet (drain), and
flit conservation must hold at every scale.  These are the strongest
invariants the simulator offers: they subsume deadlock freedom, credit
correctness, and routing termination for the sampled configurations.
"""

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.sim.config import SimulationConfig
from repro.sim.engine import Simulator

configs = st.fixed_dictionaries(
    {
        "width": st.sampled_from([2, 3, 4]),
        "num_vcs": st.sampled_from([2, 3, 4]),
        "routing": st.sampled_from(
            [
                "dor",
                "oddeven",
                "dbar",
                "footprint",
                "dor+xordet",
                "dbar+xordet",
            ]
        ),
        "traffic": st.sampled_from(["uniform", "transpose", "tornado"]),
        "injection_rate": st.sampled_from([0.05, 0.15, 0.3]),
        "packet_size": st.sampled_from([1, 2, 4]),
        "seed": st.integers(0, 10_000),
    }
)


@given(configs)
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_random_configs_drain_and_conserve(params):
    config = SimulationConfig(
        warmup_cycles=30,
        measure_cycles=80,
        drain_cycles=3000,
        **params,
    )
    sim = Simulator(config)
    result = sim.run()

    # Drain: every measured packet was delivered.
    assert result.drained, f"undrained at low load: {config.describe()}"

    # Conservation: offered == ejected + in-network + queued-at-source.
    ejected = sum(s.ejected_flits for s in sim.sinks)
    offered = sum(s.offered_flits for s in sim.sources)
    queued = 0
    for src in sim.sources:
        queued += sum(p.size for p in src.queue)
        if src._current_flits is not None:
            queued += len(src._current_flits)
    assert ejected + sim.total_buffered_flits() + queued == offered

    # Latency sanity: no packet is faster than its hop count allows.
    if result.latency.count:
        assert result.latency.minimum >= 2


@given(st.integers(0, 10_000))
@settings(max_examples=10, deadline=None)
def test_bit_reproducibility(seed):
    def run():
        config = SimulationConfig(
            width=3,
            num_vcs=2,
            routing="footprint",
            traffic="uniform",
            injection_rate=0.2,
            warmup_cycles=20,
            measure_cycles=60,
            drain_cycles=1500,
            seed=seed,
        )
        r = Simulator(config).run()
        return (r.avg_latency, r.accepted_flits, r.cycles_run)

    assert run() == run()
