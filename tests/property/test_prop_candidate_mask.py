"""Property test: ``candidate_mask`` against the scalar request oracle.

For any reachable output-port VC state (built by mutating real
:class:`OutputPort` objects, then snapshotted with
:meth:`VcStateArrays.capture`) and any packet, the batched
``candidate_mask`` row — enumerated in (priority descending, VC
ascending) order, exactly as the vector engine reconstructs request
lists — must equal the scalar ``vc_requests_at`` list for the same
committed direction, request for request and in order.
"""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.router.output import OutputPort
from repro.routing.batch import VcStateArrays
from repro.routing.registry import available_algorithms, create_routing
from repro.routing.requests import Priority
from repro.topology.mesh import Mesh2D
from repro.topology.ports import NUM_PORTS, Direction

from tests.conftest import make_context

ALGOS = available_algorithms()

_VC_STATES = ("idle", "busy", "established", "fresh")


@st.composite
def network_case(draw):
    mesh = Mesh2D(draw(st.integers(2, 4)), draw(st.integers(2, 4)))
    name = draw(st.sampled_from(ALGOS))
    algo = create_routing(name)
    num_vcs = draw(st.integers(2, 5))
    escape = 0 if algo.uses_escape else None
    depth = draw(st.integers(1, 4))
    dests = st.integers(0, mesh.num_nodes - 1)

    ports_by_node = []
    for node in range(mesh.num_nodes):
        ports = {}
        for d in mesh.router_ports(node):
            port_escape = escape if d is not Direction.LOCAL else None
            port = OutputPort(
                direction=d,
                num_vcs=num_vcs,
                downstream_depth=depth,
                fifo_depth=2,
                speedup=1,
                escape_vc=port_escape,
                atomic_realloc=algo.atomic_vc_reallocation,
            )
            adaptive = port.adaptive_vcs()
            states = [
                draw(st.sampled_from(_VC_STATES)) for _ in adaptive
            ]
            # Pass 1 — VCs released in an *earlier* round: idle with a
            # stale owner, no longer fresh.
            for v, s in zip(adaptive, states):
                if s == "established":
                    port.allocate(v, draw(dests))
                    port._release(v)
            port.clear_fresh()
            # Pass 2 — this round's state: busy VCs and fresh releases.
            for v, s in zip(adaptive, states):
                if s == "busy":
                    port.allocate(v, draw(dests))
                elif s == "fresh":
                    port.allocate(v, draw(dests))
                    port._release(v)
            if port_escape is not None and draw(st.booleans()):
                port.allocate(port_escape, draw(dests))
            ports[d] = port
        ports_by_node.append(ports)

    cur = draw(dests)
    dst = draw(dests)
    src = draw(dests)
    threshold = draw(st.integers(1, num_vcs))
    limit = draw(st.one_of(st.none(), st.integers(1, 3)))
    seed = draw(st.integers(0, 1000))
    return (
        mesh,
        algo,
        ports_by_node,
        num_vcs,
        escape,
        cur,
        dst,
        src,
        threshold,
        limit,
        seed,
    )


@given(network_case())
@settings(max_examples=120, deadline=None)
def test_candidate_mask_matches_scalar_requests(case):
    (
        mesh,
        algo,
        ports_by_node,
        num_vcs,
        escape,
        cur,
        dst,
        src,
        threshold,
        limit,
        seed,
    ) = case

    ctx = make_context(
        mesh,
        cur,
        dst,
        ports_by_node[cur],
        source=src,
        num_vcs=num_vcs,
        congestion_threshold=threshold,
        footprint_vc_limit=limit,
        seed=seed,
    )
    direction = algo.select_output(ctx)
    scalar = [
        (int(r.direction), r.vc, int(r.priority))
        for r in algo.vc_requests_at(ctx, direction)
    ]

    state = VcStateArrays.capture(
        mesh,
        num_vcs,
        ports_by_node,
        congestion_threshold=threshold,
        footprint_vc_limit=limit,
        escape_vc=escape,
    )
    mask = algo.candidate_mask(
        state,
        np.array([cur], dtype=np.int64),
        np.array([dst], dtype=np.int64),
        np.array([int(direction)], dtype=np.int64),
    )
    assert mask.shape == (1, NUM_PORTS, num_vcs)
    entries = [
        (int(mask[0, d, v]), d, v)
        for d in range(NUM_PORTS)
        for v in range(num_vcs)
        if mask[0, d, v] >= 0
    ]
    # The vector engine's reconstruction order: priority descending, VC
    # ascending (the LOWEST escape request lands last automatically).
    entries.sort(key=lambda e: (-e[0], e[2]))
    batched = [(d, v, p) for p, d, v in entries]
    assert batched == scalar

    # Well-formedness, mirroring the scalar property test: every request
    # targets a grantable VC, non-escape requests stay on the committed
    # port, and the only off-port request is the DOR escape.
    escape_dir = int(mesh.dor_direction(cur, dst))
    for d, v, p in batched:
        g = cur * NUM_PORTS + d
        assert not state.busy[g, v]
        if p == int(Priority.LOWEST):
            assert v == escape
            assert d == escape_dir
        else:
            assert d == int(direction)
