"""Property-based tests for mesh geometry."""

from hypothesis import given, strategies as st

from repro.topology.mesh import Mesh2D
from repro.topology.ports import COMPASS, OPPOSITE, Direction

dims = st.integers(min_value=2, max_value=16)


@st.composite
def mesh_and_node(draw):
    mesh = Mesh2D(draw(dims), draw(dims))
    node = draw(st.integers(0, mesh.num_nodes - 1))
    return mesh, node


@st.composite
def mesh_and_pair(draw):
    mesh = Mesh2D(draw(dims), draw(dims))
    src = draw(st.integers(0, mesh.num_nodes - 1))
    dst = draw(st.integers(0, mesh.num_nodes - 1))
    return mesh, src, dst


@given(mesh_and_node())
def test_coords_roundtrip(mn):
    mesh, node = mn
    x, y = mesh.coords(node)
    assert 0 <= x < mesh.width and 0 <= y < mesh.height
    assert mesh.node_at(x, y) == node


@given(mesh_and_node())
def test_neighbor_symmetry(mn):
    mesh, node = mn
    for d in COMPASS:
        nbr = mesh.neighbor(node, d)
        if nbr is not None:
            assert mesh.neighbor(nbr, OPPOSITE[d]) == node
            assert mesh.hop_distance(node, nbr) == 1


@given(mesh_and_pair())
def test_hop_distance_metric(mp):
    mesh, src, dst = mp
    d = mesh.hop_distance(src, dst)
    assert d == mesh.hop_distance(dst, src)
    assert (d == 0) == (src == dst)
    assert d <= (mesh.width - 1) + (mesh.height - 1)


@given(mesh_and_pair())
def test_minimal_directions_reduce_distance(mp):
    mesh, src, dst = mp
    dirs = mesh.minimal_directions(src, dst)
    assert (not dirs) == (src == dst)
    for d in dirs:
        nbr = mesh.neighbor(src, d)
        assert nbr is not None
        assert mesh.hop_distance(nbr, dst) == mesh.hop_distance(src, dst) - 1


@given(mesh_and_pair())
def test_dor_direction_is_minimal(mp):
    mesh, src, dst = mp
    d = mesh.dor_direction(src, dst)
    if src == dst:
        assert d is Direction.LOCAL
    else:
        assert d in mesh.minimal_directions(src, dst)


@given(mesh_and_pair())
def test_dor_walk_terminates_minimally(mp):
    mesh, src, dst = mp
    node, hops = src, 0
    while node != dst:
        node = mesh.neighbor(node, mesh.dor_direction(node, dst))
        hops += 1
    assert hops == mesh.hop_distance(src, dst)


@given(mesh_and_pair())
def test_num_minimal_paths_lower_bound(mp):
    mesh, src, dst = mp
    paths = mesh.num_minimal_paths(src, dst)
    assert paths >= 1
    dirs = mesh.minimal_directions(src, dst)
    if len(dirs) == 2:
        assert paths >= 2
    elif src != dst:
        assert len(dirs) == 1
