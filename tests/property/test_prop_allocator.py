"""Property-based tests for the VC allocator.

For any set of requests over any port state, one allocation round must be
a *matching*: at most one grant per input VC, at most one grant per
(port, VC), only grantable VCs granted, and the output-stage winner never
has lower priority than a losing contender for the same VC.
"""

import random

from hypothesis import given, strategies as st

from repro.router.allocator import allocate_vcs
from repro.router.flit import Packet
from repro.router.output import OutputPort
from repro.router.vcstate import InputVc
from repro.routing.requests import Priority, VcRequest
from repro.topology.ports import Direction

NUM_VCS = 4
DIRECTIONS = (Direction.EAST, Direction.SOUTH)


@st.composite
def allocation_round(draw):
    outputs = {}
    for d in DIRECTIONS:
        port = OutputPort(
            direction=d,
            num_vcs=NUM_VCS,
            downstream_depth=4,
            fifo_depth=8,
            speedup=2,
            escape_vc=None,
            atomic_realloc=False,
        )
        for v in range(NUM_VCS):
            if draw(st.booleans()):
                port.allocate(v, dst=draw(st.integers(0, 15)))
        outputs[d] = port

    requests = []
    n_inputs = draw(st.integers(1, 6))
    for i in range(n_inputs):
        ivc = InputVc(Direction.WEST, i, depth=4)
        ivc.push(
            Packet(src=0, dst=draw(st.integers(0, 15)), size=1,
                   creation_time=0).flits()[0]
        )
        ivc.refresh_state()
        reqs = draw(
            st.lists(
                st.builds(
                    VcRequest,
                    direction=st.sampled_from(DIRECTIONS),
                    vc=st.integers(0, NUM_VCS - 1),
                    priority=st.sampled_from(list(Priority)),
                ),
                max_size=6,
            )
        )
        requests.append((ivc, reqs))
    seed = draw(st.integers(0, 999))
    return outputs, requests, seed


@given(allocation_round())
def test_allocation_is_a_valid_matching(round_):
    outputs, requests, seed = round_
    grantable_before = {
        (d, v): outputs[d].grantable(v)
        for d in DIRECTIONS
        for v in range(NUM_VCS)
    }
    grants = allocate_vcs(requests, outputs, random.Random(seed))

    # At most one grant per input VC.
    input_ids = [id(g.input_vc) for g in grants]
    assert len(input_ids) == len(set(input_ids))

    # At most one grant per output VC, and only previously-free VCs.
    out_keys = [(g.direction, g.out_vc) for g in grants]
    assert len(out_keys) == len(set(out_keys))
    for key in out_keys:
        assert grantable_before[key]

    # Every grant corresponds to a request made by that input VC.
    by_input = {id(ivc): reqs for ivc, reqs in requests}
    for g in grants:
        assert any(
            r.direction is g.direction and r.vc == g.out_vc
            for r in by_input[id(g.input_vc)]
        )


@given(allocation_round())
def test_work_conserving(round_):
    """A round issues a grant exactly when some grantable request exists
    (the allocator never wastes a cycle entirely)."""
    outputs, requests, seed = round_
    any_grantable = any(
        outputs[r.direction].grantable(r.vc)
        for _, reqs in requests
        for r in reqs
    )
    grants = allocate_vcs(requests, outputs, random.Random(seed))
    assert bool(grants) == any_grantable


@given(allocation_round())
def test_allocation_deterministic_for_seed(round_):
    """allocate_vcs is a pure function of (requests, ports, rng seed)."""
    outputs, requests, seed = round_

    def run():
        return [
            (id(g.input_vc), g.direction, g.out_vc, g.priority)
            for g in allocate_vcs(requests, outputs, random.Random(seed))
        ]

    assert run() == run()
