"""Property-based tests for routing algorithms."""

from hypothesis import given, settings, strategies as st

from repro.routing.registry import available_algorithms, create_routing
from repro.routing.requests import Priority
from repro.routing.xordet import xordet_vc
from repro.topology.mesh import Mesh2D
from repro.topology.ports import Direction

from tests.conftest import FakeOutputView, make_context

ALGOS = available_algorithms()

dims = st.integers(min_value=2, max_value=10)


@st.composite
def routing_case(draw):
    mesh = Mesh2D(draw(dims), draw(dims))
    src = draw(st.integers(0, mesh.num_nodes - 1))
    dst = draw(st.integers(0, mesh.num_nodes - 1))
    cur = draw(st.integers(0, mesh.num_nodes - 1))
    name = draw(st.sampled_from(ALGOS))
    return mesh, name, cur, dst, src


@given(routing_case())
def test_allowed_directions_are_minimal_and_productive(case):
    mesh, name, cur, dst, src = case
    algo = create_routing(name)
    dirs = algo.allowed_directions(mesh, cur, dst, src)
    if cur == dst:
        assert dirs == [Direction.LOCAL]
        return
    assert dirs
    minimal = set(mesh.minimal_directions(cur, dst))
    assert set(dirs) <= minimal


@st.composite
def request_case(draw):
    mesh = Mesh2D(draw(st.integers(2, 6)))
    cur = draw(st.integers(0, mesh.num_nodes - 1))
    dst = draw(st.integers(0, mesh.num_nodes - 1))
    name = draw(st.sampled_from(ALGOS))
    num_vcs = draw(st.integers(2, 6))
    algo = create_routing(name)
    escape = 0 if algo.uses_escape else None
    adaptive = [v for v in range(num_vcs) if v != escape]
    outputs = {}
    for d in mesh.router_ports(cur):
        idle = draw(st.lists(st.sampled_from(adaptive), unique=True))
        owners = {
            v: draw(st.integers(0, mesh.num_nodes - 1))
            for v in adaptive
            if draw(st.booleans())
        }
        fresh = {v for v in idle if v in owners and draw(st.booleans())}
        established = [v for v in idle if v not in fresh]
        view = FakeOutputView(
            num_vcs=num_vcs,
            escape_vc=escape if d is not Direction.LOCAL else None,
            idle=sorted(idle),
            established=established,
            owners=owners,
            fresh=fresh,
        )
        outputs[d] = view
    threshold = draw(st.integers(1, num_vcs))
    seed = draw(st.integers(0, 1000))
    return mesh, algo, cur, dst, outputs, num_vcs, threshold, seed


@given(request_case())
@settings(max_examples=200)
def test_requests_are_well_formed(case):
    """For any local state: the committed port is legal, every request
    targets a grantable VC at an existing port, and priorities are valid."""
    mesh, algo, cur, dst, outputs, num_vcs, threshold, seed = case
    ctx = make_context(
        mesh,
        cur,
        dst,
        outputs,
        num_vcs=num_vcs,
        congestion_threshold=threshold,
        seed=seed,
    )
    direction = algo.select_output(ctx)
    if cur == dst:
        assert direction is Direction.LOCAL
    else:
        assert direction in algo.allowed_directions(mesh, cur, dst, cur)
    requests = algo.vc_requests_at(ctx, direction)
    escape_dir = mesh.dor_direction(cur, dst)
    for r in requests:
        assert r.direction in outputs
        assert 0 <= r.vc < num_vcs
        assert isinstance(r.priority, Priority)
        view = outputs[r.direction]
        assert view.grantable(r.vc)
        # Non-escape requests stay on the committed port; the only other
        # port a request may name is the DOR escape port.
        if r.direction is not direction:
            assert r.direction is escape_dir
            assert r.vc == view.escape_vc


@given(
    st.integers(2, 16),
    st.integers(2, 16),
    st.integers(1, 12),
)
def test_xordet_mapping_total_and_stable(w, h, vcs):
    mesh = Mesh2D(w, h)
    for dst in range(mesh.num_nodes):
        vc = xordet_vc(mesh, dst, vcs)
        assert 0 <= vc < vcs
        assert xordet_vc(mesh, dst, vcs) == vc


@given(routing_case())
def test_escape_users_declare_atomic_reallocation(case):
    _mesh, name, *_ = case
    algo = create_routing(name)
    if algo.uses_escape:
        assert algo.atomic_vc_reallocation
