"""Property test: ``switch_grants`` against the scalar SA-winner oracle.

For any reachable switch-allocation state (real :class:`Router` objects
with randomized input-VC occupancy/grants, output credits, staging-FIFO
fill, and arbiter pointers, snapshotted with
:meth:`SwitchStateArrays.capture`), the batched
:func:`~repro.routing.batch.switch_grants` must pick, for every input
port, exactly the VC the scalar ``Router._pick_sa_winner`` rotated-mask
scan picks on the same snapshot — including picking nobody.

Both sides are evaluated against the *start-of-stage* snapshot: the
scalar oracle is consulted once per port without sending (so no credits
or accept capacity are consumed between ports), which is precisely the
optimistic semantics ``switch_grants`` implements; the vector engine's
per-node conflict fallback handles the same-cycle capacity interactions
and is covered by the integration suite's bit-identity tests.
"""

from hypothesis import given, settings, strategies as st

from repro.router.flit import Flit, Packet
from repro.router.router import Router
from repro.router.vcstate import VcState
from repro.routing.batch import SwitchStateArrays, switch_grants
from repro.routing.registry import create_routing
from repro.sim.config import SimulationConfig
from repro.sim.rng import RngStreams
from repro.topology.mesh import Mesh2D
from repro.topology.ports import NUM_PORTS

_IVC_STATES = ("idle", "ready", "routing")


def _dummy_flit(node: int) -> Flit:
    packet = Packet(src=node, dst=node, size=1, creation_time=0)
    return Flit(packet=packet, index=0, is_head=True, is_tail=True)


@st.composite
def switch_case(draw):
    width = draw(st.integers(2, 3))
    mesh = Mesh2D(width, 2)
    # 9 VCs exercises the rank-matrix path of switch_grants; <= 8 the
    # packed winner-table gather.
    num_vcs = draw(st.sampled_from((2, 3, 4, 9)))
    config = SimulationConfig(
        width=mesh.width,
        height=mesh.height,
        num_vcs=num_vcs,
        vc_buffer_depth=4,
        routing="footprint",
        injection_rate=0.1,
        warmup_cycles=1,
        measure_cycles=1,
        drain_cycles=1,
    )
    routing = create_routing("footprint")
    rng = RngStreams(1)
    routers = [
        Router(node, mesh, config, routing, rng.stream(f"router/{node}"))
        for node in range(mesh.num_nodes)
    ]
    for router in routers:
        directions = list(router.output_ports)
        for direction, port in router.output_ports.items():
            for v in range(num_vcs):
                port.credits[v] = draw(st.integers(0, 2))
            for _ in range(draw(st.integers(0, port.fifo_depth))):
                port.fifo.append((_dummy_flit(router.node), 0))
        for direction, vcs in router.input_vcs.items():
            router._vc_arbiters[direction]._pointer = draw(
                st.integers(0, num_vcs - 1)
            )
            for v, ivc in enumerate(vcs):
                state = draw(st.sampled_from(_IVC_STATES))
                if state == "idle":
                    continue
                ivc.fifo.append(_dummy_flit(router.node))
                router._occupied_masks[direction] |= 1 << v
                router.buffered_input_flits += 1
                if state == "ready":
                    ivc.state = VcState.ACTIVE
                    ivc.out_direction = draw(st.sampled_from(directions))
                    ivc.out_vc = draw(st.integers(0, num_vcs - 1))
                else:
                    # Occupied but still routing: in the occupancy mask,
                    # yet ineligible — the scalar scan skips it by state,
                    # the capture leaves it out of ``ready``.
                    ivc.state = VcState.ROUTING
    return routers, num_vcs


@given(switch_case())
@settings(max_examples=60, deadline=None)
def test_switch_grants_match_scalar_winners(case):
    routers, num_vcs = case
    state = SwitchStateArrays.capture(routers, num_vcs)
    gs, vs = switch_grants(
        state.ready,
        state.out_flat,
        state.credits,
        state.port_open,
        state.arb_ptr,
    )
    batched = dict(zip(gs.tolist(), vs.tolist()))

    # The scalar oracle, one consult per port against the same snapshot.
    # ``_pick_sa_winner`` only advances the consulted port's arbiter
    # pointer, so earlier consults cannot perturb later ones.
    expected = {}
    for router in routers:
        base = router.node * NUM_PORTS
        for direction, vcs in router.input_vcs.items():
            ivc = router._pick_sa_winner(direction)
            if ivc is not None:
                expected[base + int(direction)] = ivc.index

    assert batched == expected
