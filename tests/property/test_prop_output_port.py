"""Stateful property tests for the output port.

A random sequence of legal operations (allocate / send / link pop /
credit return / new cycle / clear fresh) must preserve the port's
invariants: credit bounds, the idle/busy partition, footprint-index
consistency with the owner table, and conservation of in-flight flits.
"""

from collections import deque

from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.router.flit import Packet
from repro.router.output import OutputPort
from repro.topology.ports import Direction

NUM_VCS = 4
DEPTH = 3


class OutputPortMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.port = OutputPort(
            direction=Direction.EAST,
            num_vcs=NUM_VCS,
            downstream_depth=DEPTH,
            fifo_depth=6,
            speedup=2,
            escape_vc=0,
            atomic_realloc=True,
        )
        # Per-VC model state: remaining flits of the current packet and
        # flits currently occupying the downstream buffer.
        self.pending: dict[int, deque] = {}
        self.downstream: dict[int, int] = {v: 0 for v in range(NUM_VCS)}

    # ------------------------------------------------------------------
    @rule(vc=st.integers(0, NUM_VCS - 1), dst=st.integers(0, 15),
          size=st.integers(1, 3))
    def allocate(self, vc, dst, size):
        if self.port.grantable(vc):
            self.port.allocate(vc, dst)
            self.pending[vc] = deque(
                Packet(src=0, dst=dst, size=size, creation_time=0).flits()
            )

    @rule(vc=st.integers(0, NUM_VCS - 1))
    def send(self, vc):
        flits = self.pending.get(vc)
        if flits and self.port.can_send(vc):
            self.port.send(flits.popleft(), vc)
            if not flits:
                del self.pending[vc]

    @rule()
    def pop_link(self):
        popped = self.port.pop_link()
        if popped is not None:
            _flit, vc = popped
            self.downstream[vc] += 1

    @rule(vc=st.integers(0, NUM_VCS - 1))
    def credit_return(self, vc):
        # Credits may only return for flits that reached the downstream
        # buffer and were consumed there.
        if self.downstream[vc] > 0:
            self.downstream[vc] -= 1
            self.port.credit_return(vc)

    @rule()
    def new_cycle(self):
        self.port.new_cycle()

    @rule()
    def clear_fresh(self):
        self.port.clear_fresh()

    # ------------------------------------------------------------------
    @invariant()
    def credits_within_bounds(self):
        for v in range(NUM_VCS):
            assert 0 <= self.port.credits[v] <= DEPTH

    @invariant()
    def idle_busy_partition(self):
        idle = set(self.port.idle_vcs())
        busy = set(self.port.busy_vcs())
        assert not (idle & busy)
        assert idle | busy == set(self.port.adaptive_vcs())

    @invariant()
    def footprint_index_matches_owner_table(self):
        for v in self.port.busy_vcs():
            dst = self.port.owner_dst[v]
            assert dst is not None
            assert v in self.port.footprint_vcs(dst)

    @invariant()
    def established_subset_of_idle(self):
        idle = set(self.port.idle_vcs())
        assert set(self.port.established_idle_vcs()) <= idle

    @invariant()
    def adaptive_credit_total_consistent(self):
        expected = sum(
            self.port.credits[v] for v in self.port.adaptive_vcs()
        )
        assert self.port.free_credit_total() == expected


TestOutputPortStateMachine = OutputPortMachine.TestCase
