#!/usr/bin/env python3
"""Endpoint congestion at memory controllers (the paper's Fig. 9 scenario).

Four endpoint nodes are oversubscribed by persistent flows — the way
memory-controller tiles are in a CMP — while every other node exchanges
uniform-random "background" traffic at a fixed rate.  The question the
paper asks: how badly does the hotspot congestion tree degrade the
*background* traffic through head-of-line blocking?

The example sweeps the hotspot injection rate for DBAR and Footprint and
prints the background latency at each point; it then dissects the live
congestion tree of one hotspot to show how Footprint keeps its branches
thin.

Run:  python examples/memory_controller_hotspot.py
"""

from repro import SimulationConfig, Simulator
from repro.core.congestion import extract_congestion_tree
from repro.traffic.hotspot import default_hotspot_flows


def sweep(routing: str, rates: list[float]) -> None:
    print(f"--- {routing}: background latency vs hotspot rate ---")
    for rate in rates:
        config = SimulationConfig(
            width=8,
            num_vcs=10,
            routing=routing,
            traffic="hotspot",
            hotspot_rate=rate,
            background_rate=0.3,
            warmup_cycles=200,
            measure_cycles=400,
            drain_cycles=800,
            seed=11,
        )
        result = Simulator(config).run()
        marker = "" if result.drained else "  (saturated)"
        print(
            f"  hotspot={rate:.2f}  background latency = "
            f"{result.flow_latency('background'):7.2f} cycles{marker}"
        )
    print()


def dissect_tree(routing: str) -> None:
    config = SimulationConfig(
        width=8,
        num_vcs=10,
        routing=routing,
        traffic="hotspot",
        hotspot_rate=0.55,
        background_rate=0.3,
        warmup_cycles=0,
        measure_cycles=500,
        drain_cycles=0,
        seed=11,
        track_utilization=True,
    )
    sim = Simulator(config)
    for _ in range(500):
        sim.step()
    hotspot_dst = default_hotspot_flows(sim.mesh)[0][1]
    tree = extract_congestion_tree(sim, hotspot_dst, include_local=False)
    print(
        f"--- {routing}: congestion tree of hotspot n{hotspot_dst} after "
        f"500 cycles ---"
    )
    print(
        f"  {tree.num_branches} branches, {tree.total_vcs} VCs, "
        f"max thickness {tree.max_thickness}, "
        f"mean thickness {tree.mean_thickness:.2f}"
    )
    print("  busiest channels:")
    for node, direction, value in sim.utilization.busiest(top=3):
        print(f"    n{node}.{direction.name:<5} {100 * value:5.1f}%")
    print()


def main() -> None:
    rates = [0.2, 0.35, 0.5, 0.6]
    for routing in ("dbar", "footprint"):
        sweep(routing, rates)
    for routing in ("dbar", "footprint"):
        dissect_tree(routing)


if __name__ == "__main__":
    main()
