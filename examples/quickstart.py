#!/usr/bin/env python3
"""Quickstart: simulate Footprint routing on an 8x8 mesh.

Runs one simulation of the paper's default configuration (8x8 mesh,
10 VCs, credit-based wormhole flow control) under transpose traffic and
prints the headline metrics.  Then repeats the run with the DBAR baseline
so you can see the two algorithms side by side.

Run:  python examples/quickstart.py
"""

from repro import SimulationConfig, Simulator


def run(routing: str) -> None:
    config = SimulationConfig(
        width=8,
        num_vcs=10,
        routing=routing,
        traffic="transpose",
        injection_rate=0.35,
        # Reduced cycle counts so the example finishes in seconds; raise
        # these (e.g. 1000/2000/10000) for publication-quality numbers.
        warmup_cycles=200,
        measure_cycles=400,
        drain_cycles=1000,
        seed=42,
    )
    result = Simulator(config).run()
    print(f"--- {routing} ---")
    print(f"  configuration : {config.describe()}")
    print(f"  avg latency   : {result.avg_latency:.2f} cycles")
    print(f"  p99 latency   : {result.latency.percentile(99):.0f} cycles")
    print(f"  accepted rate : {result.accepted_rate:.4f} flits/node/cycle")
    print(f"  delivered     : {result.measured_ejected}/{result.measured_created} measured packets")
    print()


def main() -> None:
    for routing in ("footprint", "dbar", "dor"):
        run(routing)


if __name__ == "__main__":
    main()
