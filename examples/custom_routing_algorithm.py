#!/usr/bin/env python3
"""Extend the simulator with a custom routing algorithm.

The routing interface has two stages (mirroring a hardware router
pipeline): ``select_output`` commits to an output port once per packet per
router, and ``vc_requests_at`` re-issues VC requests each cycle until the
packet wins a VC.  This example implements "O1TURN-lite" — a minimal
oblivious algorithm that randomly picks XY or YX order per packet at the
source and then follows it — and races it against DOR and Footprint on
transpose traffic.

Run:  python examples/custom_routing_algorithm.py
"""

from repro import SimulationConfig, Simulator
from repro.routing.base import RouteContext, RoutingAlgorithm
from repro.routing.requests import Priority, VcRequest
from repro.topology.mesh import Mesh2D
from repro.topology.ports import Direction
import repro.routing.registry as registry


class O1TurnLite(RoutingAlgorithm):
    """Randomized XY/YX dimension-order routing.

    The order is chosen per packet at injection (hash of the packet's
    identity via the router RNG would be non-deterministic across hops, so
    the parity of ``src + dst`` decides the order — a deterministic
    stand-in for O1TURN's random choice that still splits traffic across
    both orders).  Like DOR, it never takes a U-turn between dimensions,
    and using disjoint VC classes per order would make it fully
    deadlock-free; this lite version relies on the mesh's acyclic X/Y
    usage per packet.
    """

    name = "o1turn-lite"
    uses_escape = False
    atomic_vc_reallocation = False

    def _order_is_xy(self, ctx: RouteContext) -> bool:
        return (ctx.source + ctx.destination) % 2 == 0

    def select_output(self, ctx: RouteContext) -> Direction:
        if ctx.current == ctx.destination:
            return Direction.LOCAL
        dirs = ctx.mesh.minimal_directions(ctx.current, ctx.destination)
        if len(dirs) == 1:
            return dirs[0]
        x_dir = dirs[0]  # minimal_directions lists X first
        y_dir = dirs[1]
        return x_dir if self._order_is_xy(ctx) else y_dir

    def vc_requests_at(
        self, ctx: RouteContext, direction: Direction
    ) -> list[VcRequest]:
        if direction is Direction.LOCAL:
            return self.eject_requests(ctx)
        # Split the VC pool by routing order to keep the two orders'
        # channel dependencies disjoint (O1TURN's deadlock-freedom trick).
        view = ctx.outputs[direction]
        half = ctx.num_vcs // 2
        use_low_half = self._order_is_xy(ctx)
        return [
            VcRequest(direction, v, Priority.LOW)
            for v in view.idle_vcs()
            if (v < half) == use_low_half
        ]

    def allowed_directions(
        self, mesh: Mesh2D, current: int, destination: int, source: int
    ) -> list[Direction]:
        if current == destination:
            return [Direction.LOCAL]
        return mesh.minimal_directions(current, destination)


def main() -> None:
    # Register the custom algorithm so SimulationConfig can name it.
    registry._BASE_FACTORIES["o1turn-lite"] = O1TurnLite

    for routing in ("dor", "o1turn-lite", "footprint"):
        config = SimulationConfig(
            width=8,
            num_vcs=10,
            routing=routing,
            traffic="transpose",
            injection_rate=0.30,
            warmup_cycles=200,
            measure_cycles=400,
            drain_cycles=1000,
            seed=9,
        )
        result = Simulator(config).run()
        print(
            f"{routing:12s}  latency={result.avg_latency:8.2f}  "
            f"accepted={result.accepted_rate:.4f}  "
            f"drained={'yes' if result.drained else 'no'}"
        )


if __name__ == "__main__":
    main()
