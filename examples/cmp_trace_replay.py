#!/usr/bin/env python3
"""Replay CMP (PARSEC-like) traces and analyze blocking purity.

The paper's Fig. 10 drives the network with PARSEC 2.0 traces captured by
Netrace and correlates Footprint's latency gain with the *purity of
blocking* — the share of busy VCs that already carry traffic to the
blocked packet's destination.  This example:

1. generates two synthetic PARSEC-like traces (a heavy, hotspot-skewed
   ``fluidanimate`` and a light ``bodytrack``) with the package's Netrace
   stand-in;
2. merges and replays them simultaneously, as the paper does to stress
   the network;
3. reports latency, purity of blocking, and the HoL-blocking degree for
   DBAR and Footprint.

Run:  python examples/cmp_trace_replay.py
"""

from repro import Mesh2D, SimulationConfig, Simulator
from repro.core.purity import hol_blocking_degree, purity_of_blocking
from repro.traffic.parsecgen import generate_parsec_trace, merge_traces


def main() -> None:
    mesh = Mesh2D(8)
    cycles = 1200
    trace = merge_traces(
        generate_parsec_trace("fluidanimate", mesh, cycles, seed=5),
        generate_parsec_trace("bodytrack", mesh, cycles, seed=6),
    )
    print(f"generated {len(trace)} trace packets over {cycles} cycles\n")

    for routing in ("dbar", "footprint"):
        config = SimulationConfig(
            width=8,
            num_vcs=10,
            routing=routing,
            traffic="trace",
            trace=trace,
            warmup_cycles=cycles // 10,
            measure_cycles=cycles,
            drain_cycles=2000,
            seed=5,
        )
        result = Simulator(config).run()
        print(f"--- {routing} ---")
        print(f"  avg packet latency : {result.avg_latency:.2f} cycles")
        print(f"  purity of blocking : {100 * purity_of_blocking(result):.1f}%")
        print(f"  HoL degree         : {hol_blocking_degree(result):.0f}")
        print(f"  blocking events    : {result.blocking.blocking_events}")
        print()


if __name__ == "__main__":
    main()
