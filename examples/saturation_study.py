#!/usr/bin/env python3
"""Saturation-throughput study across routing algorithms.

Sweeps the offered load under a non-uniform pattern and prints the
latency-throughput curve for each algorithm — the raw material of the
paper's Fig. 5 — followed by the measured saturation throughput (highest
stable load, where "stable" means latency under 3x the zero-load latency
and a fully drained measurement window).

Run:  python examples/saturation_study.py [pattern]
"""

import sys

from repro import SimulationConfig
from repro.metrics.curves import LatencyThroughputCurve, render_curves
from repro.metrics.sweep import run_point


def main() -> None:
    pattern = sys.argv[1] if len(sys.argv) > 1 else "transpose"
    rates = [0.1, 0.2, 0.3, 0.4, 0.5]
    algorithms = ["dor", "oddeven", "dbar", "footprint"]

    curves = []
    for routing in algorithms:
        config = SimulationConfig(
            width=8,
            num_vcs=10,
            routing=routing,
            traffic=pattern,
            warmup_cycles=150,
            measure_cycles=300,
            drain_cycles=700,
            seed=21,
        )
        curve = LatencyThroughputCurve(label=routing)
        for rate in rates:
            curve.add(run_point(config, rate))
        curves.append(curve)

    print(render_curves(f"latency vs offered load — {pattern}", curves))
    print()
    zero_load = min(p.avg_latency for p in curves[0].points)
    for curve in curves:
        print(
            f"{curve.label:12s} saturation throughput ~ "
            f"{curve.saturation_rate(zero_load):.3f} flits/node/cycle"
        )


if __name__ == "__main__":
    main()
