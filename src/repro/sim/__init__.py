"""Simulation kernel: configuration, RNG streams, cycle engine, results."""

from repro.sim.config import SimulationConfig
from repro.sim.engine import Simulator
from repro.sim.results import SimulationResult

__all__ = ["SimulationConfig", "Simulator", "SimulationResult"]
