"""The cycle-level simulation engine.

The engine owns the mesh of routers, the per-node sources and sinks, and
the links between them.  Links and credit returns have one cycle of
latency; within a cycle the stages run in this order:

1. deliver flits and credits that completed their link traversal;
2. sinks drain at the ejection bandwidth (packets complete here);
3. link traversal — every output port puts at most one flit on its link;
4. route computation and VC allocation in every router;
5. switch allocation/traversal — flits move from input buffers to output
   staging FIFOs, producing upstream credit returns;
6. traffic generation and source injection.

The run is split into warm-up, measurement, and drain phases.  Packets
created during the measurement window are *measured*; the run ends early
once all of them have been delivered, or at the configured cycle limit
(in which case the result reports ``drained == False`` — the usual
signature of a saturated network).

A progress watchdog raises :class:`~repro.exceptions.SimulationError` if
no flit moves for a long stretch while packets are still in flight, which
would indicate a routing deadlock — the deadlock-freedom tests rely on it.

Scheduling: the ``"fast"`` engine mode only visits routers that can make
progress this cycle — those with buffered flits, plus those that just
received a credit (a returning credit can release an output VC under
atomic reallocation, and the allocation round must observe and then clear
the freshly-released set that cycle).  Inter-router link endpoints are
precomputed per router so the per-flit hot path performs no topology
queries.  ``engine_mode="legacy"`` keeps the original visit-every-router
loop; both modes produce bit-identical results (the benchmark suite and
``tests/unit/test_engine.py`` check this), so the legacy mode serves as
the baseline for ``benchmarks/run_bench.py``.

Idle-cycle skipping: the default ``"skip"`` mode layers a
cycle-driven→event-driven hybrid on top of ``"fast"``.  When the network
is completely quiescent — no flit buffered anywhere (``_flits_in_network``
counts router, link, and sink occupancy), no source backlog, and no
flit/credit/sink delivery in the one-cycle link pipelines — nothing can
happen until the traffic generator's next injection, so :meth:`run`
advances ``self.cycle`` directly to
:meth:`~repro.traffic.patterns.TrafficGenerator.next_event_cycle` instead
of stepping through empty cycles.  The jump is clamped to the
warm-up/measurement boundaries so phase transitions still happen on the
exact cycle, and the lookahead machinery in
:class:`~repro.traffic.patterns.LookaheadTraffic` consumes the RNG
exactly as per-cycle generation would — results stay bit-identical to
both other modes.

Engine selection: ``engine_mode="auto"`` resolves to ``"vector"`` or
``"skip"`` per config before construction, from the offered load
against a calibrated activity threshold (see :func:`resolve_auto_mode`)
— the vector core wins on loaded runs, idle-skipping wins on quiescent
ones, and since both are bit-identical the pick can never change a
result, only its wall-clock.

Fault injection: when the configuration carries a non-empty
:class:`~repro.faults.schedule.FaultSchedule`, the engine consults a
:class:`~repro.faults.manager.FaultManager` each cycle.  The fault model
is *freeze*, never *drop*: a dead router is skipped in every pipeline
stage (its buffered flits sit frozen until a heal), packets generated at
a dead endpoint are discarded at generation time (but still counted as
offered/created, so ``delivered_fraction`` reflects the loss), and a
dead link stops launching flits while credits crossing its severed
reverse wire are *held* by the manager and re-delivered on heal —
flow-control state is never corrupted.  Fault transition cycles clamp
the idle-skip jump target, and the watchdog downgrades a no-progress
stall into a graceful ``stalled`` stop (rather than a deadlock error)
once no scheduled heal can revive progress, so unreachable destinations
report a delivered fraction instead of aborting the run.  All three
engine modes apply identical gating and remain bit-identical under
faults.
"""

from __future__ import annotations

import logging
import os
from typing import TYPE_CHECKING

from repro.exceptions import ConfigurationError, SimulationError
from repro.faults.manager import FaultManager
from repro.metrics.stats import LatencyStats
from repro.metrics.utilization import ChannelUtilization
from repro.router.flit import Flit, Packet
from repro.router.router import BlockingStats, Router
from repro.routing.registry import create_routing
from repro.sim.config import SimulationConfig
from repro.sim.endpoints import Sink, Source
from repro.sim.results import SimulationResult
from repro.sim.rng import RngStreams
from repro.telemetry.config import TelemetryConfig
from repro.telemetry.hub import TelemetryHub
from repro.topology.ports import OPPOSITE, Direction
from repro.traffic.factory import create_traffic
from repro.traffic.patterns import TrafficGenerator

if TYPE_CHECKING:
    from repro.validate.config import ValidationConfig

_log = logging.getLogger(__name__)

#: Cycles without any flit movement (while flits are in flight) after which
#: the engine declares a deadlock.
DEADLOCK_WINDOW = 5000

#: Bumped whenever a change could alter simulation results (new pipeline
#: stage ordering, RNG consumption, allocation policy, ...).  The result
#: cache (:mod:`repro.harness.cache`) folds this into every cache key, so
#: stale on-disk entries invalidate themselves on upgrade.
ENGINE_VERSION = 4

#: Recognized values for ``Simulator(engine_mode=...)``.  The four
#: concrete modes are bit-identical on the configs they support;
#: ``vector`` additionally falls back to ``skip`` (with a logged notice)
#: on configs that need per-object observability hooks, and ``auto``
#: resolves to ``vector`` or ``skip`` per config before construction
#: (see :func:`resolve_auto_mode`), so it inherits both guarantees.
ENGINE_MODES = ("auto", "vector", "skip", "fast", "legacy")

#: Environment variable consulted for the default engine mode by the CLI
#: and harness entry points (see :func:`engine_mode_from_env`).
ENGINE_MODE_ENV = "REPRO_ENGINE_MODE"

#: Environment variable overriding the ``auto`` activity threshold.
AUTO_THRESHOLD_ENV = "REPRO_ENGINE_AUTO_THRESHOLD"

#: Offered load — expected injected flits per cycle across the whole
#: network (``injection_rate * num_nodes``) — at or above which ``auto``
#: picks the vector engine.  Calibrated from the benchmark engine
#: matrix: the vector core amortizes numpy batch overhead over the
#: number of concurrently-routing packets, so it loses to idle-skipping
#: on (near-)quiescent runs and wins on loaded ones; the measured
#: crossover sits right around 3 flits/cycle (8x8 @ 0.05 times at
#: parity, 0.02 below favors ``skip``, 16x16 @ 0.05 = 12.8 flits/cycle
#: favors ``vector`` by ~1.6x).  Placing the threshold *at* the
#: break-even point means a wrong pick near the boundary costs ~nothing,
#: while both asymptotes get their winning engine.
AUTO_ACTIVITY_THRESHOLD = 3.0


def resolve_auto_mode(config: SimulationConfig) -> str:
    """Resolve ``engine_mode="auto"`` to ``"vector"`` or ``"skip"``.

    The decision is a pure function of the config's offered load:
    ``injection_rate * num_nodes`` (expected injected flits per cycle)
    against :data:`AUTO_ACTIVITY_THRESHOLD`, overridable via
    ``$REPRO_ENGINE_AUTO_THRESHOLD``.  Both candidate engines are
    bit-identical, so the pick affects wall-clock only — never results.
    Raises :class:`ConfigurationError` on a malformed override so typos
    fail loudly.
    """
    raw = os.environ.get(AUTO_THRESHOLD_ENV, "").strip()
    if raw:
        try:
            threshold = float(raw)
        except ValueError:
            raise ConfigurationError(
                f"${AUTO_THRESHOLD_ENV}={raw!r} is not a number"
            ) from None
    else:
        threshold = AUTO_ACTIVITY_THRESHOLD
    activity = config.injection_rate * config.num_nodes
    return "vector" if activity >= threshold else "skip"


def engine_mode_from_env(default: str = "skip") -> str:
    """The engine mode requested via ``$REPRO_ENGINE_MODE``, validated.

    Returns ``default`` when the variable is unset or empty.  Raises
    :class:`ConfigurationError` on an unrecognized value so typos fail
    loudly instead of silently running a different engine.
    """
    value = os.environ.get(ENGINE_MODE_ENV, "").strip()
    if not value:
        return default
    if value not in ENGINE_MODES:
        raise ConfigurationError(
            f"${ENGINE_MODE_ENV}={value!r} is not a valid engine mode; "
            f"expected one of {', '.join(ENGINE_MODES)}"
        )
    return value


class Simulator:
    """One simulated network plus its workload."""

    def __init__(
        self,
        config: SimulationConfig,
        traffic: TrafficGenerator | None = None,
        *,
        engine_mode: str = "skip",
        validation: "ValidationConfig | None" = None,
    ) -> None:
        if engine_mode not in ENGINE_MODES:
            raise ValueError(f"unknown engine mode {engine_mode!r}")
        #: The mode the caller asked for, before any fallback.
        self.requested_engine_mode = engine_mode
        #: What ``auto`` resolved to for this config (``None`` when the
        #: caller named a concrete mode).
        self.auto_resolved: str | None = None
        if engine_mode == "auto":
            engine_mode = resolve_auto_mode(config)
            self.auto_resolved = engine_mode
        #: Why a requested ``vector`` run degraded to ``skip`` (``None``
        #: when it did not).  Surfaced by the differential harness and
        #: the CLI so fallbacks are explicit, never silent.
        self.vector_fallback: str | None = None
        self._vector_engine_cls = None
        if engine_mode == "vector":
            from repro.sim.vector import vector_unsupported_reason

            reason = vector_unsupported_reason(config, validation)
            if reason is not None:
                self.vector_fallback = reason
                _log.info(
                    "engine: vector mode unsupported (%s); "
                    "falling back to skip",
                    reason,
                )
                engine_mode = "skip"
            else:
                # Imported here, not in run(): the module (and numpy
                # machinery it pulls in) loads once per process, and
                # timing harnesses measure run(), not construction.
                from repro.sim.vector.engine import VectorEngine

                self._vector_engine_cls = VectorEngine
        self.engine_mode = engine_mode
        self.config = config
        self.mesh = config.make_topology()
        self.rng = RngStreams(config.seed)
        self.routing = create_routing(config.routing)
        self.routers = [
            Router(
                node,
                self.mesh,
                config,
                self.routing,
                self.rng.stream(f"router/{node}"),
            )
            for node in range(self.mesh.num_nodes)
        ]
        self.sinks = [
            Sink(
                node,
                config.num_vcs,
                config.vc_buffer_depth,
                config.ejection_rate,
                self._on_packet_ejected,
            )
            for node in range(self.mesh.num_nodes)
        ]
        self.sources = [
            Source(node, self.routers[node], config.num_vcs)
            for node in range(self.mesh.num_nodes)
        ]
        self.traffic = (
            traffic
            if traffic is not None
            else create_traffic(config, self.mesh, self.rng.stream("traffic"))
        )

        self.faults = (
            FaultManager(config.faults, self.mesh)
            if config.faults is not None and config.faults.events
            else None
        )
        #: Set by the watchdog when a fault-laden run can make no further
        #: progress (unreachable destinations) — :meth:`run` then stops
        #: gracefully instead of raising a deadlock error.
        self.stalled = False

        #: When set before :meth:`run`, the vector engine accumulates
        #: per-stage wall time into :attr:`stage_times` (benchmark
        #: harness ``--stage-times``; scalar engines have no per-stage
        #: hook points and leave it ``None``).
        self.collect_stage_times = False
        self.stage_times: "dict[str, float] | None" = None

        self.cycle = 0
        self._last_progress_cycle = 0
        self._flits_in_network = 0
        #: Flits enqueued at sources but not yet injected (aggregate of
        #: ``Source.pending_flits``); part of the quiescence check.
        self._source_backlog = 0
        self._skip_idle = engine_mode == "skip"
        self._step_impl = (
            self._step_legacy if engine_mode == "legacy" else self._step_fast
        )

        # Per-router link-endpoint tables, indexed [node][direction]:
        # (neighbor node, input direction at the neighbor), or None at a
        # mesh edge / LOCAL.  Hoists mesh.neighbor()/OPPOSITE lookups out
        # of the per-flit link-traversal and credit-return hot paths.
        self._link_dest: list[list[tuple[int, Direction] | None]] = []
        for node in range(self.mesh.num_nodes):
            row: list[tuple[int, Direction] | None] = [None] * 5
            for direction in (
                Direction.EAST,
                Direction.WEST,
                Direction.NORTH,
                Direction.SOUTH,
            ):
                neighbor = self.mesh.neighbor(node, direction)
                if neighbor is not None:
                    row[direction] = (neighbor, OPPOSITE[direction])
            self._link_dest.append(row)

        # Link pipelines: (node, direction, vc, flit) and (node, dir, vc)
        # to apply at the start of the next cycle.
        self._flits_next: list[tuple[int, Direction, int, Flit]] = []
        self._credits_next: list[tuple[int, Direction, int]] = []
        self._sink_next: list[tuple[int, int, Flit]] = []

        # Telemetry.  The hub exists when anything wants per-run
        # observation: an active TelemetryConfig, or the legacy
        # track_utilization flag (served by a hub with an inactive
        # config, which degrades to pure link counting).  Router probes
        # attach only for an active config, so utilization-only runs
        # keep the pre-telemetry router hot path.
        tcfg = config.telemetry
        active_telemetry = tcfg is not None and tcfg.active
        if tcfg is None and config.track_utilization:
            tcfg = TelemetryConfig(sample_every=0)
        self.telemetry: TelemetryHub | None = (
            TelemetryHub(tcfg, self.mesh)
            if active_telemetry or config.track_utilization
            else None
        )
        if self.telemetry is not None and active_telemetry:
            for router in self.routers:
                router.probe = self.telemetry

        # Validation: same null-object shape as telemetry.  Imported
        # lazily so a run without validation never loads the checkers;
        # validation is an engine argument, not config state, so it
        # cannot change cache keys or serialized configs.
        self.validator = None
        if validation is not None and validation.active:
            from repro.validate.checker import InvariantChecker

            self.validator = InvariantChecker(validation)
            for router in self.routers:
                router.validator = self.validator

        # Statistics.
        self.latency = LatencyStats()
        self.latency_by_flow: dict[str, LatencyStats] = {}
        self.measured_created = 0
        self.measured_ejected = 0
        self.window_accepted_flits = 0
        self.window_offered_flits = 0

    # ------------------------------------------------------------------
    # Measurement window helpers
    # ------------------------------------------------------------------
    @property
    def _measure_start(self) -> int:
        return self.config.warmup_cycles

    @property
    def _measure_end(self) -> int:
        return self.config.warmup_cycles + self.config.measure_cycles

    def _in_window(self, cycle: int) -> bool:
        return self._measure_start <= cycle < self._measure_end

    @property
    def utilization(self) -> ChannelUtilization | None:
        """Per-channel flit counters (owned by the telemetry hub)."""
        tel = self.telemetry
        return tel.utilization if tel is not None else None

    def _on_packet_ejected(self, packet: Packet, cycle: int) -> None:
        tel = self.telemetry
        if tel is not None:
            tel.packet_ejected(cycle, packet)
        if self._in_window(cycle):
            self.window_accepted_flits += packet.size
        if packet.measured:
            self.measured_ejected += 1
            self.latency.add(packet.latency)
            flow_stats = self.latency_by_flow.setdefault(
                packet.flow, LatencyStats()
            )
            flow_stats.add(packet.latency)

    # ------------------------------------------------------------------
    # One simulated cycle
    # ------------------------------------------------------------------
    def step(self) -> None:
        self._step_impl()

    def _step_fast(self) -> None:
        """One cycle, visiting only routers that can make progress."""
        cycle = self.cycle
        routers = self.routers
        link_dest = self._link_dest

        # 0. Apply due fault transitions.  Happens before the pipeline
        # swap so credits released by a heal are delivered this cycle —
        # the first cycle their wire is live again.
        fm = self.faults
        router_dead = None
        if fm is not None:
            if fm.pending_at(cycle):
                changed, released = fm.advance_to(cycle)
                for node in changed:
                    routers[node].set_fault_mask(fm.blocked_out[node])
                if released:
                    self._credits_next.extend(released)
            router_dead = fm.router_dead

        # 1. Arrivals from the previous cycle's link traversals.  Flits
        # always deliver (a dead router buffers them frozen); credits
        # into a dead router or across a severed link are held.
        flits_now, self._flits_next = self._flits_next, []
        credits_now, self._credits_next = self._credits_next, []
        sink_now, self._sink_next = self._sink_next, []
        if fm is None:
            for node, direction, vc in credits_now:
                routers[node].receive_credit(direction, vc)
        else:
            for node, direction, vc in credits_now:
                if fm.credit_blocked(node, direction):
                    fm.hold_credit(node, direction, vc)
                else:
                    routers[node].receive_credit(direction, vc)
        for node, direction, vc, flit in flits_now:
            flit.hops += 1
            routers[node].receive_flit(direction, vc, flit)
        for node, vc, flit in sink_now:
            self.sinks[node].receive(vc, flit)

        # Active set for this cycle.  All state changes that can wake a
        # router happen in stage 1 (arrivals/credits) or last cycle's
        # stages (buffered flits), so the set is complete once arrivals
        # are delivered; node order is preserved so results are
        # bit-identical to the legacy every-router loop.
        active = [r for r in routers if r.inflight or r.credit_pending]

        # 2. Sink drain (ejection bandwidth), returning credits upstream.
        progressed = False
        credits_next = self._credits_next
        flits_next = self._flits_next
        sink_next = self._sink_next
        for sink in self.sinks:
            if sink.occupancy == 0:
                continue
            if router_dead is not None and router_dead[sink.node]:
                continue
            for vc in sink.drain(cycle):
                credits_next.append((sink.node, Direction.LOCAL, vc))
                progressed = True
                self._flits_in_network -= 1

        # 3. Link traversal.  Dead routers launch nothing; live routers
        # skip blocked output links (the flit stays staged).
        tel = self.telemetry
        local = Direction.LOCAL
        blocked_out = fm.blocked_out if fm is not None else None
        for router in active:
            if not router.staged_flits:
                continue
            if router_dead is not None and router_dead[router.node]:
                continue
            row = link_dest[router.node]
            blocked = blocked_out[router.node] if blocked_out is not None else 0
            for direction, vc, flit in router.link_traversal(blocked):
                progressed = True
                if tel is not None:
                    tel.link(router.node, direction, vc, flit)
                if direction is local:
                    sink_next.append((router.node, vc, flit))
                else:
                    neighbor, in_dir = row[direction]
                    flits_next.append((neighbor, in_dir, vc, flit))

        # 4. Route computation + VC allocation.  Runs for credit-pending
        # routers even when empty: a returned credit may have released an
        # output VC, and the freshly-released set must be consumed and
        # cleared by exactly one allocation round.  For an empty router
        # that round reduces to clearing the fresh sets.  Dead routers
        # are frozen entirely; their state thaws unchanged at heal time.
        for router in active:
            if router_dead is not None and router_dead[router.node]:
                continue
            if router.inflight:
                router.route_and_allocate()
            else:
                router.clear_fresh_only()
            router.credit_pending = False

        # 5. Switch allocation/traversal; upstream credit returns.
        for router in active:
            if not router.inflight:
                continue
            if router_dead is not None and router_dead[router.node]:
                continue
            row = link_dest[router.node]
            for in_direction, vc in router.switch_traversal():
                progressed = True
                if in_direction is local:
                    # Injection buffers are filled directly by the source,
                    # which observes free space without a credit loop.
                    continue
                upstream, up_dir = row[in_direction]
                credits_next.append((upstream, up_dir, vc))

        # 6. Traffic generation and injection.  Packets generated at a
        # dead endpoint are dropped (still counted as offered/created so
        # delivered_fraction sees them); dead sources do not inject.
        val = self.validator
        in_window = self._in_window(cycle)
        for packet in self.traffic.generate(cycle, in_window):
            if packet.measured:
                self.measured_created += 1
            if in_window:
                self.window_offered_flits += packet.size
            if tel is not None:
                tel.packet_created(cycle, packet)
            if router_dead is not None and router_dead[packet.src]:
                if val is not None:
                    val.packet_generated(packet, True)
                continue
            if val is not None:
                val.packet_generated(packet, False)
            self.sources[packet.src].enqueue(packet)
            self._source_backlog += packet.size
        for source in self.sources:
            if not source.pending_flits:
                continue
            if router_dead is not None and router_dead[source.node]:
                continue
            flit = source.inject(cycle)
            if flit is not None:
                self._flits_in_network += 1
                self._source_backlog -= 1
                progressed = True
                if tel is not None:
                    tel.inject(cycle, source.node, flit)

        self._watchdog(progressed, cycle)
        if tel is not None:
            tel.end_cycle(self, cycle)
        if val is not None:
            val.end_cycle(self, cycle)
        self.cycle += 1

    def _step_legacy(self) -> None:
        """One cycle visiting every router — the pre-optimization loop.

        Kept as the measured baseline for the engine benchmarks; results
        are bit-identical to :meth:`_step_fast`.
        """
        cycle = self.cycle

        # 0. Apply due fault transitions (same ordering as fast mode).
        fm = self.faults
        router_dead = None
        if fm is not None:
            if fm.pending_at(cycle):
                changed, released = fm.advance_to(cycle)
                for node in changed:
                    self.routers[node].set_fault_mask(fm.blocked_out[node])
                if released:
                    self._credits_next.extend(released)
            router_dead = fm.router_dead

        # 1. Arrivals from the previous cycle's link traversals.
        flits_now, self._flits_next = self._flits_next, []
        credits_now, self._credits_next = self._credits_next, []
        sink_now, self._sink_next = self._sink_next, []
        for node, direction, vc in credits_now:
            if fm is not None and fm.credit_blocked(node, direction):
                fm.hold_credit(node, direction, vc)
            else:
                self.routers[node].receive_credit(direction, vc)
        for node, direction, vc, flit in flits_now:
            flit.hops += 1
            self.routers[node].receive_flit(direction, vc, flit)
        for node, vc, flit in sink_now:
            self.sinks[node].receive(vc, flit)

        # 2. Sink drain (ejection bandwidth), returning credits upstream.
        progressed = False
        for sink in self.sinks:
            if sink.occupancy == 0:
                continue
            if router_dead is not None and router_dead[sink.node]:
                continue
            for vc in sink.drain(cycle):
                self._credits_next.append((sink.node, Direction.LOCAL, vc))
                progressed = True
                self._flits_in_network -= 1

        # 3. Link traversal.
        tel = self.telemetry
        for router in self.routers:
            if router_dead is not None and router_dead[router.node]:
                continue
            blocked = fm.blocked_out[router.node] if fm is not None else 0
            for direction, vc, flit in router.link_traversal(blocked):
                progressed = True
                if tel is not None:
                    tel.link(router.node, direction, vc, flit)
                if direction is Direction.LOCAL:
                    self._sink_next.append((router.node, vc, flit))
                else:
                    neighbor = self.mesh.neighbor(router.node, direction)
                    assert neighbor is not None
                    self._flits_next.append(
                        (neighbor, OPPOSITE[direction], vc, flit)
                    )

        # 4. Route computation + VC allocation.
        for router in self.routers:
            if router_dead is not None and router_dead[router.node]:
                continue
            router.route_and_allocate()
            router.credit_pending = False

        # 5. Switch allocation/traversal; upstream credit returns.
        for router in self.routers:
            if router_dead is not None and router_dead[router.node]:
                continue
            for in_direction, vc in router.switch_traversal():
                progressed = True
                if in_direction is Direction.LOCAL:
                    # Injection buffers are filled directly by the source,
                    # which observes free space without a credit loop.
                    continue
                upstream = self.mesh.neighbor(router.node, in_direction)
                assert upstream is not None
                self._credits_next.append(
                    (upstream, OPPOSITE[in_direction], vc)
                )

        # 6. Traffic generation and injection.
        val = self.validator
        in_window = self._in_window(cycle)
        for packet in self.traffic.generate(cycle, in_window):
            if packet.measured:
                self.measured_created += 1
            if in_window:
                self.window_offered_flits += packet.size
            if tel is not None:
                tel.packet_created(cycle, packet)
            if router_dead is not None and router_dead[packet.src]:
                if val is not None:
                    val.packet_generated(packet, True)
                continue
            if val is not None:
                val.packet_generated(packet, False)
            self.sources[packet.src].enqueue(packet)
            self._source_backlog += packet.size
        for source in self.sources:
            # Same pending_flits guard as fast mode: the bit-identical
            # baseline shouldn't pay for provably-empty injection calls.
            if not source.pending_flits:
                continue
            if router_dead is not None and router_dead[source.node]:
                continue
            flit = source.inject(cycle)
            if flit is not None:
                self._flits_in_network += 1
                self._source_backlog -= 1
                progressed = True
                if tel is not None:
                    tel.inject(cycle, source.node, flit)

        self._watchdog(progressed, cycle)
        if tel is not None:
            tel.end_cycle(self, cycle)
        if val is not None:
            val.end_cycle(self, cycle)
        self.cycle += 1

    def _watchdog(self, progressed: bool, cycle: int) -> None:
        if progressed:
            self._last_progress_cycle = cycle
        elif (
            self._flits_in_network > 0
            and cycle - self._last_progress_cycle > DEADLOCK_WINDOW
        ):
            fm = self.faults
            if fm is not None:
                # Under faults a stall usually means unreachable
                # destinations, not a protocol deadlock.  A scheduled
                # heal may still revive progress; otherwise stop
                # gracefully and report the delivered fraction.
                if not fm.has_pending_transitions():
                    self.stalled = True
                return
            raise SimulationError(
                f"no flit movement for {DEADLOCK_WINDOW} cycles at cycle "
                f"{cycle} with {self._flits_in_network} flits in flight — "
                f"routing deadlock with '{self.config.routing}'"
            )

    # ------------------------------------------------------------------
    # Idle-cycle skipping
    # ------------------------------------------------------------------
    def _skip_idle_cycles(self, limit: int) -> int:
        """Advance the clock over provably-empty cycles; return the count.

        Only engages when the network is fully quiescent: no flit
        buffered in any router, link pipeline, or sink, no source
        backlog, and no credit return in flight.  (``credit_pending``
        flags and output-port drain state are always resolved within the
        cycle that set them, so between steps the three pipeline lists
        plus the two counters cover every bit of live state.)  The jump
        is clamped to the next phase boundary — warm-up end, measurement
        end, or the cycle limit — so :meth:`run`'s phase transitions
        still fire on the exact cycle they would when stepping.
        """
        if (
            self._flits_in_network
            or self._source_backlog
            or self._flits_next
            or self._credits_next
            or self._sink_next
        ):
            return 0
        cycle = self.cycle
        if cycle < self._measure_start:
            boundary = self._measure_start
        elif cycle < self._measure_end:
            boundary = self._measure_end
        else:
            boundary = limit
        if boundary > limit:
            boundary = limit
        event = self.traffic.next_event_cycle(cycle, boundary)
        target = boundary if event is None else min(event, boundary)
        fm = self.faults
        if fm is not None:
            # Never jump over a fault activation/heal: the transition
            # must be applied (and any held credits released) on its
            # exact cycle to stay bit-identical with the other modes.
            transition = fm.next_transition_cycle()
            if transition is not None and transition < target:
                target = transition
        skipped = target - cycle
        if skipped <= 0:
            return 0
        if self.telemetry is not None:
            # Counts the skipped cycles toward utilization denominators
            # and synthesizes the (provably quiescent) samples that fall
            # inside the jump, keeping series identical across modes.
            self.telemetry.on_skip(self, cycle, target)
        if self.validator is not None:
            # Double-checks the quiescence the counters above promised.
            self.validator.on_skip(self, cycle, target)
        self.cycle = target
        return skipped

    # ------------------------------------------------------------------
    def run(self) -> SimulationResult:
        """Run warm-up, measurement, and drain; return the result."""
        if self.engine_mode == "vector":
            engine = self._vector_engine_cls(self)
            if self.collect_stage_times:
                self.stage_times = engine.enable_stage_times()
            return engine.run()
        limit = self.config.max_cycles
        measure_start = self._measure_start
        measure_end = self._measure_end
        skip_idle = self._skip_idle
        sampling = False
        while self.cycle < limit:
            cycle = self.cycle
            # Phase transitions happen *before* the step so that cycle
            # ``measure_start`` itself is simulated with sampling on —
            # including when ``warmup_cycles == 0`` (enabling only after
            # step() used to miss the whole window in that case).
            if cycle >= measure_end:
                if sampling:
                    for router in self.routers:
                        router.enable_blocking_sampling(False)
                    sampling = False
                if self.measured_ejected == self.measured_created:
                    break
            elif cycle >= measure_start and not sampling:
                for router in self.routers:
                    router.enable_blocking_sampling(True)
                sampling = True
            if skip_idle and self._skip_idle_cycles(limit):
                # Re-run the boundary checks at the new cycle.
                continue
            self.step()
            if self.stalled:
                break
        if sampling:
            for router in self.routers:
                router.enable_blocking_sampling(False)
        return self._result()

    def _result(self) -> SimulationResult:
        if self.validator is not None:
            # Final full sweep (covers cycles a check_every stride missed
            # and flags a mutation that never found applicable state).
            self.validator.finish(self)
        blocking = BlockingStats()
        for router in self.routers:
            blocking.merge(router.blocking)
        tel = self.telemetry
        telemetry_result = None
        if tel is not None:
            tel.finish(self)
            telemetry_result = tel.result()
        return SimulationResult(
            config=self.config,
            cycles_run=self.cycle,
            latency=self.latency,
            latency_by_flow=self.latency_by_flow,
            accepted_flits=self.window_accepted_flits,
            offered_flits=self.window_offered_flits,
            measured_created=self.measured_created,
            measured_ejected=self.measured_ejected,
            blocking=blocking,
            telemetry=telemetry_result,
        )

    # ------------------------------------------------------------------
    # Introspection helpers (used by congestion-tree analysis and tests)
    # ------------------------------------------------------------------
    def total_buffered_flits(self) -> int:
        """Flits currently buffered anywhere in the network."""
        total = sum(r.occupancy() for r in self.routers)
        total += sum(s.occupancy for s in self.sinks)
        total += len(self._flits_next) + len(self._sink_next)
        return total
