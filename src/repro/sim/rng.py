"""Deterministic random-number streams.

Every stochastic component of the simulator (traffic injection, tie-breaking
in routing, arbiter seeds) draws from its own named stream derived from the
single simulation seed.  This keeps runs bit-reproducible and makes the
stream consumed by one component independent of how often another component
draws — adding a new random consumer does not perturb existing results.
"""

from __future__ import annotations

import random
import zlib


class RngStreams:
    """A factory of independent, deterministic ``random.Random`` streams."""

    def __init__(self, seed: int) -> None:
        self.seed = seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for ``name``, creating it on first use.

        The stream's seed mixes the simulation seed with a stable hash of
        the name (``zlib.crc32``, not Python's randomized ``hash``).
        """
        rng = self._streams.get(name)
        if rng is None:
            substream_seed = (self.seed * 0x9E3779B1 + zlib.crc32(name.encode())) % (
                2**63
            )
            rng = random.Random(substream_seed)
            self._streams[name] = rng
        return rng
