"""Simulation configuration.

:class:`SimulationConfig` mirrors Table 2 of the paper: topology size, VC
count, buffer depth, routing algorithm, traffic, packet-size distribution,
flow control, allocator and speedup parameters.  Defaults are the paper's
bold defaults (8x8 mesh, 10 VCs, buffer depth 4, single-flit packets,
internal speedup 2, credit-based wormhole flow control).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field, replace
from typing import Any

from repro.exceptions import ConfigurationError
from repro.topology.base import TOPOLOGIES


@dataclass(frozen=True)
class SimulationConfig:
    """Full configuration of one simulation run.

    Parameters map one-to-one onto Table 2 of the paper unless noted.

    Attributes
    ----------
    width, height:
        Network dimensions; ``height`` defaults to ``width``.
    topology:
        Network topology name (``"mesh"`` or ``"torus"``, see
        :data:`repro.topology.base.TOPOLOGIES`).  The default mesh is
        what the paper evaluates; serialization omits the field when it
        holds the default, so mesh configs (and their result-cache keys)
        are byte-identical to pre-topology versions.
    num_vcs:
        Virtual channels per physical channel (paper default 10).
    vc_buffer_depth:
        Flit slots per VC (paper: 4).
    routing:
        Routing algorithm name, resolved through
        :func:`repro.routing.registry.create_routing`.  One of ``"dor"``,
        ``"oddeven"``, ``"dbar"``, ``"footprint"``, optionally with an
        ``"+xordet"`` suffix.
    traffic:
        Traffic pattern name (``"uniform"``, ``"transpose"``, ``"shuffle"``,
        ``"hotspot"``, ``"trace"``, and extras).
    injection_rate:
        Offered load in flits/node/cycle for synthetic patterns.
    packet_size:
        Fixed packet size in flits; ignored when ``packet_size_range`` set.
    packet_size_range:
        Optional ``(lo, hi)``; packet sizes drawn uniformly from
        ``[lo, hi]`` (paper's {1..6}-flit experiment).
    internal_speedup:
        Switch speedup: flits per output per cycle the crossbar can deliver
        into the output staging buffer (paper: 2.0).
    output_buffer_depth:
        Depth of the output staging FIFO that absorbs the speedup.
    ejection_rate:
        Endpoint consumption bandwidth in flits/cycle (1.0 = link rate).
    congestion_threshold:
        Footprint/DBAR congestion threshold as a fraction of ``num_vcs``;
        the paper uses half the VCs (0.5).
    footprint_vc_limit:
        Optional cap on the number of footprint VCs a flow may occupy per
        output port (the paper's §4.2.5 future-work knob); ``None`` means
        unlimited as in the paper.
    warmup_cycles, measure_cycles, drain_cycles:
        Phases of the run.  Statistics cover packets created during the
        measurement window.
    sim_cycles:
        Hard upper bound on total simulated cycles (warmup + measure +
        drain allowance).
    seed:
        Master seed for all RNG streams.
    track_utilization:
        When true, the engine counts every flit per output channel so
        per-link utilization and heatmaps can be reported
        (:mod:`repro.metrics.utilization`).  Off by default — it adds a
        counter update per flit-hop.
    hotspot_rate:
        Injection rate of hotspot flows when ``traffic == "hotspot"``.
    background_rate:
        Injection rate of the uniform-random background traffic for the
        hotspot experiment (paper: 0.3).
    trace:
        Pre-generated trace (list of events) for ``traffic == "trace"``;
        see :mod:`repro.traffic.trace`.
    faults:
        Optional :class:`~repro.faults.schedule.FaultSchedule` of
        deterministic link/router faults.  Part of the serialized config,
        so fault-laden runs hash to distinct result-cache keys.
    telemetry:
        Optional :class:`~repro.telemetry.config.TelemetryConfig`
        selecting what the observability layer records (time-series
        sampling, congestion-tree tracking, flit tracing, progress).
        Serialized with the config so it reaches parallel workers, but
        **excluded from result-cache keys**: telemetry observes the run
        without changing it.
    """

    width: int = 8
    height: int | None = None
    num_vcs: int = 10
    vc_buffer_depth: int = 4
    routing: str = "footprint"
    traffic: str = "uniform"
    injection_rate: float = 0.1
    packet_size: int = 1
    packet_size_range: tuple[int, int] | None = None
    internal_speedup: int = 2
    output_buffer_depth: int = 8
    ejection_rate: float = 1.0
    congestion_threshold: float = 0.5
    footprint_vc_limit: int | None = None
    warmup_cycles: int = 1000
    measure_cycles: int = 2000
    drain_cycles: int = 10000
    seed: int = 1
    hotspot_rate: float = 0.1
    background_rate: float = 0.3
    trace: Any = None
    track_utilization: bool = False
    faults: Any = None
    telemetry: Any = None
    topology: str = "mesh"

    def __post_init__(self) -> None:
        if self.height is None:
            object.__setattr__(self, "height", self.width)
        self.validate()

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`ConfigurationError` on any inconsistent setting."""
        if self.topology not in TOPOLOGIES:
            raise ConfigurationError(
                f"unknown topology '{self.topology}'; "
                f"available: {', '.join(TOPOLOGIES)}"
            )
        if self.width < 2 or (self.height or 0) < 2:
            raise ConfigurationError(f"{self.topology} must be at least 2x2")
        if self.num_vcs < 1:
            raise ConfigurationError("need at least one VC")
        if self.routing_needs_escape and self.num_vcs < 2:
            raise ConfigurationError(
                f"routing '{self.routing}' uses Duato escape channels and "
                f"needs >= 2 VCs, got {self.num_vcs}"
            )
        if self.topology != "mesh":
            # Imported lazily: the registry imports the routing modules,
            # which must stay importable without config.
            from repro.routing.registry import check_topology_support

            check_topology_support(self.routing, self.topology)
        if self.topology == "torus":
            # The dateline scheme needs one VC (escape VC, for Duato
            # algorithms) per wrap class — see Torus2D.wrap_vc_class.
            if self.routing_needs_escape and self.num_vcs < 3:
                raise ConfigurationError(
                    f"routing '{self.routing}' on a torus needs two "
                    f"dateline escape VCs plus at least one adaptive VC "
                    f"(>= 3 VCs), got {self.num_vcs}"
                )
            if self.num_vcs < 2:
                raise ConfigurationError(
                    f"routing '{self.routing}' on a torus needs one VC "
                    f"per dateline class (>= 2 VCs), got {self.num_vcs}"
                )
        if self.vc_buffer_depth < 1:
            raise ConfigurationError("VC buffer depth must be >= 1")
        if not (0.0 <= self.injection_rate <= 1.0):
            raise ConfigurationError("injection rate must be in [0, 1]")
        if self.packet_size < 1:
            raise ConfigurationError("packet size must be >= 1")
        if self.packet_size_range is not None:
            lo, hi = self.packet_size_range
            if lo < 1 or hi < lo:
                raise ConfigurationError(
                    f"invalid packet size range {self.packet_size_range}"
                )
        if self.internal_speedup < 1:
            raise ConfigurationError("internal speedup must be >= 1")
        if self.output_buffer_depth < self.internal_speedup:
            raise ConfigurationError(
                "output buffer must hold at least one speedup burst"
            )
        if not (0.0 < self.ejection_rate <= 1.0):
            raise ConfigurationError("ejection rate must be in (0, 1]")
        if not (0.0 <= self.congestion_threshold <= 1.0):
            raise ConfigurationError("congestion threshold must be in [0, 1]")
        if self.footprint_vc_limit is not None and self.footprint_vc_limit < 1:
            raise ConfigurationError("footprint VC limit must be >= 1 or None")
        for name in ("warmup_cycles", "measure_cycles", "drain_cycles"):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be >= 0")
        if self.faults is not None:
            # Imported lazily: the faults package imports topology only,
            # but keeping config import-light is the house rule for trace.
            from repro.faults.schedule import FaultSchedule

            if not isinstance(self.faults, FaultSchedule):
                raise ConfigurationError(
                    f"faults must be a FaultSchedule or None, "
                    f"got {type(self.faults).__name__}"
                )
            self.faults.validate_for(
                self.width, self.height, topology=self.topology
            )
        if self.telemetry is not None:
            from repro.telemetry.config import TelemetryConfig

            if not isinstance(self.telemetry, TelemetryConfig):
                raise ConfigurationError(
                    f"telemetry must be a TelemetryConfig or None, "
                    f"got {type(self.telemetry).__name__}"
                )
            self.telemetry.validate_for(self.width, self.height)

    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return self.width * (self.height or self.width)

    @property
    def routing_needs_escape(self) -> bool:
        """Whether the routing algorithm reserves escape VCs (Duato)."""
        base = self.routing.split("+")[0].strip().lower()
        return base in ("dbar", "duato", "footprint")

    def make_topology(self):
        """Instantiate this config's :class:`~repro.topology.base.Topology`."""
        from repro.topology.base import create_topology

        return create_topology(self.topology, self.width, self.height)

    @property
    def max_cycles(self) -> int:
        return self.warmup_cycles + self.measure_cycles + self.drain_cycles

    @property
    def mean_packet_size(self) -> float:
        if self.packet_size_range is not None:
            lo, hi = self.packet_size_range
            return (lo + hi) / 2.0
        return float(self.packet_size)

    def with_(self, **overrides: Any) -> "SimulationConfig":
        """Return a copy with ``overrides`` applied (and re-validated)."""
        return replace(self, **overrides)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form; inverse of :meth:`from_dict`.

        Trace events (dataclasses) become plain dicts and the packet-size
        range becomes a list, so the output survives a JSON round trip.
        The ``topology`` key is omitted at its ``"mesh"`` default
        (:meth:`from_dict` restores it), keeping mesh payloads — and the
        result-cache keys hashed from them — byte-identical to configs
        serialized before the field existed.
        """
        data = asdict(self)
        if data["packet_size_range"] is not None:
            data["packet_size_range"] = list(data["packet_size_range"])
        if data["topology"] == "mesh":
            del data["topology"]
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SimulationConfig":
        """Rebuild a config from :meth:`to_dict` output (or parsed JSON)."""
        data = dict(data)
        if data.get("packet_size_range") is not None:
            data["packet_size_range"] = tuple(data["packet_size_range"])
        if data.get("trace") is not None:
            # Imported lazily: trace.py imports this module.
            from repro.traffic.trace import TraceEvent

            data["trace"] = [
                e if isinstance(e, TraceEvent) else TraceEvent(**e)
                for e in data["trace"]
            ]
        if data.get("faults") is not None:
            from repro.faults.schedule import FaultSchedule

            if not isinstance(data["faults"], FaultSchedule):
                data["faults"] = FaultSchedule.from_dict(data["faults"])
        if data.get("telemetry") is not None:
            from repro.telemetry.config import TelemetryConfig

            if not isinstance(data["telemetry"], TelemetryConfig):
                data["telemetry"] = TelemetryConfig.from_dict(
                    data["telemetry"]
                )
        return cls(**data)

    def describe(self) -> str:
        """One-line human-readable summary used in logs and reports."""
        size = (
            f"{self.packet_size}f"
            if self.packet_size_range is None
            else f"{self.packet_size_range[0]}-{self.packet_size_range[1]}f"
        )
        fault_note = (
            f", {len(self.faults)} faults" if self.faults else ""
        )
        return (
            f"{self.width}x{self.height} {self.topology}, {self.num_vcs} VCs, "
            f"{self.routing} routing, {self.traffic} traffic "
            f"@ {self.injection_rate:.3f}, {size} packets, seed {self.seed}"
            f"{fault_note}"
        )
