"""Simulation results.

:class:`SimulationResult` is the immutable record returned by one
:class:`~repro.sim.engine.Simulator` run: latency statistics (overall and
per traffic flow), accepted throughput over the measurement window, drain
status, and the blocking-purity counters used by the Fig. 10 analysis.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

from repro.metrics.stats import LatencyStats
from repro.router.router import BlockingStats
from repro.sim.config import SimulationConfig


def _telemetry_from(data: Any) -> Any:
    """Rebuild an optional TelemetryResult from serialized form."""
    if data is None:
        return None
    from repro.telemetry.result import TelemetryResult

    if isinstance(data, TelemetryResult):
        return data
    return TelemetryResult.from_dict(data)


@dataclass
class SimulationResult:
    """Aggregate outcome of one simulation run."""

    config: SimulationConfig
    cycles_run: int
    #: Latency over all measured packets (creation to tail ejection).
    latency: LatencyStats
    #: Latency broken down by traffic-flow label.
    latency_by_flow: dict[str, LatencyStats]
    #: Flits ejected during the measurement window (all packets).
    accepted_flits: int
    #: Flits offered (generated) during the measurement window.
    offered_flits: int
    #: Measured packets created / successfully ejected by run end.
    measured_created: int
    measured_ejected: int
    #: Purity-of-blocking counters aggregated over all routers.
    blocking: BlockingStats
    #: Extra per-run annotations (experiment harness use).
    notes: dict[str, float] = field(default_factory=dict)
    #: Collected telemetry (:class:`~repro.telemetry.result.
    #: TelemetryResult`) when the run's config enabled it; ``None``
    #: otherwise.  Stripped before the result enters the persistent
    #: cache — cached entries are pure functions of the simulated state.
    telemetry: Any = None

    # ------------------------------------------------------------------
    @property
    def accepted_rate(self) -> float:
        """Accepted throughput in flits/node/cycle over the window."""
        window = self.config.measure_cycles
        if window == 0:
            return math.nan
        return self.accepted_flits / (self.config.num_nodes * window)

    @property
    def offered_rate(self) -> float:
        """Offered load in flits/node/cycle over the window."""
        window = self.config.measure_cycles
        if window == 0:
            return math.nan
        return self.offered_flits / (self.config.num_nodes * window)

    @property
    def drained(self) -> bool:
        """Whether every measured packet was delivered before the run ended."""
        return self.measured_ejected == self.measured_created

    @property
    def delivered_fraction(self) -> float:
        """Fraction of measured packets delivered by run end.

        The headline resilience metric for fault-laden runs: packets
        destined to (or created at) dead endpoints, or stranded behind
        dead links, are created but never ejected.  NaN when no packet
        was measured.
        """
        if self.measured_created == 0:
            return math.nan
        return self.measured_ejected / self.measured_created

    @property
    def avg_latency(self) -> float:
        return self.latency.mean

    def flow_latency(self, flow: str) -> float:
        """Mean latency of packets in flow ``flow`` (NaN if none ejected)."""
        stats = self.latency_by_flow.get(flow)
        return stats.mean if stats is not None else math.nan

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form; inverse of :meth:`from_dict`.

        Used by the persistent result cache: the full latency sample
        sets are retained so a cache hit answers every percentile query
        exactly as the original run would.
        """
        return {
            "config": self.config.to_dict(),
            "cycles_run": self.cycles_run,
            "latency": self.latency.samples(),
            "latency_by_flow": {
                flow: stats.samples()
                for flow, stats in self.latency_by_flow.items()
            },
            "accepted_flits": self.accepted_flits,
            "offered_flits": self.offered_flits,
            "measured_created": self.measured_created,
            "measured_ejected": self.measured_ejected,
            "blocking": {
                "blocking_events": self.blocking.blocking_events,
                "busy_vc_samples": self.blocking.busy_vc_samples,
                "footprint_vc_samples": self.blocking.footprint_vc_samples,
            },
            "notes": dict(self.notes),
            "telemetry": (
                self.telemetry.to_dict()
                if self.telemetry is not None
                else None
            ),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "SimulationResult":
        """Rebuild a result from :meth:`to_dict` output (or parsed JSON)."""
        blocking = BlockingStats()
        blocking.blocking_events = data["blocking"]["blocking_events"]
        blocking.busy_vc_samples = data["blocking"]["busy_vc_samples"]
        blocking.footprint_vc_samples = data["blocking"][
            "footprint_vc_samples"
        ]
        return cls(
            config=SimulationConfig.from_dict(data["config"]),
            cycles_run=data["cycles_run"],
            latency=LatencyStats.from_samples(data["latency"]),
            latency_by_flow={
                flow: LatencyStats.from_samples(samples)
                for flow, samples in data["latency_by_flow"].items()
            },
            accepted_flits=data["accepted_flits"],
            offered_flits=data["offered_flits"],
            measured_created=data["measured_created"],
            measured_ejected=data["measured_ejected"],
            blocking=blocking,
            notes=dict(data["notes"]),
            telemetry=_telemetry_from(data.get("telemetry")),
        )

    def summary(self) -> str:
        """One-line report used by the CLI and the experiment harness."""
        lat = (
            f"{self.avg_latency:8.2f}" if self.latency.count else "     n/a"
        )
        return (
            f"{self.config.routing:>16s} {self.config.traffic:>10s} "
            f"inj={self.config.injection_rate:.3f} -> "
            f"lat={lat} acc={self.accepted_rate:.4f} "
            f"drained={'yes' if self.drained else 'NO'}"
        )
