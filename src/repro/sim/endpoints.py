"""Network endpoints: injection sources and ejection sinks.

A :class:`Source` owns the (unbounded) source queue of generated packets
and feeds flits into the router's LOCAL input port at link rate (one flit
per cycle), serializing packets as a single injection channel does.

A :class:`Sink` models the endpoint's receive interface: per-VC buffers
matching the router's LOCAL output credits, drained at the configured
ejection bandwidth.  An ``ejection_rate`` below link rate (or two flows
converging on one sink) oversubscribes the endpoint — the paper's
*endpoint congestion*.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.exceptions import FlowControlError
from repro.router.arbiter import RoundRobinArbiter
from repro.router.flit import Flit, Packet
from repro.router.router import Router
from repro.router.vcstate import VcState
from repro.topology.ports import Direction


class Source:
    """Injection interface of one node."""

    def __init__(self, node: int, router: Router, num_vcs: int) -> None:
        self.node = node
        self.router = router
        self.num_vcs = num_vcs
        self.queue: deque[Packet] = deque()
        self._current_flits: deque[Flit] | None = None
        self._current_packet: Packet | None = None
        self._vc: int | None = None
        self._vc_rr = 0
        #: Total flits ever enqueued, for offered-load accounting.
        self.offered_flits = 0
        #: Flits enqueued but not yet injected; the engine skips the
        #: injection call entirely while this is zero.
        self.pending_flits = 0

    def enqueue(self, packet: Packet) -> None:
        """Add a generated packet to the source queue."""
        self.queue.append(packet)
        self.offered_flits += packet.size
        self.pending_flits += packet.size

    @property
    def backlog(self) -> int:
        """Packets waiting in the source queue (including the one in
        transmission)."""
        return len(self.queue) + (1 if self._current_packet is not None else 0)

    def inject(self, cycle: int) -> Flit | None:
        """Push at most one flit into the router's LOCAL input port.

        Returns the injected flit, or ``None`` if nothing could enter
        this cycle (truthiness matches the old boolean contract).
        """
        if self._current_packet is None:
            if not self.queue:
                return None
            vc = self._pick_vc()
            if vc is None:
                return None
            packet = self.queue.popleft()
            packet.injection_time = cycle
            self._current_packet = packet
            self._current_flits = deque(packet.flits())
            self._vc = vc
        assert self._current_flits is not None and self._vc is not None
        ivc = self.router.input_vcs[Direction.LOCAL][self._vc]
        if not ivc.has_space:
            return None
        flit = self._current_flits.popleft()
        self.pending_flits -= 1
        self.router.receive_flit(Direction.LOCAL, self._vc, flit)
        if not self._current_flits:
            self._current_packet = None
            self._current_flits = None
            self._vc = None
        return flit

    def _pick_vc(self) -> int | None:
        """Round-robin over idle, empty LOCAL input VCs."""
        vcs = self.router.input_vcs[Direction.LOCAL]
        for offset in range(self.num_vcs):
            v = (self._vc_rr + offset) % self.num_vcs
            ivc = vcs[v]
            if ivc.state is VcState.IDLE and not ivc.fifo:
                self._vc_rr = (v + 1) % self.num_vcs
                return v
        return None


class Sink:
    """Ejection interface of one node."""

    def __init__(
        self,
        node: int,
        num_vcs: int,
        buffer_depth: int,
        ejection_rate: float,
        on_packet: Callable[[Packet, int], None],
    ) -> None:
        self.node = node
        self.num_vcs = num_vcs
        self.buffer_depth = buffer_depth
        self.ejection_rate = ejection_rate
        self.on_packet = on_packet
        self.buffers: list[deque[Flit]] = [deque() for _ in range(num_vcs)]
        self._arbiter = RoundRobinArbiter(num_vcs)
        self._budget = 0.0
        #: Flits consumed, total and per cycle-window accounting.
        self.ejected_flits = 0
        #: Flits currently buffered, maintained incrementally: the engine
        #: checks it for every sink every cycle to skip empty ones.
        self.occupancy = 0
        #: Bitmask of VCs with buffered flits, so drain arbitration only
        #: enumerates occupied VCs instead of scanning all of them.
        self._occupied = 0

    def receive(self, vc: int, flit: Flit) -> None:
        """A flit arrives from the router's LOCAL output port."""
        if len(self.buffers[vc]) >= self.buffer_depth:
            raise FlowControlError(f"sink {self.node} VC {vc} overflow")
        if flit.dst != self.node:
            raise FlowControlError(
                f"misrouted flit {flit!r} delivered to node {self.node}"
            )
        self.buffers[vc].append(flit)
        self.occupancy += 1
        self._occupied |= 1 << vc

    def drain(self, cycle: int) -> list[int]:
        """Consume flits at the ejection bandwidth.

        Returns the VC indices of consumed flits so the engine can return
        credits to the router's LOCAL output port.
        """
        self._budget = min(self._budget + self.ejection_rate, 4.0)
        consumed: list[int] = []
        while self._budget >= 1.0:
            # Ascending set-bit enumeration matches the full-range scan
            # it replaces, so arbitration order is unchanged.
            occupied = []
            mask = self._occupied
            while mask:
                low = mask & -mask
                occupied.append(low.bit_length() - 1)
                mask -= low
            vc = self._arbiter.grant(occupied)
            if vc is None:
                break
            flit = self.buffers[vc].popleft()
            if not self.buffers[vc]:
                self._occupied &= ~(1 << vc)
            consumed.append(vc)
            self.ejected_flits += 1
            self.occupancy -= 1
            self._budget -= 1.0
            if flit.is_tail:
                flit.packet.ejection_time = cycle
                self.on_packet(flit.packet, cycle)
        return consumed
