"""The flat-state vector simulation core.

State layout (``N`` nodes, ``V`` VCs, ``G = N * NUM_PORTS`` global
ports, ``g = node * NUM_PORTS + direction``, flat VC id ``i = g * V +
vc``):

* flits are packed integer tokens ``(packet_id << 2) | (is_head << 1) |
  is_tail``; packet metadata lives in one append-only list;
* output-port VC occupancy is a pair of per-port Python int bitmasks
  (``allocated``, ``draining``) mirrored into the numpy ``busy`` array
  consumed by the batched ``candidate_mask``; credits are flat lists;
* input-VC state (FIFO, state machine, output registers, route cache)
  is flat lists indexed by ``i``; the per-router pending set is an
  insertion-ordered dict, matching the scalar router's iteration order.

Per cycle, stage 4 (RC + VA) is restructured into three sub-phases that
preserve every per-stream RNG draw order: (a) per router in active-set
order, commit output ports for new head packets (all ``select_output``
tie-break draws, in pending order); (b) one network-wide
``candidate_mask`` call for every route-cache miss; (c) per router in
the same order, replay the scalar separable allocator over the
reconstructed request lists (all allocator tie-break draws).  Phases
are exchangeable with the scalar per-router loop because routers only
ever read and mutate their *own* output-port state during RC/VA, and
each router's RC draws precede its allocator draws on its private
stream either way.

Everything else — arrivals, sink drain, link traversal, SA/ST, traffic
injection, idle-cycle skipping, the deadlock watchdog, and the phase
boundaries of :meth:`run` — is a direct transliteration of the scalar
``skip`` engine over the flat state.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

import numpy as np

from repro.exceptions import SimulationError
from repro.metrics.stats import LatencyStats
from repro.router.router import BlockingStats
from repro.routing.batch import VcStateArrays
from repro.routing.dbar import DbarFineRouting, DbarRouting
from repro.routing.dor import DorRouting
from repro.routing.footprint import FootprintRouting
from repro.routing.oddeven import OddEvenRouting
from repro.routing.xordet import XordetOverlay
from repro.sim.results import SimulationResult
from repro.topology.ports import NUM_PORTS, Direction

if TYPE_CHECKING:
    from repro.sim.engine import Simulator

_LOCAL = int(Direction.LOCAL)

# Input-VC state machine encoding (mirrors VcState).
_IDLE = 0
_ROUTING = 1
_ACTIVE = 2


def _base_kind(routing) -> str:
    """Classify the (base) algorithm for the select_output replica."""
    base = routing.base if isinstance(routing, XordetOverlay) else routing
    if isinstance(base, FootprintRouting):
        return "footprint"
    if isinstance(base, DbarFineRouting):
        return "dbar-fine"
    if isinstance(base, DbarRouting):
        return "dbar"
    if isinstance(base, OddEvenRouting):
        return "oddeven"
    if isinstance(base, DorRouting):
        return "dor"
    raise NotImplementedError(
        f"vector engine has no select_output replica for {routing!r}"
    )


class VectorEngine:
    """Runs one :class:`Simulator`'s workload on the flat SoA state."""

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        config = sim.config
        mesh = sim.mesh
        self.config = config
        self.mesh = mesh
        self.routing = sim.routing
        self.traffic = sim.traffic

        num_nodes = mesh.num_nodes
        num_vcs = config.num_vcs
        size = num_nodes * NUM_PORTS
        self._num_nodes = num_nodes
        self._num_vcs = num_vcs
        self._vc_mask_all = (1 << num_vcs) - 1
        self._escape_vc = 0 if self.routing.uses_escape else None
        self._atomic = self.routing.atomic_vc_reallocation
        self._kind = _base_kind(self.routing)
        self._overlay = isinstance(self.routing, XordetOverlay)
        base = self.routing.base if self._overlay else self.routing
        self._oddeven = base if isinstance(base, OddEvenRouting) else None
        self._threshold = max(
            1, int(config.congestion_threshold * num_vcs)
        )
        self._vc_depth = config.vc_buffer_depth
        self._speedup = config.internal_speedup
        self._ofifo_depth = config.output_buffer_depth

        # Per-router RNG streams: the same cached stream objects the
        # scalar routers were built with, still untouched.
        self._rngs = [
            sim.rng.stream(f"router/{node}") for node in range(num_nodes)
        ]

        # --- per-node structures -------------------------------------
        self._port_order = [
            [int(d) for d in mesh.router_ports(node)]
            for node in range(num_nodes)
        ]
        self._link_dest = sim._link_dest
        self._inflight = [0] * num_nodes
        self._staged = [0] * num_nodes
        self._buffered = [0] * num_nodes
        self._credit_pending = [False] * num_nodes
        self._sa_offset = [
            node % max(1, len(self._port_order[node]))
            for node in range(num_nodes)
        ]
        # All rotations of each node's port scan order, so the switch
        # arbiter indexes a precomputed tuple instead of taking a
        # modulus per port per cycle.
        self._port_rot = [
            [
                tuple(order[(off + k) % len(order)] for k in range(len(order)))
                for off in range(len(order))
            ]
            for order in self._port_order
        ]
        self._pending: list[dict[int, None]] = [
            {} for _ in range(num_nodes)
        ]
        self._version_sum = [0] * num_nodes

        # --- per global-port (g) structures --------------------------
        self._alloc = [0] * size
        self._drain = [0] * size
        self._fresh = [0] * size
        # Per-node flag: some port of the node has fresh bits set (only
        # _release_vc sets them), so _clear_fresh_ports must scan.
        self._fresh_any = [False] * num_nodes
        self._occupied = [0] * size
        # Per input-port bitmask of VCs whose packet holds an output VC
        # (_ACTIVE): the switch arbiter only ever grants these, so its
        # scan iterates ``occupied & active`` instead of re-checking
        # istate per occupied VC.
        self._active_mask = [0] * size
        self._arb_ptr = [0] * size
        self._accepted = [0] * size
        self._ofifo: list[deque] = [deque() for _ in range(size)]
        self._owner_py = [[-1] * num_vcs for _ in range(size)]
        # Incrementally maintained per-port views, mirroring the scalar
        # OutputPort's idle cache and footprint index: busy adaptive VC
        # count and per-destination footprint VC counts.
        self._busy_count = [0] * size
        self._fp_counts: list[dict[int, int]] = [{} for _ in range(size)]
        escape = self._escape_vc
        self._esc_g = [
            escape
            if escape is not None and g % NUM_PORTS != _LOCAL
            else -1
            for g in range(size)
        ]
        self._adaptive_int = [
            self._vc_mask_all & ~(1 << self._esc_g[g])
            if self._esc_g[g] >= 0
            else self._vc_mask_all
            for g in range(size)
        ]
        self._adaptive_n = [m.bit_count() for m in self._adaptive_int]
        depth = self._vc_depth
        self._credits = [depth] * (size * num_vcs)
        self._adaptive_credits = [
            depth * (self._adaptive_int[g].bit_count()) for g in range(size)
        ]

        # --- per flat-VC (i = g * V + v) structures -------------------
        total_vcs = size * num_vcs
        self._ififo: list[deque] = [deque() for _ in range(total_vcs)]
        self._istate = bytearray(total_vcs)
        self._out_g = [-1] * total_vcs
        self._out_vc = [-1] * total_vcs
        self._committed = [-1] * total_vcs
        self._cache_key = [-1] * total_vcs
        self._cache_reqs: list = [None] * total_vcs
        self._ivc_dst = [-1] * total_vcs
        self._ivc_src = [-1] * total_vcs

        # --- numpy view for candidate_mask ----------------------------
        self.state = VcStateArrays.empty(
            mesh.width,
            mesh.height,
            num_vcs,
            congestion_threshold=self._threshold,
            footprint_vc_limit=config.footprint_vc_limit,
            escape_vc=escape,
        )
        self._busy_np = self.state.busy
        self._fresh_np = self.state.fresh
        self._owner_np = self.state.owner

        # --- sinks ----------------------------------------------------
        self._sink_bufs = [
            [deque() for _ in range(num_vcs)] for _ in range(num_nodes)
        ]
        self._sink_mask = [0] * num_nodes
        self._sink_ptr = [0] * num_nodes
        self._sink_budget = [0.0] * num_nodes
        self._sink_occupancy = [0] * num_nodes

        # --- sources --------------------------------------------------
        self._src_queue: list[deque] = [deque() for _ in range(num_nodes)]
        self._src_flits: list = [None] * num_nodes
        self._src_vc = [-1] * num_nodes
        self._src_rr = [0] * num_nodes
        self._src_pending = [0] * num_nodes

        # --- engine-level state ---------------------------------------
        self._packets: list = []
        self._flits_next: list = []
        self._credits_next: list = []
        self._sink_next: list = []
        self.cycle = 0
        self._last_progress_cycle = 0
        self._flits_in_network = 0
        self._source_backlog = 0
        self._sampling = False

        # --- statistics -----------------------------------------------
        self.latency = LatencyStats()
        self.latency_by_flow: dict[str, LatencyStats] = {}
        self.measured_created = 0
        self.measured_ejected = 0
        self.window_accepted_flits = 0
        self.window_offered_flits = 0
        self.blocking = BlockingStats()

    # ------------------------------------------------------------------
    # Output-port state transitions
    # ------------------------------------------------------------------
    def _allocate_vc(self, g: int, vc: int, dst: int) -> None:
        bit = 1 << vc
        self._alloc[g] |= bit
        self._owner_py[g][vc] = dst
        self._owner_np[g, vc] = dst
        self._version_sum[g // NUM_PORTS] += 1
        if self._fresh[g] & bit:
            self._fresh[g] &= ~bit
            self._fresh_np[g, vc] = False
        self._busy_np[g, vc] = True
        if vc != self._esc_g[g]:
            self._busy_count[g] += 1
            fp = self._fp_counts[g]
            fp[dst] = fp.get(dst, 0) + 1

    def _release_vc(self, g: int, vc: int) -> None:
        bit = 1 << vc
        self._alloc[g] &= ~bit
        self._drain[g] &= ~bit
        self._fresh[g] |= bit
        self._fresh_any[g // NUM_PORTS] = True
        self._fresh_np[g, vc] = True
        self._busy_np[g, vc] = False
        # Owner deliberately left stale (fresh-footprint reclaim).
        self._version_sum[g // NUM_PORTS] += 1
        if vc != self._esc_g[g]:
            self._busy_count[g] -= 1
            fp = self._fp_counts[g]
            dst = self._owner_py[g][vc]
            left = fp[dst] - 1
            if left:
                fp[dst] = left
            else:
                del fp[dst]

    def _clear_fresh_ports(self, node: int) -> None:
        if not self._fresh_any[node]:
            return
        self._fresh_any[node] = False
        fresh = self._fresh
        base = node * NUM_PORTS
        bumps = 0
        for d in self._port_order[node]:
            g = base + d
            if fresh[g]:
                fresh[g] = 0
                self._fresh_np[g, :] = False
                bumps += 1
        if bumps:
            self._version_sum[node] += bumps

    def _receive_credit(self, node: int, direction: int, vc: int) -> None:
        g = node * NUM_PORTS + direction
        self._credits[g * self._num_vcs + vc] += 1
        if vc != self._esc_g[g]:
            self._adaptive_credits[g] += 1
        if (self._drain[g] >> vc) & 1 and (
            self._credits[g * self._num_vcs + vc] == self._vc_depth
        ):
            self._release_vc(g, vc)
            self._credit_pending[node] = True

    def _receive_flit(
        self, node: int, direction: int, vc: int, token: int
    ) -> None:
        g = node * NUM_PORTS + direction
        i = g * self._num_vcs + vc
        self._ififo[i].append(token)
        self._inflight[node] += 1
        self._buffered[node] += 1
        self._occupied[g] |= 1 << vc
        if self._istate[i] == _IDLE:
            self._istate[i] = _ROUTING
            packet = self._packets[token >> 2]
            self._ivc_dst[i] = packet.dst
            self._ivc_src[i] = packet.src
            self._pending[node][i] = None

    # ------------------------------------------------------------------
    # Route computation replicas (same per-stream RNG draws as scalar)
    # ------------------------------------------------------------------
    def _idle_count(self, g: int) -> int:
        return self._adaptive_n[g] - self._busy_count[g]

    def _fp_count(self, g: int, dst: int) -> int:
        return self._fp_counts[g].get(dst, 0)

    def _select_output(self, node: int, i: int) -> int:
        dst = self._ivc_dst[i]
        if node == dst:
            return _LOCAL
        mesh = self.mesh
        kind = self._kind
        if kind == "dor":
            return int(mesh.dor_direction(node, dst))
        if kind == "oddeven":
            candidates = self._oddeven.allowed_directions(
                mesh, node, dst, self._ivc_src[i]
            )
            if len(candidates) == 1:
                return int(candidates[0])
            return self._select_most_idle(node, dst, candidates)
        candidates = mesh.minimal_directions(node, dst)
        if len(candidates) == 1:
            return int(candidates[0])
        if kind == "footprint":
            return self._select_footprint(node, dst, candidates)
        return self._select_dbar(node, candidates, kind == "dbar-fine")

    def _select_most_idle(self, node: int, dst: int, candidates) -> int:
        base = node * NUM_PORTS
        idle = [self._idle_count(base + d) for d in candidates]
        best = max(idle)
        tied = [d for d, c in zip(candidates, idle) if c == best]
        if len(tied) == 1:
            return int(tied[0])
        return int(tied[self._rngs[node].randrange(len(tied))])

    def _select_dbar(self, node: int, candidates, fine: bool) -> int:
        base = node * NUM_PORTS
        scored = []
        for d in candidates:
            g = base + d
            idle = self._idle_count(g)
            uncongested = idle >= self._threshold
            if fine:
                scored.append(
                    ((uncongested, self._adaptive_credits[g], idle), d)
                )
            else:
                scored.append((uncongested, d))
        best = max(score for score, _ in scored)
        tied = [d for score, d in scored if score == best]
        if len(tied) == 1:
            return int(tied[0])
        return int(tied[self._rngs[node].randrange(len(tied))])

    def _select_footprint(self, node: int, dst: int, candidates) -> int:
        base = node * NUM_PORTS
        idle = [self._idle_count(base + d) for d in candidates]
        best_idle = max(idle)
        tied = [d for d, c in zip(candidates, idle) if c == best_idle]
        if len(tied) > 1 and best_idle < self._threshold:
            fp = [self._fp_count(base + d, dst) for d in tied]
            best_fp = max(fp)
            tied = [d for d, c in zip(tied, fp) if c == best_fp]
        if len(tied) == 1:
            return int(tied[0])
        return int(tied[self._rngs[node].randrange(len(tied))])

    # ------------------------------------------------------------------
    # Stage 4: RC + batched request generation + allocator replay
    # ------------------------------------------------------------------
    def _route_and_allocate(self, active: list[int]) -> None:
        num_vcs = self._num_vcs
        pending = self._pending
        inflight = self._inflight
        accepted = self._accepted
        cache_key = self._cache_key
        cache_reqs = self._cache_reqs
        committed = self._committed

        # Phase (a): per-cycle port resets and RC commitments, in
        # active-set order — identical per-router work order (and
        # therefore per-stream RNG order) to the scalar stage-4 loop.
        # Only the flat ivc index is collected; currents, destinations
        # and committed ports are gathered vectorized afterwards (none
        # of them change again before phase (b): fresh clears — the only
        # phase-(a) version bumps — happen only on nodes with no
        # pending ivcs, which contribute nothing to the batch).
        alloc_nodes: list[int] = []
        batch_i: list[int] = []
        fresh_any = self._fresh_any
        for node in active:
            self._credit_pending[node] = False
            if inflight[node] == 0:
                if fresh_any[node]:
                    self._clear_fresh_ports(node)
                continue
            base = node * NUM_PORTS
            for d in self._port_order[node]:
                accepted[base + d] = 0
            pend = pending[node]
            if not pend:
                if fresh_any[node]:
                    self._clear_fresh_ports(node)
                continue
            vsum = self._version_sum[node]
            for i in pend:
                if cache_key[i] != vsum:
                    if committed[i] < 0:
                        committed[i] = self._select_output(node, i)
                    batch_i.append(i)
            alloc_nodes.append(node)

        # Phase (b): one whole-network candidate_mask call for every
        # route-cache miss.  Only the *best run* of each request list —
        # the maximal-priority requests, in ascending-VC order with the
        # escape request ordered last — is extracted: every emitted
        # request is grantable at emission (the algorithms only request
        # grantable VCs, and the cache version invalidates on every
        # grantability change), so the scalar allocator's stage-1 scan
        # provably reduces to picking from exactly this run.
        if batch_i:
            count = len(batch_i)
            arr_i = np.fromiter(batch_i, dtype=np.int64, count=count)
            cur_arr = arr_i // (NUM_PORTS * num_vcs)
            dst_arr = np.fromiter(
                map(self._ivc_dst.__getitem__, batch_i),
                dtype=np.int64,
                count=count,
            )
            com_arr = np.fromiter(
                map(committed.__getitem__, batch_i),
                dtype=np.int64,
                count=count,
            )
            pri = self.routing.candidate_mask(
                self.state, cur_arr, dst_arr, com_arr
            )
            vsums = np.asarray(self._version_sum, dtype=np.int64)[
                cur_arr
            ].tolist()
            for i, vsum in zip(batch_i, vsums):
                cache_reqs[i] = None
                cache_key[i] = vsum
            b_idx, d_idx, v_idx = np.nonzero(pri >= 0)
            if b_idx.size:
                p_val = pri[b_idx, d_idx, v_idx]
                order = np.lexsort((v_idx, -p_val, b_idx))
                bs = b_idx[order]
                ps = p_val[order]
                ds = d_idx[order].tolist()
                vs = v_idx[order].tolist()
                # (row, priority)-run boundaries over the sorted triples;
                # the first run of each row is its best run.  Cached
                # entries reference slices of the shared ds/vs lists to
                # avoid materializing per-request tuples.
                new_run = np.empty(bs.size, dtype=bool)
                new_run[0] = True
                np.logical_or(
                    bs[1:] != bs[:-1], ps[1:] != ps[:-1], out=new_run[1:]
                )
                run_start = np.flatnonzero(new_run)
                run_row = bs[run_start]
                first_of_row = np.empty(run_start.size, dtype=bool)
                first_of_row[0] = True
                np.not_equal(
                    run_row[1:], run_row[:-1], out=first_of_row[1:]
                )
                run_end = np.append(run_start[1:], bs.size)
                for b, p, start, end in zip(
                    run_row[first_of_row].tolist(),
                    ps[run_start[first_of_row]].tolist(),
                    run_start[first_of_row].tolist(),
                    run_end[first_of_row].tolist(),
                ):
                    cache_reqs[batch_i[b]] = (p, ds, vs, start, end)

        # Phase (c): exact separable-allocator replay per router, in the
        # same order; each router's allocator draws follow its own RC
        # draws on its private stream, as in the scalar engine.  Stage 1
        # degenerates to a draw over the cached best run (see above).
        for node in alloc_nodes:
            pend = pending[node]
            base = node * NUM_PORTS
            rng = self._rngs[node]
            selections: dict[int, list] = {}
            for i in pend:
                entry = cache_reqs[i]
                if entry is None:
                    continue
                best_priority, ds, vs, start, end = entry
                k = (
                    start
                    if end - start == 1
                    else start + rng.randrange(end - start)
                )
                selections.setdefault(ds[k] * num_vcs + vs[k], []).append(
                    (best_priority, i)
                )
            for key, contenders in selections.items():
                top = -1
                finalists = None
                for p, i in contenders:
                    if p > top:
                        top = p
                        finalists = [i]
                    elif p == top:
                        finalists.append(i)
                winner = (
                    finalists[0]
                    if len(finalists) == 1
                    else finalists[rng.randrange(len(finalists))]
                )
                d, v = divmod(key, num_vcs)
                g = base + d
                self._allocate_vc(g, v, self._ivc_dst[winner])
                self._istate[winner] = _ACTIVE
                self._active_mask[winner // num_vcs] |= 1 << (
                    winner % num_vcs
                )
                self._out_g[winner] = g
                self._out_vc[winner] = v
                committed[winner] = -1
                cache_reqs[winner] = None
                cache_key[winner] = -1
                del pend[winner]
            if self._sampling and pend:
                self._sample_blocked(node, pend)
            if self._fresh_any[node]:
                self._clear_fresh_ports(node)

    def _sample_blocked(self, node: int, pend: dict) -> None:
        blocking = self.blocking
        base = node * NUM_PORTS
        num_vcs = self._num_vcs
        for i in pend:
            d = self._committed[i]
            if d < 0:
                continue
            g = base + d
            blocking.blocking_events += 1
            blocking.busy_vc_samples += self._busy_count[g]
            blocking.footprint_vc_samples += self._fp_counts[g].get(
                self._ivc_dst[i], 0
            )

    # ------------------------------------------------------------------
    # Stage 5: switch allocation / switch traversal
    # ------------------------------------------------------------------
    def _switch_traversal(self, node: int) -> bool:
        n_ports = len(self._port_order[node])
        offset = self._sa_offset[node] + 1
        if offset == n_ports:
            offset = 0
        self._sa_offset[node] = offset
        if self._buffered[node] == 0:
            return False
        num_vcs = self._num_vcs
        base = node * NUM_PORTS
        occupied = self._occupied
        active_mask = self._active_mask
        istate = self._istate
        ififo = self._ififo
        credits = self._credits
        accepted = self._accepted
        ofifo = self._ofifo
        speedup = self._speedup
        ofifo_depth = self._ofifo_depth
        vc_mask_all = self._vc_mask_all
        row = self._link_dest[node]
        credits_next = self._credits_next
        arb_ptr = self._arb_ptr
        out_g_l = self._out_g
        out_vc_l = self._out_vc
        esc_g = self._esc_g
        adaptive_credits = self._adaptive_credits
        atomic = self._atomic
        progressed = False
        for d in self._port_rot[node][offset]:
            g = base + d
            mask = occupied[g] & active_mask[g]
            if not mask:
                continue
            # Round-robin among the port's grantable VCs: rotate the
            # mask so ascending set-bit order equals the pointer scan
            # order.
            pointer = arb_ptr[g]
            rotated = (
                (mask >> pointer) | (mask << (num_vcs - pointer))
            ) & vc_mask_all
            winner = -1
            while rotated:
                low = rotated & -rotated
                v = pointer + low.bit_length() - 1
                if v >= num_vcs:
                    v -= num_vcs
                i = g * num_vcs + v
                out_g = out_g_l[i]
                out_vc = out_vc_l[i]
                if (
                    credits[out_g * num_vcs + out_vc] > 0
                    and accepted[out_g] < speedup
                    and len(ofifo[out_g]) < ofifo_depth
                ):
                    winner = v
                    break
                rotated -= low
            if winner < 0:
                continue
            arb_ptr[g] = winner + 1 if winner + 1 < num_vcs else 0
            i = g * num_vcs + winner
            fifo = ififo[i]
            token = fifo.popleft()
            self._buffered[node] -= 1
            if not fifo:
                occupied[g] &= ~(1 << winner)
            # _send inlined: downstream credit spend + output staging.
            out_g = out_g_l[i]
            out_vc = out_vc_l[i]
            credits[out_g * num_vcs + out_vc] -= 1
            if out_vc != esc_g[out_g]:
                adaptive_credits[out_g] -= 1
            ofifo[out_g].append((token, out_vc))
            accepted[out_g] += 1
            self._staged[node] += 1
            if token & 1:  # tail flit
                if atomic:
                    # Keep the VC reserved (owner visible as a
                    # footprint) until all credits return; the send
                    # just consumed one, so the drain can never
                    # complete here.
                    bit = 1 << out_vc
                    self._alloc[out_g] &= ~bit
                    self._drain[out_g] |= bit
                else:
                    self._release_vc(out_g, out_vc)
                # Release the input VC.
                istate[i] = _IDLE
                active_mask[g] &= ~(1 << winner)
                out_g_l[i] = -1
                out_vc_l[i] = -1
                self._committed[i] = -1
                self._cache_reqs[i] = None
                self._cache_key[i] = -1
                if fifo:
                    # Next packet's head is already queued behind the
                    # tail — straight back to ROUTING.
                    istate[i] = _ROUTING
                    packet = self._packets[fifo[0] >> 2]
                    self._ivc_dst[i] = packet.dst
                    self._ivc_src[i] = packet.src
                    self._pending[node][i] = None
            progressed = True
            if d != _LOCAL:
                upstream, up_dir = row[d]
                credits_next.append((upstream, up_dir, winner))
        return progressed

    # ------------------------------------------------------------------
    # Stage 6: traffic generation and injection
    # ------------------------------------------------------------------
    def _inject(self, node: int, cycle: int) -> bool:
        flits = self._src_flits[node]
        num_vcs = self._num_vcs
        g = node * NUM_PORTS + _LOCAL
        if flits is None:
            queue = self._src_queue[node]
            if not queue:
                return False
            vc = -1
            rr = self._src_rr[node]
            for offset in range(num_vcs):
                v = rr + offset
                if v >= num_vcs:
                    v -= num_vcs
                i = g * num_vcs + v
                if self._istate[i] == _IDLE and not self._ififo[i]:
                    self._src_rr[node] = v + 1 if v + 1 < num_vcs else 0
                    vc = v
                    break
            if vc < 0:
                return False
            packet = queue.popleft()
            packet.injection_time = cycle
            pid = len(self._packets)
            self._packets.append(packet)
            size = packet.size
            head = (pid << 2) | 2
            if size == 1:
                flits = deque((head | 1,))
            else:
                flits = deque([head] + [pid << 2] * (size - 2))
                flits.append((pid << 2) | 1)
            self._src_flits[node] = flits
            self._src_vc[node] = vc
        vc = self._src_vc[node]
        if len(self._ififo[g * num_vcs + vc]) >= self._vc_depth:
            return False
        token = flits.popleft()
        self._src_pending[node] -= 1
        self._receive_flit(node, _LOCAL, vc, token)
        if not flits:
            self._src_flits[node] = None
        return True

    def _packet_ejected(self, packet, cycle: int) -> None:
        if self._measure_start <= cycle < self._measure_end:
            self.window_accepted_flits += packet.size
        if packet.measured:
            self.measured_ejected += 1
            self.latency.add(packet.latency)
            flow_stats = self.latency_by_flow.setdefault(
                packet.flow, LatencyStats()
            )
            flow_stats.add(packet.latency)

    # ------------------------------------------------------------------
    # One simulated cycle
    # ------------------------------------------------------------------
    def step(self) -> None:
        cycle = self.cycle
        num_vcs = self._num_vcs

        # 1. Arrivals from the previous cycle's link traversals
        #    (_receive_credit/_receive_flit inlined — these two loops
        #    run once per flit hop and dominate arrival cost).
        flits_now, self._flits_next = self._flits_next, []
        credits_now, self._credits_next = self._credits_next, []
        sink_now, self._sink_next = self._sink_next, []
        credits = self._credits
        esc_g = self._esc_g
        adaptive_credits = self._adaptive_credits
        drain = self._drain
        vc_depth = self._vc_depth
        for node, direction, vc in credits_now:
            g = node * NUM_PORTS + direction
            ci = g * num_vcs + vc
            credits[ci] += 1
            if vc != esc_g[g]:
                adaptive_credits[g] += 1
            if (drain[g] >> vc) & 1 and credits[ci] == vc_depth:
                self._release_vc(g, vc)
                self._credit_pending[node] = True
        ififo = self._ififo
        inflight_l = self._inflight
        buffered = self._buffered
        occupied = self._occupied
        istate = self._istate
        packets = self._packets
        pending = self._pending
        ivc_dst = self._ivc_dst
        ivc_src = self._ivc_src
        for node, direction, vc, token in flits_now:
            g = node * NUM_PORTS + direction
            i = g * num_vcs + vc
            ififo[i].append(token)
            inflight_l[node] += 1
            buffered[node] += 1
            occupied[g] |= 1 << vc
            if istate[i] == _IDLE:
                istate[i] = _ROUTING
                packet = packets[token >> 2]
                ivc_dst[i] = packet.dst
                ivc_src[i] = packet.src
                pending[node][i] = None
        for node, vc, token in sink_now:
            self._sink_bufs[node][vc].append(token)
            self._sink_occupancy[node] += 1
            self._sink_mask[node] |= 1 << vc

        inflight = self._inflight
        credit_pending = self._credit_pending
        active = [
            node
            for node in range(self._num_nodes)
            if inflight[node] or credit_pending[node]
        ]

        # 2. Sink drain at the ejection bandwidth.
        progressed = False
        credits_next = self._credits_next
        ejection_rate = self.config.ejection_rate
        for node in range(self._num_nodes):
            if self._sink_occupancy[node] == 0:
                continue
            budget = min(self._sink_budget[node] + ejection_rate, 4.0)
            mask = self._sink_mask[node]
            bufs = self._sink_bufs[node]
            while budget >= 1.0:
                if not mask:
                    break
                pointer = self._sink_ptr[node]
                vc = -1
                for offset in range(num_vcs):
                    candidate = pointer + offset
                    if candidate >= num_vcs:
                        candidate -= num_vcs
                    if (mask >> candidate) & 1:
                        vc = candidate
                        break
                self._sink_ptr[node] = vc + 1 if vc + 1 < num_vcs else 0
                token = bufs[vc].popleft()
                if not bufs[vc]:
                    mask &= ~(1 << vc)
                credits_next.append((node, _LOCAL, vc))
                progressed = True
                self._flits_in_network -= 1
                self._sink_occupancy[node] -= 1
                budget -= 1.0
                if token & 1:
                    packet = self._packets[token >> 2]
                    packet.ejection_time = cycle
                    self._packet_ejected(packet, cycle)
            self._sink_mask[node] = mask
            self._sink_budget[node] = budget

        # 3. Link traversal: one flit per output port onto its link.
        sink_next = self._sink_next
        flits_next = self._flits_next
        staged = self._staged
        ofifo = self._ofifo
        for node in active:
            if not staged[node]:
                continue
            base = node * NUM_PORTS
            row = self._link_dest[node]
            for d in self._port_order[node]:
                fifo = ofifo[base + d]
                if not fifo:
                    continue
                token, vc = fifo.popleft()
                inflight[node] -= 1
                staged[node] -= 1
                progressed = True
                if d == _LOCAL:
                    sink_next.append((node, vc, token))
                else:
                    neighbor, in_dir = row[d]
                    flits_next.append((neighbor, in_dir, vc, token))

        # 4. Route computation + VC allocation (batched; see above).
        self._route_and_allocate(active)

        # 5. Switch allocation/traversal; upstream credit returns.
        for node in active:
            if inflight[node] and self._switch_traversal(node):
                progressed = True

        # 6. Traffic generation and injection.
        in_window = self._measure_start <= cycle < self._measure_end
        for packet in self.traffic.generate(cycle, in_window):
            if packet.measured:
                self.measured_created += 1
            if in_window:
                self.window_offered_flits += packet.size
            self._src_queue[packet.src].append(packet)
            self._src_pending[packet.src] += packet.size
            self._source_backlog += packet.size
        for node in range(self._num_nodes):
            if not self._src_pending[node]:
                continue
            if self._inject(node, cycle):
                self._flits_in_network += 1
                self._source_backlog -= 1
                progressed = True

        # Progress watchdog (identical contract to the scalar engine).
        if progressed:
            self._last_progress_cycle = cycle
        elif (
            self._flits_in_network > 0
            and cycle - self._last_progress_cycle > self._deadlock_window
        ):
            raise SimulationError(
                f"no flit movement for {self._deadlock_window} cycles at "
                f"cycle {cycle} with {self._flits_in_network} flits in "
                f"flight — routing deadlock with '{self.config.routing}'"
            )
        self.cycle += 1

    # ------------------------------------------------------------------
    # Idle-cycle skipping and the run loop
    # ------------------------------------------------------------------
    @property
    def _measure_start(self) -> int:
        return self.config.warmup_cycles

    @property
    def _measure_end(self) -> int:
        return self.config.warmup_cycles + self.config.measure_cycles

    def _skip_idle_cycles(self, limit: int) -> int:
        if (
            self._flits_in_network
            or self._source_backlog
            or self._flits_next
            or self._credits_next
            or self._sink_next
        ):
            return 0
        cycle = self.cycle
        if cycle < self._measure_start:
            boundary = self._measure_start
        elif cycle < self._measure_end:
            boundary = self._measure_end
        else:
            boundary = limit
        if boundary > limit:
            boundary = limit
        event = self.traffic.next_event_cycle(cycle, boundary)
        target = boundary if event is None else min(event, boundary)
        skipped = target - cycle
        if skipped <= 0:
            return 0
        self.cycle = target
        return skipped

    def run(self) -> SimulationResult:
        from repro.sim.engine import DEADLOCK_WINDOW

        self._deadlock_window = DEADLOCK_WINDOW
        limit = self.config.max_cycles
        measure_start = self._measure_start
        measure_end = self._measure_end
        while self.cycle < limit:
            cycle = self.cycle
            if cycle >= measure_end:
                self._sampling = False
                if self.measured_ejected == self.measured_created:
                    break
            elif cycle >= measure_start:
                self._sampling = True
            if self._skip_idle_cycles(limit):
                continue
            self.step()
        self.sim.cycle = self.cycle
        return SimulationResult(
            config=self.config,
            cycles_run=self.cycle,
            latency=self.latency,
            latency_by_flow=self.latency_by_flow,
            accepted_flits=self.window_accepted_flits,
            offered_flits=self.window_offered_flits,
            measured_created=self.measured_created,
            measured_ejected=self.measured_ejected,
            blocking=self.blocking,
            telemetry=None,
        )
