"""The flat-state vector simulation core.

State layout (``N`` nodes, ``V`` VCs, ``G = N * NUM_PORTS`` global
ports, ``g = node * NUM_PORTS + direction``, flat VC id ``i = g * V +
vc``):

* flits are packed integer tokens ``(packet_id << 2) | (is_head << 1) |
  is_tail``; packet metadata lives in one append-only list;
* every per-cycle quantity is *numpy-resident*: input/output FIFOs are
  fixed-size integer ring buffers (``[i, slot]`` / ``[g, slot]`` with
  head/length vectors), credits, drain flags, round-robin pointers and
  in-flight counters are flat arrays.  Where a scalar hot path still
  mutates a datum per event, the array is a zero-copy ``numpy`` view
  over a ``bytearray``/``array('q')`` buffer so single-element writes
  run at Python speed while batched stages read the same memory;
* the VC-state view consumed by the batched ``candidate_mask``
  (``busy``/``fresh``/``owner``) shares buffers the same way; the
  per-router pending set stays an insertion-ordered dict, matching the
  scalar router's iteration order.

Stage coverage: arrivals (1), link traversal (3), switch allocation
(5) and the source scan (6) are batched array passes; the sink drain
(2) and traffic generation stay scalar (they are cold).  Stage 4 (RC +
VA) keeps the three-sub-phase structure that preserves every
per-stream RNG draw order: (a) per router in active-set order, commit
output ports for new head packets (all ``select_output`` tie-break
draws, in pending order); (b) one network-wide ``candidate_mask`` call
for every route-cache miss; (c) per router in the same order, replay
the scalar separable allocator over the cached best-run request lists
(all allocator tie-break draws).

Stage 5 batches the switch: one :func:`switch_grants` call computes
every port's round-robin winner against the start-of-stage snapshot.
That is legal because the scalar per-port scan only *consumes*
resources (credits, accept capacity) as it walks the ports, and stage
5 draws no RNG: a snapshot winner differs from the scalar winner only
when one output port is granted beyond its accept capacity
``min(speedup, free fifo slots)`` in the same cycle.  Those nodes —
and only those — are replayed with the exact scalar scan
(:meth:`VectorEngine._switch_node_scalar`); all switch state is
node-local, so the ordering between the clean batch and the fallback
is unobservable.  Clean grants are applied in scalar visit order
(rotation rank within each node) so same-port FIFO appends and credit
returns stay sequence-identical.

Everything else — sink drain, idle-cycle skipping, the deadlock
watchdog, and the phase boundaries of :meth:`run` — is a direct
transliteration of the scalar ``skip`` engine over the flat state.
"""

from __future__ import annotations

from array import array
from collections import deque
from typing import TYPE_CHECKING

import numpy as np

from repro.exceptions import SimulationError
from repro.metrics.stats import LatencyStats
from repro.router.router import BlockingStats
from repro.routing.batch import VcStateArrays, switch_grants
from repro.routing.dbar import DbarFineRouting, DbarRouting
from repro.routing.dor import DorRouting
from repro.routing.footprint import FootprintRouting
from repro.routing.oddeven import OddEvenRouting
from repro.routing.requests import Priority
from repro.routing.xordet import XordetOverlay
from repro.sim.results import SimulationResult
from repro.topology.ports import NUM_PORTS, Direction

if TYPE_CHECKING:
    from repro.sim.engine import Simulator

_LOCAL = int(Direction.LOCAL)
_PRI_LOWEST = int(Priority.LOWEST)

# Input-VC state machine encoding (mirrors VcState).
_IDLE = 0
_ROUTING = 1
_ACTIVE = 2

def _base_kind(routing) -> str:
    """Classify the (base) algorithm for the select_output replica."""
    base = routing.base if isinstance(routing, XordetOverlay) else routing
    if isinstance(base, FootprintRouting):
        return "footprint"
    if isinstance(base, DbarFineRouting):
        return "dbar-fine"
    if isinstance(base, DbarRouting):
        return "dbar"
    if isinstance(base, OddEvenRouting):
        return "oddeven"
    if isinstance(base, DorRouting):
        return "dor"
    raise NotImplementedError(
        f"vector engine has no select_output replica for {routing!r}"
    )


class VectorEngine:
    """Runs one :class:`Simulator`'s workload on the flat SoA state."""

    def __init__(self, sim: "Simulator") -> None:
        self.sim = sim
        config = sim.config
        mesh = sim.mesh
        self.config = config
        self.mesh = mesh
        self.routing = sim.routing
        self.traffic = sim.traffic

        num_nodes = mesh.num_nodes
        num_vcs = config.num_vcs
        size = num_nodes * NUM_PORTS
        self._num_nodes = num_nodes
        self._num_vcs = num_vcs
        # Power-of-two VC counts let hot loops split flat ids with
        # shift/mask instead of divmod (-1 disables the fast path).
        self._vc_shift = (
            num_vcs.bit_length() - 1
            if num_vcs & (num_vcs - 1) == 0
            else -1
        )
        self._vc_mask_all = (1 << num_vcs) - 1
        self._escape_vc = 0 if self.routing.uses_escape else None
        self._atomic = self.routing.atomic_vc_reallocation
        self._kind = _base_kind(self.routing)
        # Only DBAR-fine port selection ever reads the adaptive credit
        # totals; skip maintaining them for every other algorithm.
        self._needs_adaptive_credits = self._kind == "dbar-fine"
        self._overlay = isinstance(self.routing, XordetOverlay)
        base = self.routing.base if self._overlay else self.routing
        self._oddeven = base if isinstance(base, OddEvenRouting) else None
        self._threshold = max(
            1, int(config.congestion_threshold * num_vcs)
        )
        self._vc_depth = config.vc_buffer_depth
        self._speedup = config.internal_speedup
        self._ofifo_depth = config.output_buffer_depth

        # Per-router RNG streams: the same cached stream objects the
        # scalar routers were built with, still untouched.
        self._rngs = [
            sim.rng.stream(f"router/{node}") for node in range(num_nodes)
        ]
        # randrange(n) for positive int n is one _randbelow(n) draw;
        # the cached bound methods skip randrange's validation preamble
        # without touching the stream.
        self._randbelow = [rng._randbelow for rng in self._rngs]

        # --- per-node structures -------------------------------------
        self._port_order = [
            [int(d) for d in mesh.router_ports(node)]
            for node in range(num_nodes)
        ]
        self._link_dest = sim._link_dest
        self._inflight = array("q", [0]) * num_nodes
        self._inflight_v = np.frombuffer(self._inflight, dtype=np.int64)
        self._credit_pending = bytearray(num_nodes)
        self._credit_pending_v = np.frombuffer(
            self._credit_pending, dtype=np.bool_
        )
        self._nports_np = np.fromiter(
            (len(order) for order in self._port_order),
            dtype=np.int64,
            count=num_nodes,
        )
        self._sa_off_np = np.fromiter(
            (
                node % len(order)
                for node, order in enumerate(self._port_order)
            ),
            dtype=np.int64,
            count=num_nodes,
        )
        # All rotations of each node's port scan order, so the scalar
        # fallback indexes a precomputed tuple instead of taking a
        # modulus per port per cycle.
        self._port_rot = [
            [
                tuple(order[(off + k) % len(order)] for k in range(len(order)))
                for off in range(len(order))
            ]
            for order in self._port_order
        ]
        self._pending: list[dict[int, None]] = [
            {} for _ in range(num_nodes)
        ]
        self._version_sum = [0] * num_nodes
        # Route-computation memos: candidate sets are pure functions of
        # (current, destination), so cache them as int tuples.
        self._min_dirs_int: dict[int, tuple[int, ...]] = {}
        self._dor_int: dict[int, int] = {}

        # --- per global-port (g) structures --------------------------
        self._fresh = [0] * size
        self._arb_ptr_np = np.zeros(size, dtype=np.int64)
        self._accepted_np = np.zeros(size, dtype=np.int64)
        # Reusable all-False scratch for the conflict-fallback filter.
        self._node_scratch = np.zeros(num_nodes, dtype=bool)
        # Incrementally maintained per-port views, mirroring the scalar
        # OutputPort's idle cache and footprint index: busy adaptive VC
        # count and per-destination footprint VC counts.
        self._busy_count = array("q", [0]) * size
        self._busy_count_v = np.frombuffer(self._busy_count, dtype=np.int64)
        self._fp_counts: list[dict[int, int]] = [{} for _ in range(size)]
        # Lazily built per-(src, dst) minimal-direction tables for the
        # batched footprint route computation (-1 second entry = single
        # candidate; LOCAL at the destination).
        self._md_tables: "tuple[np.ndarray, np.ndarray] | None" = None
        escape = self._escape_vc
        self._esc_g = [
            escape
            if escape is not None and g % NUM_PORTS != _LOCAL
            else -1
            for g in range(size)
        ]
        self._esc_np = np.fromiter(self._esc_g, dtype=np.int64, count=size)
        self._adaptive_int = [
            self._vc_mask_all & ~(1 << self._esc_g[g])
            if self._esc_g[g] >= 0
            else self._vc_mask_all
            for g in range(size)
        ]
        self._adaptive_n = [m.bit_count() for m in self._adaptive_int]
        self._adaptive_n_np = np.fromiter(
            self._adaptive_n, dtype=np.int64, count=size
        )
        depth = self._vc_depth
        self._credits_np = np.full(size * num_vcs, depth, dtype=np.int64)
        self._adaptive_credits_np = np.fromiter(
            (depth * self._adaptive_int[g].bit_count() for g in range(size)),
            dtype=np.int64,
            count=size,
        )
        # Index of each direction within its node's port scan order
        # (rotation rank base for the clean-grant application order).
        port_idx = np.zeros(size, dtype=np.int64)
        for node, order in enumerate(self._port_order):
            for k, d in enumerate(order):
                port_idx[node * NUM_PORTS + d] = k
        self._port_idx_np = port_idx
        # Link endpoint tables: for port g (used both as an output port
        # forwarding a flit and as an input port returning a credit),
        # the far end is input/output port (dest_node, dest_dir);
        # credit_g is its flat id, -1 for LOCAL and edge directions.
        dest_node = np.full(size, -1, dtype=np.int64)
        dest_dir = np.full(size, -1, dtype=np.int64)
        for node in range(num_nodes):
            row = self._link_dest[node]
            for d in range(NUM_PORTS):
                if d != _LOCAL and row[d] is not None:
                    neighbor, far_dir = row[d]
                    dest_node[node * NUM_PORTS + d] = neighbor
                    dest_dir[node * NUM_PORTS + d] = far_dir
        self._dest_node = dest_node
        self._dest_dir = dest_dir
        self._credit_g_np = np.where(
            dest_node >= 0, dest_node * NUM_PORTS + dest_dir, -1
        )
        self._credit_g = self._credit_g_np.tolist()
        # Output staging FIFOs as [g, slot] rings.
        ofifo_depth = self._ofifo_depth
        self._of_tok = np.zeros((size, ofifo_depth), dtype=np.int64)
        self._of_vc = np.zeros((size, ofifo_depth), dtype=np.int64)
        self._of_head = np.zeros(size, dtype=np.int64)
        self._of_len = np.zeros(size, dtype=np.int64)

        # --- per flat-VC (i = g * V + v) structures -------------------
        total_vcs = size * num_vcs
        # Input FIFOs as [i, slot] rings; head/length are array('q')
        # buffers so the scalar injection path mutates them at Python
        # speed while the batched stages use the numpy views.
        self._if_buf = np.zeros((total_vcs, depth), dtype=np.int64)
        self._if_head = array("q", [0]) * total_vcs
        self._if_head_v = np.frombuffer(self._if_head, dtype=np.int64)
        self._if_len = array("q", [0]) * total_vcs
        self._if_len_v = np.frombuffer(self._if_len, dtype=np.int64)
        self._istate = bytearray(total_vcs)
        self._istate_v = np.frombuffer(self._istate, dtype=np.uint8)
        # ready[i]: buffered flit whose packet holds an output VC
        # (_ACTIVE) — exactly the set the switch arbiter may grant.
        self._ready = bytearray(total_vcs)
        self._ready_v = np.frombuffer(self._ready, dtype=np.bool_)
        self._ready2 = self._ready_v.reshape(size, num_vcs)
        # Granted output VC as a flat id g_out * V + v_out (-1 none).
        self._out_flat = array("q", [-1]) * total_vcs
        self._out_flat_v = np.frombuffer(self._out_flat, dtype=np.int64)
        # Output-VC drain flags (tail sent, credits still returning).
        self._drain = bytearray(total_vcs)
        self._drain_v = np.frombuffer(self._drain, dtype=np.bool_)
        self._committed = [-1] * total_vcs
        self._cache_key = [-1] * total_vcs
        self._cache_reqs: list = [None] * total_vcs
        self._ivc_dst = [-1] * total_vcs
        self._ivc_src = [-1] * total_vcs

        # --- the candidate_mask view ---------------------------------
        # busy/fresh/owner share buffers with the scalar transition
        # paths: bytearray-backed bool views and an array('q')-backed
        # owner so _allocate_vc/_release_vc write single elements at
        # Python speed while candidate_mask reads dense arrays.
        self._busy_b = bytearray(total_vcs)
        self._fresh_b = bytearray(total_vcs)
        self._owner_b = array("q", [-1]) * total_vcs
        busy_np = np.frombuffer(self._busy_b, dtype=np.bool_).reshape(
            size, num_vcs
        )
        fresh_np = np.frombuffer(self._fresh_b, dtype=np.bool_).reshape(
            size, num_vcs
        )
        owner_np = np.frombuffer(self._owner_b, dtype=np.int64).reshape(
            size, num_vcs
        )
        adaptive = np.ones((size, num_vcs), dtype=bool)
        if escape is not None:
            non_local = np.arange(size) % NUM_PORTS != _LOCAL
            adaptive[non_local, escape] = False
        self.state = VcStateArrays(
            width=mesh.width,
            height=mesh.height,
            num_vcs=num_vcs,
            congestion_threshold=self._threshold,
            footprint_vc_limit=config.footprint_vc_limit,
            escape_vc=escape,
            busy=busy_np,
            fresh=fresh_np,
            owner=owner_np,
            adaptive=adaptive,
            topology=mesh,
        )
        self._fresh_np = fresh_np

        # --- sinks ----------------------------------------------------
        self._sink_bufs = [
            [deque() for _ in range(num_vcs)] for _ in range(num_nodes)
        ]
        self._sink_mask = [0] * num_nodes
        self._sink_ptr = [0] * num_nodes
        self._sink_budget = [0.0] * num_nodes
        self._sink_occupancy = [0] * num_nodes
        # Nodes with a non-empty sink buffer (stage 2 iterates only these).
        self._sink_active: set[int] = set()

        # --- sources --------------------------------------------------
        self._src_queue: list[deque] = [deque() for _ in range(num_nodes)]
        self._src_flits: list = [None] * num_nodes
        self._src_vc = [-1] * num_nodes
        self._src_rr = [0] * num_nodes
        self._src_pending = array("q", [0]) * num_nodes
        self._src_pending_v = np.frombuffer(
            self._src_pending, dtype=np.int64
        )

        # --- engine-level state ---------------------------------------
        self._packets: list = []
        # Inter-cycle pipelines: link flits travel as an array triple
        # (flat input VC id, receiving node, token); credits as per-SA
        # array chunks plus a scalar (g, vc) tuple list from the sink
        # drain and the conflict fallback.
        self._flits_arr: tuple | None = None
        self._credit_chunks: list = []
        self._credits_next: list = []
        self._sink_next: list = []
        self.cycle = 0
        self._last_progress_cycle = 0
        self._flits_in_network = 0
        self._source_backlog = 0
        self._sampling = False

        # --- statistics -----------------------------------------------
        self.latency = LatencyStats()
        self.latency_by_flow: dict[str, LatencyStats] = {}
        self.measured_created = 0
        self.measured_ejected = 0
        self.window_accepted_flits = 0
        self.window_offered_flits = 0
        self.blocking = BlockingStats()

    # ------------------------------------------------------------------
    # Output-port state transitions
    # ------------------------------------------------------------------
    def _allocate_vc(self, g: int, vc: int, dst: int) -> None:
        i = g * self._num_vcs + vc
        self._owner_b[i] = dst
        self._version_sum[g // NUM_PORTS] += 1
        if self._fresh[g] & (1 << vc):
            self._fresh[g] &= ~(1 << vc)
            self._fresh_b[i] = 0
        self._busy_b[i] = 1
        if vc != self._esc_g[g]:
            self._busy_count[g] += 1
            fp = self._fp_counts[g]
            fp[dst] = fp.get(dst, 0) + 1

    def _release_vc(self, g: int, vc: int) -> None:
        i = g * self._num_vcs + vc
        self._drain[i] = 0
        self._fresh[g] |= 1 << vc
        self._fresh_b[i] = 1
        self._busy_b[i] = 0
        # Owner deliberately left stale (fresh-footprint reclaim).
        self._version_sum[g // NUM_PORTS] += 1
        if vc != self._esc_g[g]:
            self._busy_count[g] -= 1
            fp = self._fp_counts[g]
            dst = self._owner_b[i]
            left = fp[dst] - 1
            if left:
                fp[dst] = left
            else:
                del fp[dst]

    # ------------------------------------------------------------------
    # Route computation replicas (same per-stream RNG draws as scalar)
    # ------------------------------------------------------------------
    def _select_output(self, node: int, i: int) -> int:
        dst = self._ivc_dst[i]
        if node == dst:
            return _LOCAL
        kind = self._kind
        key = node * self._num_nodes + dst
        if kind == "dor":
            d = self._dor_int.get(key, -1)
            if d < 0:
                d = int(self.mesh.dor_direction(node, dst))
                self._dor_int[key] = d
            return d
        if kind == "oddeven":
            candidates = self._oddeven.allowed_directions(
                self.mesh, node, dst, self._ivc_src[i]
            )
            if len(candidates) == 1:
                return int(candidates[0])
            return self._select_most_idle(
                node, [int(d) for d in candidates]
            )
        cands = self._min_dirs_int.get(key)
        if cands is None:
            cands = tuple(
                int(d) for d in self.mesh.minimal_directions(node, dst)
            )
            self._min_dirs_int[key] = cands
        if len(cands) == 1:
            return cands[0]
        if kind == "footprint":
            return self._select_footprint(node, dst, cands)
        return self._select_dbar(node, cands, kind == "dbar-fine")

    def _select_most_idle(self, node: int, candidates) -> int:
        base = node * NUM_PORTS
        adaptive_n = self._adaptive_n
        busy_count = self._busy_count
        best = -(1 << 30)
        tied = None
        for d in candidates:
            g = base + d
            idle = adaptive_n[g] - busy_count[g]
            if idle > best:
                best = idle
                tied = [d]
            elif idle == best:
                tied.append(d)
        if len(tied) == 1:
            return tied[0]
        return tied[self._randbelow[node](len(tied))]

    def _select_dbar(self, node: int, candidates, fine: bool) -> int:
        base = node * NUM_PORTS
        adaptive_n = self._adaptive_n
        busy_count = self._busy_count
        threshold = self._threshold
        best = None
        tied = None
        if fine:
            adaptive_credits = self._adaptive_credits_np
            for d in candidates:
                g = base + d
                idle = adaptive_n[g] - busy_count[g]
                score = (idle >= threshold, adaptive_credits[g], idle)
                if best is None or score > best:
                    best = score
                    tied = [d]
                elif score == best:
                    tied.append(d)
        else:
            for d in candidates:
                g = base + d
                score = adaptive_n[g] - busy_count[g] >= threshold
                if best is None or score > best:
                    best = score
                    tied = [d]
                elif score == best:
                    tied.append(d)
        if len(tied) == 1:
            return tied[0]
        return tied[self._randbelow[node](len(tied))]

    def _select_footprint(self, node: int, dst: int, candidates) -> int:
        base = node * NUM_PORTS
        adaptive_n = self._adaptive_n
        busy_count = self._busy_count
        best_idle = -(1 << 30)
        tied = None
        for d in candidates:
            g = base + d
            idle = adaptive_n[g] - busy_count[g]
            if idle > best_idle:
                best_idle = idle
                tied = [d]
            elif idle == best_idle:
                tied.append(d)
        if len(tied) > 1 and best_idle < self._threshold:
            fp_counts = self._fp_counts
            best_fp = -1
            narrowed = None
            for d in tied:
                count = fp_counts[base + d].get(dst, 0)
                if count > best_fp:
                    best_fp = count
                    narrowed = [d]
                elif count == best_fp:
                    narrowed.append(d)
            tied = narrowed
        if len(tied) == 1:
            return tied[0]
        return tied[self._randbelow[node](len(tied))]

    def _min_dir_tables(self) -> "tuple[np.ndarray, np.ndarray]":
        """Per-``src * n + dst`` minimal-direction pair, built lazily.

        ``d1`` is the first candidate of :meth:`Mesh2D.minimal_directions`
        (``LOCAL`` at the destination), ``d2`` the second or ``-1`` when
        the pair is aligned with one axis.
        """
        tables = self._md_tables
        if tables is None:
            n = self._num_nodes
            mesh = self.mesh
            d1 = np.empty(n * n, dtype=np.int64)
            d2 = np.full(n * n, -1, dtype=np.int64)
            for src in range(n):
                base = src * n
                for dst in range(n):
                    if src == dst:
                        d1[base + dst] = _LOCAL
                        continue
                    dirs = mesh.minimal_directions(src, dst)
                    d1[base + dst] = int(dirs[0])
                    if len(dirs) > 1:
                        d2[base + dst] = int(dirs[1])
            tables = self._md_tables = (d1, d2)
        return tables

    def _batch_rc_footprint(self, rc_i: list, rc_node: list) -> None:
        """Vectorized :meth:`_select_footprint` over this cycle's RC rows.

        Port-selection state (idle counts, footprint counts) is not
        mutated anywhere during stage 4 phase (a), so the idle-count
        comparison of every row can be batched; only rows whose
        candidates tie fall back to a python loop, which draws each
        node's tie-break in the original pending order — per-stream RNG
        draw sequences are untouched.
        """
        committed = self._committed
        count = len(rc_i)
        node_arr = np.fromiter(rc_node, dtype=np.int64, count=count)
        dst_arr = np.fromiter(
            map(self._ivc_dst.__getitem__, rc_i),
            dtype=np.int64,
            count=count,
        )
        d1t, d2t = self._min_dir_tables()
        key = node_arr * self._num_nodes + dst_arr
        d1 = d1t[key]
        d2 = d2t[key]
        res = d1
        dbl = np.flatnonzero(d2 >= 0)
        if dbl.size:
            gbase = node_arr[dbl] * NUM_PORTS
            free = self._adaptive_n_np - self._busy_count_v
            idle1 = free[gbase + d1[dbl]]
            idle2 = free[gbase + d2[dbl]]
            take2 = idle2 > idle1
            if take2.any():
                rows = dbl[take2]
                res[rows] = d2[rows]
            tie_mask = idle1 == idle2
            ties = dbl[tie_mask]
            if ties.size:
                threshold = self._threshold
                fp_counts = self._fp_counts
                randbelows = self._randbelow
                for row, a, b, idle, dst, node in zip(
                    ties.tolist(),
                    d1[ties].tolist(),
                    d2[ties].tolist(),
                    idle1[tie_mask].tolist(),
                    dst_arr[ties].tolist(),
                    node_arr[ties].tolist(),
                ):
                    if idle < threshold:
                        base = node * NUM_PORTS
                        fa = fp_counts[base + a].get(dst, 0)
                        fb = fp_counts[base + b].get(dst, 0)
                        if fa > fb:
                            continue
                        if fb > fa:
                            res[row] = b
                            continue
                    if randbelows[node](2):
                        res[row] = b
        for i, d in zip(rc_i, res.tolist()):
            committed[i] = d

    # ------------------------------------------------------------------
    # Stage 1: arrivals from the previous cycle's link traversals
    # ------------------------------------------------------------------
    def _stage_arrivals(self) -> None:
        num_vcs = self._num_vcs
        # Credits: one scatter-add over the concatenated batch.  The
        # scalar loop's release-on-fill check is order-commutative
        # (credits only grow within the stage), so the end-state check
        # ``draining and credits == depth`` finds exactly the releases
        # the sequential scan would, deduplicated for the same-VC
        # double-credit case.
        chunks = self._credit_chunks
        credit_tuples = self._credits_next
        if chunks or credit_tuples:
            self._credit_chunks = []
            self._credits_next = []
            parts_g = [chunk[0] for chunk in chunks]
            parts_v = [chunk[1] for chunk in chunks]
            if credit_tuples:
                count = len(credit_tuples)
                parts_g.append(
                    np.fromiter(
                        (t[0] for t in credit_tuples),
                        dtype=np.int64,
                        count=count,
                    )
                )
                parts_v.append(
                    np.fromiter(
                        (t[1] for t in credit_tuples),
                        dtype=np.int64,
                        count=count,
                    )
                )
            cg = parts_g[0] if len(parts_g) == 1 else np.concatenate(parts_g)
            cv = parts_v[0] if len(parts_v) == 1 else np.concatenate(parts_v)
            ci = cg * num_vcs + cv
            credits_np = self._credits_np
            # bincount-and-add beats ufunc.at by an order of magnitude
            # at these batch sizes.
            credits_np += np.bincount(ci, minlength=credits_np.shape[0])
            if self._needs_adaptive_credits:
                non_escape = cv != self._esc_np[cg]
                adaptive_credits = self._adaptive_credits_np
                adaptive_credits += np.bincount(
                    cg[non_escape], minlength=adaptive_credits.shape[0]
                )
            if self._atomic:
                # Only atomic algorithms drain: elsewhere the tail send
                # released the VC already and this scan is dead weight.
                rel = ci[
                    self._drain_v[ci] & (credits_np[ci] == self._vc_depth)
                ]
                if rel.size:
                    credit_pending = self._credit_pending
                    drain = self._drain
                    fresh = self._fresh
                    fresh_b = self._fresh_b
                    busy_b = self._busy_b
                    owner_b = self._owner_b
                    version_sum = self._version_sum
                    esc_g = self._esc_g
                    busy_count = self._busy_count
                    fp_counts = self._fp_counts
                    seen = set()
                    for i in rel.tolist():
                        if i in seen:
                            continue
                        seen.add(i)
                        g, vc = divmod(i, num_vcs)
                        node = g // NUM_PORTS
                        # Inlined _release_vc.
                        drain[i] = 0
                        fresh[g] |= 1 << vc
                        fresh_b[i] = 1
                        busy_b[i] = 0
                        version_sum[node] += 1
                        if vc != esc_g[g]:
                            busy_count[g] -= 1
                            fp = fp_counts[g]
                            dst = owner_b[i]
                            left = fp[dst] - 1
                            if left:
                                fp[dst] = left
                            else:
                                del fp[dst]
                        credit_pending[node] = True
        # Flits: scatter into the input rings (every link delivers to a
        # distinct input VC).  Only head flits landing in idle VCs need
        # the scalar state-machine transition; array order is sender
        # (node, port) ascending, preserving the scalar pending-dict
        # insertion order.
        arr = self._flits_arr
        if arr is not None:
            self._flits_arr = None
            ri, rnode, toks = arr
            if_len = self._if_len_v
            pos = self._if_head_v[ri] + if_len[ri]
            pos[pos >= self._vc_depth] -= self._vc_depth
            self._if_buf[ri, pos] = toks
            if_len[ri] += 1
            self._inflight_v += np.bincount(
                rnode, minlength=self._num_nodes
            )
            st = self._istate_v[ri]
            self._ready_v[ri[st == _ACTIVE]] = True
            idle = np.flatnonzero(st == _IDLE)
            if idle.size:
                istate = self._istate
                packets = self._packets
                pending = self._pending
                ivc_dst = self._ivc_dst
                ivc_src = self._ivc_src
                for i, node, token in zip(
                    ri[idle].tolist(),
                    rnode[idle].tolist(),
                    toks[idle].tolist(),
                ):
                    istate[i] = _ROUTING
                    packet = packets[token >> 2]
                    ivc_dst[i] = packet.dst
                    ivc_src[i] = packet.src
                    pending[node][i] = None
        sink_active = self._sink_active
        for node, vc, token in self._sink_next:
            self._sink_bufs[node][vc].append(token)
            self._sink_occupancy[node] += 1
            self._sink_mask[node] |= 1 << vc
            sink_active.add(node)
        self._sink_next = []

    def _receive_flit_local(self, node: int, vc: int, token: int) -> None:
        """Injection-side flit delivery into the LOCAL input port."""
        i = (node * NUM_PORTS + _LOCAL) * self._num_vcs + vc
        pos = self._if_head[i] + self._if_len[i]
        if pos >= self._vc_depth:
            pos -= self._vc_depth
        self._if_buf[i, pos] = token
        self._if_len[i] += 1
        self._inflight[node] += 1
        state = self._istate[i]
        if state == _IDLE:
            self._istate[i] = _ROUTING
            packet = self._packets[token >> 2]
            self._ivc_dst[i] = packet.dst
            self._ivc_src[i] = packet.src
            self._pending[node][i] = None
        elif state == _ACTIVE:
            self._ready[i] = 1

    # ------------------------------------------------------------------
    # Stage 2: sink drain at the ejection bandwidth
    # ------------------------------------------------------------------
    def _stage_sink(self, cycle: int) -> bool:
        sink_active = self._sink_active
        if not sink_active:
            return False
        progressed = False
        num_vcs = self._num_vcs
        credits_next = self._credits_next
        ejection_rate = self.config.ejection_rate
        for node in sorted(sink_active):
            budget = min(self._sink_budget[node] + ejection_rate, 4.0)
            mask = self._sink_mask[node]
            bufs = self._sink_bufs[node]
            credit_g = node * NUM_PORTS + _LOCAL
            while budget >= 1.0:
                if not mask:
                    break
                pointer = self._sink_ptr[node]
                vc = -1
                for offset in range(num_vcs):
                    candidate = pointer + offset
                    if candidate >= num_vcs:
                        candidate -= num_vcs
                    if (mask >> candidate) & 1:
                        vc = candidate
                        break
                self._sink_ptr[node] = vc + 1 if vc + 1 < num_vcs else 0
                token = bufs[vc].popleft()
                if not bufs[vc]:
                    mask &= ~(1 << vc)
                credits_next.append((credit_g, vc))
                progressed = True
                self._flits_in_network -= 1
                self._sink_occupancy[node] -= 1
                budget -= 1.0
                if token & 1:
                    packet = self._packets[token >> 2]
                    packet.ejection_time = cycle
                    self._packet_ejected(packet, cycle)
            self._sink_mask[node] = mask
            self._sink_budget[node] = budget
            if self._sink_occupancy[node] == 0:
                sink_active.discard(node)
        return progressed

    # ------------------------------------------------------------------
    # Stage 3: link traversal — one flit per output port onto its link
    # ------------------------------------------------------------------
    def _stage_link(self) -> bool:
        of_len = self._of_len
        gs = np.flatnonzero(of_len)
        if gs.size == 0:
            return False
        heads = self._of_head[gs]
        toks = self._of_tok[gs, heads]
        vcs = self._of_vc[gs, heads]
        heads += 1
        heads[heads == self._ofifo_depth] = 0
        self._of_head[gs] = heads
        of_len[gs] -= 1
        nodes = gs // NUM_PORTS
        self._inflight_v -= np.bincount(
            nodes, minlength=self._num_nodes
        )
        local = gs % NUM_PORTS == _LOCAL
        if local.any():
            self._sink_next.extend(
                zip(
                    nodes[local].tolist(),
                    vcs[local].tolist(),
                    toks[local].tolist(),
                )
            )
        link = ~local
        if link.any():
            lg = gs[link]
            receiver = self._dest_node[lg]
            ri = (
                receiver * NUM_PORTS + self._dest_dir[lg]
            ) * self._num_vcs + vcs[link]
            self._flits_arr = (ri, receiver, toks[link])
        return True

    # ------------------------------------------------------------------
    # Stage 4: RC + batched request generation + allocator replay
    # ------------------------------------------------------------------
    def _route_and_allocate(self, active: list, active_arr) -> None:
        num_vcs = self._num_vcs
        pending = self._pending
        cache_key = self._cache_key
        cache_reqs = self._cache_reqs
        committed = self._committed

        self._credit_pending_v[:] = False

        # Phase (a): RC commitments, in active-set order — identical
        # per-router work order (and therefore per-stream RNG order) to
        # the scalar stage-4 loop.  Only the flat ivc index is
        # collected; currents, destinations and committed ports are
        # gathered vectorized afterwards (none of them change again
        # before phase (b): the fresh clears — the only other version
        # bumps — are deferred to the end of the stage, legal because a
        # router's requests only ever read its own ports' state).
        has_flits = (self._inflight_v[active_arr] > 0).tolist()
        alloc_nodes: list[int] = []
        batch_i: list[int] = []
        batch_vsum: list[int] = []
        version_sum = self._version_sum
        # Footprint's port selection reads only state that is constant
        # throughout phase (a), so its RC rows can be collected and
        # resolved in one batch after the scan (tie-break draws keep
        # their per-node order inside _batch_rc_footprint).
        batch_rc = self._kind == "footprint"
        rc_i: list[int] = []
        rc_node: list[int] = []
        for node, flits in zip(active, has_flits):
            if not flits:
                continue
            pend = pending[node]
            if not pend:
                continue
            vsum = version_sum[node]
            for i in pend:
                if cache_key[i] != vsum:
                    if committed[i] < 0:
                        if batch_rc:
                            rc_i.append(i)
                            rc_node.append(node)
                        else:
                            committed[i] = self._select_output(node, i)
                    batch_i.append(i)
                    batch_vsum.append(vsum)
            alloc_nodes.append(node)
        if rc_i:
            self._batch_rc_footprint(rc_i, rc_node)

        # Phase (b): one whole-network candidate_mask call for every
        # route-cache miss.  Only the *best run* of each request list —
        # the maximal-priority requests, in ascending-VC order with the
        # escape request ordered last — is extracted: every emitted
        # request is grantable at emission (the algorithms only request
        # grantable VCs, and the cache version invalidates on every
        # grantability change), so the scalar allocator's stage-1 scan
        # provably reduces to picking from exactly this run.  Because
        # the escape request is strictly lowest-priority and every
        # non-escape request sits on the committed port, a best run
        # never spans directions — so on the C-order (direction-major)
        # flattening of ``[d, v]`` it is exactly the row's max-valued
        # columns in ascending-column = ascending-VC order, and the
        # flat column doubles as the allocator's ``d * V + v`` key.
        if batch_i:
            count = len(batch_i)
            arr_i = np.fromiter(batch_i, dtype=np.int64, count=count)
            cur_arr = arr_i // (NUM_PORTS * num_vcs)
            dst_arr = np.fromiter(
                map(self._ivc_dst.__getitem__, batch_i),
                dtype=np.int64,
                count=count,
            )
            com_arr = np.fromiter(
                map(committed.__getitem__, batch_i),
                dtype=np.int64,
                count=count,
            )
            port_pri, esc_cols = self.routing.candidate_pri(
                self.state, cur_arr, dst_arr, com_arr
            )
            best = port_pri.max(axis=1)
            sel = port_pri == best[:, None]
            sel &= (best >= 0)[:, None]
            counts = sel.sum(axis=1)
            rows_nz, v_nz = np.nonzero(sel)
            col_vals = com_arr[rows_nz] * num_vcs + v_nz
            if esc_cols is not None:
                # Rows whose only request is the escape VC: splice their
                # single LOWEST-priority column into the row-major run
                # stream (such rows contributed no ``sel`` entries).
                esc_only = (best < 0) & (esc_cols >= 0)
                if esc_only.any():
                    er = np.flatnonzero(esc_only)
                    rows_nz = np.concatenate((rows_nz, er))
                    col_vals = np.concatenate((col_vals, esc_cols[er]))
                    col_vals = col_vals[
                        np.argsort(rows_nz, kind="stable")
                    ]
                    counts[esc_only] = 1
                    best[esc_only] = _PRI_LOWEST
            cols = col_vals.tolist()
            ends = np.cumsum(counts).tolist()
            start = 0
            for i, vsum, p, end in zip(
                batch_i, batch_vsum, best.tolist(), ends
            ):
                cache_key[i] = vsum
                cache_reqs[i] = (
                    (p, cols, start, end) if end > start else None
                )
                start = end

        # Phase (c): exact separable-allocator replay per router, in the
        # same order; each router's allocator draws follow its own RC
        # draws on its private stream, as in the scalar engine.  Stage 1
        # degenerates to a draw over the cached best run (see above).
        istate = self._istate
        ready = self._ready
        out_flat = self._out_flat
        ivc_dst = self._ivc_dst
        owner_b = self._owner_b
        fresh = self._fresh
        fresh_b = self._fresh_b
        busy_b = self._busy_b
        esc_g = self._esc_g
        busy_count = self._busy_count
        fp_counts = self._fp_counts
        randbelows = self._randbelow
        sampling = self._sampling
        vc_shift = self._vc_shift
        vc_low_mask = num_vcs - 1
        for node in alloc_nodes:
            pend = pending[node]
            base = node * NUM_PORTS
            # ``Random.randrange(n)`` for a positive int is exactly one
            # ``_randbelow(n)`` call, so drawing through the cached
            # bound method keeps the stream bit-identical while
            # skipping the argument-validation preamble.
            randbelow = randbelows[node]
            # Contenders per output VC: stored as a bare ``(p, i)``
            # tuple for the overwhelmingly common single-contender
            # case, promoted to a list only on collision.
            selections: dict = {}
            for i in pend:
                entry = cache_reqs[i]
                if entry is None:
                    continue
                best_priority, cols, start, end = entry
                k = (
                    start
                    if end - start == 1
                    else start + randbelow(end - start)
                )
                key = cols[k]
                prev = selections.get(key)
                if prev is None:
                    selections[key] = (best_priority, i)
                elif type(prev) is list:
                    prev.append((best_priority, i))
                else:
                    selections[key] = [prev, (best_priority, i)]
            for key, contenders in selections.items():
                if type(contenders) is tuple:
                    winner = contenders[1]
                else:
                    top = -1
                    finalists = None
                    for p, i in contenders:
                        if p > top:
                            top = p
                            finalists = [i]
                        elif p == top:
                            finalists.append(i)
                    winner = (
                        finalists[0]
                        if len(finalists) == 1
                        else finalists[randbelow(len(finalists))]
                    )
                if vc_shift >= 0:
                    d = key >> vc_shift
                    v = key & vc_low_mask
                else:
                    d, v = divmod(key, num_vcs)
                g = base + d
                iflat = g * num_vcs + v
                # Inlined _allocate_vc (node known: no g // NUM_PORTS).
                dst = ivc_dst[winner]
                owner_b[iflat] = dst
                version_sum[node] += 1
                bits = fresh[g]
                if bits & (1 << v):
                    fresh[g] = bits & ~(1 << v)
                    fresh_b[iflat] = 0
                busy_b[iflat] = 1
                if v != esc_g[g]:
                    busy_count[g] += 1
                    fp = fp_counts[g]
                    fp[dst] = fp.get(dst, 0) + 1
                istate[winner] = _ACTIVE
                ready[winner] = 1
                out_flat[winner] = iflat
                committed[winner] = -1
                cache_reqs[winner] = None
                cache_key[winner] = -1
                del pend[winner]
            if sampling and pend:
                self._sample_blocked(node, pend)

        # Deferred fresh clears: the scalar engine clears a router's
        # fresh bits at the end of its own stage-4 turn; since requests
        # only read their own router's ports, batching every clear
        # after phase (c) observes the identical state.  Every port
        # with fresh bits belongs to an active node (releases happen in
        # stage 1 or last cycle's stage 5, both of which leave the node
        # active), so the whole-network scan clears exactly the ports
        # the scalar per-router turns would.
        cleared = np.flatnonzero(self._fresh_np.any(axis=1))
        if cleared.size:
            self._fresh_np[cleared] = False
            fresh = self._fresh
            for g in cleared.tolist():
                fresh[g] = 0
                version_sum[g // NUM_PORTS] += 1

    def _sample_blocked(self, node: int, pend: dict) -> None:
        blocking = self.blocking
        base = node * NUM_PORTS
        for i in pend:
            d = self._committed[i]
            if d < 0:
                continue
            g = base + d
            blocking.blocking_events += 1
            blocking.busy_vc_samples += self._busy_count[g]
            blocking.footprint_vc_samples += self._fp_counts[g].get(
                self._ivc_dst[i], 0
            )

    # ------------------------------------------------------------------
    # Stage 5: switch allocation / switch traversal
    # ------------------------------------------------------------------
    def _finish_tail(
        self, node: int, i: int, out: int, out_g: int, out_vc: int
    ) -> None:
        """Tail sent: release the output VC and recycle the input VC."""
        if self._atomic:
            # Keep the VC reserved (owner visible as a footprint) until
            # all credits return; the send just consumed one, so the
            # drain can never complete here.
            self._drain[out] = 1
        else:
            # Inlined _release_vc (node known: no g // NUM_PORTS).
            self._drain[out] = 0
            self._fresh[out_g] |= 1 << out_vc
            self._fresh_b[out] = 1
            self._busy_b[out] = 0
            # Owner deliberately left stale (fresh-footprint reclaim).
            self._version_sum[node] += 1
            if out_vc != self._esc_g[out_g]:
                self._busy_count[out_g] -= 1
                fp = self._fp_counts[out_g]
                dst = self._owner_b[out]
                left = fp[dst] - 1
                if left:
                    fp[dst] = left
                else:
                    del fp[dst]
        istate = self._istate
        istate[i] = _IDLE
        self._ready[i] = 0
        self._out_flat[i] = -1
        self._committed[i] = -1
        self._cache_reqs[i] = None
        self._cache_key[i] = -1
        if self._if_len[i]:
            # Next packet's head is already queued behind the tail —
            # straight back to ROUTING.
            istate[i] = _ROUTING
            token = int(self._if_buf[i, self._if_head[i]])
            packet = self._packets[token >> 2]
            self._ivc_dst[i] = packet.dst
            self._ivc_src[i] = packet.src
            self._pending[node][i] = None

    def _switch_node_scalar(self, node: int) -> bool:
        """Exact scalar SA/ST scan for one node (conflict fallback).

        Replays the per-port pointer scan against live state, consuming
        credits/accept capacity port by port — the semantics the
        batched snapshot cannot express when one output port is granted
        beyond its capacity in a single cycle.
        """
        num_vcs = self._num_vcs
        base = node * NUM_PORTS
        ready = self._ready
        out_flat = self._out_flat
        credits = self._credits_np
        accepted = self._accepted_np
        of_head = self._of_head
        of_len = self._of_len
        if_head = self._if_head
        if_len = self._if_len
        arb_ptr = self._arb_ptr_np
        esc_g = self._esc_g
        speedup = self._speedup
        ofifo_depth = self._ofifo_depth
        vc_depth = self._vc_depth
        credit_g = self._credit_g
        credits_next = self._credits_next
        progressed = False
        offset = int(self._sa_off_np[node])
        for d in self._port_rot[node][offset]:
            g = base + d
            i0 = g * num_vcs
            pointer = int(arb_ptr[g])
            winner = -1
            for k in range(num_vcs):
                v = pointer + k
                if v >= num_vcs:
                    v -= num_vcs
                i = i0 + v
                if not ready[i]:
                    continue
                out = out_flat[i]
                out_g = out // num_vcs
                if (
                    credits[out] > 0
                    and accepted[out_g] < speedup
                    and of_len[out_g] < ofifo_depth
                ):
                    winner = v
                    break
            if winner < 0:
                continue
            arb_ptr[g] = winner + 1 if winner + 1 < num_vcs else 0
            i = i0 + winner
            out = out_flat[i]
            out_g, out_vc = divmod(out, num_vcs)
            head = if_head[i]
            token = int(self._if_buf[i, head])
            head += 1
            if_head[i] = 0 if head == vc_depth else head
            left = if_len[i] - 1
            if_len[i] = left
            if not left:
                ready[i] = 0
            credits[out] -= 1
            if self._needs_adaptive_credits and out_vc != esc_g[out_g]:
                self._adaptive_credits_np[out_g] -= 1
            pos = of_head[out_g] + of_len[out_g]
            if pos >= ofifo_depth:
                pos -= ofifo_depth
            self._of_tok[out_g, pos] = token
            self._of_vc[out_g, pos] = out_vc
            of_len[out_g] += 1
            accepted[out_g] += 1
            if token & 1:
                self._finish_tail(node, i, out, out_g, out_vc)
            progressed = True
            upstream = credit_g[g]
            if upstream >= 0:
                credits_next.append((upstream, winner))
        return progressed

    def _stage_switch(self, active_arr) -> bool:
        inflight_v = self._inflight_v
        rot = active_arr[inflight_v[active_arr] > 0]
        if rot.size == 0:
            return False
        # Arbiter port-offset rotation: scalar routers rotate once per
        # cycle they are visited with flits in flight.
        sa_off = self._sa_off_np
        offsets = sa_off[rot] + 1
        offsets[offsets == self._nports_np[rot]] = 0
        sa_off[rot] = offsets

        ready2 = self._ready2
        if not ready2.any():
            return False
        num_vcs = self._num_vcs
        of_len = self._of_len
        ofifo_depth = self._ofifo_depth
        # accepted is uniformly zero here (speedup >= 1), so the accept
        # capacity reduces to free staging-fifo slots.
        port_open = of_len < ofifo_depth
        gs, vs = switch_grants(
            ready2,
            self._out_flat_v,
            self._credits_np,
            port_open,
            self._arb_ptr_np,
        )
        if gs.size == 0:
            return False
        iw = gs * num_vcs + vs
        out_w = self._out_flat_v[iw]
        out_gs = out_w // num_vcs

        # Conflict detection: the snapshot lets a multi-granted output
        # port exceed its accept capacity min(speedup, free fifo
        # slots); those nodes are replayed with the scalar scan.  All
        # switch state is node-local, so clean batch vs fallback
        # ordering is unobservable.
        group_size = np.bincount(out_gs, minlength=of_len.shape[0])
        capacity = np.minimum(self._speedup, ofifo_depth - of_len)
        bad_ports = np.flatnonzero(group_size > capacity)
        fallback_nodes: list[int] = []
        if bad_ports.size:
            bad_nodes = bad_ports // NUM_PORTS
            fallback_nodes = sorted(set(bad_nodes.tolist()))
            bad_mask = self._node_scratch
            bad_mask[bad_nodes] = True
            keep = ~bad_mask[gs // NUM_PORTS]
            bad_mask[bad_nodes] = False
            gs = gs[keep]
            vs = vs[keep]
            iw = iw[keep]
            out_w = out_w[keep]
            out_gs = out_gs[keep]

        progressed = False
        if gs.size:
            progressed = True
            # Apply clean grants in the scalar visit order — rotation
            # rank within each node — so same-port staging appends and
            # the upstream credit sequence are order-identical.
            node_w = gs // NUM_PORTS
            rank = (
                self._port_idx_np[gs] - sa_off[node_w]
            ) % self._nports_np[node_w]
            order = np.argsort(node_w * NUM_PORTS + rank)
            gs = gs[order]
            vs = vs[order]
            iw = iw[order]
            out_w = out_w[order]
            out_gs = out_gs[order]
            node_w = node_w[order]
            out_vs = out_w - out_gs * num_vcs
            # Input ring pops (winners are distinct input VCs).
            if_head = self._if_head_v
            if_len = self._if_len_v
            heads = if_head[iw]
            toks = self._if_buf[iw, heads]
            heads += 1
            heads[heads == self._vc_depth] = 0
            if_head[iw] = heads
            lens = if_len[iw] - 1
            if_len[iw] = lens
            self._ready_v[iw] = lens > 0
            # Credit spend (winners hold distinct output VCs) and
            # round-robin pointer advance.
            self._credits_np[out_w] -= 1
            if self._needs_adaptive_credits:
                non_escape = out_vs != self._esc_np[out_gs]
                adaptive_credits = self._adaptive_credits_np
                adaptive_credits -= np.bincount(
                    out_gs[non_escape], minlength=adaptive_credits.shape[0]
                )
            next_ptr = vs + 1
            next_ptr[next_ptr == num_vcs] = 0
            self._arb_ptr_np[gs] = next_ptr
            # Output staging appends.  Multi-grant ports (within
            # capacity) append in the rank order established above;
            # accepted counters are left at zero — nothing reads them
            # after this point (fallback nodes received no clean
            # grants: output ports always belong to the input's node).
            pos = self._of_head[out_gs] + of_len[out_gs]
            if (group_size[out_gs] > 1).any():
                out_gs_l = out_gs.tolist()
                pos_l = pos.tolist()
                seen: dict[int, int] = {}
                for j, go in enumerate(out_gs_l):
                    occupied = seen.get(go, 0)
                    if occupied:
                        pos_l[j] += occupied
                    seen[go] = occupied + 1
                pos = np.asarray(pos_l, dtype=np.int64)
            pos[pos >= ofifo_depth] -= ofifo_depth
            self._of_tok[out_gs, pos] = toks
            self._of_vc[out_gs, pos] = out_vs
            if fallback_nodes:
                of_len += np.bincount(out_gs, minlength=of_len.shape[0])
            else:
                # No winners were dropped, so the pre-filter per-port
                # grant counts are exactly the staging increments.
                of_len += group_size
            # Upstream credit returns, batched for next cycle's stage 1.
            upstream = self._credit_g_np[gs]
            has_link = upstream >= 0
            if has_link.any():
                self._credit_chunks.append(
                    (upstream[has_link], vs[has_link])
                )
            # Tail flits need the scalar release transition.
            tails = np.flatnonzero(toks & 1)
            if tails.size:
                if tails.size == toks.shape[0]:
                    # Single-flit packets: every grant carries a tail —
                    # _finish_tail inlined with hoisted locals.
                    atomic = self._atomic
                    drain = self._drain
                    istate = self._istate
                    ready = self._ready
                    out_flat = self._out_flat
                    committed = self._committed
                    cache_reqs = self._cache_reqs
                    cache_key = self._cache_key
                    if_len_a = self._if_len
                    if_head_a = self._if_head
                    if_buf = self._if_buf
                    packets = self._packets
                    ivc_dst = self._ivc_dst
                    ivc_src = self._ivc_src
                    pending = self._pending
                    fresh = self._fresh
                    fresh_b = self._fresh_b
                    busy_b = self._busy_b
                    owner_b = self._owner_b
                    version_sum = self._version_sum
                    esc_g = self._esc_g
                    busy_count = self._busy_count
                    fp_counts = self._fp_counts
                    for nd, ii, oo, og, ov in zip(
                        node_w.tolist(),
                        iw.tolist(),
                        out_w.tolist(),
                        out_gs.tolist(),
                        out_vs.tolist(),
                    ):
                        if atomic:
                            drain[oo] = 1
                        else:
                            drain[oo] = 0
                            fresh[og] |= 1 << ov
                            fresh_b[oo] = 1
                            busy_b[oo] = 0
                            version_sum[nd] += 1
                            if ov != esc_g[og]:
                                busy_count[og] -= 1
                                fp = fp_counts[og]
                                pdst = owner_b[oo]
                                left = fp[pdst] - 1
                                if left:
                                    fp[pdst] = left
                                else:
                                    del fp[pdst]
                        istate[ii] = _IDLE
                        ready[ii] = 0
                        out_flat[ii] = -1
                        committed[ii] = -1
                        cache_reqs[ii] = None
                        cache_key[ii] = -1
                        if if_len_a[ii]:
                            istate[ii] = _ROUTING
                            token = int(if_buf[ii, if_head_a[ii]])
                            packet = packets[token >> 2]
                            ivc_dst[ii] = packet.dst
                            ivc_src[ii] = packet.src
                            pending[nd][ii] = None
                else:
                    node_l = node_w.tolist()
                    iw_l = iw.tolist()
                    out_l = out_w.tolist()
                    out_g_l = out_gs.tolist()
                    out_v_l = out_vs.tolist()
                    for j in tails.tolist():
                        self._finish_tail(
                            node_l[j],
                            iw_l[j],
                            out_l[j],
                            out_g_l[j],
                            out_v_l[j],
                        )
        if fallback_nodes:
            # The scalar scan consumes per-port accept capacity through
            # ``_accepted_np``; reset just the replayed nodes' slots
            # (nothing else reads the array).
            accepted = self._accepted_np
            for node in fallback_nodes:
                base = node * NUM_PORTS
                accepted[base : base + NUM_PORTS] = 0
                if self._switch_node_scalar(node):
                    progressed = True
        return progressed

    # ------------------------------------------------------------------
    # Stage 6: traffic generation and injection
    # ------------------------------------------------------------------
    def _inject(self, node: int, cycle: int) -> bool:
        flits = self._src_flits[node]
        num_vcs = self._num_vcs
        g = node * NUM_PORTS + _LOCAL
        if flits is None:
            queue = self._src_queue[node]
            if not queue:
                return False
            vc = -1
            rr = self._src_rr[node]
            istate = self._istate
            if_len = self._if_len
            for offset in range(num_vcs):
                v = rr + offset
                if v >= num_vcs:
                    v -= num_vcs
                i = g * num_vcs + v
                if istate[i] == _IDLE and not if_len[i]:
                    self._src_rr[node] = v + 1 if v + 1 < num_vcs else 0
                    vc = v
                    break
            if vc < 0:
                return False
            packet = queue.popleft()
            packet.injection_time = cycle
            pid = len(self._packets)
            self._packets.append(packet)
            size = packet.size
            head = (pid << 2) | 2
            if size == 1:
                flits = deque((head | 1,))
            else:
                flits = deque([head] + [pid << 2] * (size - 2))
                flits.append((pid << 2) | 1)
            self._src_flits[node] = flits
            self._src_vc[node] = vc
        vc = self._src_vc[node]
        if self._if_len[g * num_vcs + vc] >= self._vc_depth:
            return False
        token = flits.popleft()
        self._src_pending[node] -= 1
        self._receive_flit_local(node, vc, token)
        if not flits:
            self._src_flits[node] = None
        return True

    def _stage_traffic(self, cycle: int) -> bool:
        in_window = self._measure_start <= cycle < self._measure_end
        src_queue = self._src_queue
        src_pending = self._src_pending
        for packet in self.traffic.generate(cycle, in_window):
            if packet.measured:
                self.measured_created += 1
            if in_window:
                self.window_offered_flits += packet.size
            src_queue[packet.src].append(packet)
            src_pending[packet.src] += packet.size
            self._source_backlog += packet.size
        progressed = False
        if self._source_backlog:
            # Source scan as an array compare: only nodes with queued
            # flits are visited, in the scalar ascending-node order.
            for node in np.flatnonzero(self._src_pending_v).tolist():
                if self._inject(node, cycle):
                    self._flits_in_network += 1
                    self._source_backlog -= 1
                    progressed = True
        return progressed

    def _packet_ejected(self, packet, cycle: int) -> None:
        if self._measure_start <= cycle < self._measure_end:
            self.window_accepted_flits += packet.size
        if packet.measured:
            self.measured_ejected += 1
            self.latency.add(packet.latency)
            flow_stats = self.latency_by_flow.setdefault(
                packet.flow, LatencyStats()
            )
            flow_stats.add(packet.latency)

    # ------------------------------------------------------------------
    # One simulated cycle
    # ------------------------------------------------------------------
    #: ``(json_key, method_name)`` of each pipeline stage, in step()
    #: order — the hook points for :meth:`enable_stage_times`.
    STAGE_METHODS = (
        ("arrivals", "_stage_arrivals"),
        ("sink", "_stage_sink"),
        ("link", "_stage_link"),
        ("route_alloc", "_route_and_allocate"),
        ("switch", "_stage_switch"),
        ("traffic", "_stage_traffic"),
    )

    def enable_stage_times(self) -> "dict[str, float]":
        """Wrap each stage method with a wall-time accumulator.

        Returns the live ``{stage: seconds}`` dict (updated in place as
        the simulation runs).  Adds two timer calls per stage per cycle,
        so it is off by default and only enabled by the benchmark
        harness's ``--stage-times``.
        """
        from time import perf_counter

        times: dict[str, float] = {}
        for key, method_name in self.STAGE_METHODS:
            times[key] = 0.0
            inner = getattr(self, method_name)

            def timed(*args, _inner=inner, _key=key, **kwargs):
                t0 = perf_counter()
                result = _inner(*args, **kwargs)
                times[_key] += perf_counter() - t0
                return result

            setattr(self, method_name, timed)
        self.stage_times = times
        return times

    def step(self) -> None:
        cycle = self.cycle

        # 1. Arrivals from the previous cycle's link traversals.
        self._stage_arrivals()

        active_arr = np.flatnonzero(
            (self._inflight_v > 0) | self._credit_pending_v
        )
        active = active_arr.tolist()

        # 2. Sink drain at the ejection bandwidth.
        progressed = self._stage_sink(cycle)

        # 3. Link traversal: one flit per output port onto its link.
        if self._stage_link():
            progressed = True

        # 4. Route computation + VC allocation (batched; see above).
        self._route_and_allocate(active, active_arr)

        # 5. Switch allocation/traversal; upstream credit returns.
        if self._stage_switch(active_arr):
            progressed = True

        # 6. Traffic generation and injection.
        if self._stage_traffic(cycle):
            progressed = True

        # Progress watchdog (identical contract to the scalar engine).
        if progressed:
            self._last_progress_cycle = cycle
        elif (
            self._flits_in_network > 0
            and cycle - self._last_progress_cycle > self._deadlock_window
        ):
            raise SimulationError(
                f"no flit movement for {self._deadlock_window} cycles at "
                f"cycle {cycle} with {self._flits_in_network} flits in "
                f"flight — routing deadlock with '{self.config.routing}'"
            )
        self.cycle += 1

    # ------------------------------------------------------------------
    # Idle-cycle skipping and the run loop
    # ------------------------------------------------------------------
    @property
    def _measure_start(self) -> int:
        return self.config.warmup_cycles

    @property
    def _measure_end(self) -> int:
        return self.config.warmup_cycles + self.config.measure_cycles

    def _skip_idle_cycles(self, limit: int) -> int:
        if (
            self._flits_in_network
            or self._source_backlog
            or self._flits_arr is not None
            or self._credit_chunks
            or self._credits_next
            or self._sink_next
        ):
            return 0
        cycle = self.cycle
        if cycle < self._measure_start:
            boundary = self._measure_start
        elif cycle < self._measure_end:
            boundary = self._measure_end
        else:
            boundary = limit
        if boundary > limit:
            boundary = limit
        event = self.traffic.next_event_cycle(cycle, boundary)
        target = boundary if event is None else min(event, boundary)
        skipped = target - cycle
        if skipped <= 0:
            return 0
        self.cycle = target
        return skipped

    def run(self) -> SimulationResult:
        from repro.sim.engine import DEADLOCK_WINDOW

        self._deadlock_window = DEADLOCK_WINDOW
        limit = self.config.max_cycles
        measure_start = self._measure_start
        measure_end = self._measure_end
        while self.cycle < limit:
            cycle = self.cycle
            if cycle >= measure_end:
                self._sampling = False
                if self.measured_ejected == self.measured_created:
                    break
            elif cycle >= measure_start:
                self._sampling = True
            if self._skip_idle_cycles(limit):
                continue
            self.step()
        self.sim.cycle = self.cycle
        return SimulationResult(
            config=self.config,
            cycles_run=self.cycle,
            latency=self.latency,
            latency_by_flow=self.latency_by_flow,
            accepted_flits=self.window_accepted_flits,
            offered_flits=self.window_offered_flits,
            measured_created=self.measured_created,
            measured_ejected=self.measured_ejected,
            blocking=self.blocking,
            telemetry=None,
        )
