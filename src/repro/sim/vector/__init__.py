"""The structure-of-arrays vector engine (``engine_mode="vector"``).

Instead of per-object method dispatch (Router/OutputPort/InputVc/Flit
instances), the vector core keeps all per-VC state in flat arrays and
bitmasks indexed by global port id ``g = node * NUM_PORTS + direction``,
represents flits as packed integer tokens, and computes every cycle's
routing requests for the whole network in one batched
:meth:`~repro.routing.base.RoutingAlgorithm.candidate_mask` call.

The engine is a *transliteration*, not a re-design: every stage, every
tie-break, and every RNG draw happens in the same per-stream order as
the scalar ``skip`` engine, so supported configurations produce
bit-identical result signatures (the differential sweep in
:mod:`repro.validate.differential` enforces this).  Configurations the
core does not cover degrade to ``skip`` with a logged one-line notice
— see :func:`vector_unsupported_reason`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.sim.config import SimulationConfig
    from repro.validate.config import ValidationConfig


def vector_unsupported_reason(
    config: "SimulationConfig",
    validation: "ValidationConfig | None" = None,
) -> str | None:
    """Why ``config`` cannot run on the vector core, or ``None`` if it can.

    The vector core covers all nine routing algorithms, every traffic
    generator, multi-flit packets, and arbitrary mesh sizes.  It does
    not model per-object observability hooks: fault schedules, telemetry
    (including flit tracing and channel-utilization counting), and the
    invariant checkers all inspect scalar router internals that the flat
    state deliberately does not materialize.  Such runs fall back to the
    bit-identical ``skip`` engine instead of erroring.

    Each reason names the configuration field that forced the fallback
    (``config.faults: active fault schedule``) so a notice in a log or
    a differential-sweep report points straight at the knob to change.
    """
    if config.topology != "mesh":
        return (
            f"config.topology: {config.topology} topology "
            f"(vector core is mesh-only)"
        )
    if config.faults is not None and config.faults.events:
        return "config.faults: active fault schedule"
    telemetry = config.telemetry
    if telemetry is not None and telemetry.active:
        return "config.telemetry: active telemetry/tracing"
    if config.track_utilization:
        return "config.track_utilization: channel-utilization tracking"
    if validation is not None and validation.active:
        return "validation: invariant validation hooks"
    return None
