"""Traffic generation: synthetic patterns, hotspot flows, and traces."""

from repro.traffic.patterns import (
    PATTERNS,
    LookaheadTraffic,
    SyntheticTraffic,
    TrafficGenerator,
    pattern_destination,
)
from repro.traffic.hotspot import HotspotTraffic, default_hotspot_flows
from repro.traffic.trace import TraceEvent, TraceTraffic
from repro.traffic.factory import create_traffic

__all__ = [
    "PATTERNS",
    "LookaheadTraffic",
    "SyntheticTraffic",
    "TrafficGenerator",
    "pattern_destination",
    "HotspotTraffic",
    "default_hotspot_flows",
    "TraceEvent",
    "TraceTraffic",
    "create_traffic",
]
