"""Traffic-generator factory used by the simulation engine."""

from __future__ import annotations

import random

from repro.exceptions import TrafficError
from repro.sim.config import SimulationConfig
from repro.topology.base import Topology
from repro.traffic.hotspot import HotspotTraffic
from repro.traffic.patterns import PATTERNS, SyntheticTraffic, TrafficGenerator
from repro.traffic.trace import TraceTraffic


def create_traffic(
    config: SimulationConfig, mesh: Topology, rng: random.Random
) -> TrafficGenerator:
    """Instantiate the traffic generator named by ``config.traffic``."""
    name = config.traffic.strip().lower()
    if name in PATTERNS:
        return SyntheticTraffic(name, config, mesh, rng)
    if name == "hotspot":
        return HotspotTraffic(config, mesh, rng)
    if name == "trace":
        if config.trace is None:
            raise TrafficError("traffic 'trace' requires config.trace events")
        return TraceTraffic(list(config.trace), config, mesh, rng)
    raise TrafficError(
        f"unknown traffic '{config.traffic}'; "
        f"available: {sorted(PATTERNS) + ['hotspot', 'trace']}"
    )
