"""Hotspot traffic (Table 3 of the paper).

Eight persistent flows oversubscribe four endpoint nodes (two flows per
hotspot, as memory-controller traffic would), while every non-participating
node injects uniform-random *background* traffic at a constant rate
(0.3 in the paper's Fig. 9 experiment).  Only the background traffic's
latency is measured — the point of the experiment is how much the hotspot
congestion tree degrades unrelated traffic through HoL blocking.
"""

from __future__ import annotations

import random

from repro.exceptions import TrafficError
from repro.router.flit import Packet
from repro.sim.config import SimulationConfig
from repro.topology.base import Topology
from repro.traffic.injection import bernoulli_generates, sample_packet_size
from repro.traffic.patterns import LookaheadTraffic, pattern_destination


def default_hotspot_flows(mesh: Topology) -> list[tuple[int, int]]:
    """The paper's Table 3 flows, scaled to the mesh size.

    For the 8x8 mesh the flows are exactly Table 3:
    ``n0->n63, n32->n63, n7->n56, n39->n56, n63->n0, n31->n0, n56->n7,
    n24->n7`` — four corner hotspots, each fed by the opposite corner and a
    mid-edge node.  For other sizes the same corner/mid-edge geometry is
    generated from coordinates.
    """
    w, h = mesh.width, mesh.height
    corner_nw = mesh.node_at(0, 0)
    corner_ne = mesh.node_at(w - 1, 0)
    corner_sw = mesh.node_at(0, h - 1)
    corner_se = mesh.node_at(w - 1, h - 1)
    # Mid-west/east edge feeders; for the 8x8 mesh these are exactly the
    # paper's n32 (0,4), n39 (7,4), n31 (7,3) and n24 (0,3).
    edge_w_lo = mesh.node_at(0, h // 2)
    edge_e_lo = mesh.node_at(w - 1, h // 2)
    edge_e_hi = mesh.node_at(w - 1, h // 2 - 1)
    edge_w_hi = mesh.node_at(0, h // 2 - 1)
    # Two flows per hotspot destination.
    return [
        (corner_nw, corner_se),
        (edge_w_lo, corner_se),
        (corner_ne, corner_sw),
        (edge_e_lo, corner_sw),
        (corner_se, corner_nw),
        (edge_e_hi, corner_nw),
        (corner_sw, corner_ne),
        (edge_w_hi, corner_ne),
    ]


class HotspotTraffic(LookaheadTraffic):
    """Persistent hotspot flows plus uniform-random background traffic."""

    def __init__(
        self,
        config: SimulationConfig,
        mesh: Topology,
        rng: random.Random,
        flows: list[tuple[int, int]] | None = None,
    ) -> None:
        super().__init__()
        self.config = config
        self.mesh = mesh
        self.rng = rng
        self.flows = flows if flows is not None else default_hotspot_flows(mesh)
        for src, dst in self.flows:
            if src == dst:
                raise TrafficError(f"degenerate hotspot flow {src}->{dst}")
            mesh.coords(src)
            mesh.coords(dst)
        participants = {s for s, _ in self.flows} | {d for _, d in self.flows}
        self.background_nodes = [
            n for n in range(mesh.num_nodes) if n not in participants
        ]
        self._flow_sources: dict[int, list[int]] = {}
        for src, dst in self.flows:
            self._flow_sources.setdefault(src, []).append(dst)

    def _generate_packets(self, cycle: int) -> list[Packet]:
        packets: list[Packet] = []
        mean_size = self.config.mean_packet_size

        # Hotspot flows: each (src, dst) pair injects at hotspot_rate.
        for src, dsts in self._flow_sources.items():
            for dst in dsts:
                if bernoulli_generates(
                    self.config.hotspot_rate, mean_size, self.rng
                ):
                    packets.append(
                        Packet(
                            src=src,
                            dst=dst,
                            size=sample_packet_size(self.config, self.rng),
                            creation_time=cycle,
                            flow="hotspot",
                            # Hotspot packets never count toward latency:
                            # the paper measures background traffic only.
                            measured=False,
                        )
                    )

        # Background: uniform random from non-participating nodes.
        for src in self.background_nodes:
            if not bernoulli_generates(
                self.config.background_rate, mean_size, self.rng
            ):
                continue
            dst = pattern_destination("uniform", self.mesh, src, self.rng)
            if dst is None:
                continue
            packets.append(
                Packet(
                    src=src,
                    dst=dst,
                    size=sample_packet_size(self.config, self.rng),
                    creation_time=cycle,
                    flow="background",
                    measured=True,
                )
            )
        return packets

    def next_event_cycle(self, now: int, horizon: int) -> int | None:
        if (
            self.config.hotspot_rate <= 0.0
            and self.config.background_rate <= 0.0
            and self._buffer_cycle < now
        ):
            return None
        return super().next_event_cycle(now, horizon)
