"""Synthetic PARSEC-like trace generation (Netrace stand-in).

The paper drives Fig. 10 with PARSEC 2.0 network traces captured by
Netrace on a 64-node CMP.  Those traces are not redistributable and cannot
be regenerated offline, so this module synthesizes traces with the traffic
*structure* that the paper's analysis depends on:

* **CMP request/reply structure** — every node is a core tile; a subset of
  nodes act as shared-cache/memory-controller tiles.  Cores issue requests
  (single-flit control packets) to home tiles selected by address
  interleaving plus a per-application hotspot skew; home tiles answer with
  data replies (multi-flit).  This produces the destination reuse and
  endpoint pressure that footprint VCs act on.
* **Markov-modulated burstiness** — each core alternates between a
  *compute* phase (rare packets) and a *memory* phase (bursts), with
  per-application phase intensities.  PARSEC traffic is bursty at exactly
  this granularity.
* **Per-application calibration** — the relative traffic intensity and the
  hotspot skew are set per workload so that the *ordering* of the paper's
  Fig. 10(b) observations holds: ``bodytrack`` is light traffic with high
  baseline blocking purity, ``fluidanimate`` is the heaviest with low
  purity (the paper measures ~32% vs ~10%), and the rest fall in between.

This substitution is documented in DESIGN.md; Fig. 10's reproduction
measures the same three quantities as the paper (pairwise latency
difference, purity of blocking, HoL-blocking degree) on these traces.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.exceptions import TrafficError
from repro.topology.base import Topology
from repro.traffic.trace import TraceEvent


@dataclass(frozen=True)
class WorkloadProfile:
    """Traffic parameters of one synthetic PARSEC-like workload.

    Attributes
    ----------
    name:
        Workload label.
    intensity:
        Mean request rate per core per cycle while in the memory phase.
    memory_phase_fraction:
        Long-run fraction of time a core spends in the memory phase.
    burst_length:
        Mean length (cycles) of a memory phase (geometric).
    hotspot_skew:
        Probability that a request goes to the workload's few *hot* home
        tiles instead of an address-interleaved one; drives endpoint
        congestion and low blocking purity.
    reply_size:
        Data-reply packet size in flits (cache-line sized).
    """

    name: str
    intensity: float
    memory_phase_fraction: float
    burst_length: float
    hotspot_skew: float
    reply_size: int = 5

    def __post_init__(self) -> None:
        if not (0.0 < self.intensity <= 1.0):
            raise TrafficError(f"{self.name}: intensity out of range")
        if not (0.0 < self.memory_phase_fraction <= 1.0):
            raise TrafficError(f"{self.name}: phase fraction out of range")
        if self.burst_length < 1.0:
            raise TrafficError(f"{self.name}: burst length must be >= 1")
        if not (0.0 <= self.hotspot_skew < 1.0):
            raise TrafficError(f"{self.name}: hotspot skew out of range")


#: Calibrated profiles for the PARSEC 2.0 workloads of Fig. 10.  Relative
#: intensities follow the paper's narrative: bodytrack lightest/purest,
#: fluidanimate heaviest with the most HoL blocking; x264 and canneal
#: moderate, dedup/ferret in between.
PARSEC_PROFILES: dict[str, WorkloadProfile] = {
    "blackscholes": WorkloadProfile(
        "blackscholes", 0.18, 0.25, 40.0, 0.30
    ),
    "bodytrack": WorkloadProfile("bodytrack", 0.12, 0.20, 30.0, 0.10),
    "canneal": WorkloadProfile("canneal", 0.30, 0.45, 60.0, 0.35),
    "dedup": WorkloadProfile("dedup", 0.25, 0.35, 50.0, 0.30),
    "ferret": WorkloadProfile("ferret", 0.25, 0.40, 50.0, 0.25),
    "fluidanimate": WorkloadProfile("fluidanimate", 0.40, 0.55, 80.0, 0.55),
    "vips": WorkloadProfile("vips", 0.22, 0.35, 45.0, 0.25),
    "x264": WorkloadProfile("x264", 0.28, 0.40, 55.0, 0.30),
}


def home_tiles(mesh: Topology) -> list[int]:
    """Shared-cache/memory-controller tiles: one column on each edge.

    Placing the home tiles on the east and west edges mirrors common CMP
    floorplans (memory controllers at the die edge) and creates the
    many-to-few traffic the paper identifies as the endpoint-congestion
    source ("similar to hotspot traffic that might occur with memory
    traffic to memory controllers").
    """
    tiles = [mesh.node_at(0, y) for y in range(mesh.height)]
    tiles += [mesh.node_at(mesh.width - 1, y) for y in range(mesh.height)]
    return tiles


def generate_parsec_trace(
    workload: str,
    mesh: Topology,
    cycles: int,
    seed: int = 1,
    scale: float = 1.0,
) -> list[TraceEvent]:
    """Generate a synthetic trace for one PARSEC-like workload.

    Parameters
    ----------
    workload:
        A key of :data:`PARSEC_PROFILES`.
    mesh:
        Target network (homes are derived from its edges).
    cycles:
        Trace length in cycles.
    seed:
        Determinism seed.
    scale:
        Global intensity multiplier (used when running two workloads
        simultaneously, as the paper does "to stress the network").
    """
    profile = PARSEC_PROFILES.get(workload)
    if profile is None:
        raise TrafficError(
            f"unknown PARSEC workload '{workload}'; "
            f"available: {sorted(PARSEC_PROFILES)}"
        )
    rng = random.Random((seed * 0x5DEECE66D + hash(workload)) % 2**63)
    homes = home_tiles(mesh)
    hot_homes = _hot_homes(mesh, rng)
    cores = [n for n in range(mesh.num_nodes)]

    # Markov phase machine per core.
    p_enter = profile.memory_phase_fraction / profile.burst_length
    p_leave = (1.0 - profile.memory_phase_fraction) / profile.burst_length
    in_memory_phase = [rng.random() < profile.memory_phase_fraction for _ in cores]

    events: list[TraceEvent] = []
    flow = f"parsec/{workload}"
    for cycle in range(cycles):
        for core in cores:
            if in_memory_phase[core]:
                if rng.random() < p_leave:
                    in_memory_phase[core] = False
                    continue
                if rng.random() >= profile.intensity * scale:
                    continue
                home = _pick_home(
                    core, homes, hot_homes, profile.hotspot_skew, rng
                )
                if home == core:
                    continue
                # Request to the home tile...
                events.append(TraceEvent(cycle, core, home, 1, flow))
                # ...and the data reply after the home's service latency.
                reply_cycle = cycle + rng.randint(8, 20)
                events.append(
                    TraceEvent(
                        reply_cycle, home, core, profile.reply_size, flow
                    )
                )
            elif rng.random() < p_enter:
                in_memory_phase[core] = True
    events.sort(key=lambda e: e.cycle)
    return events


def _hot_homes(mesh: Topology, rng: random.Random) -> list[int]:
    """The few home tiles that absorb the workload's skewed traffic."""
    homes = home_tiles(mesh)
    count = max(2, len(homes) // 4)
    return rng.sample(homes, count)


def _pick_home(
    core: int,
    homes: list[int],
    hot: list[int],
    skew: float,
    rng: random.Random,
) -> int:
    if rng.random() < skew:
        return hot[rng.randrange(len(hot))]
    # Address-interleaved home selection: uniform over home tiles.
    return homes[rng.randrange(len(homes))]


def merge_traces(*traces: list[TraceEvent]) -> list[TraceEvent]:
    """Merge several traces into one time-ordered trace.

    Used to run two workloads simultaneously, as the paper's Fig. 10
    does to stress the network.
    """
    merged = [e for t in traces for e in t]
    merged.sort(key=lambda e: e.cycle)
    return merged
