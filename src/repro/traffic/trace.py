"""Trace-driven traffic.

A trace is an ordered list of :class:`TraceEvent` records — the Netrace
interface boiled down to what the paper's network-only evaluation uses:
injection cycle, source, destination, and packet size.  Traces can be
loaded from a simple whitespace-separated text format or generated
synthetically (:mod:`repro.traffic.parsecgen`).

The injector replays events by cycle.  Events whose cycle has passed are
injected immediately (the trace clock never stalls the simulation clock,
matching Netrace's non-dependency replay mode used for network stress
tests).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from pathlib import Path

from repro.exceptions import TrafficError
from repro.router.flit import Packet
from repro.sim.config import SimulationConfig
from repro.topology.base import Topology
from repro.traffic.patterns import TrafficGenerator


@dataclass(frozen=True)
class TraceEvent:
    """One packet injection in a trace."""

    cycle: int
    src: int
    dst: int
    size: int = 1
    flow: str = "trace"

    def __post_init__(self) -> None:
        if self.cycle < 0 or self.size < 1:
            raise TrafficError(f"invalid trace event {self}")


def load_trace(path: str | Path) -> list[TraceEvent]:
    """Load a trace from text: ``cycle src dst [size [flow]]`` per line.

    Blank lines and ``#`` comments are skipped.
    """
    events: list[TraceEvent] = []
    for lineno, line in enumerate(Path(path).read_text().splitlines(), 1):
        stripped = line.split("#", 1)[0].strip()
        if not stripped:
            continue
        fields = stripped.split()
        if len(fields) < 3:
            raise TrafficError(f"{path}:{lineno}: need 'cycle src dst'")
        cycle, src, dst = (int(f) for f in fields[:3])
        size = int(fields[3]) if len(fields) > 3 else 1
        flow = fields[4] if len(fields) > 4 else "trace"
        events.append(TraceEvent(cycle, src, dst, size, flow))
    events.sort(key=lambda e: e.cycle)
    return events


def save_trace(events: list[TraceEvent], path: str | Path) -> None:
    """Write a trace in the text format read by :func:`load_trace`."""
    lines = [
        f"{e.cycle} {e.src} {e.dst} {e.size} {e.flow}" for e in events
    ]
    Path(path).write_text("\n".join(lines) + "\n")


class TraceTraffic(TrafficGenerator):
    """Replays a pre-sorted trace into the network."""

    def __init__(
        self,
        events: list[TraceEvent],
        config: SimulationConfig,
        mesh: Topology,
        rng: random.Random,
    ) -> None:
        self.config = config
        self.mesh = mesh
        for e in events:
            if not (0 <= e.src < mesh.num_nodes and 0 <= e.dst < mesh.num_nodes):
                raise TrafficError(f"trace event {e} outside {mesh}")
            if e.src == e.dst:
                raise TrafficError(f"self-addressed trace event {e}")
        self.events = sorted(events, key=lambda e: e.cycle)
        self._next = 0

    @property
    def remaining(self) -> int:
        return len(self.events) - self._next

    def generate(self, cycle: int, measured: bool) -> list[Packet]:
        packets: list[Packet] = []
        while self._next < len(self.events) and (
            self.events[self._next].cycle <= cycle
        ):
            e = self.events[self._next]
            self._next += 1
            packets.append(
                Packet(
                    src=e.src,
                    dst=e.dst,
                    size=e.size,
                    creation_time=cycle,
                    flow=e.flow,
                    measured=measured,
                )
            )
        return packets

    def next_event_cycle(self, now: int, horizon: int) -> int | None:
        # Traces consume no RNG, so the next event is just the next
        # not-yet-replayed record (late events inject immediately).
        if self._next >= len(self.events):
            return None
        return max(now, self.events[self._next].cycle)
