"""Synthetic traffic patterns.

The paper evaluates uniform random, transpose, and shuffle (plus hotspot,
which lives in :mod:`repro.traffic.hotspot`).  A few additional standard
patterns (bit-complement, bit-reverse, tornado, neighbor) are provided for
completeness; they follow the definitions in Dally & Towles.

Pattern conventions:

* **uniform** — destination drawn uniformly from all other nodes.
* **transpose** — node ``(x, y)`` sends to ``(y, x)`` (requires a square
  mesh); nodes on the diagonal are silent.
* **shuffle** — destination id is the source id rotated left by one bit
  (perfect shuffle, requires a power-of-two node count); fixed points are
  silent.
* **bitcomp** — destination id is the bitwise complement of the source id.
* **bitrev** — destination id is the bit-reversed source id.
* **tornado** — ``(x, y)`` sends to ``(x + ceil(k/2) - 1 mod k, y)``.
* **neighbor** — ``(x, y)`` sends to ``(x + 1 mod k, y)``.
"""

from __future__ import annotations

import abc
import random
from typing import Callable

from repro.exceptions import TrafficError
from repro.router.flit import Packet
from repro.sim.config import SimulationConfig
from repro.topology.mesh import Mesh2D
from repro.traffic.injection import bernoulli_generates, sample_packet_size


class TrafficGenerator(abc.ABC):
    """Produces packets for every cycle of the simulation."""

    @abc.abstractmethod
    def generate(self, cycle: int, measured: bool) -> list[Packet]:
        """Packets created at ``cycle``; ``measured`` marks the window."""


# ----------------------------------------------------------------------
# Destination functions
# ----------------------------------------------------------------------
def _num_bits(n: int) -> int:
    bits = (n - 1).bit_length()
    if 1 << bits != n:
        raise TrafficError(f"pattern requires power-of-two node count, got {n}")
    return bits


def _uniform(mesh: Mesh2D, src: int, rng: random.Random) -> int | None:
    dst = rng.randrange(mesh.num_nodes - 1)
    return dst if dst < src else dst + 1


def _transpose(mesh: Mesh2D, src: int, rng: random.Random) -> int | None:
    if mesh.width != mesh.height:
        raise TrafficError("transpose requires a square mesh")
    x, y = mesh.coords(src)
    dst = mesh.node_at(y, x)
    return None if dst == src else dst


def _shuffle(mesh: Mesh2D, src: int, rng: random.Random) -> int | None:
    bits = _num_bits(mesh.num_nodes)
    dst = ((src << 1) | (src >> (bits - 1))) & (mesh.num_nodes - 1)
    return None if dst == src else dst


def _bitcomp(mesh: Mesh2D, src: int, rng: random.Random) -> int | None:
    _num_bits(mesh.num_nodes)
    dst = ~src & (mesh.num_nodes - 1)
    return None if dst == src else dst


def _bitrev(mesh: Mesh2D, src: int, rng: random.Random) -> int | None:
    bits = _num_bits(mesh.num_nodes)
    dst = 0
    for i in range(bits):
        if src & (1 << i):
            dst |= 1 << (bits - 1 - i)
    return None if dst == src else dst


def _tornado(mesh: Mesh2D, src: int, rng: random.Random) -> int | None:
    x, y = mesh.coords(src)
    shift = (mesh.width + 1) // 2 - 1
    dst = mesh.node_at((x + shift) % mesh.width, y)
    return None if dst == src else dst


def _neighbor(mesh: Mesh2D, src: int, rng: random.Random) -> int | None:
    x, y = mesh.coords(src)
    dst = mesh.node_at((x + 1) % mesh.width, y)
    return None if dst == src else dst


DestinationFn = Callable[[Mesh2D, int, random.Random], "int | None"]

#: Registry of destination functions by pattern name.
PATTERNS: dict[str, DestinationFn] = {
    "uniform": _uniform,
    "transpose": _transpose,
    "shuffle": _shuffle,
    "bitcomp": _bitcomp,
    "bitrev": _bitrev,
    "tornado": _tornado,
    "neighbor": _neighbor,
}


def pattern_destination(
    name: str, mesh: Mesh2D, src: int, rng: random.Random
) -> int | None:
    """Destination of ``src`` under pattern ``name`` (``None`` = silent)."""
    fn = PATTERNS.get(name)
    if fn is None:
        raise TrafficError(
            f"unknown traffic pattern '{name}'; available: {sorted(PATTERNS)}"
        )
    return fn(mesh, src, rng)


# ----------------------------------------------------------------------
class SyntheticTraffic(TrafficGenerator):
    """Bernoulli-injected synthetic traffic under a named pattern."""

    def __init__(
        self,
        pattern: str,
        config: SimulationConfig,
        mesh: Mesh2D,
        rng: random.Random,
    ) -> None:
        if pattern not in PATTERNS:
            raise TrafficError(
                f"unknown traffic pattern '{pattern}'; "
                f"available: {sorted(PATTERNS)}"
            )
        self.pattern = pattern
        self.config = config
        self.mesh = mesh
        self.rng = rng
        # Validate the pattern against the mesh once, up front.
        for src in range(mesh.num_nodes):
            pattern_destination(pattern, mesh, src, rng)

    def generate(self, cycle: int, measured: bool) -> list[Packet]:
        packets: list[Packet] = []
        mean_size = self.config.mean_packet_size
        rate = self.config.injection_rate
        for src in range(self.mesh.num_nodes):
            if not bernoulli_generates(rate, mean_size, self.rng):
                continue
            dst = pattern_destination(self.pattern, self.mesh, src, self.rng)
            if dst is None:
                continue
            packets.append(
                Packet(
                    src=src,
                    dst=dst,
                    size=sample_packet_size(self.config, self.rng),
                    creation_time=cycle,
                    flow=self.pattern,
                    measured=measured,
                )
            )
        return packets
