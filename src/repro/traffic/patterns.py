"""Synthetic traffic patterns.

The paper evaluates uniform random, transpose, and shuffle (plus hotspot,
which lives in :mod:`repro.traffic.hotspot`).  A few additional standard
patterns (bit-complement, bit-reverse, tornado, neighbor) are provided for
completeness; they follow the definitions in Dally & Towles.

Pattern conventions:

* **uniform** — destination drawn uniformly from all other nodes.
* **transpose** — node ``(x, y)`` sends to ``(y, x)`` (requires a square
  mesh); nodes on the diagonal are silent.
* **shuffle** — destination id is the source id rotated left by one bit
  (perfect shuffle, requires a power-of-two node count); fixed points are
  silent.
* **bitcomp** — destination id is the bitwise complement of the source id.
* **bitrev** — destination id is the bit-reversed source id.
* **tornado** — ``(x, y)`` sends to ``(x + ceil(k/2) - 1 mod k, y)``.
* **neighbor** — ``(x, y)`` sends to ``(x + 1 mod k, y)``.
"""

from __future__ import annotations

import abc
import random
from typing import Callable

from repro.exceptions import TrafficError
from repro.router.flit import Packet
from repro.sim.config import SimulationConfig
from repro.topology.base import Topology
from repro.traffic.injection import bernoulli_generates, sample_packet_size


class TrafficGenerator(abc.ABC):
    """Produces packets for every cycle of the simulation."""

    @abc.abstractmethod
    def generate(self, cycle: int, measured: bool) -> list[Packet]:
        """Packets created at ``cycle``; ``measured`` marks the window."""

    def next_event_cycle(self, now: int, horizon: int) -> int | None:
        """Earliest cycle ``>= now`` at which :meth:`generate` may produce
        packets.

        Used by the engine's idle-cycle skipping: when the network is
        completely quiescent, the engine advances its clock directly to
        the returned cycle instead of stepping through empty cycles.

        Contract:

        * ``None`` means *provably no packets before* ``horizon``; the
          engine may jump straight to ``horizon``.
        * A returned cycle may lie at or beyond ``horizon``; the engine
          clamps.  Returning ``now`` is always safe (it disables
          skipping for this generator), and is the default so that
          custom generators that know nothing about skipping keep their
          exact cycle-by-cycle behaviour.
        * Implementations that consume RNG state per simulated cycle
          (Bernoulli injection) must consume *exactly* the draws that
          per-cycle :meth:`generate` calls would have made for the
          scanned cycles, so that skipping stays bit-identical to
          stepping.  :class:`LookaheadTraffic` provides that machinery.
        """
        return now


class LookaheadTraffic(TrafficGenerator):
    """RNG-consuming generator with buffered lookahead for idle skipping.

    Subclasses implement :meth:`_generate_packets` — the per-cycle
    generation including every RNG draw — and mark packets that are
    *eligible* for measurement with ``measured=True`` (ineligible flows,
    e.g. hotspot foreground traffic, with ``False``).  The base class
    then serves both entry points from that single implementation:

    * :meth:`generate` runs (or replays) one cycle and downgrades
      ``measured`` to ``False`` outside the measurement window;
    * :meth:`next_event_cycle` scans forward cycle by cycle, consuming
      the RNG exactly as per-cycle generation would, and buffers the
      first non-empty cycle's packets so the subsequent
      :meth:`generate` call returns them unchanged.

    ``_scanned_to`` tracks the first cycle whose RNG draws have *not*
    been consumed yet; replayed cycles below it return the buffer (or
    nothing) without touching the RNG, which keeps results bit-identical
    whether the engine steps or skips.
    """

    def __init__(self) -> None:
        self._buffer: list[Packet] = []
        self._buffer_cycle = -1
        self._scanned_to = 0

    @abc.abstractmethod
    def _generate_packets(self, cycle: int) -> list[Packet]:
        """One cycle of generation; ``measured`` marks *eligibility*."""

    def generate(self, cycle: int, measured: bool) -> list[Packet]:
        if cycle < self._scanned_to:
            # The lookahead already consumed this cycle's RNG draws.
            if cycle != self._buffer_cycle:
                return []
            packets = self._buffer
            self._buffer = []
            self._buffer_cycle = -1
        else:
            packets = self._generate_packets(cycle)
            self._scanned_to = cycle + 1
        if not measured:
            for packet in packets:
                packet.measured = False
        return packets

    def next_event_cycle(self, now: int, horizon: int) -> int | None:
        if self._buffer_cycle >= now:
            return self._buffer_cycle
        cycle = max(now, self._scanned_to)
        while cycle < horizon:
            packets = self._generate_packets(cycle)
            self._scanned_to = cycle + 1
            if packets:
                self._buffer = packets
                self._buffer_cycle = cycle
                return cycle
            cycle += 1
        return None


# ----------------------------------------------------------------------
# Destination functions
# ----------------------------------------------------------------------
def _num_bits(n: int) -> int:
    bits = (n - 1).bit_length()
    if 1 << bits != n:
        raise TrafficError(f"pattern requires power-of-two node count, got {n}")
    return bits


def _uniform(mesh: Topology, src: int, rng: random.Random) -> int | None:
    dst = rng.randrange(mesh.num_nodes - 1)
    return dst if dst < src else dst + 1


def _transpose(mesh: Topology, src: int, rng: random.Random) -> int | None:
    if mesh.width != mesh.height:
        raise TrafficError("transpose requires a square mesh")
    x, y = mesh.coords(src)
    dst = mesh.node_at(y, x)
    return None if dst == src else dst


def _shuffle(mesh: Topology, src: int, rng: random.Random) -> int | None:
    bits = _num_bits(mesh.num_nodes)
    dst = ((src << 1) | (src >> (bits - 1))) & (mesh.num_nodes - 1)
    return None if dst == src else dst


def _bitcomp(mesh: Topology, src: int, rng: random.Random) -> int | None:
    _num_bits(mesh.num_nodes)
    dst = ~src & (mesh.num_nodes - 1)
    return None if dst == src else dst


def _bitrev(mesh: Topology, src: int, rng: random.Random) -> int | None:
    bits = _num_bits(mesh.num_nodes)
    dst = 0
    for i in range(bits):
        if src & (1 << i):
            dst |= 1 << (bits - 1 - i)
    return None if dst == src else dst


def _tornado(mesh: Topology, src: int, rng: random.Random) -> int | None:
    x, y = mesh.coords(src)
    shift = (mesh.width + 1) // 2 - 1
    dst = mesh.node_at((x + shift) % mesh.width, y)
    return None if dst == src else dst


def _neighbor(mesh: Topology, src: int, rng: random.Random) -> int | None:
    x, y = mesh.coords(src)
    dst = mesh.node_at((x + 1) % mesh.width, y)
    return None if dst == src else dst


DestinationFn = Callable[[Topology, int, random.Random], "int | None"]

#: Registry of destination functions by pattern name.
PATTERNS: dict[str, DestinationFn] = {
    "uniform": _uniform,
    "transpose": _transpose,
    "shuffle": _shuffle,
    "bitcomp": _bitcomp,
    "bitrev": _bitrev,
    "tornado": _tornado,
    "neighbor": _neighbor,
}


def pattern_destination(
    name: str, mesh: Topology, src: int, rng: random.Random
) -> int | None:
    """Destination of ``src`` under pattern ``name`` (``None`` = silent)."""
    fn = PATTERNS.get(name)
    if fn is None:
        raise TrafficError(
            f"unknown traffic pattern '{name}'; available: {sorted(PATTERNS)}"
        )
    return fn(mesh, src, rng)


def pattern_compatibility(name: str, mesh: Topology) -> None:
    """Raise :class:`TrafficError` if ``name`` cannot run on ``mesh``.

    A pure geometry check — consumes no RNG — so the factory can fail
    fast at construction with a one-line error instead of mid-setup (or,
    for a custom generator that skipped the up-front sweep, mid-run).
    Unknown names are reported by the callers' own name lookups.
    """
    if name == "transpose" and mesh.width != mesh.height:
        raise TrafficError(
            f"transpose requires a square mesh, got "
            f"{mesh.width}x{mesh.height}"
        )
    if name in ("shuffle", "bitcomp", "bitrev"):
        n = mesh.num_nodes
        if 1 << (n - 1).bit_length() != n:
            raise TrafficError(
                f"pattern '{name}' requires power-of-two node count, "
                f"got {n}"
            )


# ----------------------------------------------------------------------
class SyntheticTraffic(LookaheadTraffic):
    """Bernoulli-injected synthetic traffic under a named pattern."""

    def __init__(
        self,
        pattern: str,
        config: SimulationConfig,
        mesh: Topology,
        rng: random.Random,
    ) -> None:
        super().__init__()
        if pattern not in PATTERNS:
            raise TrafficError(
                f"unknown traffic pattern '{pattern}'; "
                f"available: {sorted(PATTERNS)}"
            )
        # Fail fast on geometry mismatches before touching the RNG.
        pattern_compatibility(pattern, mesh)
        self.pattern = pattern
        self.config = config
        self.mesh = mesh
        self.rng = rng
        # Validate the pattern against the mesh once, up front.
        for src in range(mesh.num_nodes):
            pattern_destination(pattern, mesh, src, rng)

    def _generate_packets(self, cycle: int) -> list[Packet]:
        packets: list[Packet] = []
        rate = self.config.injection_rate
        if rate <= 0.0:
            # bernoulli_generates draws nothing at rate 0, so skipping
            # the whole scan consumes the same RNG state: none.
            return packets
        # Inlined Bernoulli process (one rng.random() per node per cycle,
        # exactly like bernoulli_generates): this loop dominates the
        # idle-cycle lookahead, where every cycle is scanned but almost
        # none produce a packet.
        threshold = rate / self.config.mean_packet_size
        rng_random = self.rng.random
        for src in range(self.mesh.num_nodes):
            if rng_random() >= threshold:
                continue
            dst = pattern_destination(self.pattern, self.mesh, src, self.rng)
            if dst is None:
                continue
            packets.append(
                Packet(
                    src=src,
                    dst=dst,
                    size=sample_packet_size(self.config, self.rng),
                    creation_time=cycle,
                    flow=self.pattern,
                    measured=True,
                )
            )
        return packets

    def next_event_cycle(self, now: int, horizon: int) -> int | None:
        if self.config.injection_rate <= 0.0 and self._buffer_cycle < now:
            # Bernoulli at rate 0 consumes no RNG and never fires.
            return None
        return super().next_event_cycle(now, horizon)
