"""Injection processes and packet-size distributions.

Synthetic traffic uses a Bernoulli packet-generation process: each node
generates a packet each cycle with probability
``injection_rate / mean_packet_size`` so that the *flit* injection rate
matches the configured offered load, for both the paper's single-flit
baseline and the {1..6}-flit uniform-size experiment (Fig. 6).
"""

from __future__ import annotations

import random

from repro.sim.config import SimulationConfig


def sample_packet_size(config: SimulationConfig, rng: random.Random) -> int:
    """Draw one packet size from the configured distribution."""
    if config.packet_size_range is not None:
        lo, hi = config.packet_size_range
        return rng.randint(lo, hi)
    return config.packet_size


def bernoulli_generates(
    rate_flits: float, mean_size: float, rng: random.Random
) -> bool:
    """Whether a node generates a packet this cycle at the given flit rate."""
    if rate_flits <= 0.0:
        return False
    return rng.random() < rate_flits / mean_size
