"""Router microarchitecture: flits, buffers, allocators, and the VC router."""

from repro.router.flit import Flit, Packet
from repro.router.router import Router

__all__ = ["Flit", "Packet", "Router"]
