"""Priority-based VC allocation.

The paper's router uses a priority-based VC allocator (Table 2): routing
produces VC requests tagged with the Algorithm-1 priorities, and the
allocator grants each *free* downstream VC to its highest-priority
requester.  Requests targeting busy VCs simply do not match this cycle —
they are the "wait on footprint channel" requests and are recomputed every
cycle until the VC frees.

The allocator is separable, input-first:

1. every requesting input VC picks its best *grantable* request — highest
   priority first, random tie-break (so competing inputs don't all pile
   onto the same VC, which the paper notes Footprint's prioritization
   already de-correlates);
2. every downstream VC picks the highest-priority input VC that selected
   it, with round-robin fairness among equals.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.exceptions import InvariantViolation
from repro.router.output import OutputPort
from repro.router.vcstate import InputVc, VcState
from repro.routing.requests import Priority, VcRequest
from repro.topology.ports import Direction


@dataclass
class VaGrant:
    """One VC-allocation grant produced by :func:`allocate_vcs`."""

    input_vc: InputVc
    direction: Direction
    out_vc: int
    priority: Priority


def allocate_vcs(
    requests: list[tuple[InputVc, list[VcRequest]]],
    outputs: dict[Direction, OutputPort],
    rng: random.Random,
) -> list[VaGrant]:
    """Run one cycle of separable, priority-based VC allocation.

    Parameters
    ----------
    requests:
        ``(input_vc, its VC requests)`` pairs for every input VC in the
        ROUTING state this cycle.
    outputs:
        The router's output ports, providing ``grantable`` state.
    rng:
        Deterministic stream for tie-breaking.

    Returns
    -------
    Grants; the caller applies them to input VCs and output ports.
    """
    # Stage 1: each input VC selects its single best grantable request.
    # Single pass per input VC: track the best priority seen so far and
    # the requests tied at it, in request order — identical selections
    # and identical rng consumption to the filter-then-max formulation.
    selections: dict[tuple[Direction, int], list[tuple[Priority, InputVc]]] = {}
    for input_vc, reqs in requests:
        best_priority: Priority | None = None
        best: list[VcRequest] = []
        for r in reqs:
            if not outputs[r.direction].grantable(r.vc):
                continue
            if best_priority is None or r.priority > best_priority:
                best_priority = r.priority
                best = [r]
            elif r.priority == best_priority:
                best.append(r)
        if best_priority is None:
            continue
        choice = best[0] if len(best) == 1 else best[rng.randrange(len(best))]
        selections.setdefault((choice.direction, choice.vc), []).append(
            (choice.priority, input_vc)
        )

    # Stage 2: each downstream VC grants its best selecting input.
    grants: list[VaGrant] = []
    for (direction, vc), contenders in selections.items():
        top: Priority | None = None
        finalists: list[InputVc] = []
        for p, ivc in contenders:
            if top is None or p > top:
                top = p
                finalists = [ivc]
            elif p == top:
                finalists.append(ivc)
        winner = (
            finalists[0]
            if len(finalists) == 1
            else finalists[rng.randrange(len(finalists))]
        )
        grants.append(VaGrant(winner, direction, vc, top))
    return grants


def verify_grants(
    grants: list[VaGrant], outputs: dict[Direction, OutputPort]
) -> None:
    """Check one allocation round's grants before they are applied.

    Called by the router when :mod:`repro.validate` is active: every
    grant must target a distinct, currently grantable downstream VC and
    go to an input VC still in the ROUTING state (the ROUTING -> VA ->
    ACTIVE ordering).  Raises
    :class:`~repro.exceptions.InvariantViolation` otherwise.
    """
    granted: set[tuple[Direction, int]] = set()
    for grant in grants:
        key = (grant.direction, grant.out_vc)
        if key in granted:
            raise InvariantViolation(
                "vc_allocation",
                "downstream VC granted to two input VCs in one round",
                direction=grant.direction,
                vc=grant.out_vc,
            )
        granted.add(key)
        if grant.input_vc.state is not VcState.ROUTING:
            raise InvariantViolation(
                "vc_allocation",
                f"grant to an input VC in the "
                f"{grant.input_vc.state.value} state, expected routing",
                direction=grant.direction,
                vc=grant.out_vc,
            )
        if not outputs[grant.direction].grantable(grant.out_vc):
            raise InvariantViolation(
                "vc_allocation",
                "grant targets a busy downstream VC",
                direction=grant.direction,
                vc=grant.out_vc,
            )
