"""Priority-based VC allocation.

The paper's router uses a priority-based VC allocator (Table 2): routing
produces VC requests tagged with the Algorithm-1 priorities, and the
allocator grants each *free* downstream VC to its highest-priority
requester.  Requests targeting busy VCs simply do not match this cycle —
they are the "wait on footprint channel" requests and are recomputed every
cycle until the VC frees.

The allocator is separable, input-first:

1. every requesting input VC picks its best *grantable* request — highest
   priority first, random tie-break (so competing inputs don't all pile
   onto the same VC, which the paper notes Footprint's prioritization
   already de-correlates);
2. every downstream VC picks the highest-priority input VC that selected
   it, with round-robin fairness among equals.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.router.output import OutputPort
from repro.router.vcstate import InputVc
from repro.routing.requests import Priority, VcRequest
from repro.topology.ports import Direction


@dataclass
class VaGrant:
    """One VC-allocation grant produced by :func:`allocate_vcs`."""

    input_vc: InputVc
    direction: Direction
    out_vc: int
    priority: Priority


def allocate_vcs(
    requests: list[tuple[InputVc, list[VcRequest]]],
    outputs: dict[Direction, OutputPort],
    rng: random.Random,
) -> list[VaGrant]:
    """Run one cycle of separable, priority-based VC allocation.

    Parameters
    ----------
    requests:
        ``(input_vc, its VC requests)`` pairs for every input VC in the
        ROUTING state this cycle.
    outputs:
        The router's output ports, providing ``grantable`` state.
    rng:
        Deterministic stream for tie-breaking.

    Returns
    -------
    Grants; the caller applies them to input VCs and output ports.
    """
    # Stage 1: each input VC selects its single best grantable request.
    selections: dict[tuple[Direction, int], list[tuple[Priority, InputVc]]] = {}
    for input_vc, reqs in requests:
        grantable = [
            r for r in reqs if outputs[r.direction].grantable(r.vc)
        ]
        if not grantable:
            continue
        best_priority = max(r.priority for r in grantable)
        best = [r for r in grantable if r.priority == best_priority]
        choice = best[0] if len(best) == 1 else best[rng.randrange(len(best))]
        selections.setdefault((choice.direction, choice.vc), []).append(
            (choice.priority, input_vc)
        )

    # Stage 2: each downstream VC grants its best selecting input.
    grants: list[VaGrant] = []
    for (direction, vc), contenders in selections.items():
        best_priority = max(p for p, _ in contenders)
        finalists = [ivc for p, ivc in contenders if p == best_priority]
        winner = (
            finalists[0]
            if len(finalists) == 1
            else finalists[rng.randrange(len(finalists))]
        )
        grants.append(VaGrant(winner, direction, vc, best_priority))
    return grants
