"""The input-queued virtual-channel router.

Per-cycle pipeline (invoked in this order by the engine):

1. **Link traversal (LT)** — each output port pops one flit from its
   staging FIFO onto the link; the engine delivers it to the downstream
   router (or endpoint sink) at the start of the next cycle.
2. **Route computation + VC allocation (RC/VA)** — every input VC in the
   ROUTING state recomputes its VC requests through the configured routing
   algorithm (Footprint's congestion view is dynamic, so requests are fresh
   every cycle), then the priority-based VC allocator grants free
   downstream VCs.
3. **Switch allocation + switch traversal (SA/ST)** — each input port
   forwards at most one flit per cycle; each output port accepts up to
   ``internal_speedup`` flits into its staging FIFO, subject to downstream
   credits.  Port service order rotates each cycle and a per-port
   round-robin arbiter picks among the port's eligible VCs.

Credits for flits popped from input buffers are handed back to the engine,
which delivers them upstream with one cycle of latency.

The router also samples the paper's §4.3 blocking metrics: whenever a
ROUTING input VC fails to obtain a grant, the busy/footprint VC mix at its
requested ports is accumulated so that *purity of blocking* and the HoL
degree can be reported (Fig. 10 b, c).
"""

from __future__ import annotations

import random

from repro.router.allocator import allocate_vcs, verify_grants
from repro.router.arbiter import RoundRobinArbiter
from repro.router.flit import Flit
from repro.router.output import OutputPort
from repro.router.vcstate import InputVc, VcState
from repro.routing.base import RouteContext, RoutingAlgorithm
from repro.routing.requests import VcRequest
from repro.sim.config import SimulationConfig
from repro.topology.base import Topology
from repro.topology.ports import Direction


class BlockingStats:
    """Accumulators for the purity-of-blocking analysis (paper §4.3)."""

    __slots__ = ("blocking_events", "busy_vc_samples", "footprint_vc_samples")

    def __init__(self) -> None:
        self.blocking_events = 0
        self.busy_vc_samples = 0
        self.footprint_vc_samples = 0

    @property
    def purity(self) -> float:
        """Ratio of footprint VCs to all busy VCs observed at blockings."""
        if self.busy_vc_samples == 0:
            return 0.0
        return self.footprint_vc_samples / self.busy_vc_samples

    @property
    def hol_degree(self) -> float:
        """Impurity times blocking count — the paper's HoL-blocking degree."""
        return (1.0 - self.purity) * self.blocking_events

    def merge(self, other: "BlockingStats") -> None:
        self.blocking_events += other.blocking_events
        self.busy_vc_samples += other.busy_vc_samples
        self.footprint_vc_samples += other.footprint_vc_samples


class Router:
    """One mesh router."""

    def __init__(
        self,
        node: int,
        mesh: Topology,
        config: SimulationConfig,
        routing: RoutingAlgorithm,
        rng: random.Random,
    ) -> None:
        self.node = node
        self.mesh = mesh
        self.config = config
        self.routing = routing
        self.rng = rng

        escape_vc = 0 if routing.uses_escape else None
        # Multi-class topologies (torus) reserve one escape VC per
        # dateline class: VC 0 carries class 0, VC 1 carries class 1.
        escape_vc2 = (
            1 if routing.uses_escape and mesh.num_vc_classes > 1 else None
        )
        ports = mesh.router_ports(node)
        self.input_vcs: dict[Direction, list[InputVc]] = {
            d: [
                InputVc(d, v, config.vc_buffer_depth)
                for v in range(config.num_vcs)
            ]
            for d in ports
        }
        self.output_ports: dict[Direction, OutputPort] = {
            d: OutputPort(
                direction=d,
                num_vcs=config.num_vcs,
                downstream_depth=config.vc_buffer_depth,
                fifo_depth=config.output_buffer_depth,
                speedup=config.internal_speedup,
                # The ejection port needs no escape VC: delivery cannot
                # deadlock, and reserving one would waste ejection
                # bandwidth.
                escape_vc=escape_vc if d is not Direction.LOCAL else None,
                atomic_realloc=routing.atomic_vc_reallocation,
                escape_vc2=(
                    escape_vc2 if d is not Direction.LOCAL else None
                ),
            )
            for d in ports
        }
        self._port_order = list(ports)
        # Output ports as a plain list: route_and_allocate touches every
        # port every cycle and list iteration beats dict-view iteration.
        self._ports_list = list(self.output_ports.values())
        self._sa_port_offset = node % max(1, len(ports))
        self._vc_arbiters: dict[Direction, RoundRobinArbiter] = {
            d: RoundRobinArbiter(config.num_vcs) for d in ports
        }
        self._congestion_threshold = max(
            1, int(config.congestion_threshold * config.num_vcs)
        )
        # A single reusable context object: route() is called for every
        # waiting packet every cycle, so per-call construction is avoided.
        self._ctx = RouteContext(
            mesh=mesh,
            current=node,
            destination=node,
            source=node,
            input_direction=Direction.LOCAL,
            outputs=self.output_ports,
            num_vcs=config.num_vcs,
            congestion_threshold=self._congestion_threshold,
            footprint_vc_limit=config.footprint_vc_limit,
            rng=rng,
        )
        # Flits currently inside the router (input FIFOs + output FIFOs);
        # lets the engine skip completely quiescent routers.
        self.inflight = 0
        # Flits staged in output FIFOs only; lets the engine skip link
        # traversal for routers whose flits are all waiting in input VCs.
        self.staged_flits = 0
        # Set when a credit arrives; a returning credit can release an
        # output VC (atomic reallocation), so the router must run one
        # allocation round that cycle even with no flits buffered — the
        # engine's active-set scheduler checks this flag and clears it.
        self.credit_pending = False
        # Input VCs in the ROUTING state, keyed by (direction, vc index) so
        # iteration order is deterministic (insertion order).  Maintained
        # incrementally instead of scanning every VC every cycle.
        self._pending: dict[tuple[int, int], InputVc] = {}
        # Per-input-port bitmask of VCs with buffered flits (bit v set ⟺
        # input_vcs[d][v].fifo non-empty), indexed by Direction, plus the
        # total count across all input FIFOs.  Maintained on receive/pop
        # so switch traversal visits only occupied VCs instead of
        # scanning all num_vcs per port.
        self._occupied_masks = [0] * 5
        self.buffered_input_flits = 0
        self._vc_mask_all = (1 << config.num_vcs) - 1
        self.blocking = BlockingStats()
        self._sample_blocking = False
        # Telemetry probe sink (a TelemetryHub) or None.  Probe sites are
        # guarded by one hoisted is-not-None check so a run without
        # telemetry pays nothing beyond the attribute read.
        self.probe = None
        # Validation hook (an InvariantChecker) or None; when set, each
        # VC-allocation round's grants are verified before being applied.
        self.validator = None
        # Fault awareness: bitmask of output directions whose link (or
        # downstream router) is currently dead, mirrored into the route
        # context so algorithms can steer around it.  The epoch counter
        # folds into the per-cycle state version so cached VC requests
        # are invalidated whenever the mask changes.
        self.fault_blocked = 0
        self._fault_epoch = 0

    # ------------------------------------------------------------------
    # Engine-facing state changes
    # ------------------------------------------------------------------
    def receive_flit(self, direction: Direction, vc: int, flit: Flit) -> None:
        """Deliver a flit arriving through input port ``direction``."""
        ivc = self.input_vcs[direction][vc]
        ivc.push(flit)
        self.inflight += 1
        self.buffered_input_flits += 1
        self._occupied_masks[direction] |= 1 << vc
        if ivc.state is VcState.IDLE:
            ivc.refresh_state()
            if ivc.state is VcState.ROUTING:
                self._pending[(direction, vc)] = ivc

    def receive_credit(self, direction: Direction, vc: int) -> None:
        """Deliver a returning credit for output port ``direction``."""
        if self.output_ports[direction].credit_return(vc):
            # The credit completed an atomic drain and released the VC;
            # an allocation round must run this cycle to observe (and
            # then clear) the freshly-released set.
            self.credit_pending = True

    def enable_blocking_sampling(self, enabled: bool) -> None:
        """Toggle the purity-of-blocking instrumentation."""
        self._sample_blocking = enabled

    def set_fault_mask(self, mask: int) -> None:
        """Update the set of dead output directions (engine fault hook).

        Packets still choosing a route (ROUTING state) that had committed
        to a now-dead port are released to re-route; packets already
        granted a VC (ACTIVE) keep their path — wormhole streams are
        never torn mid-packet, they simply stall until a heal.
        """
        if mask == self.fault_blocked:
            return
        self.fault_blocked = mask
        self._fault_epoch += 1
        self._ctx.dead_ports = mask
        if mask:
            for ivc in self._pending.values():
                committed = ivc.committed_dir
                if committed is not None and (mask >> committed) & 1:
                    ivc.committed_dir = None

    # ------------------------------------------------------------------
    # Pipeline stages
    # ------------------------------------------------------------------
    def link_traversal(
        self, blocked_mask: int = 0
    ) -> list[tuple[Direction, int, Flit]]:
        """Pop at most one flit per output port onto its link.

        Output directions set in ``blocked_mask`` (dead links or dead
        downstream routers) launch nothing; their staged flits wait in
        the output FIFO until the fault heals.
        """
        if self.inflight == 0:
            return []
        sent: list[tuple[Direction, int, Flit]] = []
        for direction, port in self.output_ports.items():
            if blocked_mask and (blocked_mask >> direction) & 1:
                continue
            popped = port.pop_link()
            if popped is not None:
                flit, vc = popped
                sent.append((direction, vc, flit))
                self.inflight -= 1
                self.staged_flits -= 1
        return sent

    def route_and_allocate(self) -> None:
        """Recompute routes for waiting packets and run VC allocation."""
        # Router-wide state version: any change in VC grantability or
        # ownership at any output port invalidates cached VC requests.
        # Computed before the early-outs so freshly-freed-VC information
        # is always consumed by exactly one allocation round.
        ports_list = self._ports_list
        # Seeding with the fault epoch (also monotone) invalidates cached
        # requests whenever the dead-port mask changes.
        state_version = self._fault_epoch
        for port in ports_list:
            port.new_cycle()
            state_version += port.version

        if self.inflight == 0 or not self._pending:
            for port in ports_list:
                port.clear_fresh()
            return

        requests: list[tuple[InputVc, list[VcRequest]]] = []
        for ivc in self._pending.values():
            if ivc.route_cache_key == state_version:
                reqs = ivc.route_cache
            else:
                head = ivc.front()
                assert head is not None and head.is_head
                ctx = self._context(ivc, head)
                if ivc.committed_dir is None:
                    # Route computation: runs once per packet per router;
                    # the port choice is a commitment (BookSim RC stage).
                    ivc.committed_dir = self.routing.select_output(ctx)
                reqs = self.routing.vc_requests_at(ctx, ivc.committed_dir)
                blocked = self.fault_blocked
                if blocked:
                    # No VC grants toward dead ports — covers escape
                    # requests whose DOR port happens to be dead, too.
                    reqs = [
                        r for r in reqs if not (blocked >> r.direction) & 1
                    ]
                ivc.route_cache = reqs
                ivc.route_cache_key = state_version
            if reqs:
                requests.append((ivc, reqs))

        if requests:
            grants = allocate_vcs(requests, self.output_ports, self.rng)
            if self.validator is not None:
                verify_grants(grants, self.output_ports)
            probe = self.probe
            for grant in grants:
                head = grant.input_vc.front()
                assert head is not None
                port = self.output_ports[grant.direction]
                if probe is not None:
                    # The owner register still holds the VC's previous
                    # owner here (allocate() overwrites it): equality
                    # with the new packet's destination is a footprint
                    # hit — the reuse event Footprint engineers for.
                    probe.vc_alloc(
                        self.node,
                        grant.direction,
                        grant.out_vc,
                        head,
                        port.owner_dst[grant.out_vc] == head.dst,
                    )
                port.allocate(grant.out_vc, head.dst)
                grant.input_vc.grant(grant.direction, grant.out_vc)
                del self._pending[
                    (grant.input_vc.direction, grant.input_vc.index)
                ]

        if self._sample_blocking and self._pending:
            self._sample_blocked()

        # This allocation round has consumed the freshly-freed-VC
        # information; freed VCs become plain idle from the next round on.
        for port in ports_list:
            port.clear_fresh()

    def clear_fresh_only(self) -> None:
        """End-of-round cleanup for a credit-woken router with no flits.

        Equivalent to the empty-router early-out of
        :meth:`route_and_allocate` minus the per-port cycle reset, which
        only matters ahead of a switch-traversal round (and any such
        round is preceded by a full :meth:`route_and_allocate` in the
        same cycle).
        """
        for port in self._ports_list:
            port.clear_fresh()

    def _context(self, ivc: InputVc, head: Flit) -> RouteContext:
        ctx = self._ctx
        ctx.destination = head.dst
        ctx.source = head.src
        ctx.input_direction = ivc.direction
        return ctx

    def _sample_blocked(self) -> None:
        """Sample busy/footprint VC mix for packets that failed allocation.

        Every input VC still awaiting a grant after allocation counts as
        one blocking event; the busy VCs at its candidate (productive)
        output ports are classified into footprint VCs (same destination)
        and others — the raw material of the paper's purity-of-blocking
        analysis (§4.3).
        """
        blocking = self.blocking
        for ivc in self._pending.values():
            head = ivc.front()
            if head is None or ivc.committed_dir is None:
                continue
            port = self.output_ports[ivc.committed_dir]
            blocking.blocking_events += 1
            blocking.busy_vc_samples += len(port.busy_vcs())
            blocking.footprint_vc_samples += len(
                port.footprint_vcs(head.dst)
            )

    def switch_traversal(self) -> list[tuple[Direction, int]]:
        """Forward flits from input buffers into output staging FIFOs.

        Returns the ``(input direction, vc)`` of every popped flit so the
        engine can return the corresponding upstream credits.
        """
        if self.inflight == 0:
            return []
        credits: list[tuple[Direction, int]] = []
        n_ports = len(self._port_order)
        # Rotate the port service order each cycle (round-robin switch
        # arbitration across input ports).  The rotation happens whenever
        # flits are inflight — even if none are in input FIFOs — to stay
        # bit-identical with the scan-everything baseline.
        self._sa_port_offset = (self._sa_port_offset + 1) % n_ports
        if self.buffered_input_flits == 0:
            return []
        occupied_masks = self._occupied_masks
        probe = self.probe
        tracing = probe is not None and probe.tracing
        for i in range(n_ports):
            direction = self._port_order[(self._sa_port_offset + i) % n_ports]
            if not occupied_masks[direction]:
                continue
            ivc = self._pick_sa_winner(direction)
            if ivc is None:
                continue
            out_port = self.output_ports[ivc.out_direction]
            out_vc = ivc.out_vc
            assert out_vc is not None
            flit = ivc.pop()
            self.buffered_input_flits -= 1
            if not ivc.fifo:
                occupied_masks[direction] &= ~(1 << ivc.index)
            out_port.send(flit, out_vc)
            self.staged_flits += 1
            if tracing:
                probe.switch(
                    self.node, direction, flit, out_port.direction, out_vc
                )
            if ivc.state is VcState.ROUTING:
                # The tail left and the next packet's head is already
                # queued behind it.
                self._pending[(direction, ivc.index)] = ivc
            credits.append((direction, ivc.index))
        return credits

    def _pick_sa_winner(self, direction: Direction) -> InputVc | None:
        """Round-robin among the port's VCs with a sendable flit.

        Only VCs with buffered flits (the port's occupancy bitmask) are
        visited: the mask is rotated so bit 0 lands on the arbiter
        pointer, making ascending set-bit order identical to the
        round-robin scan order of the full-range loop it replaces.
        """
        mask = self._occupied_masks[direction]
        if not mask:
            return None
        vcs = self.input_vcs[direction]
        arbiter = self._vc_arbiters[direction]
        pointer = arbiter._pointer
        n = arbiter.size
        outputs = self.output_ports
        active = VcState.ACTIVE
        rotated = ((mask >> pointer) | (mask << (n - pointer))) & (
            self._vc_mask_all
        )
        while rotated:
            low = rotated & -rotated
            v = pointer + low.bit_length() - 1
            if v >= n:
                v -= n
            ivc = vcs[v]
            if ivc.state is active and outputs[ivc.out_direction].can_send(
                ivc.out_vc
            ):
                arbiter._pointer = v + 1 if v + 1 < n else 0
                return ivc
            rotated -= low
        return None

    # ------------------------------------------------------------------
    def occupancy(self) -> int:
        """Total flits buffered in this router (inputs + output FIFOs)."""
        total = sum(
            len(ivc.fifo) for vcs in self.input_vcs.values() for ivc in vcs
        )
        total += sum(len(p.fifo) for p in self.output_ports.values())
        return total

    def __repr__(self) -> str:
        return f"Router(n{self.node}, inflight={self.inflight})"
