"""Arbiters.

The switch allocator uses round-robin arbitration (Table 2 of the paper);
the same primitive breaks ties in the priority-based VC allocator.
"""

from __future__ import annotations

from typing import Iterable, Sequence


class RoundRobinArbiter:
    """A round-robin arbiter over ``size`` requesters.

    The grant pointer advances past the last winner, so every persistent
    requester is served within ``size`` grants (strong fairness).
    """

    def __init__(self, size: int) -> None:
        if size < 1:
            raise ValueError("arbiter needs at least one requester")
        self.size = size
        self._pointer = 0

    def grant(self, requests: Iterable[int]) -> int | None:
        """Grant one of the requesting indices, or ``None`` if none request.

        ``requests`` is an iterable of requester indices in ``[0, size)``.
        """
        active = set(requests)
        if not active:
            return None
        for offset in range(self.size):
            candidate = (self._pointer + offset) % self.size
            if candidate in active:
                self._pointer = (candidate + 1) % self.size
                return candidate
        return None

    def rotation(self) -> Sequence[int]:
        """Current fairness order (pointer first); used to iterate ports."""
        return [(self._pointer + i) % self.size for i in range(self.size)]

    def advance(self) -> None:
        """Advance the pointer without granting (used per-cycle rotation)."""
        self._pointer = (self._pointer + 1) % self.size
