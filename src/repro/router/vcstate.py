"""Per-input-VC state machine.

Each input VC is a flit FIFO plus the wormhole bookkeeping for the packet
currently at its front:

* ``IDLE`` — no packet in flight; if the FIFO holds a head flit the VC
  transitions to ``ROUTING`` at the next router evaluation.
* ``ROUTING`` — the front packet's head flit needs an output VC; routing
  requests are recomputed every cycle (Footprint's congestion view is
  dynamic) until the VC allocator grants one.
* ``ACTIVE`` — an output port/VC is held; flits flow through switch
  allocation until the tail flit leaves, which releases the input VC back
  to ``IDLE`` (or straight to ``ROUTING`` when the next packet's head is
  already queued behind the tail).
"""

from __future__ import annotations

import enum
from collections import deque

from repro.exceptions import FlowControlError
from repro.router.flit import Flit
from repro.topology.ports import Direction


class VcState(enum.Enum):
    IDLE = "idle"
    ROUTING = "routing"
    ACTIVE = "active"


class InputVc:
    """One virtual channel of one router input port."""

    __slots__ = (
        "direction",
        "index",
        "depth",
        "fifo",
        "state",
        "out_direction",
        "out_vc",
        "committed_dir",
        "route_cache_key",
        "route_cache",
    )

    def __init__(self, direction: Direction, index: int, depth: int) -> None:
        self.direction = direction
        self.index = index
        self.depth = depth
        self.fifo: deque[Flit] = deque()
        self.state = VcState.IDLE
        self.out_direction: Direction | None = None
        self.out_vc: int | None = None
        # Output port committed at route computation (RC runs once per
        # packet per router); None until the head packet is routed.
        self.committed_dir: Direction | None = None
        # VC-request cache: (router state version, requests).  The router
        # reuses the cached requests while no output-port
        # grantability/ownership changed; cleared on grant and on packet
        # boundaries.
        self.route_cache_key: int = -1
        self.route_cache: list | None = None

    # ------------------------------------------------------------------
    @property
    def occupancy(self) -> int:
        return len(self.fifo)

    @property
    def has_space(self) -> bool:
        return len(self.fifo) < self.depth

    def front(self) -> Flit | None:
        return self.fifo[0] if self.fifo else None

    # ------------------------------------------------------------------
    def push(self, flit: Flit) -> None:
        """Accept an arriving flit (upstream guaranteed space via credits)."""
        if len(self.fifo) >= self.depth:
            raise FlowControlError(
                f"input VC {self.direction.name}.{self.index} overflow: "
                f"credit protocol violated"
            )
        self.fifo.append(flit)

    def refresh_state(self) -> None:
        """Promote IDLE to ROUTING when a head flit reaches the front."""
        if self.state is VcState.IDLE and self.fifo:
            front = self.fifo[0]
            if not front.is_head:
                raise FlowControlError(
                    f"non-head flit {front!r} at front of idle VC "
                    f"{self.direction.name}.{self.index}"
                )
            self.state = VcState.ROUTING

    def grant(self, out_direction: Direction, out_vc: int) -> None:
        """Record a VC-allocation grant."""
        if self.state is not VcState.ROUTING:
            raise FlowControlError("VC grant to a non-routing input VC")
        self.state = VcState.ACTIVE
        self.out_direction = out_direction
        self.out_vc = out_vc
        self.committed_dir = None
        self.route_cache = None
        self.route_cache_key = -1

    def pop(self) -> Flit:
        """Remove the front flit (switch traversal); handles tail release."""
        if not self.fifo:
            raise FlowControlError("pop from empty input VC")
        flit = self.fifo.popleft()
        if flit.is_tail:
            self.state = VcState.IDLE
            self.out_direction = None
            self.out_vc = None
            self.committed_dir = None
            self.route_cache = None
            self.route_cache_key = -1
            self.refresh_state()
        return flit

    def legality_violation(self) -> str | None:
        """First violated state-machine/wormhole invariant, or ``None``.

        Used by :mod:`repro.validate` between pipeline stages; the
        invariants below are not guaranteed to hold mid-stage (e.g.
        between a pop and the matching send inside switch traversal).
        """
        state = self.state
        fifo = self.fifo
        if len(fifo) > self.depth:
            return "input VC holds more flits than its buffer depth"
        if state is VcState.IDLE:
            if fifo:
                return "IDLE input VC holds buffered flits"
            if self.out_direction is not None or self.out_vc is not None:
                return "IDLE input VC holds output registers"
            if self.committed_dir is not None:
                return "IDLE input VC holds a route commitment"
        elif state is VcState.ROUTING:
            if not fifo:
                return "ROUTING input VC has no buffered flit"
            if not fifo[0].is_head:
                return "ROUTING input VC fronted by a non-head flit"
            if self.out_direction is not None or self.out_vc is not None:
                return "ROUTING input VC already holds output registers"
        else:  # ACTIVE
            if self.out_direction is None or self.out_vc is None:
                return "ACTIVE input VC missing output registers"
            if self.committed_dir is not None:
                return "ACTIVE input VC still holds a route commitment"
        prev: Flit | None = None
        for flit in fifo:
            if prev is None:
                # Only an ACTIVE VC may be mid-packet at its front.
                if not flit.is_head and state is not VcState.ACTIVE:
                    return (
                        "non-head flit at the front of a non-ACTIVE "
                        "input VC"
                    )
            elif prev.is_tail:
                if not flit.is_head:
                    return "non-head flit follows a tail flit"
                if flit.packet is prev.packet:
                    return "packet restarts behind its own tail"
            else:
                if flit.packet is not prev.packet:
                    return "packet interleaving within one VC"
                if flit.index != prev.index + 1:
                    return (
                        f"out-of-order flits within a packet "
                        f"({prev.index} then {flit.index})"
                    )
            prev = flit
        return None

    def __repr__(self) -> str:
        return (
            f"InputVc({self.direction.name}.{self.index}, {self.state.value}, "
            f"{len(self.fifo)}/{self.depth} flits)"
        )
