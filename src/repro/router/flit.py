"""Packets and flits.

A packet is the unit of routing; a flit is the unit of flow control.  A
packet of ``size`` flits is serialized as one head flit, ``size - 2`` body
flits, and one tail flit; a single-flit packet's only flit is both head and
tail.  Only head flits carry routing state — body and tail flits inherit the
head's path through the per-VC state kept by the routers (wormhole
switching).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field


_packet_ids = itertools.count()


def _next_packet_id() -> int:
    return next(_packet_ids)


@dataclass(slots=True)
class Packet:
    """A network packet.

    Attributes
    ----------
    src, dst:
        Endpoint node ids.
    size:
        Packet length in flits (``>= 1``).
    creation_time:
        Cycle at which the packet was created at the source queue.
    injection_time:
        Cycle at which the head flit entered the network (left the source
        queue), filled in by the engine.
    ejection_time:
        Cycle at which the tail flit was consumed at the destination.
    flow:
        Optional label used by traffic generators to tag flows (e.g.
        ``"hotspot"`` vs ``"background"``); metrics can filter on it.
    measured:
        Whether this packet contributes to latency/throughput statistics
        (warm-up and drain packets are unmeasured).
    """

    src: int
    dst: int
    size: int
    creation_time: int
    flow: str = "default"
    measured: bool = True
    packet_id: int = field(default_factory=_next_packet_id)
    injection_time: int | None = None
    ejection_time: int | None = None

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError(f"packet size must be >= 1, got {self.size}")

    @property
    def latency(self) -> int:
        """Total packet latency (creation to tail ejection), in cycles."""
        if self.ejection_time is None:
            raise ValueError("packet has not been ejected yet")
        return self.ejection_time - self.creation_time

    @property
    def network_latency(self) -> int:
        """Latency excluding source-queue time (injection to ejection)."""
        if self.ejection_time is None or self.injection_time is None:
            raise ValueError("packet has not traversed the network yet")
        return self.ejection_time - self.injection_time

    def flits(self) -> list["Flit"]:
        """Serialize the packet into its flits, head first."""
        return [
            Flit(
                packet=self,
                index=i,
                is_head=(i == 0),
                is_tail=(i == self.size - 1),
            )
            for i in range(self.size)
        ]


@dataclass(slots=True)
class Flit:
    """A flow-control digit of a packet.

    ``hops`` is incremented each time the flit crosses an inter-router link
    and is used by path-length assertions in tests.
    """

    packet: Packet
    index: int
    is_head: bool
    is_tail: bool
    hops: int = 0

    @property
    def dst(self) -> int:
        return self.packet.dst

    @property
    def src(self) -> int:
        return self.packet.src

    def __repr__(self) -> str:
        kind = "H" if self.is_head else ("T" if self.is_tail else "B")
        if self.is_head and self.is_tail:
            kind = "HT"
        return (
            f"Flit(p{self.packet.packet_id}[{self.index}]{kind} "
            f"{self.src}->{self.dst})"
        )
