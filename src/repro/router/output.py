"""Output-port state: downstream VC tracking, credits, and the staging FIFO.

The output port is where Footprint's information lives.  For every
downstream VC the port records:

* the credit count (free flit slots in the downstream buffer),
* whether the VC is currently *allocated* to an in-flight packet,
* the **owner destination** of that packet — the paper's per-VC
  ``log2(N)``-bit owner register (§4.4) that lets the router recognize
  *footprint VCs* by comparing a packet's destination with the owner.

The port also owns the output staging FIFO that models the crossbar's
internal speedup: the switch may deliver up to ``speedup`` flits per cycle
into the FIFO, while the link drains exactly one flit per cycle from it.

VC reallocation policy (paper §4.2.1): Duato-based algorithms (DBAR,
Footprint) free a downstream VC only once the tail flit's credit has
returned (*atomic*); DOR and Odd-Even free it as soon as the tail flit has
been sent (*non-atomic*), which is why they achieve higher buffer
utilization.

Implementation note: the idle-VC list and the per-destination footprint
index are maintained incrementally — routing algorithms query them for
every waiting packet every cycle, which makes them the hottest reads in
the simulator.
"""

from __future__ import annotations

from collections import deque

from repro.exceptions import AllocationError, FlowControlError
from repro.router.flit import Flit
from repro.topology.ports import Direction


class OutputPort:
    """State of one router output port and its downstream virtual channels.

    Also serves as the :class:`~repro.routing.base.OutputPortView` passed to
    routing algorithms.
    """

    def __init__(
        self,
        direction: Direction,
        num_vcs: int,
        downstream_depth: int,
        fifo_depth: int,
        speedup: int,
        escape_vc: int | None,
        atomic_realloc: bool,
        escape_vc2: int | None = None,
    ) -> None:
        self.direction = direction
        self.num_vcs = num_vcs
        self.downstream_depth = downstream_depth
        self.fifo_depth = fifo_depth
        self.speedup = speedup
        self.escape_vc = escape_vc
        #: Second escape VC (dateline class 1) on multi-class topologies;
        #: ``None`` on a mesh, where one escape VC suffices.
        self.escape_vc2 = escape_vc2
        self.atomic_realloc = atomic_realloc

        self.credits = [downstream_depth] * num_vcs
        self.allocated = [False] * num_vcs
        self.owner_dst: list[int | None] = [None] * num_vcs
        # Tail has been sent but (atomic mode) not yet fully credited.
        self._draining = [False] * num_vcs
        self.fifo: deque[tuple[Flit, int]] = deque()
        self._accepted_this_cycle = 0

        self._adaptive = [
            v for v in range(num_vcs) if v != escape_vc and v != escape_vc2
        ]
        # Incrementally maintained views.
        self._idle_cache: list[int] | None = list(self._adaptive)
        self._busy_count = 0
        self._fp_index: dict[int, list[int]] = {}
        self._adaptive_credits = downstream_depth * len(self._adaptive)
        #: Bumped whenever VC grantability or ownership changes; routing
        #: decisions are cached against it (credits do not affect which
        #: VCs are grantable, so credit flow leaves it unchanged).
        self.version = 0
        #: VCs released since the last VC-allocation round.  A freed VC
        #: keeps its last owner, and during the allocation round right
        #: after its release a same-destination packet may reclaim it at
        #: HIGH priority — emulating the persistent ``ADD(P, VC_fp, High)``
        #: request of a hardware allocator winning the VC the instant it
        #: frees.  The router clears this set after every allocation round.
        self.fresh_released: set[int] = set()

    # ------------------------------------------------------------------
    # Routing-algorithm view (OutputPortView protocol)
    # ------------------------------------------------------------------
    @property
    def escape_vcs(self) -> tuple[int, ...]:
        """Escape VCs in dateline-class order: ``(vc_class0, vc_class1)``
        on a multi-class topology, ``(vc,)`` on a mesh, ``()`` on ports
        that reserve none (ejection, non-Duato algorithms)."""
        if self.escape_vc is None:
            return ()
        if self.escape_vc2 is None:
            return (self.escape_vc,)
        return (self.escape_vc, self.escape_vc2)

    def adaptive_vcs(self) -> list[int]:
        """VCs a non-escape request may target (do not mutate)."""
        return self._adaptive

    def idle_vcs(self) -> list[int]:
        """Adaptive VCs currently free for allocation (do not mutate)."""
        cache = self._idle_cache
        if cache is None:
            allocated = self.allocated
            draining = self._draining
            cache = [
                v
                for v in self._adaptive
                if not allocated[v] and not draining[v]
            ]
            self._idle_cache = cache
        return cache

    def footprint_vcs(self, dst: int) -> list[int]:
        """Busy adaptive VCs owned by packets to ``dst`` (footprint VCs).

        The returned list is an internal index; do not mutate.
        """
        return self._fp_index.get(dst, _EMPTY)

    def established_idle_vcs(self) -> list[int]:
        """Idle adaptive VCs that were already idle before this cycle's
        releases — the idle set a hardware allocator's *held* requests were
        computed against."""
        if not self.fresh_released:
            return self.idle_vcs()
        fresh = self.fresh_released
        return [v for v in self.idle_vcs() if v not in fresh]

    def fresh_footprint_vcs(self, dst: int) -> list[int]:
        """Freshly freed adaptive VCs whose last owner was ``dst``.

        These are the VCs a waiting footprint follower wins at the instant
        they free (its held HIGH-priority request beats the LOW requests
        other packets held on the then-busy VC).
        """
        if not self.fresh_released:
            return _EMPTY
        owner = self.owner_dst
        # Ascending VC order, independent of set-iteration internals:
        # request order feeds the allocator's tie-break draws, so it must
        # be deterministic and engine-representation-agnostic (the vector
        # engine reconstructs request lists in ascending-VC order).
        fresh = self.fresh_released
        return [
            v
            for v in self._adaptive
            if v in fresh and owner[v] == dst and self.grantable(v)
        ]

    def fresh_other_vcs(self, dst: int) -> list[int]:
        """Freshly freed adaptive VCs last owned by other destinations."""
        if not self.fresh_released:
            return _EMPTY
        owner = self.owner_dst
        fresh = self.fresh_released
        return [
            v
            for v in self._adaptive
            if v in fresh and owner[v] != dst and self.grantable(v)
        ]

    def clear_fresh(self) -> None:
        """Forget this round's releases (called after each VA round)."""
        if self.fresh_released:
            self.fresh_released.clear()
            # Requests computed against the fresh set are now stale.
            self.version += 1

    def busy_vcs(self) -> list[int]:
        """All busy adaptive VCs regardless of owner."""
        allocated = self.allocated
        draining = self._draining
        return [
            v for v in self._adaptive if allocated[v] or draining[v]
        ]

    def free_credit_total(self) -> int:
        """Total free downstream slots across adaptive VCs (DBAR signal)."""
        return self._adaptive_credits

    # ------------------------------------------------------------------
    # VC allocation interface
    # ------------------------------------------------------------------
    def grantable(self, vc: int) -> bool:
        """Whether downstream VC ``vc`` may be allocated to a new packet."""
        return not self.allocated[vc] and not self._draining[vc]

    def allocate(self, vc: int, dst: int) -> None:
        """Bind downstream VC ``vc`` to a packet destined to ``dst``."""
        if not self.grantable(vc):
            raise AllocationError(
                f"double allocation of {self.direction.name} VC {vc}"
            )
        self.allocated[vc] = True
        self.owner_dst[vc] = dst
        self.version += 1
        self.fresh_released.discard(vc)
        if vc != self.escape_vc and vc != self.escape_vc2:
            self._idle_cache = None
            self._busy_count += 1
            self._fp_index.setdefault(dst, []).append(vc)

    def _release(self, vc: int) -> None:
        dst = self.owner_dst[vc]
        self.allocated[vc] = False
        self._draining[vc] = False
        self.version += 1
        # The owner is deliberately left stale until the next allocation
        # and the VC is marked freshly released; see fresh_footprint_vcs().
        self.fresh_released.add(vc)
        if vc != self.escape_vc and vc != self.escape_vc2:
            self._idle_cache = None
            self._busy_count -= 1
            owners = self._fp_index.get(dst)
            if owners is not None:
                owners.remove(vc)
                if not owners:
                    del self._fp_index[dst]

    # ------------------------------------------------------------------
    # Switch / link traversal
    # ------------------------------------------------------------------
    def accept_capacity(self) -> int:
        """Flits the switch may still deliver to this port this cycle."""
        space = self.fifo_depth - len(self.fifo)
        remaining = self.speedup - self._accepted_this_cycle
        return max(0, min(remaining, space))

    def can_send(self, vc: int) -> bool:
        """Whether a flit on ``vc`` can traverse the switch right now."""
        return self.credits[vc] > 0 and self.accept_capacity() > 0

    def send(self, flit: Flit, vc: int) -> None:
        """Commit a flit to the staging FIFO, consuming a downstream credit."""
        if self.credits[vc] <= 0:
            raise FlowControlError(
                f"credit underflow on {self.direction.name} VC {vc}"
            )
        if self.accept_capacity() <= 0:
            raise FlowControlError(
                f"output FIFO overflow on {self.direction.name}"
            )
        self.credits[vc] -= 1
        if vc != self.escape_vc and vc != self.escape_vc2:
            self._adaptive_credits -= 1
        self.fifo.append((flit, vc))
        self._accepted_this_cycle += 1
        if flit.is_tail:
            if self.atomic_realloc:
                # Keep the VC reserved (and its owner visible as a
                # footprint) until all credits return.
                self.allocated[vc] = False
                self._draining[vc] = True
                self._check_drained(vc)
            else:
                self._release(vc)

    def pop_link(self) -> tuple[Flit, int] | None:
        """Pop one flit onto the link (one per cycle); ``None`` if empty."""
        if not self.fifo:
            return None
        return self.fifo.popleft()

    def credit_return(self, vc: int) -> bool:
        """A downstream buffer slot freed; finish atomic drains if complete.

        Returns ``True`` when the credit completed an atomic drain and
        released the VC — the one credit event that requires an allocation
        round at the owning router (to consume and clear the
        freshly-released set); plain counter updates do not.
        """
        self.credits[vc] += 1
        if self.credits[vc] > self.downstream_depth:
            raise FlowControlError(
                f"credit overflow on {self.direction.name} VC {vc}"
            )
        if vc != self.escape_vc and vc != self.escape_vc2:
            self._adaptive_credits += 1
        if self._draining[vc]:
            return self._check_drained(vc)
        return False

    def _check_drained(self, vc: int) -> bool:
        if self.credits[vc] == self.downstream_depth:
            self._release(vc)
            return True
        return False

    def new_cycle(self) -> None:
        """Reset the per-cycle switch acceptance counter."""
        self._accepted_this_cycle = 0

    # ------------------------------------------------------------------
    def consistency_violation(self) -> str | None:
        """First broken internal invariant, or ``None``.

        Recomputes every incrementally-maintained view (idle cache, busy
        count, footprint index, adaptive credit total) from the ground
        truth.  Used by :mod:`repro.validate` between cycles; mid-cycle
        the caches may legitimately lag the arrays.
        """
        depth = self.downstream_depth
        for vc in range(self.num_vcs):
            credit = self.credits[vc]
            if not 0 <= credit <= depth:
                return f"VC {vc} credit count {credit} outside [0, {depth}]"
            if self.allocated[vc] and self._draining[vc]:
                return f"VC {vc} both allocated and draining"
            if self._draining[vc] and not self.atomic_realloc:
                return f"VC {vc} draining without atomic reallocation"
            if self.allocated[vc] and self.owner_dst[vc] is None:
                return f"allocated VC {vc} has no owner destination"
        if len(self.fifo) > self.fifo_depth:
            return "staging FIFO above its depth"
        busy = [
            v
            for v in self._adaptive
            if self.allocated[v] or self._draining[v]
        ]
        if self._busy_count != len(busy):
            return (
                f"busy count {self._busy_count} != recounted "
                f"{len(busy)} busy adaptive VCs"
            )
        adaptive_credits = sum(self.credits[v] for v in self._adaptive)
        if self._adaptive_credits != adaptive_credits:
            return (
                f"adaptive credit total {self._adaptive_credits} != "
                f"recounted {adaptive_credits}"
            )
        if self._idle_cache is not None:
            idle = [
                v
                for v in self._adaptive
                if not self.allocated[v] and not self._draining[v]
            ]
            if self._idle_cache != idle:
                return f"idle-VC cache {self._idle_cache} != recounted {idle}"
        indexed = set()
        for dst, vcs in self._fp_index.items():
            if not vcs:
                return f"empty footprint-index entry for destination {dst}"
            for v in vcs:
                if v == self.escape_vc or v == self.escape_vc2:
                    return f"escape VC {v} in the footprint index"
                if self.owner_dst[v] != dst:
                    return (
                        f"footprint index lists VC {v} under destination "
                        f"{dst} but its owner is {self.owner_dst[v]}"
                    )
                if v in indexed:
                    return f"VC {v} indexed twice in the footprint index"
                indexed.add(v)
        if indexed != set(busy):
            return (
                f"footprint index covers VCs {sorted(indexed)} but the "
                f"busy adaptive VCs are {sorted(busy)}"
            )
        return None

    def __repr__(self) -> str:
        return (
            f"OutputPort({self.direction.name}, busy={sum(self.allocated)}/"
            f"{self.num_vcs}, fifo={len(self.fifo)})"
        )


#: Shared empty list returned for destinations with no footprint VCs.
_EMPTY: list[int] = []
