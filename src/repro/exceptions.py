"""Exception hierarchy for the Footprint NoC reproduction.

All exceptions raised by this package derive from :class:`ReproError` so
callers can catch package-level failures with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigurationError(ReproError):
    """A :class:`~repro.sim.config.SimulationConfig` is invalid or inconsistent."""


class TopologyError(ReproError):
    """A topology query was invalid (unknown node, port, or channel)."""


class RoutingError(ReproError):
    """A routing algorithm produced or received an illegal routing state."""


class FlowControlError(ReproError):
    """A flow-control invariant was violated (credit under/overflow, buffer overflow)."""


class AllocationError(ReproError):
    """A VC or switch allocation invariant was violated."""


class TrafficError(ReproError):
    """A traffic pattern or trace was invalid for the requested network."""


class FaultError(ReproError):
    """A fault schedule or fault specification was invalid for the network."""


class SimulationError(ReproError):
    """The simulation engine reached an inconsistent state."""


class InvariantViolation(SimulationError):
    """A runtime invariant checker caught an illegal simulator state.

    Raised by :mod:`repro.validate` with enough context to localize the
    failure: the checker name, the cycle, and (when applicable) the
    router node, port direction, and VC index involved.
    """

    def __init__(
        self,
        checker: str,
        message: str,
        *,
        cycle: int | None = None,
        node: int | None = None,
        direction: object = None,
        vc: int | None = None,
    ) -> None:
        self.checker = checker
        self.cycle = cycle
        self.node = node
        self.direction = direction
        self.vc = vc
        context = []
        if cycle is not None:
            context.append(f"cycle {cycle}")
        if node is not None:
            context.append(f"node {node}")
        if direction is not None:
            name = getattr(direction, "name", None)
            context.append(f"port {name if name is not None else direction}")
        if vc is not None:
            context.append(f"vc {vc}")
        suffix = f" [{', '.join(context)}]" if context else ""
        super().__init__(f"{checker}: {message}{suffix}")
