"""Exception hierarchy for the Footprint NoC reproduction.

All exceptions raised by this package derive from :class:`ReproError` so
callers can catch package-level failures with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class ConfigurationError(ReproError):
    """A :class:`~repro.sim.config.SimulationConfig` is invalid or inconsistent."""


class TopologyError(ReproError):
    """A topology query was invalid (unknown node, port, or channel)."""


class RoutingError(ReproError):
    """A routing algorithm produced or received an illegal routing state."""


class FlowControlError(ReproError):
    """A flow-control invariant was violated (credit under/overflow, buffer overflow)."""


class AllocationError(ReproError):
    """A VC or switch allocation invariant was violated."""


class TrafficError(ReproError):
    """A traffic pattern or trace was invalid for the requested network."""


class FaultError(ReproError):
    """A fault schedule or fault specification was invalid for the network."""


class SimulationError(ReproError):
    """The simulation engine reached an inconsistent state."""
