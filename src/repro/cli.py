"""Command-line interface.

``footprint-noc`` (or ``python -m repro``) runs either a single
simulation or a whole paper experiment::

    footprint-noc run --routing footprint --traffic transpose \\
        --injection-rate 0.3 --width 8 --vcs 10

    footprint-noc experiment fig9 --scale smoke
    footprint-noc experiment fault-sweep --scale smoke --fault-kind link
    footprint-noc experiment table1
    footprint-noc run --faults 'link:5:east,router:10@200+500'
    footprint-noc cache stats
    footprint-noc validate --runs 8 --seed 1
    footprint-noc validate --self-test
    footprint-noc serve --port 7455
    footprint-noc submit --routing footprint,dor --rates 0.02,0.05 --wait
    footprint-noc jobs
    footprint-noc leaderboard --ingest-bench benchmarks
    footprint-noc tune --traffic hotspot --budget 40000000
    footprint-noc tune report TUNE_hotspot-8x8_20260808-120000.json
    footprint-noc leaderboard --ingest-tune TUNE_hotspot-8x8_*.json
    footprint-noc list

Validation failures (unknown algorithm or pattern, malformed fault spec,
inconsistent configuration) print a one-line ``error: ...`` message and
exit with status 2 instead of dumping a traceback.
"""

from __future__ import annotations

import argparse
import sys

from repro.exceptions import ReproError
from repro.harness import experiments as exp
from repro.harness import reporting
from repro.harness.runner import run_simulation
from repro.routing.registry import available_algorithms
from repro.sim.config import SimulationConfig
from repro.traffic.patterns import PATTERNS


def _jobs_arg(text: str) -> str:
    """Validate --jobs at parse time so errors are argparse-clean."""
    from repro.harness.parallel import resolve_jobs

    try:
        resolve_jobs(text)
    except ValueError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from None
    return text


def _fault_counts_arg(text: str) -> tuple[int, ...]:
    """Parse --fault-counts: comma-separated non-negative ints."""
    try:
        counts = tuple(int(item) for item in text.split(",") if item.strip())
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected comma-separated integers, got {text!r}"
        ) from None
    if not counts or any(c < 0 for c in counts):
        raise argparse.ArgumentTypeError(
            f"fault counts must be non-negative integers, got {text!r}"
        )
    return counts


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="footprint-noc",
        description=(
            "Cycle-level NoC simulator reproducing 'Footprint: Regulating "
            "Routing Adaptiveness in Networks-on-Chip' (ISCA 2017)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="run a single simulation")
    run.add_argument("--routing", default="footprint")
    run.add_argument("--traffic", default="uniform")
    run.add_argument("--injection-rate", type=float, default=0.1)
    run.add_argument("--width", type=int, default=8)
    run.add_argument("--height", type=int, default=None)
    run.add_argument(
        "--topology",
        choices=["mesh", "torus"],
        default="mesh",
        help=(
            "network topology: 'mesh' (the paper's) or 'torus' (wrap "
            "links, dateline VC classes; needs >= 2 VCs, >= 3 for "
            "Duato-based routing)"
        ),
    )
    run.add_argument("--vcs", type=int, default=10)
    run.add_argument("--buffer-depth", type=int, default=4)
    run.add_argument("--packet-size", type=int, default=1)
    run.add_argument(
        "--packet-size-range",
        type=int,
        nargs=2,
        metavar=("LO", "HI"),
        default=None,
    )
    run.add_argument("--warmup", type=int, default=1000)
    run.add_argument("--measure", type=int, default=2000)
    run.add_argument("--drain", type=int, default=5000)
    run.add_argument("--hotspot-rate", type=float, default=0.1)
    run.add_argument("--background-rate", type=float, default=0.3)
    run.add_argument("--footprint-vc-limit", type=int, default=None)
    run.add_argument("--seed", type=int, default=1)
    run.add_argument(
        "--engine-mode",
        choices=["auto", "vector", "skip", "fast", "legacy"],
        default=None,
        help=(
            "execution engine (default: $REPRO_ENGINE_MODE, else "
            "'skip'); all modes are bit-identical — 'vector' runs the "
            "structure-of-arrays batch core and falls back to 'skip' "
            "for configs needing per-object hooks (faults, telemetry); "
            "'auto' picks vector or skip per config from the offered "
            "load (threshold: $REPRO_ENGINE_AUTO_THRESHOLD)"
        ),
    )
    run.add_argument(
        "--faults",
        default=None,
        metavar="SPEC",
        help=(
            "fault schedule: comma-separated 'link:NODE:DIR', "
            "'router:NODE', 'links:K' or 'routers:K' items, each with "
            "optional '@CYCLE' (activation), '+DURATION' (transient) "
            "and, for the random forms, '~SEED' modifiers — e.g. "
            "'link:5:east,routers:2~7@100+500'"
        ),
    )
    run.add_argument(
        "--telemetry",
        action="store_true",
        help=(
            "collect time-series telemetry (occupancy, link utilization, "
            "stalls, footprint counters) and print a summary; telemetry "
            "observes the run without changing its results"
        ),
    )
    run.add_argument(
        "--sample-every",
        type=int,
        default=None,
        metavar="CYCLES",
        help=(
            "telemetry sampling interval in cycles (default 100; 0 "
            "disables sampling); implies --telemetry"
        ),
    )
    run.add_argument(
        "--trace-out",
        default=None,
        metavar="FILE",
        help=(
            "record per-flit lifecycle events and write them to FILE — "
            "'.jsonl' for JSON Lines, anything else for Chrome "
            "trace_event JSON (open in Perfetto / chrome://tracing); "
            "implies --telemetry"
        ),
    )
    run.add_argument(
        "--tree-node",
        type=int,
        action="append",
        default=None,
        metavar="NODE",
        help=(
            "sample the congestion tree of destination NODE each "
            "telemetry sample (repeatable); implies --telemetry"
        ),
    )
    run.add_argument(
        "--progress",
        action="store_true",
        help=(
            "echo cycle count and delivered packets to stderr while the "
            "simulation runs (off by default)"
        ),
    )

    experiment = sub.add_parser(
        "experiment", help="regenerate one of the paper's figures/tables"
    )
    experiment.add_argument(
        "figure",
        choices=[
            "fig2",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "table1",
            "cost",
            "fault-sweep",
        ],
    )
    experiment.add_argument(
        "--scale", choices=["smoke", "bench", "paper"], default="bench"
    )
    experiment.add_argument("--seed", type=int, default=1)
    experiment.add_argument(
        "--jobs",
        default=None,
        type=_jobs_arg,
        metavar="N|auto",
        help=(
            "worker processes for the simulation grid (default: "
            "REPRO_JOBS, else serial; 'auto' = one per CPU); results "
            "are identical for any value"
        ),
    )
    experiment.add_argument(
        "--cache",
        action=argparse.BooleanOptionalAction,
        default=False,
        help=(
            "reuse simulation results from the on-disk cache and store "
            "fresh ones (results are identical either way; a warm cache "
            "re-runs the experiment with zero simulations)"
        ),
    )
    experiment.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help=(
            "cache directory (default: $REPRO_CACHE_DIR, else "
            "./.repro-cache); implies --cache"
        ),
    )
    experiment.add_argument(
        "--profile",
        action="store_true",
        help=(
            "run the experiment under cProfile, print the top-25 "
            "cumulative-time entries, and write a .pstats file"
        ),
    )
    experiment.add_argument(
        "--profile-out",
        default=None,
        metavar="FILE",
        help="where --profile writes its .pstats dump "
        "(default: profile_<figure>.pstats)",
    )
    experiment.add_argument(
        "--fault-kind",
        choices=["link", "router"],
        default="link",
        help="component class the fault-sweep experiment breaks",
    )
    experiment.add_argument(
        "--fault-counts",
        type=_fault_counts_arg,
        default=None,
        metavar="K,K,...",
        help=(
            "fault counts swept by the fault-sweep experiment "
            "(default: the scale's ladder, e.g. 0,1,2,4,8)"
        ),
    )

    cache = sub.add_parser(
        "cache", help="inspect or trim the persistent result cache"
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    for name, help_text in (
        ("stats", "entry count and total size of the store"),
        ("clear", "delete every cached result"),
        ("prune", "keep only the newest N entries"),
    ):
        cache_cmd = cache_sub.add_parser(name, help=help_text)
        cache_cmd.add_argument(
            "--cache-dir",
            default=None,
            metavar="DIR",
            help=(
                "cache directory (default: $REPRO_CACHE_DIR, else "
                "./.repro-cache)"
            ),
        )
        if name == "prune":
            cache_cmd.add_argument(
                "--max-entries",
                type=int,
                required=True,
                metavar="N",
                help="number of most-recent entries to keep",
            )

    validate = sub.add_parser(
        "validate",
        help=(
            "run the runtime invariant checkers: randomized differential "
            "sweep over all engine modes plus warm-cache replay, or the "
            "mutation self-test proving each checker fires"
        ),
    )
    validate.add_argument(
        "--runs",
        type=int,
        default=8,
        metavar="N",
        help="number of randomized configurations to sweep (default 8)",
    )
    validate.add_argument("--seed", type=int, default=1)
    validate.add_argument(
        "--jobs",
        default=None,
        type=_jobs_arg,
        metavar="N|auto",
        help=(
            "worker processes for the final pooled re-run (default: "
            "REPRO_JOBS, else serial, which skips that phase)"
        ),
    )
    validate.add_argument(
        "--no-faults",
        action="store_true",
        help="draw only fault-free configurations",
    )
    validate.add_argument(
        "--self-test",
        action="store_true",
        help=(
            "instead of the differential sweep, corrupt one piece of "
            "simulator state per checker (seeded mutations) and verify "
            "every checker catches its corruption"
        ),
    )

    serve = sub.add_parser(
        "serve",
        help=(
            "run the experiment service: an async job server that "
            "interleaves sweep grids from many client streams, dedupes "
            "against in-flight work and the result cache, and keeps "
            "persistent leaderboards"
        ),
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port",
        type=int,
        default=None,
        help="TCP port (default 7455; 0 picks a free port and prints it)",
    )
    serve.add_argument(
        "--state-dir",
        default=None,
        metavar="DIR",
        help=(
            "service state directory for the leaderboard store and the "
            "default cache (default: $REPRO_SERVICE_DIR, else "
            "./.repro-service)"
        ),
    )
    serve.add_argument(
        "--jobs",
        default=None,
        type=_jobs_arg,
        metavar="N|auto",
        help=(
            "concurrent simulations (default: REPRO_JOBS, else 1; "
            "'auto' = one per CPU)"
        ),
    )
    serve.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help=(
            "result cache backing the service's dedup (default: "
            "<state-dir>/cache)"
        ),
    )
    serve.add_argument(
        "--engine-mode",
        choices=["auto", "vector", "skip", "fast", "legacy"],
        default="auto",
        help=(
            "engine for simulated misses (default 'auto': re-resolved "
            "per task from its offered load)"
        ),
    )

    submit = sub.add_parser(
        "submit",
        help="submit a sweep grid to a running experiment service",
    )
    submit.add_argument(
        "--address",
        default=None,
        metavar="HOST:PORT",
        help="service address (default: $REPRO_SERVICE, else :7455)",
    )
    submit.add_argument(
        "--name",
        default=None,
        help="job name (default: derived from the grid)",
    )
    submit.add_argument("--stream", default="default")
    submit.add_argument(
        "--weight",
        type=float,
        default=1.0,
        help="fair-share weight of the stream (default 1.0)",
    )
    submit.add_argument(
        "--routing",
        default="footprint",
        help="comma-separated routing algorithms to sweep",
    )
    submit.add_argument(
        "--rates",
        default="0.02,0.05",
        help="comma-separated injection rates to sweep",
    )
    submit.add_argument("--traffic", default="uniform")
    submit.add_argument("--width", type=int, default=8)
    submit.add_argument("--height", type=int, default=None)
    submit.add_argument(
        "--topology", choices=["mesh", "torus"], default="mesh"
    )
    submit.add_argument("--vcs", type=int, default=10)
    submit.add_argument("--packet-size", type=int, default=1)
    submit.add_argument("--warmup", type=int, default=1000)
    submit.add_argument("--measure", type=int, default=2000)
    submit.add_argument("--drain", type=int, default=5000)
    submit.add_argument("--seed", type=int, default=1)
    submit.add_argument(
        "--wait",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="poll until the job finishes and print its results",
    )
    submit.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="give up waiting after this long (default: forever)",
    )

    jobs_cmd = sub.add_parser(
        "jobs", help="list, inspect, or cancel service jobs"
    )
    jobs_cmd.add_argument(
        "--address",
        default=None,
        metavar="HOST:PORT",
        help="service address (default: $REPRO_SERVICE, else :7455)",
    )
    jobs_cmd.add_argument(
        "--job", default=None, metavar="ID", help="show one job in detail"
    )
    jobs_cmd.add_argument(
        "--cancel", default=None, metavar="ID", help="cancel a job"
    )

    leaderboard = sub.add_parser(
        "leaderboard",
        help=(
            "render the persistent per-scenario standings and bench "
            "trajectory (reads the state dir directly; --address asks a "
            "running service instead)"
        ),
    )
    leaderboard.add_argument(
        "--state-dir",
        default=None,
        metavar="DIR",
        help=(
            "service state directory (default: $REPRO_SERVICE_DIR, else "
            "./.repro-service)"
        ),
    )
    leaderboard.add_argument(
        "--address",
        default=None,
        metavar="HOST:PORT",
        help="query a running service instead of reading the state dir",
    )
    leaderboard.add_argument(
        "--ingest-bench",
        default=None,
        metavar="DIR",
        help=(
            "fold the BENCH_*.json trajectory under DIR into the store "
            "before rendering (idempotent)"
        ),
    )
    leaderboard.add_argument(
        "--ingest-tune",
        default=None,
        metavar="PATH",
        help=(
            "fold a TUNE_*.json artifact (or every one under a "
            "directory) into the store before rendering — each "
            "frontier config becomes one result record; idempotent "
            "per file"
        ),
    )

    tune = sub.add_parser(
        "tune",
        help=(
            "search the config space (congestion threshold, VC limit, "
            "VC count, buffer depth, routing) for Pareto-optimal "
            "latency/throughput/cost configs, evaluating through the "
            "cached simulation farm"
        ),
    )
    tune.add_argument(
        "--traffic",
        default="hotspot",
        help="traffic pattern of the tuning scenario (default hotspot)",
    )
    tune.add_argument("--width", type=int, default=8)
    tune.add_argument(
        "--topology", choices=["mesh", "torus"], default="mesh"
    )
    tune.add_argument("--seed", type=int, default=1)
    tune.add_argument(
        "--scale",
        choices=["smoke", "bench", "paper"],
        default="bench",
        help="full-fidelity cycle counts (default bench)",
    )
    tune.add_argument(
        "--strategy",
        choices=["random", "halving", "refine"],
        default="refine",
        help=(
            "random = seeded sampling at full fidelity; halving = "
            "successive halving over fidelity rungs; refine (default) "
            "= halving plus beam refinement around the frontier"
        ),
    )
    tune.add_argument(
        "--budget",
        type=int,
        default=None,
        metavar="CYCLE_NODES",
        help=(
            "search budget in estimated cycle-nodes "
            "(cycles x mesh nodes per task, cache-independent; "
            "default: unlimited)"
        ),
    )
    tune.add_argument(
        "--n0",
        type=int,
        default=16,
        help="initial cohort size (default 16)",
    )
    tune.add_argument(
        "--eta",
        type=int,
        default=2,
        help="halving promotion factor: keep ceil(n/eta) (default 2)",
    )
    tune.add_argument(
        "--beam",
        type=int,
        default=4,
        help="refinement beam width (default 4)",
    )
    tune.add_argument(
        "--refine-rounds",
        type=int,
        default=2,
        help="neighbor-refinement rounds (default 2)",
    )
    tune.add_argument(
        "--rates",
        default=None,
        metavar="R,R,...",
        help=(
            "evaluation rate ladder, ascending (default: a per-traffic "
            "4-point ladder)"
        ),
    )
    tune.add_argument(
        "--latency-rate",
        type=float,
        default=None,
        metavar="R",
        help=(
            "ladder rate the latency objective reads (default: the "
            "middle rung)"
        ),
    )
    tune.add_argument(
        "--background-rate",
        type=float,
        default=0.3,
        help="hotspot background load (default 0.3)",
    )
    tune.add_argument(
        "--jobs",
        default=None,
        type=_jobs_arg,
        metavar="N|auto",
        help=(
            "worker processes (default: REPRO_JOBS, else serial); the "
            "search trajectory is identical for any value"
        ),
    )
    tune.add_argument(
        "--cache",
        action=argparse.BooleanOptionalAction,
        default=True,
        help=(
            "reuse the on-disk result cache (default on — a warm "
            "cache replays the whole tune with zero simulations)"
        ),
    )
    tune.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help=(
            "cache directory (default: $REPRO_CACHE_DIR, else "
            "./.repro-cache)"
        ),
    )
    tune.add_argument(
        "--engine-mode",
        choices=["auto", "vector", "skip", "fast", "legacy"],
        default=None,
        help="execution engine (default: $REPRO_ENGINE_MODE)",
    )
    tune.add_argument(
        "--out-dir",
        default=".",
        metavar="DIR",
        help="where the TUNE_*.json artifact lands (default: .)",
    )
    tune.add_argument(
        "--no-artifact",
        action="store_true",
        help="skip writing the TUNE_*.json artifact",
    )
    tune_sub = tune.add_subparsers(dest="tune_command")
    tune_report = tune_sub.add_parser(
        "report", help="re-render a TUNE_*.json artifact"
    )
    tune_report.add_argument("file", help="artifact written by repro tune")

    trace = sub.add_parser(
        "trace", help="inspect recorded flit lifecycle traces"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    summarize = trace_sub.add_parser(
        "summarize",
        help="digest a trace file (JSONL or Chrome trace_event JSON)",
    )
    summarize.add_argument("file", help="trace file written by run --trace-out")

    sub.add_parser("list", help="list routing algorithms and traffic patterns")
    return parser


#: Cycle interval of `run --progress` reports.
PROGRESS_EVERY = 1000


def _telemetry_from_args(args: argparse.Namespace):
    """Build the run's TelemetryConfig from CLI flags (None when off)."""
    tree_nodes = tuple(args.tree_node) if args.tree_node else ()
    wants_telemetry = (
        args.telemetry
        or args.sample_every is not None
        or args.trace_out is not None
        or bool(tree_nodes)
    )
    if not (wants_telemetry or args.progress):
        return None
    from repro.telemetry.config import DEFAULT_SAMPLE_EVERY, TelemetryConfig

    if args.sample_every is not None:
        sample_every = args.sample_every
    elif wants_telemetry:
        sample_every = DEFAULT_SAMPLE_EVERY
    else:
        sample_every = 0  # --progress alone: no series, just the ticker
    return TelemetryConfig(
        sample_every=sample_every,
        tree_nodes=tree_nodes,
        trace_flits=args.trace_out is not None,
        progress_every=PROGRESS_EVERY if args.progress else 0,
    )


def _cmd_run(args: argparse.Namespace) -> int:
    faults = None
    if args.faults is not None:
        from repro.faults.schedule import parse_fault_spec

        faults = parse_fault_spec(
            args.faults,
            args.width,
            args.height if args.height is not None else args.width,
            default_seed=args.seed,
            topology=args.topology,
        )
    telemetry = _telemetry_from_args(args)
    config = SimulationConfig(
        width=args.width,
        height=args.height,
        topology=args.topology,
        num_vcs=args.vcs,
        vc_buffer_depth=args.buffer_depth,
        routing=args.routing,
        traffic=args.traffic,
        injection_rate=args.injection_rate,
        packet_size=args.packet_size,
        packet_size_range=(
            tuple(args.packet_size_range)
            if args.packet_size_range is not None
            else None
        ),
        warmup_cycles=args.warmup,
        measure_cycles=args.measure,
        drain_cycles=args.drain,
        hotspot_rate=args.hotspot_rate,
        background_rate=args.background_rate,
        footprint_vc_limit=args.footprint_vc_limit,
        seed=args.seed,
        faults=faults,
        telemetry=telemetry,
    )
    result = run_simulation(config, verbose=False, engine_mode=args.engine_mode)
    print(f"configuration : {config.describe()}")
    if faults is not None:
        print(f"faults        : {faults.describe()}")
    print(f"cycles run    : {result.cycles_run}")
    if result.latency.count:
        print(f"avg latency   : {result.avg_latency:.2f} cycles")
        print(f"p99 latency   : {result.latency.percentile(99):.0f} cycles")
    else:
        print("avg latency   : n/a (no measured packets delivered)")
    print(f"accepted rate : {result.accepted_rate:.4f} flits/node/cycle")
    print(f"offered rate  : {result.offered_rate:.4f} flits/node/cycle")
    print(f"drained       : {'yes' if result.drained else 'no'}")
    if faults is not None:
        fraction = result.delivered_fraction
        text = "n/a" if fraction != fraction else f"{fraction:.4f}"
        print(f"delivered frac: {text}")
    if result.blocking.blocking_events:
        print(f"block purity  : {result.blocking.purity:.3f}")
    if result.telemetry is not None:
        print("telemetry:")
        for line in result.telemetry.summary().splitlines():
            print(f"  {line}")
        if args.trace_out is not None:
            from repro.telemetry.trace import write_trace

            count = write_trace(result.telemetry, args.trace_out)
            print(f"trace written : {args.trace_out} ({count} events)")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.telemetry.trace import summarize_trace

    try:
        print(summarize_trace(args.file))
    except OSError as exc:
        print(f"error: cannot read trace: {exc}", file=sys.stderr)
        return 2
    except (ValueError, KeyError) as exc:
        print(f"error: not a recognized trace file: {exc!r}", file=sys.stderr)
        return 2
    return 0


def _run_experiment(args: argparse.Namespace, cache) -> None:
    scale = {"smoke": exp.SMOKE, "bench": exp.BENCH, "paper": exp.PAPER}[
        args.scale
    ]
    figure = args.figure
    jobs = args.jobs
    if figure == "fig2":
        results = [
            exp.fig2_congestion_tree(r)
            for r in ("dor", "dbar", "dor+xordet", "footprint")
        ]
        print(reporting.report_fig2(results))
    elif figure == "fig5":
        print(
            reporting.report_fig5(
                exp.fig5_latency_throughput(
                    scale, seed=args.seed, jobs=jobs, cache=cache
                ),
                "Fig. 5 — single-flit packets",
            )
        )
    elif figure == "fig6":
        print(
            reporting.report_fig5(
                exp.fig6_variable_packet_size(
                    scale, seed=args.seed, jobs=jobs, cache=cache
                ),
                "Fig. 6 — {1..6}-flit packets",
            )
        )
    elif figure == "fig7":
        for pattern in exp.FIG5_PATTERNS:
            print(
                reporting.report_fig7(
                    exp.fig7_vc_sweep(
                        scale,
                        pattern,
                        seed=args.seed,
                        jobs=jobs,
                        cache=cache,
                    ),
                    pattern,
                )
            )
            print()
    elif figure == "fig8":
        print(
            reporting.report_fig8(
                exp.fig8_network_size(
                    scale, seed=args.seed, jobs=jobs, cache=cache
                )
            )
        )
    elif figure == "fig9":
        print(
            reporting.report_fig9(
                exp.fig9_hotspot(
                    scale, seed=args.seed, jobs=jobs, cache=cache
                )
            )
        )
    elif figure == "fig10":
        print(
            reporting.report_fig10(
                exp.fig10_parsec(
                    scale, seed=args.seed, jobs=jobs, cache=cache
                )
            )
        )
    elif figure == "table1":
        print(reporting.report_table1(exp.table1_adaptiveness()))
    elif figure == "cost":
        print(reporting.report_cost(exp.cost_table()))
    elif figure == "fault-sweep":
        print(
            reporting.report_fault_sweep(
                exp.fault_sweep(
                    scale,
                    fault_counts=args.fault_counts,
                    fault_kind=args.fault_kind,
                    seed=args.seed,
                    jobs=jobs,
                    cache=cache,
                )
            )
        )


def _cmd_experiment(args: argparse.Namespace) -> int:
    cache = None
    if args.cache or args.cache_dir is not None:
        from repro.harness.cache import ResultCache

        cache = ResultCache(args.cache_dir)
    if args.profile:
        import cProfile
        import pstats

        out = args.profile_out or f"profile_{args.figure}.pstats"
        profiler = cProfile.Profile()
        profiler.enable()
        try:
            _run_experiment(args, cache)
        finally:
            profiler.disable()
            profiler.dump_stats(out)
            stats = pstats.Stats(profiler)
            stats.sort_stats("cumulative").print_stats(25)
            print(f"profile written to {out}")
    else:
        _run_experiment(args, cache)
    if cache is not None:
        print(cache.describe())
    return 0


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.harness.cache import ResultCache

    cache = ResultCache(args.cache_dir)
    command = args.cache_command
    if command == "stats":
        stats = cache.stats()
        kib = stats["total_bytes"] / 1024.0
        print(f"directory : {stats['directory']}")
        print(f"entries   : {stats['entries']}")
        print(f"size      : {kib:.1f} KiB")
    elif command == "clear":
        removed = cache.clear()
        print(f"removed {removed} entries from {cache.directory}")
    elif command == "prune":
        if args.max_entries < 0:
            print("error: --max-entries must be >= 0", file=sys.stderr)
            return 2
        removed = cache.prune(args.max_entries)
        print(
            f"removed {removed} entries from {cache.directory} "
            f"(keeping newest {args.max_entries})"
        )
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from repro.validate.differential import (
        ENGINE_MODES,
        random_configs,
        run_differential,
        self_test,
    )

    if args.self_test:
        outcomes = self_test(seed=args.seed)
        failures = 0
        for outcome in outcomes:
            status = "FIRED" if outcome.ok else "MISSED"
            print(
                f"mutation {outcome.mutation:<10s} -> checker "
                f"{outcome.expected_checker:<20s} {status}"
            )
            if not outcome.ok:
                failures += 1
                print(f"  {outcome.detail}")
        print(
            f"self-test: {len(outcomes) - failures}/{len(outcomes)} "
            f"mutations caught"
        )
        return 0 if failures == 0 else 1

    if args.runs < 1:
        print("error: --runs must be >= 1", file=sys.stderr)
        return 2
    configs = random_configs(
        args.runs, args.seed, include_faults=not args.no_faults
    )
    report = run_differential(configs, jobs=args.jobs)
    failures = 0
    for entry in report.entries:
        if entry.ok:
            note = (
                f"  [vector fell back: {entry.vector_fallback}]"
                if entry.vector_fallback
                else ""
            )
            print(
                f"ok   {entry.description}  [{entry.checks_run} "
                f"checks]{note}"
            )
        else:
            failures += 1
            print(f"FAIL {entry.description}")
            if entry.error is not None:
                print(f"  {entry.error}")
            elif not entry.modes_identical:
                print(f"  engine modes disagree: {sorted(ENGINE_MODES)}")
            elif entry.warm_misses != 0:
                print(f"  warm cache replay missed {entry.warm_misses}x")
            else:
                print("  cache replay signature mismatch")
    if report.pool_identical is not None:
        status = "identical" if report.pool_identical else "DIVERGED"
        print(f"pooled re-run: {status}")
        if not report.pool_identical:
            failures += 1
    fallbacks = report.vector_fallbacks
    if fallbacks:
        detail = ", ".join(
            f"{reason} x{count}"
            for reason, count in sorted(fallbacks.items())
        )
        print(
            f"vector fallbacks: {sum(fallbacks.values())}/"
            f"{len(report.entries)} configs ({detail})"
        )
    else:
        print("vector fallbacks: none")
    print(
        f"validate: {len(report.entries) - failures}/{len(report.entries)} "
        f"configurations clean (modes {'/'.join(ENGINE_MODES)} + "
        f"warm-cache replay, all checkers on)"
    )
    return 0 if report.ok else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.service import DEFAULT_PORT
    from repro.service.server import serve

    port = args.port if args.port is not None else DEFAULT_PORT
    try:
        return asyncio.run(
            serve(
                host=args.host,
                port=port,
                state_dir=args.state_dir,
                jobs=args.jobs,
                cache_dir=args.cache_dir,
                engine_mode=args.engine_mode,
            )
        )
    except KeyboardInterrupt:
        print("repro service interrupted", file=sys.stderr)
        return 130


def _submit_grid(args: argparse.Namespace):
    """Build the (tasks, job name) pair of a `repro submit` invocation."""
    from repro.harness.parallel import SimTask
    from repro.service import ServiceError

    routings = [r.strip() for r in args.routing.split(",") if r.strip()]
    try:
        rates = [
            float(r) for r in args.rates.split(",") if r.strip()
        ]
    except ValueError:
        raise ServiceError(
            f"--rates expects comma-separated floats, got {args.rates!r}"
        ) from None
    if not routings or not rates:
        raise ServiceError("--routing and --rates must be non-empty")
    tasks = []
    for routing in routings:
        config = SimulationConfig(
            width=args.width,
            height=args.height,
            topology=args.topology,
            num_vcs=args.vcs,
            routing=routing,
            traffic=args.traffic,
            injection_rate=rates[0],
            packet_size=args.packet_size,
            warmup_cycles=args.warmup,
            measure_cycles=args.measure,
            drain_cycles=args.drain,
            seed=args.seed,
        )
        tasks.extend(SimTask(config, rate=rate) for rate in rates)
    name = args.name or (
        f"{args.traffic}-{'+'.join(routings)}-x{len(rates)}"
    )
    return tasks, name


def _cmd_submit(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient

    tasks, name = _submit_grid(args)
    client = ServiceClient.from_address(args.address)
    response = client.submit_tasks(
        name, tasks, stream=args.stream, weight=args.weight
    )
    job_id = response["job_id"]
    dedup_note = " (deduped: identical grid already known)" if (
        response["deduped"]
    ) else ""
    print(
        f"job {job_id} [{name}] on stream '{args.stream}': "
        f"{response['tasks']} tasks, hash {response['hash'][:12]}"
        f"{dedup_note}"
    )
    if not args.wait:
        return 0
    job = client.wait(job_id, timeout=args.timeout)
    counts = job["counts"]
    print(
        f"job {job_id} {job['state']} in {job['elapsed_s']}s: "
        f"{counts['simulated']} simulated, {counts['cached']} cached, "
        f"{counts['shared']} shared"
    )
    result = client.result(job_id)
    for point in result["points"]:
        latency = point.get("avg_latency")
        latency_text = (
            f"{latency:8.2f}" if latency is not None else "     n/a"
        )
        print(
            f"  {point['routing']:>16s} {point['traffic']:>10s} "
            f"inj={point['injection_rate']:.3f} -> lat={latency_text} "
            f"acc={point.get('accepted_rate', float('nan')):.4f} "
            f"[{point['kind'] or point['state']}]"
        )
    return 0 if job["state"] == "done" else 1


def _cmd_jobs(args: argparse.Namespace) -> int:
    from repro.service.client import ServiceClient

    client = ServiceClient.from_address(args.address)
    if args.cancel is not None:
        response = client.cancel(args.cancel)
        verdict = (
            "cancelled" if response["cancelled"] else "already terminal"
        )
        print(f"job {args.cancel}: {verdict} (state {response['state']})")
        return 0
    if args.job is not None:
        job = client.status(args.job)["job"]
        counts = job["counts"]
        print(f"job {job['job_id']} [{job['name']}]")
        print(f"  stream : {job['stream']}")
        print(f"  state  : {job['state']}")
        print(f"  hash   : {job['hash'][:12]}")
        print(
            f"  tasks  : {counts['done']}/{counts['total']} done "
            f"({counts['simulated']} simulated, {counts['cached']} "
            f"cached, {counts['shared']} shared)"
        )
        if job["error"]:
            print(f"  error  : {job['error']}")
        for timestamp, message in job["events"]:
            print(f"  event  : {message}")
        return 0
    status = client.status()
    totals = status["totals"]
    print(
        f"{totals['jobs']} jobs, {totals['streams']} streams, "
        f"{totals['active_workers']}/{totals['max_workers']} workers "
        f"busy; {totals['simulated']} simulated, {totals['cached']} "
        f"cached, {totals['shared']} shared"
    )
    for job in status["jobs"]:
        counts = job["counts"]
        print(
            f"  {job['job_id']:<5s} {job['state']:<9s} "
            f"{job['stream']:<12s} {counts['done']}/{counts['total']} "
            f"done  [{job['name']}]"
        )
    return 0


def _cmd_leaderboard(args: argparse.Namespace) -> int:
    from repro.service import ServiceError
    from repro.service.leaderboard import LeaderboardStore

    if args.address is not None:
        if args.ingest_bench is not None or args.ingest_tune is not None:
            raise ServiceError(
                "--ingest-bench/--ingest-tune work on the local state "
                "dir; drop --address (the server ingests its own jobs)"
            )
        from repro.service.client import ServiceClient

        print(ServiceClient.from_address(args.address).leaderboard()["text"])
        return 0
    store = LeaderboardStore(args.state_dir)
    if args.ingest_bench is not None:
        added = store.ingest_bench_dir(args.ingest_bench)
        print(
            f"ingested {added} bench records from {args.ingest_bench} "
            f"into {store.path}"
        )
    if args.ingest_tune is not None:
        added = store.ingest_tune(args.ingest_tune)
        print(
            f"ingested {added} tune frontier records from "
            f"{args.ingest_tune} into {store.path}"
        )
    print(store.render())
    return 0


def _cmd_tune(args: argparse.Namespace) -> int:
    if getattr(args, "tune_command", None) == "report":
        from repro.tuner.report import load_tune, render_tune

        print(render_tune(load_tune(args.file)))
        return 0

    from repro.tuner import TunerError
    from repro.tuner.objectives import make_scenario
    from repro.tuner.report import render_tune, write_tune_artifact
    from repro.tuner.runner import run_tune

    rates = None
    if args.rates is not None:
        try:
            rates = tuple(
                float(r) for r in args.rates.split(",") if r.strip()
            )
        except ValueError:
            raise TunerError(
                f"--rates expects comma-separated floats, "
                f"got {args.rates!r}"
            ) from None
    scale = {"smoke": exp.SMOKE, "bench": exp.BENCH, "paper": exp.PAPER}[
        args.scale
    ]
    scenario = make_scenario(
        args.traffic,
        width=args.width,
        topology=args.topology,
        warmup=scale.warmup,
        measure=scale.measure,
        drain=scale.drain,
        seed=args.seed,
        rates=rates,
        latency_rate=args.latency_rate,
        background_rate=args.background_rate,
    )
    cache = None
    if args.cache or args.cache_dir is not None:
        from repro.harness.cache import ResultCache

        cache = ResultCache(args.cache_dir)
    result = run_tune(
        scenario,
        strategy=args.strategy,
        budget_cycles=args.budget,
        seed=args.seed,
        jobs=args.jobs,
        cache=cache,
        engine_mode=args.engine_mode,
        n0=args.n0,
        eta=args.eta,
        refine_rounds=args.refine_rounds,
        beam=args.beam,
    )
    print(render_tune(result))
    if not args.no_artifact:
        path = write_tune_artifact(result, args.out_dir)
        print(f"\nartifact written to {path}")
    return 0


def _cmd_list(_args: argparse.Namespace) -> int:
    from repro.topology.base import TOPOLOGIES

    print("topologies:")
    for name in TOPOLOGIES:
        print(f"  {name}")
    print("routing algorithms:")
    for name in available_algorithms():
        print(f"  {name}")
    print("traffic patterns:")
    for name in sorted(PATTERNS):
        print(f"  {name}")
    print("  hotspot")
    print("  trace")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "experiment": _cmd_experiment,
        "cache": _cmd_cache,
        "trace": _cmd_trace,
        "validate": _cmd_validate,
        "serve": _cmd_serve,
        "submit": _cmd_submit,
        "jobs": _cmd_jobs,
        "leaderboard": _cmd_leaderboard,
        "tune": _cmd_tune,
        "list": _cmd_list,
    }
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        # Validation problems (unknown algorithm/pattern, malformed fault
        # spec, inconsistent config) are user errors, not crashes: one
        # line on stderr, nonzero exit, no traceback.
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
