"""Flit lifecycle trace export: JSONL and Chrome ``trace_event`` JSON.

Two interchangeable on-disk forms of the events a
:class:`~repro.telemetry.result.TelemetryResult` carries:

* **JSONL** (``.jsonl``) — one self-describing JSON object per line,
  direction fields spelled as names; the grep/jq-friendly form.
* **Chrome trace** (``.json``) — the ``trace_event`` format understood by
  Perfetto / ``chrome://tracing``.  Each packet becomes one async span
  (``b``/``e``) from creation to ejection on the id of its packet, and
  each VC-allocation / switch / link event becomes an instant event on
  the thread-track of its router, so opening the file shows per-router
  activity lanes with packet lifetimes overlaid.  Timestamps are the
  simulated cycle (display unit: 1 µs = 1 cycle).

:func:`summarize_trace` reads either form back (sniffing the format) and
digests it for ``repro trace summarize``.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Any, Iterable

from repro.telemetry.result import TelemetryResult
from repro.topology.ports import Direction

#: JSONL field layout per event kind (after the shared kind/cycle pair).
_JSONL_FIELDS = {
    "gen": ("packet", "src", "dst", "size", "flow"),
    "inject": ("packet", "flit", "node"),
    "va": ("packet", "node", "out_dir", "out_vc", "footprint_hit"),
    "st": ("packet", "flit", "node", "in_dir", "out_dir", "out_vc"),
    "lt": ("packet", "flit", "node", "dir", "vc"),
    "ej": ("packet", "node"),
}

#: Event-tuple positions holding Direction ints, per kind.
_DIRECTION_FIELDS = {"out_dir", "in_dir", "dir"}


def event_to_record(event: tuple) -> dict[str, Any]:
    """One event tuple as a self-describing JSONL record."""
    kind = event[0]
    record: dict[str, Any] = {"kind": kind, "cycle": event[1]}
    for name, value in zip(_JSONL_FIELDS[kind], event[2:]):
        if name in _DIRECTION_FIELDS:
            value = Direction(value).name
        elif name == "footprint_hit":
            value = bool(value)
        record[name] = value
    return record


def write_jsonl(telemetry: TelemetryResult, path: str | Path) -> int:
    """Write the trace as JSON Lines; returns the event count."""
    path = Path(path)
    with path.open("w", encoding="utf-8") as fh:
        for event in telemetry.events:
            fh.write(json.dumps(event_to_record(event)) + "\n")
    return len(telemetry.events)


# ----------------------------------------------------------------------
# Chrome trace_event export
# ----------------------------------------------------------------------
def chrome_trace_events(telemetry: TelemetryResult) -> list[dict[str, Any]]:
    """The trace as a list of Chrome ``trace_event`` dicts."""
    out: list[dict[str, Any]] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 0,
            "tid": 0,
            "args": {"name": "footprint-noc"},
        }
    ]
    for event in telemetry.events:
        kind = event[0]
        cycle = event[1]
        pid = event[2]
        if kind == "gen":
            _, _, _, src, dst, size, flow = event
            out.append(
                {
                    "name": f"pkt {pid}",
                    "cat": "packet",
                    "ph": "b",
                    "id": pid,
                    "pid": 0,
                    "tid": src,
                    "ts": cycle,
                    "args": {
                        "src": src,
                        "dst": dst,
                        "size": size,
                        "flow": flow,
                    },
                }
            )
        elif kind == "ej":
            _, _, _, node = event
            out.append(
                {
                    "name": f"pkt {pid}",
                    "cat": "packet",
                    "ph": "e",
                    "id": pid,
                    "pid": 0,
                    "tid": node,
                    "ts": cycle,
                }
            )
        elif kind == "inject":
            _, _, _, flit, node = event
            out.append(
                {
                    "name": "inject",
                    "cat": "flit",
                    "ph": "i",
                    "s": "t",
                    "pid": 0,
                    "tid": node,
                    "ts": cycle,
                    "args": {"packet": pid, "flit": flit},
                }
            )
        elif kind == "va":
            _, _, _, node, out_dir, out_vc, fp_hit = event
            out.append(
                {
                    "name": "va",
                    "cat": "vc-alloc",
                    "ph": "i",
                    "s": "t",
                    "pid": 0,
                    "tid": node,
                    "ts": cycle,
                    "args": {
                        "packet": pid,
                        "out_dir": Direction(out_dir).name,
                        "out_vc": out_vc,
                        "footprint_hit": bool(fp_hit),
                    },
                }
            )
        elif kind == "st":
            _, _, _, flit, node, in_dir, out_dir, out_vc = event
            out.append(
                {
                    "name": "st",
                    "cat": "flit",
                    "ph": "i",
                    "s": "t",
                    "pid": 0,
                    "tid": node,
                    "ts": cycle,
                    "args": {
                        "packet": pid,
                        "flit": flit,
                        "in_dir": Direction(in_dir).name,
                        "out_dir": Direction(out_dir).name,
                        "out_vc": out_vc,
                    },
                }
            )
        elif kind == "lt":
            _, _, _, flit, node, direction, vc = event
            out.append(
                {
                    "name": "lt",
                    "cat": "flit",
                    "ph": "i",
                    "s": "t",
                    "pid": 0,
                    "tid": node,
                    "ts": cycle,
                    "args": {
                        "packet": pid,
                        "flit": flit,
                        "dir": Direction(direction).name,
                        "vc": vc,
                    },
                }
            )
    return out


def write_chrome_trace(telemetry: TelemetryResult, path: str | Path) -> int:
    """Write the trace as Chrome ``trace_event`` JSON; returns the
    ``trace_event`` count (excluding metadata)."""
    path = Path(path)
    events = chrome_trace_events(telemetry)
    payload = {"traceEvents": events, "displayTimeUnit": "ms"}
    path.write_text(json.dumps(payload), encoding="utf-8")
    return len(events) - 1


def write_trace(telemetry: TelemetryResult, path: str | Path) -> int:
    """Write the trace, picking the format from the file suffix.

    ``.jsonl`` → JSON Lines; anything else → Chrome ``trace_event``.
    """
    path = Path(path)
    if path.suffix == ".jsonl":
        return write_jsonl(telemetry, path)
    return write_chrome_trace(telemetry, path)


# ----------------------------------------------------------------------
# Readback + summary
# ----------------------------------------------------------------------
def load_trace_records(path: str | Path) -> list[dict[str, Any]]:
    """Load either trace form back as a list of JSONL-style records.

    Chrome traces are translated back to the JSONL vocabulary (packet
    spans become ``gen``/``ej`` records) so downstream analysis handles
    one shape.
    """
    path = Path(path)
    text = path.read_text(encoding="utf-8")
    stripped = text.lstrip()
    if stripped.startswith("{") and '"traceEvents"' in stripped[:200]:
        payload = json.loads(text)
        return [
            _chrome_to_record(ev)
            for ev in payload["traceEvents"]
            if ev.get("ph") != "M"
        ]
    records = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            records.append(json.loads(line))
    return records


def _chrome_to_record(event: dict[str, Any]) -> dict[str, Any]:
    args = event.get("args", {})
    ph = event.get("ph")
    if ph == "b":
        return {
            "kind": "gen",
            "cycle": event["ts"],
            "packet": event["id"],
            **args,
        }
    if ph == "e":
        return {
            "kind": "ej",
            "cycle": event["ts"],
            "packet": event["id"],
            "node": event["tid"],
        }
    return {
        "kind": event["name"],
        "cycle": event["ts"],
        "node": event["tid"],
        **args,
    }


def summarize_trace(path: str | Path) -> str:
    """Human-readable digest of a trace file (either format)."""
    records = load_trace_records(path)
    if not records:
        return f"{path}: empty trace"
    kinds = Counter(r["kind"] for r in records)
    cycles = [r["cycle"] for r in records]
    lines = [
        f"{path}: {len(records)} events over cycles "
        f"{min(cycles)}..{max(cycles)}"
    ]
    lines.append(
        "events by kind : "
        + ", ".join(f"{kind}={kinds[kind]}" for kind in sorted(kinds))
    )
    born = {
        r["packet"]: r["cycle"] for r in records if r["kind"] == "gen"
    }
    ejected = {
        r["packet"]: r["cycle"] for r in records if r["kind"] == "ej"
    }
    done = set(born) & set(ejected)
    if born:
        lines.append(
            f"packets        : {len(born)} created, "
            f"{len(ejected)} ejected ({len(done)} complete lifetimes)"
        )
    if done:
        latencies = sorted(ejected[p] - born[p] for p in done)
        mean = sum(latencies) / len(latencies)
        lines.append(
            f"pkt lifetime   : mean {mean:.1f} cycles, "
            f"min {latencies[0]}, max {latencies[-1]}"
        )
    hits = [
        r
        for r in records
        if r["kind"] == "va" and "footprint_hit" in r
    ]
    if hits:
        hit_count = sum(1 for r in hits if r["footprint_hit"])
        lines.append(
            f"footprint hits : {hit_count}/{len(hits)} VC allocations "
            f"({hit_count / len(hits):.1%})"
        )
    traffic = Counter(
        r["node"] for r in records if r["kind"] == "lt"
    )
    if traffic:
        busiest = ", ".join(
            f"n{node} ({count})" for node, count in traffic.most_common(3)
        )
        lines.append(f"busiest routers: {busiest} by link traversals")
    return "\n".join(lines)


def iter_packet_lifetimes(
    records: Iterable[dict[str, Any]],
) -> dict[int, tuple[int, int]]:
    """Map packet id → (creation cycle, ejection cycle) for completed
    packets in a record stream."""
    born: dict[int, int] = {}
    spans: dict[int, tuple[int, int]] = {}
    for r in records:
        if r["kind"] == "gen":
            born[r["packet"]] = r["cycle"]
        elif r["kind"] == "ej" and r["packet"] in born:
            spans[r["packet"]] = (born[r["packet"]], r["cycle"])
    return spans
