"""Collected telemetry of one simulation run.

:class:`TelemetryResult` is the immutable-ish record the
:class:`~repro.telemetry.hub.TelemetryHub` produces at the end of a run:
the sampled time series (network occupancy, VC busy/stall counts, link
utilization, Footprint counters, congestion-tree shape per tracked
destination), the per-router occupancy vectors, cumulative counters, and
— when flit tracing was enabled — the raw lifecycle events.

It rides on :class:`~repro.sim.results.SimulationResult` (its
``telemetry`` field), survives the pickle trip back from parallel
workers, and round-trips through JSON via :meth:`to_dict` /
:meth:`from_dict`.  Lifecycle events are stored as plain tuples::

    ("gen",    cycle, packet_id, src, dst, size, flow)
    ("inject", cycle, packet_id, flit_index, node)
    ("va",     cycle, packet_id, node, out_dir, out_vc, fp_hit)
    ("st",     cycle, packet_id, flit_index, node, in_dir, out_dir, out_vc)
    ("lt",     cycle, packet_id, flit_index, node, direction, vc)
    ("ej",     cycle, packet_id, node)

Directions are stored as their integer :class:`~repro.topology.ports.
Direction` values so events stay cheap to record and to serialize; the
exporters in :mod:`repro.telemetry.trace` translate them to names.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any

#: The lifecycle event kinds, in pipeline order.
EVENT_KINDS = ("gen", "inject", "va", "st", "lt", "ej")


@dataclass
class TelemetryResult:
    """Everything the telemetry layer recorded during one run."""

    #: Sampling interval the series were collected at (0 = no sampling).
    sample_every: int
    #: Cycle of each sample; parallel to every series list.
    sample_cycles: list[int] = field(default_factory=list)
    #: Named scalar time series (one value per sample).
    series: dict[str, list[float]] = field(default_factory=dict)
    #: Per-sample vector of flits buffered inside each router.
    router_occupancy: list[list[int]] = field(default_factory=list)
    #: Cumulative counters over the whole run.
    counters: dict[str, int] = field(default_factory=dict)
    #: Flit lifecycle events (empty unless tracing was enabled).
    events: list[tuple] = field(default_factory=list)

    # ------------------------------------------------------------------
    @property
    def num_samples(self) -> int:
        return len(self.sample_cycles)

    @property
    def footprint_hit_rate(self) -> float:
        """Fraction of VC allocations that reused a footprint VC.

        A *footprint hit* is an allocation whose granted VC was last
        owned by a packet to the same destination — the event Footprint
        engineers for.  NaN when no allocation was observed.
        """
        allocs = self.counters.get("vc_allocs", 0)
        if allocs == 0:
            return math.nan
        return self.counters.get("footprint_hits", 0) / allocs

    def tree_series(self, node: int) -> dict[str, list[float]]:
        """The congestion-tree series of ``node`` (may be empty)."""
        prefix = f"tree/{node}/"
        return {
            name[len(prefix):]: values
            for name, values in self.series.items()
            if name.startswith(prefix)
        }

    def tree_nodes(self) -> list[int]:
        """Destinations with congestion-tree series, ascending."""
        nodes = {
            int(name.split("/")[1])
            for name in self.series
            if name.startswith("tree/")
        }
        return sorted(nodes)

    def series_max(self, name: str) -> float:
        values = self.series.get(name)
        return max(values) if values else math.nan

    def series_mean(self, name: str) -> float:
        values = self.series.get(name)
        if not values:
            return math.nan
        return sum(values) / len(values)

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form; inverse of :meth:`from_dict`."""
        return {
            "sample_every": self.sample_every,
            "sample_cycles": list(self.sample_cycles),
            "series": {k: list(v) for k, v in self.series.items()},
            "router_occupancy": [list(v) for v in self.router_occupancy],
            "counters": dict(self.counters),
            "events": [list(e) for e in self.events],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TelemetryResult":
        """Rebuild from :meth:`to_dict` output (or parsed JSON)."""
        return cls(
            sample_every=data["sample_every"],
            sample_cycles=list(data["sample_cycles"]),
            series={k: list(v) for k, v in data["series"].items()},
            router_occupancy=[list(v) for v in data["router_occupancy"]],
            counters=dict(data["counters"]),
            events=[tuple(e) for e in data["events"]],
        )

    # ------------------------------------------------------------------
    def summary(self) -> str:
        """Multi-line human-readable digest for the CLI."""
        lines = [
            f"samples       : {self.num_samples}"
            + (f" (every {self.sample_every} cycles)" if self.sample_every else "")
        ]
        if self.sample_cycles:
            lines.append(
                "peak in-flight: "
                f"{self.series_max('flits_in_network'):.0f} flits "
                f"(mean {self.series_mean('flits_in_network'):.1f})"
            )
            lines.append(
                "peak HoL wait : "
                f"{self.series_max('hol_pending_vcs'):.0f} VCs, "
                f"credit-stalled peak "
                f"{self.series_max('credit_stalled_vcs'):.0f}"
            )
            lines.append(
                "link util     : "
                f"mean {self.series_mean('link_mean_util'):.3f}, "
                f"window peak {self.series_max('link_max_util'):.3f}"
            )
        rate = self.footprint_hit_rate
        if rate == rate:  # not NaN
            lines.append(
                f"footprint hits: {self.counters.get('footprint_hits', 0)}"
                f"/{self.counters.get('vc_allocs', 0)} VC allocations "
                f"({rate:.1%})"
            )
        for node in self.tree_nodes():
            tree = self.tree_series(node)
            branches = tree.get("branches", [])
            if branches:
                lines.append(
                    f"tree @ n{node}  : peak {max(branches):.0f} branches "
                    f"(mean {sum(branches) / len(branches):.2f}), "
                    f"peak width {max(tree.get('vcs', [0])):.0f} VCs"
                )
        recorded = self.counters.get("events_recorded", 0)
        dropped = self.counters.get("events_dropped", 0)
        if recorded or dropped:
            note = f", {dropped} dropped at the trace limit" if dropped else ""
            lines.append(f"trace events  : {recorded}{note}")
        return "\n".join(lines)
