"""repro.telemetry — cycle-level observability for the simulator.

The subsystem has four parts:

* :class:`~repro.telemetry.config.TelemetryConfig` — what to record;
  rides on ``SimulationConfig.telemetry`` and serializes with it, but is
  excluded from result-cache keys (telemetry never changes simulated
  state).
* :class:`~repro.telemetry.hub.TelemetryHub` — the probe sink the engine
  and routers call; owns the time-series samplers, the flit tracer, and
  the per-channel utilization counters.
* :class:`~repro.telemetry.result.TelemetryResult` — the collected
  series/counters/events, carried on ``SimulationResult.telemetry``.
* :mod:`~repro.telemetry.trace` — JSONL and Chrome ``trace_event``
  exporters plus the trace summarizer behind ``repro trace summarize``.

Probes are zero-overhead when disabled: a run without telemetry has
``Simulator.telemetry is None`` and every probe site is a single hoisted
``is not None`` check.
"""

from repro.telemetry.config import (
    DEFAULT_SAMPLE_EVERY,
    DEFAULT_TRACE_LIMIT,
    TelemetryConfig,
)
from repro.telemetry.hub import TelemetryHub
from repro.telemetry.result import EVENT_KINDS, TelemetryResult
from repro.telemetry.trace import (
    summarize_trace,
    write_chrome_trace,
    write_jsonl,
    write_trace,
)

__all__ = [
    "DEFAULT_SAMPLE_EVERY",
    "DEFAULT_TRACE_LIMIT",
    "EVENT_KINDS",
    "TelemetryConfig",
    "TelemetryHub",
    "TelemetryResult",
    "summarize_trace",
    "write_chrome_trace",
    "write_jsonl",
    "write_trace",
]
