"""The telemetry hub: probe sinks, time-series samplers, flit tracing.

The hub is the single object the engine and routers talk to.  Design
rules, in priority order:

1. **Zero overhead when disabled.**  A simulation without telemetry has
   ``Simulator.telemetry is None`` and every probe site reduces to one
   hoisted ``is not None`` check; no hub is ever constructed.
2. **Observation only.**  Probe and sampler code reads simulator state
   but never mutates it and never touches an RNG stream, so results are
   bit-identical with telemetry on or off (asserted by the engine-mode
   tests).
3. **Mode-independent series.**  The sampling schedule is an absolute
   cycle grid (every ``sample_every`` cycles).  When the ``skip`` engine
   mode jumps over provably-quiescent cycles, :meth:`on_skip`
   synthesizes the samples that fall inside the jump with their known
   quiescent values, so the collected series are identical across the
   ``skip``/``fast``/``legacy`` engine modes.

Probe sites (who calls what):

====================  ===============================================
engine link stage     :meth:`link` — one call per flit per hop
engine generation     :meth:`packet_created`
engine injection      :meth:`inject` — head/body/tail entering the net
engine ejection       :meth:`packet_ejected` — tail consumed at sink
router VC allocation  :meth:`vc_alloc` — every granted output VC
router switch stage   :meth:`switch` — only when ``tracing``
engine cycle end      :meth:`end_cycle` — sampling + progress
engine idle skip      :meth:`on_skip`
====================  ===============================================
"""

from __future__ import annotations

import sys
from typing import TYPE_CHECKING

from repro.metrics.utilization import ChannelUtilization
from repro.telemetry.config import TelemetryConfig
from repro.telemetry.result import TelemetryResult
from repro.topology.base import Topology
from repro.topology.ports import NUM_PORTS
from repro.router.vcstate import VcState

if TYPE_CHECKING:
    from repro.router.flit import Flit, Packet
    from repro.sim.engine import Simulator


class TelemetryHub:
    """Collects everything one simulation's probes report.

    Also hosts the per-channel flit counters behind
    :class:`~repro.metrics.utilization.ChannelUtilization` — the
    pre-telemetry ``track_utilization`` feature is now just the link
    sampler of this hub, and a hub constructed from a config whose
    telemetry is inactive (``config.active`` false) degrades to exactly
    that: link counting with no sampling, tracing, or progress.
    """

    def __init__(self, config: TelemetryConfig, mesh: Topology) -> None:
        self.config = config
        self.mesh = mesh
        #: Current simulated cycle, maintained by :meth:`end_cycle` /
        #: :meth:`on_skip` so router-side probes need no cycle argument.
        self.cycle = 0
        #: Whether flit lifecycle events are recorded.  Routers read
        #: this once per switch-traversal round.
        self.tracing = bool(config.trace_flits)

        self.utilization = ChannelUtilization(mesh, cycles=0)
        # Direct alias of the utilization array: the link probe is the
        # hottest telemetry call site (one per flit per hop).
        self._counts = self.utilization._counts
        # Channel indices of inter-router links, for window statistics.
        self._channel_idx = [
            node * NUM_PORTS + direction
            for node, direction, _ in mesh.channels()
        ]
        self._prev_counts = [0] * len(self._counts)
        self._prev_sample_cycle = -1

        self._sample_every = config.sample_every
        self._next_sample = (
            config.sample_every - 1 if config.sample_every else -1
        )
        self._progress_every = config.progress_every
        self._next_progress = (
            config.progress_every - 1 if config.progress_every else -1
        )
        self._tree_nodes = config.tree_nodes

        self._events: list[tuple] = []
        self._limit = config.trace_limit if self.tracing else 0
        self._dropped = 0
        # Packet ids in events are run-local (0, 1, 2, ... in creation
        # order), not the process-global Packet.packet_id counter, so
        # identical runs produce byte-identical traces regardless of how
        # many simulations ran before them in the process.
        self._pid_map: dict[int, int] = {}
        self._vc_allocs = 0
        self._fp_hits = 0

        self._sample_cycles: list[int] = []
        self._series: dict[str, list[float]] = {}
        self._router_occupancy: list[list[int]] = []
        if self._sample_every:
            names = [
                "flits_in_network",
                "occupied_input_vcs",
                "busy_output_vcs",
                "credit_stalled_vcs",
                "hol_pending_vcs",
                "vc_allocs",
                "footprint_hits",
                "link_mean_util",
                "link_max_util",
            ]
            for node in self._tree_nodes:
                names += [
                    f"tree/{node}/branches",
                    f"tree/{node}/vcs",
                    f"tree/{node}/max_thickness",
                ]
            self._series = {name: [] for name in names}

    # ------------------------------------------------------------------
    # Hot probes (called from the engine/router inner loops)
    # ------------------------------------------------------------------
    def link(self, node: int, direction: int, vc: int, flit: "Flit") -> None:
        """A flit left ``node`` through output channel ``direction``."""
        self._counts[node * NUM_PORTS + direction] += 1
        if self.tracing:
            self._event(
                (
                    "lt",
                    self.cycle,
                    self._pid(flit.packet.packet_id),
                    flit.index,
                    node,
                    int(direction),
                    vc,
                )
            )

    def vc_alloc(
        self,
        node: int,
        direction: int,
        out_vc: int,
        head: "Flit",
        fp_hit: bool,
    ) -> None:
        """An output VC was granted to ``head``'s packet.

        ``fp_hit`` marks a *footprint hit*: the granted VC's previous
        owner was a packet to the same destination, i.e. the allocation
        reused a footprint VC instead of widening the tree.
        """
        self._vc_allocs += 1
        if fp_hit:
            self._fp_hits += 1
        if self.tracing:
            self._event(
                (
                    "va",
                    self.cycle,
                    self._pid(head.packet.packet_id),
                    node,
                    int(direction),
                    out_vc,
                    1 if fp_hit else 0,
                )
            )

    def switch(
        self,
        node: int,
        in_direction: int,
        flit: "Flit",
        out_direction: int,
        out_vc: int,
    ) -> None:
        """A flit crossed the switch (only called while ``tracing``)."""
        self._event(
            (
                "st",
                self.cycle,
                self._pid(flit.packet.packet_id),
                flit.index,
                node,
                int(in_direction),
                int(out_direction),
                out_vc,
            )
        )

    def packet_created(self, cycle: int, packet: "Packet") -> None:
        if not self.tracing:
            return
        self._event(
            (
                "gen",
                cycle,
                self._pid(packet.packet_id),
                packet.src,
                packet.dst,
                packet.size,
                packet.flow,
            )
        )

    def inject(self, cycle: int, node: int, flit: "Flit") -> None:
        if not self.tracing:
            return
        self._event(
            ("inject", cycle, self._pid(flit.packet.packet_id), flit.index, node)
        )

    def packet_ejected(self, cycle: int, packet: "Packet") -> None:
        if not self.tracing:
            return
        self._event(("ej", cycle, self._pid(packet.packet_id), packet.dst))

    def _pid(self, raw_id: int) -> int:
        """Run-local packet id for ``raw_id``, assigned on first sight."""
        pid = self._pid_map.get(raw_id)
        if pid is None:
            pid = len(self._pid_map)
            self._pid_map[raw_id] = pid
        return pid

    def _event(self, event: tuple) -> None:
        if len(self._events) < self._limit:
            self._events.append(event)
        else:
            self._dropped += 1

    # ------------------------------------------------------------------
    # Cycle bookkeeping (called once per simulated cycle / skip)
    # ------------------------------------------------------------------
    def end_cycle(self, sim: "Simulator", cycle: int) -> None:
        """Run due samplers at the end of cycle ``cycle``."""
        self.utilization.cycles += 1
        if cycle == self._next_sample:
            self._take_sample(sim, cycle)
            self._next_sample += self._sample_every
        if cycle == self._next_progress:
            self._print_progress(sim, cycle)
            self._next_progress += self._progress_every
        self.cycle = cycle + 1

    def on_skip(self, sim: "Simulator", from_cycle: int, target: int) -> None:
        """The engine jumped from ``from_cycle`` to ``target`` over
        provably-quiescent cycles; synthesize the samples in between.

        During such a jump nothing is buffered anywhere and no credit is
        in flight, so every skipped sample's values are known without
        stepping: occupancy, stalls, and congestion trees are zero and
        the cumulative counters are unchanged.  Emitting them here keeps
        the series bit-identical to the ``fast``/``legacy`` modes, which
        step (and sample) through the same cycles.
        """
        self.utilization.cycles += target - from_cycle
        if self._sample_every:
            while self._next_sample < target:
                self._take_quiescent_sample(self._next_sample)
                self._next_sample += self._sample_every
        if self._progress_every and self._next_progress < target:
            while self._next_progress < target:
                self._next_progress += self._progress_every
            self._print_progress(sim, target - 1)
        self.cycle = target

    def finish(self, sim: "Simulator") -> None:
        """End-of-run hook: capture the final state as a last sample."""
        last = sim.cycle - 1
        if last < 0:
            return
        if (
            self._sample_every
            and (not self._sample_cycles or self._sample_cycles[-1] < last)
        ):
            self._take_sample(sim, last)
        if self._progress_every:
            self._print_progress(sim, last, final=True)

    # ------------------------------------------------------------------
    # Samplers
    # ------------------------------------------------------------------
    def _take_sample(self, sim: "Simulator", cycle: int) -> None:
        series = self._series
        self._sample_cycles.append(cycle)
        series["flits_in_network"].append(float(sim._flits_in_network))
        self._router_occupancy.append([r.inflight for r in sim.routers])

        occupied = 0
        busy = 0
        credit_stalled = 0
        hol_pending = 0
        active = VcState.ACTIVE
        for router in sim.routers:
            hol_pending += len(router._pending)
            for mask in router._occupied_masks:
                occupied += mask.bit_count()
            for port in router._ports_list:
                allocated = port.allocated
                draining = port._draining
                for v in range(port.num_vcs):
                    if allocated[v] or draining[v]:
                        busy += 1
            for direction, vcs in router.input_vcs.items():
                mask = router._occupied_masks[direction]
                while mask:
                    low = mask & -mask
                    ivc = vcs[low.bit_length() - 1]
                    mask -= low
                    if (
                        ivc.state is active
                        and router.output_ports[ivc.out_direction].credits[
                            ivc.out_vc
                        ]
                        == 0
                    ):
                        credit_stalled += 1
        series["occupied_input_vcs"].append(float(occupied))
        series["busy_output_vcs"].append(float(busy))
        series["credit_stalled_vcs"].append(float(credit_stalled))
        series["hol_pending_vcs"].append(float(hol_pending))
        series["vc_allocs"].append(float(self._vc_allocs))
        series["footprint_hits"].append(float(self._fp_hits))
        self._link_window(cycle)

        if self._tree_nodes:
            # Imported lazily: core.congestion imports the engine, which
            # imports this module.
            from repro.core.congestion import extract_congestion_tree

            for node in self._tree_nodes:
                tree = extract_congestion_tree(sim, node, include_local=False)
                series[f"tree/{node}/branches"].append(
                    float(tree.num_branches)
                )
                series[f"tree/{node}/vcs"].append(float(tree.total_vcs))
                series[f"tree/{node}/max_thickness"].append(
                    float(tree.max_thickness)
                )

    def _take_quiescent_sample(self, cycle: int) -> None:
        """A sample during an idle skip: every live quantity is zero."""
        series = self._series
        self._sample_cycles.append(cycle)
        for name in (
            "flits_in_network",
            "occupied_input_vcs",
            "busy_output_vcs",
            "credit_stalled_vcs",
            "hol_pending_vcs",
        ):
            series[name].append(0.0)
        self._router_occupancy.append([0] * self.mesh.num_nodes)
        series["vc_allocs"].append(float(self._vc_allocs))
        series["footprint_hits"].append(float(self._fp_hits))
        self._link_window(cycle)
        for node in self._tree_nodes:
            series[f"tree/{node}/branches"].append(0.0)
            series[f"tree/{node}/vcs"].append(0.0)
            series[f"tree/{node}/max_thickness"].append(0.0)

    def _link_window(self, cycle: int) -> None:
        """Mean/max inter-router link utilization since the last sample."""
        elapsed = cycle - self._prev_sample_cycle
        counts = self._counts
        prev = self._prev_counts
        total = 0
        peak = 0
        for idx in self._channel_idx:
            delta = counts[idx] - prev[idx]
            total += delta
            if delta > peak:
                peak = delta
        self._series["link_mean_util"].append(
            total / (len(self._channel_idx) * elapsed) if elapsed else 0.0
        )
        self._series["link_max_util"].append(
            peak / elapsed if elapsed else 0.0
        )
        self._prev_counts = list(counts)
        self._prev_sample_cycle = cycle

    def _print_progress(
        self, sim: "Simulator", cycle: int, final: bool = False
    ) -> None:
        limit = sim.config.max_cycles
        tag = "done" if final else "progress"
        print(
            f"{tag}: cycle {cycle + 1}/{limit}  "
            f"delivered {sim.measured_ejected}/{sim.measured_created} "
            f"measured packets  in-flight {sim._flits_in_network} flits",
            file=sys.stderr,
        )

    # ------------------------------------------------------------------
    def result(self) -> TelemetryResult | None:
        """Package everything recorded; ``None`` for an inactive config
        (a hub constructed only to serve ``track_utilization``)."""
        if not self.config.active:
            return None
        counters = {
            "vc_allocs": self._vc_allocs,
            "footprint_hits": self._fp_hits,
            "events_recorded": len(self._events),
            "events_dropped": self._dropped,
            "link_flits": sum(self._counts),
        }
        return TelemetryResult(
            sample_every=self._sample_every,
            sample_cycles=self._sample_cycles,
            series=self._series,
            router_occupancy=self._router_occupancy,
            counters=counters,
            events=self._events,
        )
