"""Telemetry configuration.

:class:`TelemetryConfig` selects what the observability layer records
during a run: the sampling interval for the time-series samplers, which
destinations get congestion-tree sampling, whether per-flit lifecycle
events are traced, and whether a progress line is echoed to stderr.

The config rides on :class:`~repro.sim.config.SimulationConfig` (its
``telemetry`` field) so it serializes with the rest of the run
description and reaches parallel workers unchanged — but it is
deliberately **excluded from result-cache keys**: telemetry observes a
simulation without altering it, so two configs differing only in
telemetry address the same cached result
(:func:`repro.harness.cache.config_cache_key` drops the field, and the
engine-mode bit-identity tests assert that results with and without
telemetry match exactly).
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any

from repro.exceptions import ConfigurationError

#: Default sampling interval (cycles) when telemetry is enabled without
#: an explicit interval.
DEFAULT_SAMPLE_EVERY = 100

#: Default cap on recorded flit-lifecycle events; keeps a runaway trace
#: from exhausting memory (dropped events are counted, not silently lost).
DEFAULT_TRACE_LIMIT = 200_000


@dataclass(frozen=True)
class TelemetryConfig:
    """What the telemetry layer records during one simulation.

    Attributes
    ----------
    sample_every:
        Sampling interval in cycles for the time-series samplers
        (occupancy, link utilization, stalls, footprint counters,
        congestion trees).  ``0`` disables sampling entirely.
    tree_nodes:
        Destination nodes whose congestion tree (branch count, total
        VCs, max thickness) is measured at every sample.  Empty disables
        tree sampling.
    trace_flits:
        Record per-flit lifecycle events (packet creation, injection, VC
        allocation, switch traversal, link traversal, ejection) for
        export as JSONL or Chrome ``trace_event`` JSON.
    trace_limit:
        Maximum number of recorded lifecycle events; once reached,
        further events are counted as dropped instead of stored.
    progress_every:
        Echo a one-line progress report (cycle, delivered packets,
        flits in flight) to stderr every this many cycles.  ``0``
        disables progress output.
    """

    sample_every: int = DEFAULT_SAMPLE_EVERY
    tree_nodes: tuple[int, ...] = ()
    trace_flits: bool = False
    trace_limit: int = DEFAULT_TRACE_LIMIT
    progress_every: int = 0

    def __post_init__(self) -> None:
        # Tolerate lists (JSON round trips) without breaking frozen-ness.
        if not isinstance(self.tree_nodes, tuple):
            object.__setattr__(self, "tree_nodes", tuple(self.tree_nodes))
        self.validate()

    def validate(self) -> None:
        if self.sample_every < 0:
            raise ConfigurationError("sample_every must be >= 0")
        if self.trace_limit < 0:
            raise ConfigurationError("trace_limit must be >= 0")
        if self.progress_every < 0:
            raise ConfigurationError("progress_every must be >= 0")
        for node in self.tree_nodes:
            if not isinstance(node, int) or node < 0:
                raise ConfigurationError(
                    f"tree_nodes must be non-negative node ids, "
                    f"got {node!r}"
                )

    def validate_for(self, width: int, height: int) -> None:
        """Check mesh-dependent constraints (tree nodes exist)."""
        num_nodes = width * height
        for node in self.tree_nodes:
            if node >= num_nodes:
                raise ConfigurationError(
                    f"tree node {node} outside {width}x{height} mesh"
                )

    @property
    def active(self) -> bool:
        """Whether this config records anything at all."""
        return bool(
            self.sample_every
            or self.trace_flits
            or self.progress_every
            or self.tree_nodes
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form; inverse of :meth:`from_dict`."""
        data = asdict(self)
        data["tree_nodes"] = list(self.tree_nodes)
        return data

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "TelemetryConfig":
        """Rebuild from :meth:`to_dict` output (or parsed JSON)."""
        data = dict(data)
        if data.get("tree_nodes") is not None:
            data["tree_nodes"] = tuple(data["tree_nodes"])
        return cls(**data)
