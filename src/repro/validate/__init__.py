"""Runtime invariant validation.

Opt-in, cycle-level checking of the simulator's structural invariants
(flit conservation, credit accounting, VC state-machine legality,
routing-policy conformance) plus a differential harness comparing engine
modes and cache replays.  See :mod:`repro.validate.checker` for the
invariant catalogue and :mod:`repro.validate.differential` for the
``repro validate`` CLI backend.
"""

from repro.validate.config import (
    CHECKER_NAMES,
    MUTATION_CHECKERS,
    VALIDATE_ENV,
    ValidationConfig,
    validation_from_env,
)

__all__ = [
    "CHECKER_NAMES",
    "MUTATION_CHECKERS",
    "VALIDATE_ENV",
    "ValidationConfig",
    "validation_from_env",
]
