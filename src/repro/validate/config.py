"""Validation configuration.

:class:`ValidationConfig` selects which runtime invariant checkers a
simulation runs (see :mod:`repro.validate.checker` for the catalogue).
Validation is an *engine argument*, not a :class:`SimulationConfig`
field: checkers observe a run without changing it, so a validated run
must hash to the same result-cache key and produce the same serialized
config as an unvalidated one.  The ``REPRO_VALIDATE`` environment
variable turns validation on for harness-driven runs (including pool
workers) without plumbing a flag through every call site.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, fields

from repro.exceptions import ConfigurationError

#: Environment variable enabling validation in harness/pool runs.
#: ``"1"``/``"all"`` enables every checker; a comma-separated subset of
#: checker names (e.g. ``"flit_conservation,vc_states"``) enables those.
VALIDATE_ENV = "REPRO_VALIDATE"

#: The per-cycle checkers, in the order the checker runs them.
CHECKER_NAMES = (
    "flit_conservation",
    "credit_accounting",
    "vc_states",
    "routing_conformance",
)

#: Self-test mutation kinds (see :mod:`repro.validate.mutations`), each
#: mapped to the checker that must flag it.
MUTATION_CHECKERS = {
    "flit_count": "flit_conservation",
    "credit": "credit_accounting",
    "vc_state": "vc_states",
    "wormhole": "vc_states",
    "routing": "routing_conformance",
}


@dataclass(frozen=True)
class ValidationConfig:
    """Which invariant checkers one simulation runs.

    Attributes
    ----------
    flit_conservation:
        Global flit conservation, every checked cycle: generated flits
        must equal source backlog + in-flight + delivered +
        discarded-by-fault, and the engine's incremental counters must
        match a from-scratch recount.
    credit_accounting:
        Per-link credit conservation: for every (router, output port,
        VC), free credits plus every in-flight claim on the downstream
        buffer (staged flits, flits on the wire, buffered flits, credits
        on the return wire, fault-held credits) must equal the buffer
        depth.
    vc_states:
        Per-VC state-machine legality (IDLE/ROUTING/ACTIVE register
        consistency, head/body/tail wormhole ordering, the
        allocated-VC <-> ACTIVE-input-VC bijection) plus the router's and
        output ports' incremental cache consistency.
    routing_conformance:
        Committed routes stay inside the algorithm's allowed-direction
        set (minimal quadrant for the adaptive algorithms), escape-VC
        grants sit on the DOR port (Duato's condition), and footprint
        VCs carry only their owner destination's packets.
    check_every:
        Run the checkers every this many checked cycles (1 = every
        cycle).  The checkers also run once at the end of the run.
    mutate:
        Self-test hook: the name of a deliberate state corruption to
        apply (one of :data:`MUTATION_CHECKERS`), proving the matching
        checker fires.  ``None`` (the default) disables mutation.
    mutate_cycle:
        Earliest cycle the mutation may be applied; it retries each
        cycle until a corruptible state exists.
    mutate_seed:
        Seed for the mutation's deterministic target choice.
    """

    flit_conservation: bool = True
    credit_accounting: bool = True
    vc_states: bool = True
    routing_conformance: bool = True
    check_every: int = 1
    mutate: str | None = None
    mutate_cycle: int = 0
    mutate_seed: int = 0

    def __post_init__(self) -> None:
        if self.check_every < 1:
            raise ConfigurationError("check_every must be >= 1")
        if self.mutate is not None and self.mutate not in MUTATION_CHECKERS:
            raise ConfigurationError(
                f"unknown mutation {self.mutate!r}; expected one of "
                f"{sorted(MUTATION_CHECKERS)}"
            )
        if self.mutate_cycle < 0:
            raise ConfigurationError("mutate_cycle must be >= 0")

    @property
    def active(self) -> bool:
        """Whether any checker (or the mutation hook) is enabled."""
        return bool(
            self.flit_conservation
            or self.credit_accounting
            or self.vc_states
            or self.routing_conformance
            or self.mutate
        )

    def enabled_checkers(self) -> tuple[str, ...]:
        """Names of the enabled checkers, in execution order."""
        return tuple(n for n in CHECKER_NAMES if getattr(self, n))

    @classmethod
    def only(cls, *names: str, **overrides) -> "ValidationConfig":
        """A config with exactly ``names`` enabled (self-test helper)."""
        unknown = set(names) - set(CHECKER_NAMES)
        if unknown:
            raise ConfigurationError(
                f"unknown checkers {sorted(unknown)}; "
                f"expected a subset of {list(CHECKER_NAMES)}"
            )
        flags = {n: (n in names) for n in CHECKER_NAMES}
        flags.update(overrides)
        return cls(**flags)


def validation_from_env() -> ValidationConfig | None:
    """Build a :class:`ValidationConfig` from ``$REPRO_VALIDATE``.

    Returns ``None`` when the variable is unset, empty, or ``"0"``/
    ``"off"``; a full config for ``"1"``/``"on"``/``"all"``; and a
    subset config for a comma-separated list of checker names.
    """
    raw = os.environ.get(VALIDATE_ENV, "").strip()
    if not raw or raw.lower() in ("0", "off", "false", "no"):
        return None
    if raw.lower() in ("1", "on", "true", "yes", "all"):
        return ValidationConfig()
    names = [item.strip() for item in raw.split(",") if item.strip()]
    valid = {f.name for f in fields(ValidationConfig)} & set(CHECKER_NAMES)
    unknown = [n for n in names if n not in valid]
    if unknown:
        raise ConfigurationError(
            f"{VALIDATE_ENV} names unknown checkers {unknown}; "
            f"expected a subset of {list(CHECKER_NAMES)}"
        )
    return ValidationConfig.only(*names)
