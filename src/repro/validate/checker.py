"""Cycle-level invariant checkers.

The :class:`InvariantChecker` is the validation counterpart of the
telemetry hub: the engine owns at most one (``Simulator.validator``,
``None`` when validation is off) and calls a handful of hooks per cycle.
Every hook site is guarded by a single hoisted ``is not None`` check, so
a run without validation pays one attribute read per site — the same
null-object pattern (and the same <2% disabled-overhead budget, asserted
by ``benchmarks/run_bench.py``) as telemetry.

The checkers observe; they never mutate simulator state and never touch
an RNG stream, so a validated run is bit-identical to an unvalidated
one.  Checks run *between* pipeline stages — at the end of each cycle,
after stage 6 — where the engine's incremental counters, the one-cycle
link pipelines, and every router's registers must agree with a
from-scratch recount.  The catalogue:

* **flit_conservation** — every flit ever generated is exactly one of:
  discarded at a dead source, waiting in a source queue, buffered in the
  network (router FIFOs, link pipelines, sink buffers), or delivered.
  The engine's incremental ``_flits_in_network`` / ``_source_backlog``
  counters must match the recount.
* **credit_accounting** — for every (router, output port, VC): free
  credits + staged flits + flits on the wire + downstream buffer
  occupancy + credits on the return wire + fault-held credits equals the
  downstream buffer depth.  Nothing is ever lost on a severed wire.
* **vc_states** — per-VC state-machine legality (IDLE/ROUTING/ACTIVE
  register consistency, head/body/tail wormhole ordering, no packet
  interleaving within a VC), the allocated-output-VC <-> ACTIVE-input-VC
  bijection, and every incrementally-maintained router/port cache.
* **routing_conformance** — committed routes stay inside the routing
  algorithm's allowed-direction set (the minimal quadrant for the
  adaptive algorithms), escape-VC grants sit on the DOR port (Duato's
  escape condition), and a busy VC carries only its owner destination's
  packets (the footprint same-destination property).

Violations raise :class:`~repro.exceptions.InvariantViolation` with
cycle/router/port/VC context.  A :class:`ValidationConfig` ``mutate``
hook deliberately corrupts one piece of state mid-run (see
:mod:`repro.validate.mutations`) so tests can prove each checker fires.
"""

from __future__ import annotations

from collections import Counter
from typing import TYPE_CHECKING

from repro.exceptions import InvariantViolation
from repro.router.vcstate import VcState
from repro.topology.ports import OPPOSITE, Direction
from repro.validate.config import ValidationConfig

if TYPE_CHECKING:
    from repro.router.flit import Packet
    from repro.sim.engine import Simulator


class InvariantChecker:
    """Runs the enabled invariant checks against a live simulator."""

    def __init__(self, config: ValidationConfig) -> None:
        self.config = config
        #: Flits of every packet the traffic generator produced.
        self.generated_flits = 0
        #: Flits of packets discarded at a dead source (fault model).
        self.discarded_flits = 0
        #: Completed check sweeps (for reporting/tests).
        self.checks_run = 0
        self._countdown = config.check_every
        # Allowed-direction memo: routing geometry is static for a run,
        # so (node, dst, src) -> frozenset of legal output directions.
        self._allowed: dict[tuple[int, int, int], frozenset] = {}
        self._mutator = None
        if config.mutate is not None:
            from repro.validate.mutations import Mutator

            self._mutator = Mutator(
                config.mutate, config.mutate_cycle, config.mutate_seed
            )

    # ------------------------------------------------------------------
    # Engine hooks
    # ------------------------------------------------------------------
    def packet_generated(self, packet: "Packet", discarded: bool) -> None:
        """Stage-6 hook: a packet left the traffic generator."""
        self.generated_flits += packet.size
        if discarded:
            self.discarded_flits += packet.size

    def end_cycle(self, sim: "Simulator", cycle: int) -> None:
        """Run the enabled checks at the end of a simulated cycle."""
        mutator = self._mutator
        if mutator is not None and not mutator.applied:
            mutator.maybe_apply(sim, cycle)
        self._countdown -= 1
        if self._countdown > 0:
            return
        self._countdown = self.config.check_every
        self.run_checks(sim, cycle)

    def on_skip(self, sim: "Simulator", cycle: int, target: int) -> None:
        """Verify the network really is quiescent before an idle jump."""
        if (
            sim._flits_in_network
            or sim._source_backlog
            or sim._flits_next
            or sim._credits_next
            or sim._sink_next
        ):
            raise InvariantViolation(
                "idle_skip",
                f"idle-cycle jump to {target} while engine counters "
                f"report live state",
                cycle=cycle,
            )
        for router in sim.routers:
            if router.inflight or router.staged_flits:
                raise InvariantViolation(
                    "idle_skip",
                    "idle-cycle jump over a router with buffered flits",
                    cycle=cycle,
                    node=router.node,
                )
        for sink in sim.sinks:
            if sink.occupancy:
                raise InvariantViolation(
                    "idle_skip",
                    "idle-cycle jump over a sink with buffered flits",
                    cycle=cycle,
                    node=sink.node,
                )
        for source in sim.sources:
            if source.pending_flits:
                raise InvariantViolation(
                    "idle_skip",
                    "idle-cycle jump over a source with pending flits",
                    cycle=cycle,
                    node=source.node,
                )

    def finish(self, sim: "Simulator") -> None:
        """End-of-run sweep (covers cycles a stride skipped)."""
        self.run_checks(sim, sim.cycle)
        mutator = self._mutator
        if mutator is not None and not mutator.applied:
            raise InvariantViolation(
                "self_test",
                f"mutation {self.config.mutate!r} found no corruptible "
                f"state before the run ended",
                cycle=sim.cycle,
            )

    # ------------------------------------------------------------------
    # The checks
    # ------------------------------------------------------------------
    def run_checks(self, sim: "Simulator", cycle: int) -> None:
        """One full sweep of every enabled checker."""
        cfg = self.config
        if cfg.flit_conservation:
            self._check_conservation(sim, cycle)
        if cfg.credit_accounting:
            self._check_credits(sim, cycle)
        if cfg.vc_states:
            self._check_vc_states(sim, cycle)
        if cfg.routing_conformance:
            self._check_routing(sim, cycle)
        self.checks_run += 1

    def _check_conservation(self, sim: "Simulator", cycle: int) -> None:
        offered = sum(s.offered_flits for s in sim.sources)
        pending = sum(s.pending_flits for s in sim.sources)
        ejected = sum(s.ejected_flits for s in sim.sinks)
        accepted = self.generated_flits - self.discarded_flits
        if accepted != offered:
            raise InvariantViolation(
                "flit_conservation",
                f"sources offered {offered} flits but the generator "
                f"produced {self.generated_flits} "
                f"({self.discarded_flits} discarded)",
                cycle=cycle,
            )
        if sim._source_backlog != pending:
            raise InvariantViolation(
                "flit_conservation",
                f"engine source backlog {sim._source_backlog} != "
                f"recounted pending flits {pending}",
                cycle=cycle,
            )
        buffered = sim.total_buffered_flits()
        if sim._flits_in_network != buffered:
            raise InvariantViolation(
                "flit_conservation",
                f"engine in-network counter {sim._flits_in_network} != "
                f"recounted buffered flits {buffered}",
                cycle=cycle,
            )
        total = self.discarded_flits + pending + buffered + ejected
        if self.generated_flits != total:
            raise InvariantViolation(
                "flit_conservation",
                f"generated {self.generated_flits} flits != "
                f"{self.discarded_flits} discarded + {pending} pending + "
                f"{buffered} in-network + {ejected} delivered",
                cycle=cycle,
            )

    def _check_credits(self, sim: "Simulator", cycle: int) -> None:
        # Index the one-cycle pipelines once; the sweep below consumes
        # them keyed exactly as the engine stores them.
        wire_flits: Counter = Counter()
        for node, direction, vc, _flit in sim._flits_next:
            wire_flits[(node, direction, vc)] += 1
        wire_credits: Counter = Counter()
        for node, direction, vc in sim._credits_next:
            wire_credits[(node, direction, vc)] += 1
        sink_wire: Counter = Counter()
        for node, vc, _flit in sim._sink_next:
            sink_wire[(node, vc)] += 1
        held: Counter = Counter()
        fm = sim.faults
        if fm is not None:
            problem = fm.mask_violation()
            if problem is not None:
                raise InvariantViolation(
                    "credit_accounting", problem, cycle=cycle
                )
            for node, direction, vc in fm.held_snapshot():
                held[(node, direction, vc)] += 1

        mesh = sim.mesh
        local = Direction.LOCAL
        for router in sim.routers:
            node = router.node
            for direction, port in router.output_ports.items():
                staged = [0] * port.num_vcs
                for _flit, vc in port.fifo:
                    staged[vc] += 1
                if direction is local:
                    sink = sim.sinks[node]
                    downstream = [
                        len(sink.buffers[vc]) + sink_wire[(node, vc)]
                        for vc in range(port.num_vcs)
                    ]
                else:
                    nbr = mesh.neighbor(node, direction)
                    in_dir = OPPOSITE[direction]
                    fifos = sim.routers[nbr].input_vcs[in_dir]
                    downstream = [
                        len(fifos[vc].fifo) + wire_flits[(nbr, in_dir, vc)]
                        for vc in range(port.num_vcs)
                    ]
                depth = port.downstream_depth
                for vc in range(port.num_vcs):
                    total = (
                        port.credits[vc]
                        + staged[vc]
                        + downstream[vc]
                        + wire_credits[(node, direction, vc)]
                        + held[(node, direction, vc)]
                    )
                    if total != depth:
                        raise InvariantViolation(
                            "credit_accounting",
                            f"{port.credits[vc]} credits + {staged[vc]} "
                            f"staged + {downstream[vc]} downstream + "
                            f"{wire_credits[(node, direction, vc)]} "
                            f"returning + {held[(node, direction, vc)]} "
                            f"fault-held = {total}, expected the buffer "
                            f"depth {depth}",
                            cycle=cycle,
                            node=node,
                            direction=direction,
                            vc=vc,
                        )

    def _check_vc_states(self, sim: "Simulator", cycle: int) -> None:
        for router in sim.routers:
            node = router.node
            buffered = 0
            routing_keys = set()
            claims: Counter = Counter()
            for direction, vcs in router.input_vcs.items():
                mask = router._occupied_masks[direction]
                for ivc in vcs:
                    problem = ivc.legality_violation()
                    if problem is not None:
                        raise InvariantViolation(
                            "vc_states",
                            problem,
                            cycle=cycle,
                            node=node,
                            direction=direction,
                            vc=ivc.index,
                        )
                    occ = len(ivc.fifo)
                    buffered += occ
                    if bool((mask >> ivc.index) & 1) != bool(occ):
                        raise InvariantViolation(
                            "vc_states",
                            f"occupancy bitmask disagrees with a "
                            f"{occ}-flit FIFO",
                            cycle=cycle,
                            node=node,
                            direction=direction,
                            vc=ivc.index,
                        )
                    if ivc.state is VcState.ROUTING:
                        routing_keys.add((direction, ivc.index))
                    elif ivc.state is VcState.ACTIVE:
                        claims[(ivc.out_direction, ivc.out_vc)] += 1
            pending_keys = set(router._pending)
            if pending_keys != routing_keys:
                raise InvariantViolation(
                    "vc_states",
                    f"pending-allocation index {sorted(pending_keys)} != "
                    f"ROUTING VCs {sorted(routing_keys)}",
                    cycle=cycle,
                    node=node,
                )
            if buffered != router.buffered_input_flits:
                raise InvariantViolation(
                    "vc_states",
                    f"router counts {router.buffered_input_flits} buffered "
                    f"input flits, recount says {buffered}",
                    cycle=cycle,
                    node=node,
                )
            staged = sum(len(p.fifo) for p in router.output_ports.values())
            if staged != router.staged_flits:
                raise InvariantViolation(
                    "vc_states",
                    f"router counts {router.staged_flits} staged flits, "
                    f"recount says {staged}",
                    cycle=cycle,
                    node=node,
                )
            if router.inflight != buffered + staged:
                raise InvariantViolation(
                    "vc_states",
                    f"router counts {router.inflight} inflight flits, "
                    f"recount says {buffered} buffered + {staged} staged",
                    cycle=cycle,
                    node=node,
                )
            for direction, port in router.output_ports.items():
                problem = port.consistency_violation()
                if problem is not None:
                    raise InvariantViolation(
                        "vc_states",
                        problem,
                        cycle=cycle,
                        node=node,
                        direction=direction,
                    )
                if port.fresh_released and not (
                    router.inflight or router.credit_pending
                ):
                    # A fresh set must be consumed by the very next
                    # allocation round; a router holding one must
                    # therefore be scheduled to run that round.
                    raise InvariantViolation(
                        "vc_states",
                        "freshly-released VC set on a router no longer "
                        "scheduled for an allocation round",
                        cycle=cycle,
                        node=node,
                        direction=direction,
                    )
                for vc in range(port.num_vcs):
                    holders = claims[(direction, vc)]
                    if port.allocated[vc]:
                        if holders != 1:
                            raise InvariantViolation(
                                "vc_states",
                                f"allocated downstream VC held by "
                                f"{holders} ACTIVE input VCs, expected "
                                f"exactly one",
                                cycle=cycle,
                                node=node,
                                direction=direction,
                                vc=vc,
                            )
                    elif holders:
                        raise InvariantViolation(
                            "vc_states",
                            f"{holders} ACTIVE input VCs hold an "
                            f"unallocated downstream VC",
                            cycle=cycle,
                            node=node,
                            direction=direction,
                            vc=vc,
                        )

    def _check_routing(self, sim: "Simulator", cycle: int) -> None:
        mesh = sim.mesh
        local = Direction.LOCAL
        for router in sim.routers:
            node = router.node
            for direction, vcs in router.input_vcs.items():
                for ivc in vcs:
                    head = ivc.front()
                    state = ivc.state
                    if state is VcState.ROUTING:
                        committed = ivc.committed_dir
                        if committed is not None and head is not None:
                            self._check_direction(
                                sim, node, head, committed,
                                cycle, direction, ivc.index,
                            )
                    elif state is VcState.ACTIVE and head is not None:
                        out_dir = ivc.out_direction
                        out_vc = ivc.out_vc
                        self._check_direction(
                            sim, node, head, out_dir,
                            cycle, direction, ivc.index,
                        )
                        port = router.output_ports[out_dir]
                        evcs = port.escape_vcs
                        if out_vc in evcs and out_dir is not local:
                            if out_dir is not mesh.dor_direction(
                                node, head.dst
                            ):
                                raise InvariantViolation(
                                    "routing_conformance",
                                    f"escape VC granted on {out_dir.name},"
                                    f" but Duato's escape condition "
                                    f"requires the DOR port "
                                    f"{mesh.dor_direction(node, head.dst).name}"
                                    f" towards {head.dst}",
                                    cycle=cycle,
                                    node=node,
                                    direction=direction,
                                    vc=ivc.index,
                                )
                            if len(evcs) > 1:
                                expected = evcs[
                                    mesh.wrap_vc_class(
                                        node, head.dst, out_dir
                                    )
                                ]
                                if out_vc != expected:
                                    raise InvariantViolation(
                                        "routing_conformance",
                                        f"escape VC {out_vc} granted for "
                                        f"a hop whose dateline class "
                                        f"requires escape VC {expected}",
                                        cycle=cycle,
                                        node=node,
                                        direction=direction,
                                        vc=ivc.index,
                                    )
                        elif (
                            mesh.num_vc_classes > 1
                            and out_dir is not local
                        ):
                            cls = sim.routing.vc_class(
                                port.num_vcs, out_vc
                            )
                            if cls is not None and cls != mesh.wrap_vc_class(
                                node, head.dst, out_dir
                            ):
                                raise InvariantViolation(
                                    "routing_conformance",
                                    f"VC {out_vc} of dateline class "
                                    f"{cls} granted for a hop of class "
                                    f"{mesh.wrap_vc_class(node, head.dst, out_dir)}",
                                    cycle=cycle,
                                    node=node,
                                    direction=direction,
                                    vc=ivc.index,
                                )
                        owner = port.owner_dst[out_vc]
                        if owner != head.dst:
                            raise InvariantViolation(
                                "routing_conformance",
                                f"VC owned by destination {owner} carries "
                                f"a packet to {head.dst} (footprint "
                                f"same-destination property)",
                                cycle=cycle,
                                node=node,
                                direction=out_dir,
                                vc=out_vc,
                            )

    def _check_direction(
        self,
        sim: "Simulator",
        node: int,
        head,
        chosen: Direction,
        cycle: int,
        in_direction: Direction,
        in_vc: int,
    ) -> None:
        dst = head.dst
        if chosen is Direction.LOCAL:
            if dst != node:
                raise InvariantViolation(
                    "routing_conformance",
                    f"ejection route for a packet to {dst}",
                    cycle=cycle,
                    node=node,
                    direction=in_direction,
                    vc=in_vc,
                )
            return
        key = (node, dst, head.src)
        allowed = self._allowed.get(key)
        if allowed is None:
            allowed = frozenset(
                sim.routing.allowed_directions(sim.mesh, node, dst, head.src)
            )
            self._allowed[key] = allowed
        if chosen not in allowed:
            names = sorted(d.name for d in allowed)
            raise InvariantViolation(
                "routing_conformance",
                f"route via {chosen.name} for a packet {head.src}->{dst}, "
                f"but '{sim.routing.name}' allows only {names}",
                cycle=cycle,
                node=node,
                direction=in_direction,
                vc=in_vc,
            )
