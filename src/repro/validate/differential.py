"""Differential validation harness (``repro validate``).

Cross-checks the parts of the stack the per-cycle checkers cannot see
from inside one run: that the three engine modes (skip/fast/legacy) stay
bit-identical, that a warm result-cache replay reproduces a live run
exactly, and that a validated run produces the same result as the
unvalidated runs the cache and pool execute.  Configurations are drawn
at random (seeded) from the full surface — every routing algorithm,
several traffic patterns, multi-flit packets, and fault schedules — and
every live run executes with all invariant checkers enabled, so one
``repro validate`` sweep exercises both layers at once.

``self_test`` is the other half of the trust story: it runs every
seeded mutation (:mod:`repro.validate.mutations`) with only its paired
checker enabled and confirms the run dies with an
:class:`~repro.exceptions.InvariantViolation` naming that checker.
"""

from __future__ import annotations

import random
import tempfile
from dataclasses import dataclass, field

from repro.exceptions import InvariantViolation, ReproError
from repro.faults.schedule import random_link_faults, random_router_faults
from repro.harness.cache import ResultCache
from repro.harness.parallel import SimTask, resolve_jobs, run_tasks
from repro.sim.config import SimulationConfig
from repro.sim.engine import Simulator
from repro.sim.results import SimulationResult
from repro.validate.config import MUTATION_CHECKERS, ValidationConfig

#: Engine modes every differential run is executed under.  ``skip`` is
#: first: its signature is the reference the others must match.  The
#: ``vector`` run executes without invariant checkers (the vector core
#: has no per-object hooks for them to observe — with checkers active it
#: would just fall back to ``skip`` and self-compare); configs it cannot
#: cover (e.g. fault schedules) still fall back, and the entry records
#: the reason so fallbacks are visible in the report.
ENGINE_MODES = ("skip", "fast", "legacy", "vector")

_ALGORITHMS = (
    "dor",
    "oddeven",
    "dbar",
    "footprint",
    "dbar-fine",
    "dor+xordet",
    "oddeven+xordet",
    "dbar+xordet",
    "footprint+xordet",
)
_PATTERNS = (
    "uniform",
    "transpose",
    "tornado",
    "neighbor",
)
#: Bit-permutation patterns require a power-of-two node count.
_POW2_PATTERNS = ("bitcomp", "bitrev", "shuffle")

#: Algorithms whose deadlock-freedom argument survives wrap-around links
#: (Odd-Even and the XORDET overlays are mesh-structural; see
#: :func:`repro.routing.registry.check_topology_support`).
_TORUS_ALGORITHMS = ("dor", "dbar", "dbar-fine", "footprint", "duato")


def result_signature(result: SimulationResult) -> tuple:
    """A comparable fingerprint of everything a run measured.

    Two runs with equal signatures made identical routing, allocation,
    and delivery decisions for every measured packet.  Also used by the
    benchmark harness to assert validation does not perturb results.
    """
    return (
        result.cycles_run,
        result.accepted_flits,
        result.offered_flits,
        result.measured_created,
        result.measured_ejected,
        tuple(result.latency.samples()),
    )


def random_configs(
    count: int, seed: int, *, include_faults: bool = True
) -> list[SimulationConfig]:
    """Draw ``count`` short randomized configs covering the full surface."""
    rng = random.Random(seed)
    configs = []
    for _ in range(count):
        width = rng.choice((3, 4))
        patterns = (
            _PATTERNS + _POW2_PATTERNS if width == 4 else _PATTERNS
        )
        # Every fourth config or so runs on a torus: the wrap links and
        # dateline escape VCs must stay bit-identical across engine
        # modes too (the vector run degrades to skip and records the
        # topology fallback reason).
        topology = "torus" if rng.random() < 0.25 else "mesh"
        if topology == "torus":
            routing = rng.choice(_TORUS_ALGORITHMS)
            num_vcs = rng.choice((3, 4))
        else:
            routing = rng.choice(_ALGORITHMS)
            num_vcs = rng.choice((2, 3, 4))
        config_seed = rng.randrange(1 << 16)
        faults = None
        if include_faults and rng.random() < 0.4:
            maker = rng.choice((random_link_faults, random_router_faults))
            faults = maker(
                width,
                k=rng.choice((1, 2)),
                cycle=rng.randrange(10, 40),
                duration=rng.randrange(40, 90),
                seed=rng.randrange(1 << 16),
                topology=topology,
            )
        packet_range = (1, 4) if rng.random() < 0.3 else None
        configs.append(
            SimulationConfig(
                width=width,
                topology=topology,
                num_vcs=num_vcs,
                vc_buffer_depth=rng.choice((2, 4)),
                routing=routing,
                traffic=rng.choice(patterns),
                injection_rate=rng.choice((0.05, 0.15, 0.3)),
                packet_size=rng.choice((1, 4)),
                packet_size_range=packet_range,
                warmup_cycles=rng.randrange(20, 50),
                measure_cycles=rng.randrange(50, 100),
                drain_cycles=500,
                seed=config_seed,
                faults=faults,
            )
        )
    return configs


@dataclass
class DifferentialEntry:
    """Outcome of one config's differential sweep."""

    description: str
    signatures: dict[str, tuple] = field(default_factory=dict)
    modes_identical: bool = False
    cache_identical: bool = False
    warm_misses: int = -1
    checks_run: int = 0
    error: str | None = None
    #: Why the ``vector`` run degraded to ``skip`` (``None`` when the
    #: vector core actually executed the config).
    vector_fallback: str | None = None

    @property
    def ok(self) -> bool:
        return (
            self.error is None
            and self.modes_identical
            and self.cache_identical
            and self.warm_misses == 0
        )


@dataclass
class DifferentialReport:
    """Outcome of a full ``run_differential`` sweep."""

    entries: list[DifferentialEntry]
    #: Whether a pooled re-run of every config matched the serial
    #: signatures (``None`` when the sweep ran with one worker).
    pool_identical: bool | None = None

    @property
    def ok(self) -> bool:
        return all(e.ok for e in self.entries) and (
            self.pool_identical is not False
        )

    @property
    def vector_fallbacks(self) -> dict[str, int]:
        """Count of vector→skip fallbacks per reason across the sweep.

        Each reason names the config field that forced the fallback;
        the CLI prints the aggregate so a sweep that never exercised
        the vector core is visible at a glance.
        """
        counts: dict[str, int] = {}
        for entry in self.entries:
            if entry.vector_fallback:
                counts[entry.vector_fallback] = (
                    counts.get(entry.vector_fallback, 0) + 1
                )
        return counts


def run_differential(
    configs: list[SimulationConfig],
    jobs: int | str | None = None,
) -> DifferentialReport:
    """Run every config through all engine modes plus warm-cache replay.

    Each config runs with every invariant checker enabled under skip,
    fast, and legacy engine modes (signatures must match), then twice
    through a fresh :class:`ResultCache` (the second pass must be all
    hits and reproduce the live signature — also proving validated and
    unvalidated runs are bit-identical, since cached runs are
    unvalidated).  With more than one worker the whole set is finally
    re-run through the process pool and compared again.
    """
    checks = ValidationConfig()
    entries = []
    for config in configs:
        entry = DifferentialEntry(description=config.describe())
        entries.append(entry)
        try:
            for mode in ENGINE_MODES:
                sim = Simulator(
                    config,
                    engine_mode=mode,
                    validation=None if mode == "vector" else checks,
                )
                entry.signatures[mode] = result_signature(sim.run())
                if sim.validator is not None:
                    entry.checks_run += sim.validator.checks_run
                if mode == "vector":
                    entry.vector_fallback = sim.vector_fallback
        except InvariantViolation as exc:
            entry.error = f"invariant violation: {exc}"
            continue
        except ReproError as exc:
            entry.error = f"{type(exc).__name__}: {exc}"
            continue
        reference = entry.signatures[ENGINE_MODES[0]]
        entry.modes_identical = all(
            entry.signatures[mode] == reference for mode in ENGINE_MODES
        )
        with tempfile.TemporaryDirectory() as tmp:
            cold_cache = ResultCache(tmp)
            cold = run_tasks([SimTask(config)], jobs=1, cache=cold_cache)
            warm_cache = ResultCache(tmp)
            warm = run_tasks([SimTask(config)], jobs=1, cache=warm_cache)
        entry.warm_misses = warm_cache.misses
        entry.cache_identical = (
            result_signature(cold[0]) == reference
            and result_signature(warm[0]) == reference
        )

    pool_identical = None
    clean = [
        (config, entry)
        for config, entry in zip(configs, entries)
        if entry.error is None
    ]
    if resolve_jobs(jobs) > 1 and len(clean) > 1:
        pooled = run_tasks([SimTask(c) for c, _ in clean], jobs=jobs)
        pool_identical = all(
            result_signature(result) == entry.signatures[ENGINE_MODES[0]]
            for result, (_, entry) in zip(pooled, clean)
        )
    return DifferentialReport(entries=entries, pool_identical=pool_identical)


@dataclass
class SelfTestResult:
    """Outcome of one mutation self-test."""

    mutation: str
    expected_checker: str
    fired: bool
    detail: str

    @property
    def ok(self) -> bool:
        return self.fired


def _self_test_config(seed: int) -> SimulationConfig:
    # Small but congested, with multi-flit packets so every mutation
    # (including the wormhole swap) finds corruptible state quickly, on
    # the paper's algorithm so escape/footprint invariants are live.
    return SimulationConfig(
        width=4,
        num_vcs=4,
        vc_buffer_depth=4,
        routing="footprint",
        traffic="transpose",
        injection_rate=0.5,
        packet_size=4,
        warmup_cycles=20,
        measure_cycles=60,
        drain_cycles=400,
        seed=seed,
    )


def self_test(seed: int = 0) -> list[SelfTestResult]:
    """Prove every checker fires: run each seeded mutation, expect a kill.

    Each mutation runs with *only* its paired checker enabled, so the
    raised violation's checker attribution is unambiguous.
    """
    outcomes = []
    for mutation, checker in sorted(MUTATION_CHECKERS.items()):
        config = _self_test_config(seed + 1)
        validation = ValidationConfig.only(
            checker,
            mutate=mutation,
            mutate_cycle=30,
            mutate_seed=seed,
        )
        try:
            Simulator(config, validation=validation).run()
        except InvariantViolation as exc:
            fired = exc.checker == checker
            detail = str(exc)
        else:
            fired = False
            detail = "run completed without a violation"
        outcomes.append(
            SelfTestResult(
                mutation=mutation,
                expected_checker=checker,
                fired=fired,
                detail=detail,
            )
        )
    return outcomes
