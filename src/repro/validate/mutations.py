"""Seeded state corruptions that prove the invariant checkers fire.

A checker that silently stops firing is worse than no checker, so every
checker has a mutation: a deliberate, deterministic corruption of one
piece of live simulator state that must trip exactly that checker.  The
self-test (``repro validate --self-test`` and the unit tests) runs each
mutation with *only* its paired checker enabled and asserts the run dies
with an :class:`~repro.exceptions.InvariantViolation` naming it.

Mutations are configured via :class:`ValidationConfig` (``mutate`` /
``mutate_cycle`` / ``mutate_seed``) and applied by the checker's
``end_cycle`` hook *before* that cycle's checks.  A mutation whose
target state does not exist yet (e.g. no multi-flit packet buffered)
retries every cycle; candidates are collected in deterministic sweep
order and the seeded RNG picks one, so a given (config, seed) always
corrupts the same state.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

from repro.router.vcstate import VcState
from repro.topology.ports import Direction
from repro.validate.config import MUTATION_CHECKERS

if TYPE_CHECKING:
    from repro.sim.engine import Simulator


class Mutator:
    """Applies one configured corruption to a live simulator."""

    def __init__(self, kind: str, cycle: int, seed: int) -> None:
        if kind not in MUTATION_CHECKERS:
            raise ValueError(f"unknown mutation kind {kind!r}")
        self.kind = kind
        self.cycle = cycle
        self.rng = random.Random(seed)
        self.applied = False
        #: Human-readable record of what was corrupted (for tests/logs).
        self.description: str | None = None

    def maybe_apply(self, sim: "Simulator", cycle: int) -> bool:
        """Apply the corruption if its target state exists this cycle."""
        if self.applied or cycle < self.cycle:
            return False
        description = getattr(self, f"_apply_{self.kind}")(sim)
        if description is None:
            return False
        self.applied = True
        self.description = f"cycle {cycle}: {description}"
        return True

    # ------------------------------------------------------------------
    # One corruption per checker
    # ------------------------------------------------------------------
    def _apply_flit_count(self, sim: "Simulator") -> str | None:
        """Skew the engine's incremental in-network flit counter."""
        sim._flits_in_network += 1
        return "incremented _flits_in_network by 1"

    def _apply_credit(self, sim: "Simulator") -> str | None:
        """Drop one free credit, as if a credit return was lost."""
        candidates = []
        for router in sim.routers:
            for direction, port in router.output_ports.items():
                for vc in range(port.num_vcs):
                    if port.credits[vc] > 0:
                        candidates.append((router.node, direction, port, vc))
        if not candidates:
            return None
        node, direction, port, vc = self._pick(candidates)
        port.credits[vc] -= 1
        if vc != port.escape_vc:
            # Keep the port-internal adaptive-credit cache coherent so
            # only the *link-level* accounting checker can catch this.
            port._adaptive_credits -= 1
        return f"dropped one credit on node {node} {direction.name} VC {vc}"

    def _apply_vc_state(self, sim: "Simulator") -> str | None:
        """Force an occupied input VC back to IDLE (illegal transition)."""
        candidates = []
        for router in sim.routers:
            for direction, vcs in router.input_vcs.items():
                for ivc in vcs:
                    if ivc.fifo and ivc.state is not VcState.IDLE:
                        candidates.append((router.node, direction, ivc))
        if not candidates:
            return None
        node, direction, ivc = self._pick(candidates)
        ivc.state = VcState.IDLE
        return (
            f"forced occupied VC {direction.name}.{ivc.index} on node "
            f"{node} to IDLE"
        )

    def _apply_wormhole(self, sim: "Simulator") -> str | None:
        """Swap two flits of one packet inside a VC FIFO (order break)."""
        candidates = []
        for router in sim.routers:
            for direction, vcs in router.input_vcs.items():
                for ivc in vcs:
                    fifo = ivc.fifo
                    if len(fifo) >= 2 and fifo[0].packet is fifo[1].packet:
                        candidates.append((router.node, direction, ivc))
        if not candidates:
            return None
        node, direction, ivc = self._pick(candidates)
        ivc.fifo[0], ivc.fifo[1] = ivc.fifo[1], ivc.fifo[0]
        return (
            f"swapped the front two flits of VC {direction.name}."
            f"{ivc.index} on node {node}"
        )

    def _apply_routing(self, sim: "Simulator") -> str | None:
        """Point an ACTIVE VC's output register at a disallowed port."""
        mesh = sim.mesh
        routing = sim.routing
        candidates = []
        for router in sim.routers:
            for direction, vcs in router.input_vcs.items():
                for ivc in vcs:
                    if ivc.state is not VcState.ACTIVE or not ivc.fifo:
                        continue
                    head = ivc.fifo[0]
                    allowed = set(
                        routing.allowed_directions(
                            mesh, router.node, head.dst, head.src
                        )
                    )
                    allowed.add(Direction.LOCAL)
                    illegal = [
                        d
                        for d in router.output_ports
                        if d not in allowed and d is not ivc.out_direction
                    ]
                    if illegal:
                        candidates.append(
                            (router.node, direction, ivc, illegal)
                        )
        if not candidates:
            return None
        node, direction, ivc, illegal = self._pick(candidates)
        target = illegal[self.rng.randrange(len(illegal))]
        ivc.out_direction = target
        return (
            f"re-pointed ACTIVE VC {direction.name}.{ivc.index} on node "
            f"{node} at disallowed port {target.name}"
        )

    def _pick(self, candidates: list):
        return candidates[self.rng.randrange(len(candidates))]
