"""The topology contract shared by all network geometries.

Everything above the topology layer (routers, routing algorithms, the
engine, fault validation, traffic factories) talks to the network's
geometry exclusively through the :class:`Topology` protocol: node
coordinates, neighbour/channel enumeration, minimal and dimension-order
routing directions, hop distances, path counts, and the wrap-link VC
class used for deadlock avoidance on topologies with wrap-around links.

Two concrete topologies implement the protocol:

* :class:`~repro.topology.mesh.Mesh2D` — the k-ary 2-mesh the paper
  evaluates (``num_vc_classes == 1``; no wrap links, so
  :meth:`Topology.wrap_vc_class` is constant 0);
* :class:`~repro.topology.torus.Torus2D` — a k-ary 2-torus whose wrap
  links are made safe by a dateline VC scheme (``num_vc_classes == 2``).

Instances are pure geometry — no simulation state — so one instance can
be shared freely between the engine, routers, and validators.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from repro.exceptions import TopologyError
from repro.topology.ports import Direction

#: Topology names accepted by :func:`create_topology` and
#: ``SimulationConfig.topology``, in presentation order.
TOPOLOGIES: tuple[str, ...] = ("mesh", "torus")


@runtime_checkable
class Topology(Protocol):
    """Geometry queries every network topology must answer.

    The protocol is structural: ``Mesh2D`` and ``Torus2D`` satisfy it
    without inheriting from anything.  All methods are pure functions of
    node ids (plus internal caches); none mutate observable state.
    """

    #: Registry name (``"mesh"`` / ``"torus"``).
    name: str
    #: X-dimension radix (columns).
    width: int
    #: Y-dimension radix (rows).
    height: int
    #: ``width * height``.
    num_nodes: int
    #: Number of dateline VC classes deadlock avoidance needs on this
    #: topology: 1 when the channel dependency graph is already acyclic
    #: under dimension-order routing (mesh), 2 when wrap-around links
    #: require a dateline split (torus).
    num_vc_classes: int

    def coords(self, node: int) -> tuple[int, int]:
        """``(x, y)`` coordinates of ``node``."""
        ...

    def node_at(self, x: int, y: int) -> int:
        """Node id at coordinates ``(x, y)``."""
        ...

    def neighbor(self, node: int, direction: Direction) -> int | None:
        """Neighbour through ``direction`` (``None`` at a mesh edge)."""
        ...

    def router_ports(self, node: int) -> list[Direction]:
        """All ports present on ``node``'s router, LOCAL last."""
        ...

    def channels(self) -> list[tuple[int, Direction, int]]:
        """All unidirectional channels as ``(src, direction, dst)``."""
        ...

    def hop_distance(self, src: int, dst: int) -> int:
        """Minimal hop count between two nodes."""
        ...

    def minimal_directions(self, cur: int, dst: int) -> list[Direction]:
        """Productive (minimal) directions from ``cur`` towards ``dst``."""
        ...

    def dor_direction(self, cur: int, dst: int) -> Direction:
        """Dimension-order (XY) next direction from ``cur`` to ``dst``."""
        ...

    def num_minimal_paths(self, src: int, dst: int) -> int:
        """Number of distinct minimal paths between ``src`` and ``dst``."""
        ...

    def wrap_vc_class(self, cur: int, dst: int, direction: Direction) -> int:
        """Dateline VC class for the hop from ``cur`` through ``direction``.

        On topologies without wrap links this is always 0.  On a torus it
        is 0 while the packet's remaining ring traversal (continuing in
        ``direction`` from the downstream node) still has to cross the
        ring's wrap link, and 1 from the wrap hop onward — see
        :meth:`~repro.topology.torus.Torus2D.wrap_vc_class` for the
        deadlock-freedom argument.
        """
        ...


def create_topology(
    name: str, width: int, height: int | None = None
) -> Topology:
    """Instantiate the topology registered under ``name``.

    Raises :class:`TopologyError` on an unknown name so config typos
    fail loudly with the list of valid choices.
    """
    # Imported here to keep the protocol module free of concrete
    # topology imports (mesh.py imports nothing from this module, but
    # torus.py shares grid helpers with mesh.py).
    from repro.topology.mesh import Mesh2D
    from repro.topology.torus import Torus2D

    key = name.strip().lower()
    if key == "mesh":
        return Mesh2D(width, height)
    if key == "torus":
        return Torus2D(width, height)
    raise TopologyError(
        f"unknown topology {name!r}; available: {', '.join(TOPOLOGIES)}"
    )
