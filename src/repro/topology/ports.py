"""Port directions for 2D-mesh routers.

A mesh router has up to five ports: four compass directions connecting to
neighbouring routers plus a ``LOCAL`` port connecting to the endpoint node
(its network interface).  Directions double as port identifiers throughout
the simulator: an input port and an output port of the same router share the
same :class:`Direction` value.
"""

from __future__ import annotations

import enum


class Direction(enum.IntEnum):
    """The five router port directions of a 2D mesh.

    The integer values are stable and used as array indices in hot paths.
    """

    EAST = 0
    WEST = 1
    NORTH = 2
    SOUTH = 3
    LOCAL = 4

    @property
    def is_local(self) -> bool:
        """Whether this is the endpoint (injection/ejection) port."""
        return self is Direction.LOCAL

    @property
    def dimension(self) -> int:
        """Dimension index: 0 for X (east/west), 1 for Y (north/south).

        Raises :class:`ValueError` for ``LOCAL`` which has no dimension.
        """
        if self in (Direction.EAST, Direction.WEST):
            return 0
        if self in (Direction.NORTH, Direction.SOUTH):
            return 1
        raise ValueError("LOCAL port has no dimension")


#: Map from a direction to the direction seen from the other end of the link.
#: A flit leaving router R through its EAST output port arrives at the WEST
#: input port of R's eastern neighbour.
OPPOSITE: dict[Direction, Direction] = {
    Direction.EAST: Direction.WEST,
    Direction.WEST: Direction.EAST,
    Direction.NORTH: Direction.SOUTH,
    Direction.SOUTH: Direction.NORTH,
    Direction.LOCAL: Direction.LOCAL,
}

#: All non-local directions, in index order.
COMPASS: tuple[Direction, ...] = (
    Direction.EAST,
    Direction.WEST,
    Direction.NORTH,
    Direction.SOUTH,
)

#: Number of ports on a (fully populated) mesh router.
NUM_PORTS: int = 5
