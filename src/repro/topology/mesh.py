"""Geometry of a k-ary 2-mesh (2D mesh) network.

Node numbering is row-major: node ``n`` sits at coordinates
``(x, y) = (n % width, n // width)`` with ``x`` growing eastward and ``y``
growing southward.  This matches the numbering used in the paper's figures
(e.g. in a 4x4 mesh, node 10 is at column 2, row 2, and flows
``n0 -> n10`` and ``n1 -> n15`` converge on the ``n1 -> n2`` link under
dimension-order routing).
"""

from __future__ import annotations

import math

from repro.exceptions import TopologyError
from repro.topology.ports import COMPASS, Direction


class Mesh2D:
    """A ``width x height`` 2D mesh.

    The mesh provides pure geometry queries: coordinates, neighbours,
    minimal-routing port sets, and hop distances.  It holds no simulation
    state; routers and channels are built on top of it by the engine.

    Parameters
    ----------
    width:
        Number of columns (the X dimension radix).
    height:
        Number of rows (the Y dimension radix).  Defaults to ``width``
        (a square mesh) when omitted.
    """

    #: Registry name (see :func:`repro.topology.base.create_topology`).
    name = "mesh"

    #: A mesh has no wrap links, so dimension-order routing is already
    #: deadlock-free with a single VC class (see
    #: :meth:`~repro.topology.base.Topology.wrap_vc_class`).
    num_vc_classes = 1

    def __init__(self, width: int, height: int | None = None) -> None:
        if height is None:
            height = width
        if width < 2 or height < 2:
            raise TopologyError(
                f"mesh dimensions must be at least 2x2, got {width}x{height}"
            )
        self.width = width
        self.height = height
        self.num_nodes = width * height
        # Geometry caches: routing queries sit on the simulator's hottest
        # path and are pure functions of (node, node).
        self._coords = [(n % width, n // width) for n in range(self.num_nodes)]
        self._min_dirs: dict[tuple[int, int], list[Direction]] = {}
        self._dor: dict[tuple[int, int], Direction] = {}

    # ------------------------------------------------------------------
    # Coordinates
    # ------------------------------------------------------------------
    def coords(self, node: int) -> tuple[int, int]:
        """Return ``(x, y)`` coordinates of ``node``."""
        self._check_node(node)
        return self._coords[node]

    def node_at(self, x: int, y: int) -> int:
        """Return the node id at coordinates ``(x, y)``."""
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise TopologyError(f"coordinates ({x}, {y}) outside {self}")
        return y * self.width + x

    def _check_node(self, node: int) -> None:
        if not (0 <= node < self.num_nodes):
            raise TopologyError(f"node {node} outside {self}")

    # ------------------------------------------------------------------
    # Neighbours and channels
    # ------------------------------------------------------------------
    def neighbor(self, node: int, direction: Direction) -> int | None:
        """Return the neighbour of ``node`` through ``direction``.

        Returns ``None`` when the port faces the mesh edge (meshes have no
        wrap-around links).  ``LOCAL`` has no neighbouring router and raises.
        """
        if direction is Direction.LOCAL:
            raise TopologyError("LOCAL port has no neighbouring router")
        x, y = self.coords(node)
        if direction is Direction.EAST:
            return node + 1 if x + 1 < self.width else None
        if direction is Direction.WEST:
            return node - 1 if x - 1 >= 0 else None
        if direction is Direction.SOUTH:
            return node + self.width if y + 1 < self.height else None
        return node - self.width if y - 1 >= 0 else None

    def router_ports(self, node: int) -> list[Direction]:
        """All ports present on ``node``'s router, LOCAL last."""
        ports = [d for d in COMPASS if self.neighbor(node, d) is not None]
        ports.append(Direction.LOCAL)
        return ports

    def channels(self) -> list[tuple[int, Direction, int]]:
        """Enumerate all inter-router channels as ``(src, direction, dst)``.

        Each unidirectional link appears once; a bidirectional mesh link
        contributes two entries.
        """
        out: list[tuple[int, Direction, int]] = []
        for node in range(self.num_nodes):
            for d in COMPASS:
                nbr = self.neighbor(node, d)
                if nbr is not None:
                    out.append((node, d, nbr))
        return out

    # ------------------------------------------------------------------
    # Minimal routing geometry
    # ------------------------------------------------------------------
    def hop_distance(self, src: int, dst: int) -> int:
        """Manhattan (minimal hop) distance between two nodes."""
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        return abs(sx - dx) + abs(sy - dy)

    def minimal_directions(self, cur: int, dst: int) -> list[Direction]:
        """Productive (minimal) directions from ``cur`` towards ``dst``.

        Returns up to two directions, X first then Y; an empty list means
        ``cur == dst`` (the packet should eject through ``LOCAL``).
        The result is cached; callers must not mutate it.
        """
        key = (cur, dst)
        cached = self._min_dirs.get(key)
        if cached is not None:
            return cached
        cx, cy = self.coords(cur)
        dx, dy = self.coords(dst)
        dirs: list[Direction] = []
        if dx > cx:
            dirs.append(Direction.EAST)
        elif dx < cx:
            dirs.append(Direction.WEST)
        if dy > cy:
            dirs.append(Direction.SOUTH)
        elif dy < cy:
            dirs.append(Direction.NORTH)
        self._min_dirs[key] = dirs
        return dirs

    def dor_direction(self, cur: int, dst: int) -> Direction:
        """Dimension-order (XY) next direction from ``cur`` to ``dst``.

        X is fully resolved before Y; ``LOCAL`` is returned at the
        destination.
        """
        key = (cur, dst)
        cached = self._dor.get(key)
        if cached is not None:
            return cached
        dirs = self.minimal_directions(cur, dst)
        if not dirs:
            result = Direction.LOCAL
        else:
            result = dirs[0]
            for d in dirs:
                if d in (Direction.EAST, Direction.WEST):
                    result = d
                    break
        self._dor[key] = result
        return result

    def num_minimal_paths(self, src: int, dst: int) -> int:
        """Number of distinct minimal paths between ``src`` and ``dst``.

        For a mesh this is the binomial coefficient ``C(dx + dy, dx)``
        where ``dx`` and ``dy`` are the per-dimension offsets.
        """
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        ax, ay = abs(sx - dx), abs(sy - dy)
        return math.comb(ax + ay, ax)

    def wrap_vc_class(self, cur: int, dst: int, direction: Direction) -> int:
        """Dateline VC class of a hop — always 0 on a mesh (no wrap links)."""
        return 0

    def __repr__(self) -> str:
        return f"Mesh2D({self.width}x{self.height})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Mesh2D)
            and self.width == other.width
            and self.height == other.height
        )

    def __hash__(self) -> int:
        return hash((self.width, self.height))
