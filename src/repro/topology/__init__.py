"""Network topology: k-ary 2-mesh geometry, ports, and channels."""

from repro.topology.ports import Direction, OPPOSITE
from repro.topology.mesh import Mesh2D

__all__ = ["Direction", "OPPOSITE", "Mesh2D"]
