"""Network topology: 2D mesh/torus geometry, ports, and channels."""

from repro.topology.ports import Direction, OPPOSITE
from repro.topology.base import TOPOLOGIES, Topology, create_topology
from repro.topology.mesh import Mesh2D
from repro.topology.torus import Torus2D

__all__ = [
    "Direction",
    "OPPOSITE",
    "TOPOLOGIES",
    "Topology",
    "create_topology",
    "Mesh2D",
    "Torus2D",
]
