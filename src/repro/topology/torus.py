"""Geometry of a k-ary 2-torus (2D torus) network.

Node numbering, coordinate conventions, and the port model are identical
to :class:`~repro.topology.mesh.Mesh2D` — row-major ids, ``x`` growing
eastward, ``y`` growing southward — except that every ring wraps: node
``(width-1, y)`` has an EAST neighbour at ``(0, y)``, and so on.  Every
router therefore has all four compass ports.

Wrap links close cycles in the channel dependency graph, so
dimension-order routing alone is no longer deadlock-free.  The standard
fix — the *dateline* scheme (Dally & Towles §14.3) — splits each ring's
traffic into two VC classes and is exposed here as
:meth:`Torus2D.wrap_vc_class`; see its docstring for the exact rule and
the acyclicity argument.  The topology reports ``num_vc_classes == 2``
so routers provision one escape channel per class.
"""

from __future__ import annotations

import math

from repro.exceptions import TopologyError
from repro.topology.ports import COMPASS, Direction

#: Ring directions in which the coordinate increases (mod the radix).
_POSITIVE = (Direction.EAST, Direction.SOUTH)


class Torus2D:
    """A ``width x height`` 2D torus.

    Pure geometry, no simulation state — the same contract as
    :class:`~repro.topology.mesh.Mesh2D` (both satisfy
    :class:`~repro.topology.base.Topology`).

    Minimal routing picks, per dimension, the shorter way around the
    ring; when the two ways tie (even radix, distance exactly ``k/2``)
    the positive direction (EAST / SOUTH) wins deterministically, so
    :meth:`minimal_directions` returns at most one direction per
    dimension and results are reproducible across engine modes.
    """

    #: Registry name (see :func:`repro.topology.base.create_topology`).
    name = "torus"

    #: Wrap links need a dateline split: two VC classes per ring.
    num_vc_classes = 2

    def __init__(self, width: int, height: int | None = None) -> None:
        if height is None:
            height = width
        if width < 2 or height < 2:
            raise TopologyError(
                f"torus dimensions must be at least 2x2, got {width}x{height}"
            )
        self.width = width
        self.height = height
        self.num_nodes = width * height
        self._coords = [(n % width, n // width) for n in range(self.num_nodes)]
        self._min_dirs: dict[tuple[int, int], list[Direction]] = {}
        self._dor: dict[tuple[int, int], Direction] = {}

    # ------------------------------------------------------------------
    # Coordinates
    # ------------------------------------------------------------------
    def coords(self, node: int) -> tuple[int, int]:
        """Return ``(x, y)`` coordinates of ``node``."""
        self._check_node(node)
        return self._coords[node]

    def node_at(self, x: int, y: int) -> int:
        """Return the node id at coordinates ``(x, y)``."""
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise TopologyError(f"coordinates ({x}, {y}) outside {self}")
        return y * self.width + x

    def _check_node(self, node: int) -> None:
        if not (0 <= node < self.num_nodes):
            raise TopologyError(f"node {node} outside {self}")

    # ------------------------------------------------------------------
    # Neighbours and channels
    # ------------------------------------------------------------------
    def neighbor(self, node: int, direction: Direction) -> int | None:
        """Return the neighbour of ``node`` through ``direction``.

        Tori have no edges: every compass port has a neighbour, so the
        return value is never ``None`` (the ``| None`` in the signature
        is the shared :class:`~repro.topology.base.Topology` contract).
        ``LOCAL`` has no neighbouring router and raises.
        """
        if direction is Direction.LOCAL:
            raise TopologyError("LOCAL port has no neighbouring router")
        x, y = self.coords(node)
        if direction is Direction.EAST:
            return self.node_at((x + 1) % self.width, y)
        if direction is Direction.WEST:
            return self.node_at((x - 1) % self.width, y)
        if direction is Direction.SOUTH:
            return self.node_at(x, (y + 1) % self.height)
        return self.node_at(x, (y - 1) % self.height)

    def router_ports(self, node: int) -> list[Direction]:
        """All ports present on ``node``'s router, LOCAL last.

        On a torus every router is fully populated.
        """
        self._check_node(node)
        return [*COMPASS, Direction.LOCAL]

    def channels(self) -> list[tuple[int, Direction, int]]:
        """Enumerate all inter-router channels as ``(src, direction, dst)``.

        Each unidirectional channel appears once; a torus has exactly
        ``4 * num_nodes`` of them (wrap links included).
        """
        out: list[tuple[int, Direction, int]] = []
        for node in range(self.num_nodes):
            for d in COMPASS:
                nbr = self.neighbor(node, d)
                assert nbr is not None
                out.append((node, d, nbr))
        return out

    # ------------------------------------------------------------------
    # Minimal routing geometry
    # ------------------------------------------------------------------
    def _ring_hops(self, c: int, d: int, k: int) -> int:
        """Shorter-way hop count between ring coordinates ``c`` and ``d``."""
        forward = (d - c) % k
        return min(forward, k - forward)

    def hop_distance(self, src: int, dst: int) -> int:
        """Minimal hop distance (shorter way around each ring)."""
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        return self._ring_hops(sx, dx, self.width) + self._ring_hops(
            sy, dy, self.height
        )

    def _ring_direction(
        self, c: int, d: int, k: int, positive: Direction, negative: Direction
    ) -> Direction | None:
        """Shorter ring direction from ``c`` to ``d`` (``None`` if equal).

        Ties (even radix, distance exactly ``k/2``) resolve to the
        positive direction so minimal routing stays deterministic.
        """
        if c == d:
            return None
        forward = (d - c) % k
        return positive if forward <= k - forward else negative

    def minimal_directions(self, cur: int, dst: int) -> list[Direction]:
        """Productive (minimal) directions from ``cur`` towards ``dst``.

        At most one direction per dimension (the shorter way around the
        ring, ties broken to EAST/SOUTH), X first then Y; an empty list
        means ``cur == dst``.  The result is cached; callers must not
        mutate it.
        """
        key = (cur, dst)
        cached = self._min_dirs.get(key)
        if cached is not None:
            return cached
        cx, cy = self.coords(cur)
        dx, dy = self.coords(dst)
        dirs: list[Direction] = []
        x_dir = self._ring_direction(
            cx, dx, self.width, Direction.EAST, Direction.WEST
        )
        if x_dir is not None:
            dirs.append(x_dir)
        y_dir = self._ring_direction(
            cy, dy, self.height, Direction.SOUTH, Direction.NORTH
        )
        if y_dir is not None:
            dirs.append(y_dir)
        self._min_dirs[key] = dirs
        return dirs

    def dor_direction(self, cur: int, dst: int) -> Direction:
        """Dimension-order (XY) next direction from ``cur`` to ``dst``.

        The X ring is fully resolved before Y, each by its shorter way;
        ``LOCAL`` is returned at the destination.
        """
        key = (cur, dst)
        cached = self._dor.get(key)
        if cached is not None:
            return cached
        dirs = self.minimal_directions(cur, dst)
        if not dirs:
            result = Direction.LOCAL
        else:
            result = dirs[0]
            for d in dirs:
                if d in (Direction.EAST, Direction.WEST):
                    result = d
                    break
        self._dor[key] = result
        return result

    def num_minimal_paths(self, src: int, dst: int) -> int:
        """Number of distinct minimal paths between ``src`` and ``dst``.

        With the per-dimension direction fixed (shorter way, ties broken
        positively) the count is the mesh formula ``C(hx + hy, hx)`` over
        the ring hop distances.
        """
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        hx = self._ring_hops(sx, dx, self.width)
        hy = self._ring_hops(sy, dy, self.height)
        return math.comb(hx + hy, hx)

    # ------------------------------------------------------------------
    # Dateline VC classes
    # ------------------------------------------------------------------
    def wrap_vc_class(self, cur: int, dst: int, direction: Direction) -> int:
        """Dateline VC class for the hop from ``cur`` through ``direction``.

        Rule: the hop is **class 0** while the packet's remaining ring
        traversal — continuing in ``direction`` from the *downstream*
        node — still has to cross the ring's wrap link, and **class 1**
        from the wrap hop onward.  Packets whose ring path never wraps
        ride entirely in class 1.

        Deadlock-freedom: order the ring's channels as

        ``class0(0->1) < ... < class0(k-2->k-1) < class1(wrap) <
        class1(0->1) < ... < class1(k-2->k-1)``

        (positive direction shown; the negative ring is symmetric).  A
        class-0 hop always has the wrap ahead, so successive class-0
        channels strictly ascend toward the wrap; the wrap hop itself is
        class 1 (from its downstream node the wrap is behind); and a
        class-1 packet never crosses the wrap again, so class-1 channels
        also strictly ascend.  Every packet's channel sequence is
        monotone in that total order, hence the per-ring dependency
        graph is acyclic; dimension order (X before Y) composes the
        rings acyclically as on the mesh.
        """
        if direction is Direction.LOCAL:
            raise TopologyError("LOCAL hop has no wrap VC class")
        cx, cy = self.coords(cur)
        dx, dy = self.coords(dst)
        if direction.dimension == 0:
            k, c, d = self.width, cx, dx
        else:
            k, c, d = self.height, cy, dy
        if direction in _POSITIVE:
            downstream = (c + 1) % k
            return 0 if d < downstream else 1
        downstream = (c - 1) % k
        return 0 if d > downstream else 1

    def __repr__(self) -> str:
        return f"Torus2D({self.width}x{self.height})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Torus2D)
            and self.width == other.width
            and self.height == other.height
        )

    def __hash__(self) -> int:
        return hash(("torus", self.width, self.height))
