"""Parallel simulation execution across worker processes.

Experiment drivers produce *grids* of independent simulations (algorithm x
pattern x injection rate); this module runs such grids through a
:class:`concurrent.futures.ProcessPoolExecutor` while keeping results
bit-identical to a serial run:

* each :class:`SimTask` is a self-contained, picklable unit — the worker
  rebuilds the simulator from the task's config, so results depend only
  on the task, never on which worker ran it or in what order;
* results are collected **in task order** regardless of completion order;
* ``jobs=1`` bypasses the pool entirely and runs in-process, which is
  also the fallback for single-task grids.

The worker count comes from, in order of precedence: an explicit ``jobs``
argument (CLI ``--jobs``), the ``REPRO_JOBS`` environment variable, and
finally a serial default of 1 — parallelism is opt-in at the library
level so programmatic callers (and tests that stub out simulation
internals) never fork workers implicitly.  ``"auto"`` maps to the
machine's CPU count.
"""

from __future__ import annotations

import os
import sys
import zlib
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

from repro.harness.cost import estimate_config_cycles, estimate_task_cycles
from repro.sim.config import SimulationConfig
from repro.sim.results import SimulationResult

if TYPE_CHECKING:
    from repro.harness.cache import ResultCache

__all__ = [
    "SimTask",
    "TaskBatchStats",
    "derive_task_seed",
    "estimate_config_cycles",
    "estimate_task_cycles",
    "partition_tasks",
    "resolve_jobs",
    "run_configs",
    "run_tasks",
    "run_tasks_accounted",
]


@dataclass(frozen=True)
class SimTask:
    """One picklable unit of simulation work.

    ``rate`` overrides the config's injection rate (the common sweep
    case); ``None`` runs the config as-is.  ``key`` is an opaque label
    carried alongside the task for the caller's bookkeeping — it is not
    interpreted here.
    """

    config: SimulationConfig
    rate: float | None = None
    key: object = None

    def resolved_config(self) -> SimulationConfig:
        """The exact configuration the worker will simulate."""
        if self.rate is None:
            return self.config
        return self.config.with_(injection_rate=self.rate)


def derive_task_seed(base_seed: int, name: str) -> int:
    """Derive a stable per-task seed from a base seed and a task name.

    Uses CRC-32 rather than :func:`hash` so the value is identical across
    interpreter runs and across process boundaries (``hash`` of a string
    is salted per process via ``PYTHONHASHSEED``).  Mirrors the stream
    derivation of :class:`repro.sim.rng.RngStreams`.
    """
    return (base_seed * 0x9E3779B1 + zlib.crc32(name.encode("utf-8"))) % 2**63


def resolve_jobs(jobs: int | str | None = None) -> int:
    """Resolve a worker count from ``jobs`` / ``REPRO_JOBS`` / serial.

    ``None`` defers to the ``REPRO_JOBS`` environment variable; an unset
    or empty variable means serial (1).  ``"auto"`` maps to the machine's
    CPU count.  The result is always >= 1.
    """
    if jobs is None:
        jobs = os.environ.get("REPRO_JOBS", "").strip() or "1"
    if isinstance(jobs, str):
        text = jobs.strip().lower()
        if text == "auto":
            return max(1, os.cpu_count() or 1)
        try:
            jobs = int(text)
        except ValueError:
            raise ValueError(
                f"jobs must be a positive integer or 'auto', got {jobs!r}"
            ) from None
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    return jobs


def _wants_telemetry(config: SimulationConfig) -> bool:
    """Whether a run of ``config`` must produce collected telemetry."""
    telemetry = config.telemetry
    return telemetry is not None and telemetry.active


def partition_tasks(
    costs: list[int], buckets: int
) -> list[list[int]]:
    """Split task indices into ``buckets`` balanced batches (LPT greedy).

    Returns index batches ordered by first task index; every index
    appears exactly once.  Longest-processing-time-first assignment onto
    the least-loaded bucket keeps the makespan near-optimal, which is
    what makes one-submission-per-worker cheaper than per-task
    round-trips for grids of many small simulations.
    """
    buckets = min(buckets, len(costs))
    order = sorted(range(len(costs)), key=lambda i: (-costs[i], i))
    loads = [0] * buckets
    batches: list[list[int]] = [[] for _ in range(buckets)]
    for i in order:
        lightest = loads.index(min(loads))
        batches[lightest].append(i)
        loads[lightest] += costs[i]
    for batch in batches:
        batch.sort()
    batches.sort(key=lambda b: b[0])
    return batches


def _run_task(
    task: SimTask, engine_mode: str | None = None
) -> SimulationResult:
    # Imported lazily: the engine pulls in repro.metrics, and importing it
    # at module level would recreate the circularity sweep.py avoids.
    from repro.sim.engine import Simulator, engine_mode_from_env
    from repro.validate.config import validation_from_env

    # $REPRO_VALIDATE and $REPRO_ENGINE_MODE propagate to pool workers
    # through the environment, so validated or vector-mode grids need no
    # per-task plumbing.  Note cache hits skip this path entirely: only
    # simulated misses are checked.
    if engine_mode is None:
        engine_mode = engine_mode_from_env()
    return Simulator(
        task.resolved_config(),
        engine_mode=engine_mode,
        validation=validation_from_env(),
    ).run()


def _run_task_batch(
    payload: tuple[list[SimTask], str | None],
) -> list[SimulationResult]:
    """Worker entry point: run one pre-balanced batch of tasks."""
    tasks, engine_mode = payload
    return [_run_task(task, engine_mode) for task in tasks]


def run_tasks(
    tasks: Iterable[SimTask],
    jobs: int | str | None = None,
    cache: "ResultCache | None" = None,
    engine_mode: str | None = None,
) -> list[SimulationResult]:
    """Run every task, returning results in task order.

    With ``jobs`` resolving to 1 (or a grid of at most one task) the
    tasks run serially in-process; otherwise they are chunked into one
    cost-balanced batch per worker (:func:`partition_tasks` over
    :func:`estimate_task_cycles`) and each batch is a single pool
    submission — per-task round-trips through the executor cost more
    than a short simulation, so small grids would otherwise run slower
    pooled than serial.  Both paths produce identical results because
    each task is an independent, deterministic simulation.

    ``engine_mode`` selects the execution engine for simulated misses
    (``None`` defers to ``$REPRO_ENGINE_MODE``, falling back to
    ``skip``); every mode is bit-identical, so cached results are
    equally valid for all of them.  ``"auto"`` re-resolves per task —
    a sweep's loaded points take the vector core while its zero-load
    references keep idle-skipping, each task getting the engine that
    wins at its offered load.

    When a :class:`~repro.harness.cache.ResultCache` is supplied it is
    consulted per task before simulating; only misses are executed (and
    stored back), so a warm cache completes the grid with zero
    simulations.  Cache hits are bit-exact round trips of the original
    results, so the returned list is identical either way.  Tasks whose
    config requests active telemetry always simulate: cached entries
    carry no telemetry (it is stripped on store), so a hit could not
    deliver the series the caller asked for — they still store their
    (telemetry-stripped) outcome back for telemetry-free reuse.

    When ``$REPRO_SERVICE`` names a running experiment service
    (``host:port``), telemetry-free grids are submitted there as one
    job instead of running locally — see :mod:`repro.service`.
    """
    task_list = list(tasks)
    service = os.environ.get("REPRO_SERVICE", "").strip()
    if service and task_list and not any(
        _wants_telemetry(task.resolved_config()) for task in task_list
    ):
        # $REPRO_SERVICE routes whole grids through the experiment
        # service (repro serve), which owns its own cache, worker pool,
        # and engine-mode policy — the local cache/jobs arguments do not
        # apply there.  Telemetry-requesting grids stay local: the
        # service dedupes through the telemetry-blind cache and cannot
        # serve collected series.  An *unreachable* service degrades to
        # the local pool with a loud stderr warning instead of failing
        # the sweep: the env var is ambient configuration, and a driver
        # should not die because the shared server restarted.  Imported
        # lazily because the service package imports this module.
        from repro.service import ServiceUnreachable
        from repro.service.client import run_tasks_via_service

        try:
            return run_tasks_via_service(task_list, address=service)
        except ServiceUnreachable as exc:
            print(
                f"warning: $REPRO_SERVICE={service} is unreachable "
                f"({exc}); falling back to the local pool",
                file=sys.stderr,
            )
    if cache is None:
        results: list[SimulationResult | None] = [None] * len(task_list)
        pending = list(range(len(task_list)))
    else:
        results = [
            None
            if _wants_telemetry(task.resolved_config())
            else cache.get(task.resolved_config())
            for task in task_list
        ]
        pending = [i for i, r in enumerate(results) if r is None]
    pending_tasks = [task_list[i] for i in pending]
    workers = min(resolve_jobs(jobs), len(pending_tasks))
    if workers <= 1:
        fresh = [_run_task(task, engine_mode) for task in pending_tasks]
    else:
        costs = [estimate_task_cycles(task) for task in pending_tasks]
        batches = partition_tasks(costs, workers)
        fresh = [None] * len(pending_tasks)
        with ProcessPoolExecutor(max_workers=len(batches)) as pool:
            futures = [
                pool.submit(
                    _run_task_batch,
                    ([pending_tasks[j] for j in batch], engine_mode),
                )
                for batch in batches
            ]
            for batch, future in zip(batches, futures):
                for j, result in zip(batch, future.result()):
                    fresh[j] = result
    for index, result in zip(pending, fresh):
        if cache is not None:
            cache.put(result)
        results[index] = result
    return results  # type: ignore[return-value]  # every slot is filled


def run_configs(
    configs: Iterable[SimulationConfig],
    jobs: int | str | None = None,
    cache: "ResultCache | None" = None,
    engine_mode: str | None = None,
) -> list[SimulationResult]:
    """Run one simulation per config, results in config order."""
    return run_tasks(
        (SimTask(config) for config in configs),
        jobs,
        cache=cache,
        engine_mode=engine_mode,
    )


@dataclass(frozen=True)
class TaskBatchStats:
    """Cache/compute accounting for one batch through :func:`run_tasks`.

    ``estimated_cycles`` is the deterministic cost estimate summed over
    *every* task (hits included) — the number budget accounting should
    charge so decisions replay identically on a warm cache.
    ``fresh_simulations``/``cache_hits`` split the batch by how each
    task was satisfied; with no cache attached every task simulates.
    """

    tasks: int
    fresh_simulations: int
    cache_hits: int
    estimated_cycles: int


def run_tasks_accounted(
    tasks: Iterable[SimTask],
    jobs: int | str | None = None,
    cache: "ResultCache | None" = None,
    engine_mode: str | None = None,
) -> tuple[list[SimulationResult], TaskBatchStats]:
    """:func:`run_tasks` plus per-batch cache-hit/cost accounting.

    The accounting reads the cache's hit/miss counters around the call,
    so it reflects exactly this batch even when the cache object is
    shared across rounds.  Used by the auto-tuner to surface, per
    search round, how much of the round was answered from disk — a
    warm re-run of a whole tune reports ``fresh_simulations == 0`` on
    every round.
    """
    task_list = list(tasks)
    estimated = sum(estimate_task_cycles(task) for task in task_list)
    hits0 = cache.hits if cache is not None else 0
    misses0 = cache.misses if cache is not None else 0
    results = run_tasks(
        task_list, jobs, cache=cache, engine_mode=engine_mode
    )
    if cache is not None:
        hits = cache.hits - hits0
        fresh = cache.misses - misses0
    else:
        hits, fresh = 0, len(task_list)
    stats = TaskBatchStats(
        tasks=len(task_list),
        fresh_simulations=fresh,
        cache_hits=hits,
        estimated_cycles=estimated,
    )
    return results, stats
