"""Single-simulation runner with optional progress output."""

from __future__ import annotations

import sys
import time

from repro.sim.config import SimulationConfig
from repro.sim.engine import Simulator, engine_mode_from_env
from repro.sim.results import SimulationResult
from repro.validate.config import validation_from_env


def run_simulation(
    config: SimulationConfig,
    verbose: bool = False,
    engine_mode: str | None = None,
) -> SimulationResult:
    """Run one simulation, optionally echoing a one-line summary.

    Honors ``$REPRO_VALIDATE``: when set, the run executes with the
    selected invariant checkers enabled (checkers observe without
    changing results, so this only affects speed and failure mode).

    ``engine_mode`` selects the execution engine (all modes are
    bit-identical); ``None`` defers to ``$REPRO_ENGINE_MODE``, falling
    back to ``skip``.  ``"auto"`` resolves to ``vector`` or ``skip``
    per config from its offered load (see
    :func:`repro.sim.engine.resolve_auto_mode`).
    """
    if engine_mode is None:
        engine_mode = engine_mode_from_env()
    start = time.perf_counter()
    result = Simulator(
        config, engine_mode=engine_mode, validation=validation_from_env()
    ).run()
    if verbose:
        elapsed = time.perf_counter() - start
        print(
            f"{result.summary()}  [{result.cycles_run} cycles, "
            f"{elapsed:.1f}s]",
            file=sys.stderr,
        )
    return result
