"""Single-simulation runner with optional progress output."""

from __future__ import annotations

import sys
import time

from repro.sim.config import SimulationConfig
from repro.sim.engine import Simulator
from repro.sim.results import SimulationResult


def run_simulation(
    config: SimulationConfig, verbose: bool = False
) -> SimulationResult:
    """Run one simulation, optionally echoing a one-line summary."""
    start = time.perf_counter()
    result = Simulator(config).run()
    if verbose:
        elapsed = time.perf_counter() - start
        print(
            f"{result.summary()}  [{result.cycles_run} cycles, "
            f"{elapsed:.1f}s]",
            file=sys.stderr,
        )
    return result
