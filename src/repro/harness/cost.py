"""Deterministic task-cost model shared by every scheduling layer.

Wall time per simulation scales with how many cycles the run simulates
and how many routers do per-cycle work, so ``cycles x nodes`` is a good
(cheap, deterministic, config-only) proxy for relative task cost.  Three
consumers share this single definition:

* the local process pool (:func:`repro.harness.parallel.partition_tasks`
  balances worker batches over it);
* the experiment service's weighted-fair scheduler (stream virtual time
  advances by ``estimate_task_cycles / weight`` per dispatch);
* the auto-tuner's budget accounting (a tune's budget is spent in
  estimated cycle-nodes, *independent of cache hits*, so budget
  decisions replay identically on a warm cache).

Keeping the estimate config-only (never timing-based) is what makes all
three deterministic: the same grid produces the same batches, the same
dispatch order, and the same tuning rounds on every machine and at
every worker count.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sim.config import SimulationConfig

if TYPE_CHECKING:
    from repro.harness.parallel import SimTask

#: Weight of the drain phase relative to warmup/measure cycles.  The
#: drain budget is an upper bound that usually terminates long before
#: exhaustion once in-flight packets land, so it is counted lightly.
DRAIN_WEIGHT_DIVISOR = 4


def estimate_config_cycles(config: SimulationConfig) -> int:
    """Relative cost of simulating ``config``: simulated cycle-nodes.

    ``(warmup + measure + drain/4) x width x height``, floored at 1.
    Purely a function of the config — no timing, no host state — so the
    estimate is identical across processes, machines, and reruns.
    """
    cycles = (
        config.warmup_cycles
        + config.measure_cycles
        + config.drain_cycles // DRAIN_WEIGHT_DIVISOR
    )
    height = config.height if config.height is not None else config.width
    return max(1, cycles * config.width * height)


def estimate_task_cycles(task: "SimTask") -> int:
    """Relative cost estimate of one :class:`SimTask` (resolved config)."""
    return estimate_config_cycles(task.resolved_config())
