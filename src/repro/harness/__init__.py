"""Experiment harness: per-figure drivers and textual reporting."""

from repro.harness.experiments import (
    Scale,
    SMOKE,
    BENCH,
    PAPER,
    FaultSweepEntry,
    fault_sweep,
    fig2_congestion_tree,
    fig5_latency_throughput,
    fig6_variable_packet_size,
    fig7_vc_sweep,
    fig8_network_size,
    fig9_hotspot,
    fig10_parsec,
    table1_adaptiveness,
    cost_table,
)

__all__ = [
    "Scale",
    "SMOKE",
    "BENCH",
    "PAPER",
    "FaultSweepEntry",
    "fault_sweep",
    "fig2_congestion_tree",
    "fig5_latency_throughput",
    "fig6_variable_packet_size",
    "fig7_vc_sweep",
    "fig8_network_size",
    "fig9_hotspot",
    "fig10_parsec",
    "table1_adaptiveness",
    "cost_table",
]
