"""Per-figure experiment drivers.

Each function regenerates the data behind one figure or table of the
paper.  All drivers take a :class:`Scale` that controls simulated cycles
and sweep density, so the same code serves three purposes:

* ``SMOKE`` — integration tests (seconds);
* ``BENCH`` — the benchmark suite (minutes per figure), the default;
* ``PAPER`` — full-scale runs approximating the paper's own settings.

The environment variable ``REPRO_SCALE`` (``smoke``/``bench``/``paper``)
overrides the scale used by the benchmark suite.

Each sweep driver flattens its simulation grid into independent tasks and
runs them through :mod:`repro.harness.parallel`; pass ``jobs`` (or set
``REPRO_JOBS``) to distribute them over worker processes.  Results are
bit-identical for any worker count.  Passing a
:class:`~repro.harness.cache.ResultCache` as ``cache`` reuses previously
simulated points from disk — a warm re-run of any figure completes with
zero simulations.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.core.adaptiveness import qualitative_comparison
from repro.core.cost import CostModel
from repro.exceptions import FaultError
from repro.faults.schedule import random_link_faults, random_router_faults
from repro.harness.parallel import SimTask, derive_task_seed, run_configs, run_tasks

if TYPE_CHECKING:
    from repro.harness.cache import ResultCache
from repro.metrics.curves import LatencyThroughputCurve
from repro.metrics.resilience import (
    ResiliencePoint,
    degraded_saturation_rate,
    resilience_point,
)
from repro.metrics.sweep import point_from_result
from repro.routing.registry import available_algorithms, create_routing
from repro.sim.config import SimulationConfig
from repro.sim.engine import Simulator
from repro.sim.results import SimulationResult
from repro.telemetry import TelemetryConfig, TelemetryResult
from repro.topology.base import create_topology
from repro.topology.mesh import Mesh2D
from repro.traffic.parsecgen import generate_parsec_trace, merge_traces


@dataclass(frozen=True)
class Scale:
    """Cycle counts and sweep densities for the experiment drivers."""

    name: str
    width: int = 8
    height: int | None = None
    topology: str = "mesh"
    num_vcs: int = 10
    warmup: int = 100
    measure: int = 200
    drain: int = 450
    rates: tuple[float, ...] = (0.1, 0.3, 0.45, 0.55)
    hotspot_rates: tuple[float, ...] = (0.15, 0.3, 0.45, 0.6)
    vc_counts: tuple[int, ...] = (2, 4, 8, 16)
    trace_cycles: int = 1200
    fault_counts: tuple[int, ...] = (0, 1, 2, 4, 8)

    def config(self, **overrides) -> SimulationConfig:
        base = dict(
            width=self.width,
            height=self.height,
            topology=self.topology,
            num_vcs=self.num_vcs,
            warmup_cycles=self.warmup,
            measure_cycles=self.measure,
            drain_cycles=self.drain,
        )
        base.update(overrides)
        return SimulationConfig(**base)

    def make_topology(self):
        """The scale's network geometry — the same
        :class:`~repro.topology.base.Topology` every task config builds,
        so drivers that pre-generate traces or adaptiveness tables
        cannot diverge from the simulated network (a square ``Mesh2D``
        hardcoded here once broke rectangular sweeps)."""
        return create_topology(self.topology, self.width, self.height)


SMOKE = Scale(
    name="smoke",
    width=4,
    num_vcs=4,
    warmup=80,
    measure=150,
    drain=400,
    rates=(0.1, 0.35),
    hotspot_rates=(0.2, 0.5),
    vc_counts=(2, 4),
    trace_cycles=400,
    fault_counts=(0, 2),
)

BENCH = Scale(name="bench")

PAPER = Scale(
    name="paper",
    warmup=1000,
    measure=2000,
    drain=10000,
    rates=(0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5, 0.55, 0.6),
    hotspot_rates=(0.1, 0.2, 0.3, 0.35, 0.4, 0.45, 0.5, 0.55, 0.6),
    vc_counts=(2, 4, 8, 16),
    trace_cycles=20000,
    fault_counts=(0, 1, 2, 4, 8, 16),
)

_SCALES = {"smoke": SMOKE, "bench": BENCH, "paper": PAPER}


def scale_from_env(default: Scale = BENCH) -> Scale:
    """Scale selected by the ``REPRO_SCALE`` environment variable."""
    name = os.environ.get("REPRO_SCALE", "").strip().lower()
    return _SCALES.get(name, default)


#: Algorithms compared in Figs. 5-6 (the paper's full roster).
FIG5_ALGORITHMS = (
    "dor",
    "oddeven",
    "dbar",
    "footprint",
    "dor+xordet",
    "oddeven+xordet",
    "dbar+xordet",
)

FIG5_PATTERNS = ("uniform", "transpose", "shuffle")


# ----------------------------------------------------------------------
# Fig. 2 — congestion-tree case study
# ----------------------------------------------------------------------
#: Fig. 2's network-congested destination (flow f1's target).
FIG2_NETWORK_DST = 10

#: Fig. 2's endpoint-congested destination (flows f3 and f4 converge).
FIG2_ENDPOINT_DST = 13


@dataclass(frozen=True)
class TreeShape:
    """Congestion-tree shape at one sampled instant.

    The scalar view of a :class:`~repro.core.congestion.CongestionTree`
    that the telemetry sampler records — attribute-compatible with the
    full tree object (``num_branches`` / ``total_vcs`` /
    ``max_thickness`` / ``mean_thickness``) so renderers accept either.
    """

    num_branches: int
    total_vcs: int
    max_thickness: int

    @property
    def mean_thickness(self) -> float:
        if self.num_branches == 0:
            return 0.0
        return self.total_vcs / self.num_branches

    @classmethod
    def from_tree_series(
        cls, series: dict[str, list[float]], index: int
    ) -> "TreeShape":
        """The shape at sample ``index`` of a telemetry tree series."""
        return cls(
            num_branches=int(series["branches"][index]),
            total_vcs=int(series["vcs"][index]),
            max_thickness=int(series["max_thickness"][index]),
        )


@dataclass
class Fig2Result:
    """Congestion trees of the Fig. 2 permutation under one algorithm.

    ``network_tree``/``endpoint_tree`` are the end-of-run shapes (what
    the paper's figure draws); the ``*_branch_series`` record how many
    branches each tree had at every sampled cycle, so the report can
    show the tree *forming*, not just its final extent.
    """

    routing: str
    network_tree: TreeShape
    endpoint_tree: TreeShape
    sample_cycles: list[int] = field(default_factory=list)
    network_branch_series: list[int] = field(default_factory=list)
    endpoint_branch_series: list[int] = field(default_factory=list)
    telemetry: TelemetryResult | None = None


def fig2_congestion_tree(
    routing: str, cycles: int = 400, seed: int = 3, sample_every: int = 50
) -> Fig2Result:
    """Reproduce the Fig. 2 case study: a 4x4 mesh, 4 VCs, four flows.

    Flows f1..f4 (``n0->n10, n1->n15, n4->n13, n12->n13``) create network
    congestion on link n1->n2 under DOR and endpoint congestion at n13.
    The run oversubscribes n13 and observes both destinations through the
    telemetry tree sampler (``tree_nodes=(10, 13)``), so the result
    carries the congestion trees' growth over time; the final sample
    lands on the last simulated cycle, making the end-of-run shapes
    identical to a direct end-state extraction.
    """
    from repro.traffic.patterns import TrafficGenerator
    from repro.router.flit import Packet

    flows = [(0, FIG2_NETWORK_DST), (1, 15), (4, FIG2_ENDPOINT_DST),
             (12, FIG2_ENDPOINT_DST)]

    class _Fig2Traffic(TrafficGenerator):
        def generate(self, cycle: int, measured: bool):
            # Persistent flows at 0.9 flits/node/cycle: n13 receives 1.8x
            # its ejection bandwidth and a congestion tree must form.
            out = []
            for src, dst in flows:
                if cycle % 10 != 9:
                    out.append(
                        Packet(
                            src=src,
                            dst=dst,
                            size=1,
                            creation_time=cycle,
                            flow=f"f{src}",
                            measured=False,
                        )
                    )
            return out

    config = SimulationConfig(
        width=4,
        num_vcs=4,
        routing=routing,
        traffic="uniform",  # replaced by the custom generator below
        injection_rate=0.0,
        warmup_cycles=0,
        measure_cycles=cycles,
        drain_cycles=0,
        seed=seed,
        telemetry=TelemetryConfig(
            sample_every=sample_every,
            tree_nodes=(FIG2_NETWORK_DST, FIG2_ENDPOINT_DST),
        ),
    )
    sim = Simulator(config, traffic=_Fig2Traffic())
    telemetry = sim.run().telemetry
    assert telemetry is not None
    network = telemetry.tree_series(FIG2_NETWORK_DST)
    endpoint = telemetry.tree_series(FIG2_ENDPOINT_DST)
    return Fig2Result(
        routing=routing,
        network_tree=TreeShape.from_tree_series(network, -1),
        endpoint_tree=TreeShape.from_tree_series(endpoint, -1),
        sample_cycles=list(telemetry.sample_cycles),
        network_branch_series=[int(v) for v in network["branches"]],
        endpoint_branch_series=[int(v) for v in endpoint["branches"]],
        telemetry=telemetry,
    )


# ----------------------------------------------------------------------
# Figs. 5-6 — latency-throughput curves
# ----------------------------------------------------------------------
def latency_throughput_curves(
    scale: Scale,
    algorithms: tuple[str, ...],
    pattern: str,
    packet_size_range: tuple[int, int] | None = None,
    seed: int = 1,
    jobs: int | str | None = None,
    cache: "ResultCache | None" = None,
) -> list[LatencyThroughputCurve]:
    """One latency-throughput curve per algorithm for ``pattern``.

    The full algorithm x rate grid is one flat task list, so with
    ``jobs > 1`` every point of every curve simulates concurrently.
    """
    tasks = [
        SimTask(
            scale.config(
                routing=algorithm,
                traffic=pattern,
                packet_size_range=packet_size_range,
                seed=seed,
            ),
            rate=rate,
            key=(algorithm, rate),
        )
        for algorithm in algorithms
        for rate in scale.rates
    ]
    results = iter(run_tasks(tasks, jobs, cache=cache))
    curves = []
    for algorithm in algorithms:
        curve = LatencyThroughputCurve(label=algorithm)
        for rate in scale.rates:
            curve.add(point_from_result(next(results), rate))
        curves.append(curve)
    return curves


def fig5_latency_throughput(
    scale: Scale,
    patterns: tuple[str, ...] = FIG5_PATTERNS,
    algorithms: tuple[str, ...] = FIG5_ALGORITHMS,
    seed: int = 1,
    jobs: int | str | None = None,
    cache: "ResultCache | None" = None,
) -> dict[str, list[LatencyThroughputCurve]]:
    """Fig. 5: single-flit latency-throughput for every algorithm."""
    return {
        p: latency_throughput_curves(
            scale, algorithms, p, seed=seed, jobs=jobs, cache=cache
        )
        for p in patterns
    }


def fig6_variable_packet_size(
    scale: Scale,
    patterns: tuple[str, ...] = FIG5_PATTERNS,
    algorithms: tuple[str, ...] = FIG5_ALGORITHMS,
    seed: int = 1,
    jobs: int | str | None = None,
    cache: "ResultCache | None" = None,
) -> dict[str, list[LatencyThroughputCurve]]:
    """Fig. 6: {1..6}-flit uniformly distributed packet sizes."""
    return {
        p: latency_throughput_curves(
            scale,
            algorithms,
            p,
            packet_size_range=(1, 6),
            seed=seed,
            jobs=jobs,
            cache=cache,
        )
        for p in patterns
    }


# ----------------------------------------------------------------------
# Fig. 7 — VC-count sweep (DBAR vs Footprint)
# ----------------------------------------------------------------------
def fig7_vc_sweep(
    scale: Scale,
    pattern: str,
    vc_counts: tuple[int, ...] | None = None,
    seed: int = 1,
    jobs: int | str | None = None,
    cache: "ResultCache | None" = None,
) -> dict[int, list[LatencyThroughputCurve]]:
    """Fig. 7: DBAR vs Footprint as the number of VCs varies."""
    counts = vc_counts if vc_counts is not None else scale.vc_counts
    algorithms = ("dbar", "footprint")
    tasks = [
        SimTask(
            scale.config(
                routing=algorithm, traffic=pattern, num_vcs=vcs, seed=seed
            ),
            rate=rate,
            key=(vcs, algorithm, rate),
        )
        for vcs in counts
        for algorithm in algorithms
        for rate in scale.rates
    ]
    results = iter(run_tasks(tasks, jobs, cache=cache))
    out: dict[int, list[LatencyThroughputCurve]] = {}
    for vcs in counts:
        curves = []
        for algorithm in algorithms:
            curve = LatencyThroughputCurve(label=f"{algorithm}/{vcs}vc")
            for rate in scale.rates:
                curve.add(point_from_result(next(results), rate))
            curves.append(curve)
        out[vcs] = curves
    return out


# ----------------------------------------------------------------------
# Fig. 8 — network-size scaling
# ----------------------------------------------------------------------
@dataclass
class Fig8Result:
    """Saturation throughput of DBAR normalized to Footprint per size."""

    pattern: str
    width: int
    dbar_saturation: float
    footprint_saturation: float

    @property
    def dbar_normalized(self) -> float:
        if self.footprint_saturation == 0:
            return float("nan")
        return self.dbar_saturation / self.footprint_saturation


def _saturation_from_curve(
    curve: LatencyThroughputCurve, zero_load: float
) -> float:
    return curve.saturation_rate(zero_load)


def fig8_network_size(
    scale: Scale,
    widths: tuple[int, ...] = (4, 8, 16),
    patterns: tuple[str, ...] = FIG5_PATTERNS,
    seed: int = 1,
    jobs: int | str | None = None,
    cache: "ResultCache | None" = None,
) -> list[Fig8Result]:
    """Fig. 8: DBAR throughput normalized to Footprint across mesh sizes."""
    algorithms = ("dbar", "footprint")
    tasks = [
        SimTask(
            scale.config(
                routing=algorithm, traffic=pattern, width=width, seed=seed
            ),
            rate=rate,
            key=(pattern, width, algorithm, rate),
        )
        for pattern in patterns
        for width in widths
        for algorithm in algorithms
        for rate in scale.rates
    ]
    sim_results = iter(run_tasks(tasks, jobs, cache=cache))
    zero_index = scale.rates.index(min(scale.rates))
    results = []
    for pattern in patterns:
        for width in widths:
            saturations = {}
            for algorithm in algorithms:
                curve = LatencyThroughputCurve(label=algorithm)
                for rate in scale.rates:
                    curve.add(point_from_result(next(sim_results), rate))
                # The lowest sweep rate doubles as the zero-load
                # reference; no separate simulation needed.
                zero = curve.points[zero_index].avg_latency
                saturations[algorithm] = _saturation_from_curve(curve, zero)
            results.append(
                Fig8Result(
                    pattern=pattern,
                    width=width,
                    dbar_saturation=saturations["dbar"],
                    footprint_saturation=saturations["footprint"],
                )
            )
    return results


# ----------------------------------------------------------------------
# Fig. 9 — hotspot traffic
# ----------------------------------------------------------------------
def fig9_hotspot(
    scale: Scale,
    algorithms: tuple[str, ...] = ("dbar", "footprint"),
    seed: int = 1,
    jobs: int | str | None = None,
    cache: "ResultCache | None" = None,
) -> dict[str, list[tuple[float, float, bool]]]:
    """Fig. 9: background latency vs hotspot injection rate.

    Background traffic runs at a constant 0.3; hotspot flows sweep their
    rate.  Returns, per algorithm, ``(hotspot_rate, background_latency,
    drained)`` tuples; the paper's claim is that DBAR's background latency
    collapses at a much lower hotspot rate than Footprint's.
    """
    configs = [
        scale.config(
            routing=algorithm,
            traffic="hotspot",
            hotspot_rate=rate,
            background_rate=0.3,
            seed=seed,
        )
        for algorithm in algorithms
        for rate in scale.hotspot_rates
    ]
    results = iter(run_configs(configs, jobs, cache=cache))
    out: dict[str, list[tuple[float, float, bool]]] = {}
    for algorithm in algorithms:
        series = []
        for rate in scale.hotspot_rates:
            result = next(results)
            series.append(
                (rate, result.flow_latency("background"), result.drained)
            )
        out[algorithm] = series
    return out


# ----------------------------------------------------------------------
# Fig. 10 — PARSEC-like traces
# ----------------------------------------------------------------------
@dataclass
class Fig10Entry:
    """One workload pair's comparison (Fig. 10a-c)."""

    workloads: tuple[str, str]
    dbar_latency: float
    footprint_latency: float
    dbar_purity: float
    footprint_purity: float
    dbar_hol_degree: float
    footprint_hol_degree: float

    @property
    def latency_improvement(self) -> float:
        """Fractional latency reduction of Footprint over DBAR."""
        if self.dbar_latency == 0:
            return 0.0
        return (self.dbar_latency - self.footprint_latency) / self.dbar_latency


def fig10_parsec(
    scale: Scale,
    pairs: tuple[tuple[str, str], ...] = (
        ("x264", "canneal"),
        ("fluidanimate", "bodytrack"),
        ("fluidanimate", "x264"),
        ("bodytrack", "canneal"),
    ),
    seed: int = 1,
    jobs: int | str | None = None,
    cache: "ResultCache | None" = None,
) -> list[Fig10Entry]:
    """Fig. 10: DBAR vs Footprint on pairs of PARSEC-like traces."""
    mesh = scale.make_topology()
    algorithms = ("dbar", "footprint")
    configs = []
    for pair in pairs:
        trace = merge_traces(
            generate_parsec_trace(
                pair[0], mesh, scale.trace_cycles, seed=seed
            ),
            generate_parsec_trace(
                pair[1], mesh, scale.trace_cycles, seed=seed + 1
            ),
        )
        for algorithm in algorithms:
            configs.append(
                scale.config(
                    routing=algorithm,
                    traffic="trace",
                    trace=trace,
                    warmup_cycles=scale.trace_cycles // 10,
                    measure_cycles=scale.trace_cycles,
                    drain_cycles=scale.drain,
                    seed=seed,
                )
            )
    results = iter(run_configs(configs, jobs, cache=cache))
    entries = []
    for pair in pairs:
        measured: dict[str, SimulationResult] = {
            algorithm: next(results) for algorithm in algorithms
        }
        entries.append(
            Fig10Entry(
                workloads=pair,
                dbar_latency=measured["dbar"].avg_latency,
                footprint_latency=measured["footprint"].avg_latency,
                dbar_purity=measured["dbar"].blocking.purity,
                footprint_purity=measured["footprint"].blocking.purity,
                dbar_hol_degree=measured["dbar"].blocking.hol_degree,
                footprint_hol_degree=measured["footprint"].blocking.hol_degree,
            )
        )
    return entries


# ----------------------------------------------------------------------
# Table 1 — qualitative comparison backed by metrics
# ----------------------------------------------------------------------
def table1_adaptiveness(
    width: int = 4, num_vcs: int = 4, height: int | None = None
) -> dict[str, dict[str, float]]:
    """Quantitative adaptiveness behind Table 1's +/o/- entries."""
    mesh = Mesh2D(width, height)
    algorithms = {
        name: create_routing(name)
        for name in ("dor", "oddeven", "dbar", "footprint", "dbar+xordet")
    }
    return qualitative_comparison(algorithms, mesh, num_vcs)


# ----------------------------------------------------------------------
# §4.4 — cost model
# ----------------------------------------------------------------------
def cost_table(
    configurations: tuple[tuple[int, int], ...] = (
        (16, 4),
        (64, 10),
        (64, 16),
        (256, 16),
    )
) -> list[CostModel]:
    """Footprint storage cost for several (nodes, VCs) configurations."""
    return [CostModel(n, v) for n, v in configurations]


# ----------------------------------------------------------------------
# Fault sweep — resilience under broken links/routers
# ----------------------------------------------------------------------
@dataclass
class FaultSweepEntry:
    """One (algorithm, fault count) cell of the resilience sweep."""

    routing: str
    num_faults: int
    fault_kind: str
    #: Mean latency at the lowest swept rate on the faulted topology.
    zero_load_latency: float
    #: Highest swept rate that is not degraded (fault analogue of
    #: saturation throughput; see repro.metrics.resilience).
    degraded_saturation: float
    #: Delivered fraction at the lowest swept rate — the structural
    #: reachability loss the faults impose regardless of load.
    delivered_fraction: float
    points: list[ResiliencePoint] = field(default_factory=list)


def fault_sweep(
    scale: Scale,
    algorithms: tuple[str, ...] | None = None,
    pattern: str = "uniform",
    fault_counts: tuple[int, ...] | None = None,
    fault_kind: str = "link",
    fault_cycle: int = 0,
    seed: int = 1,
    jobs: int | str | None = None,
    cache: "ResultCache | None" = None,
) -> list[FaultSweepEntry]:
    """Resilience of every algorithm vs. the number of injected faults.

    For each fault count ``k`` a single permanent fault schedule is drawn
    (seeded from ``seed`` and ``k``) and shared by *all* algorithms, so
    every algorithm faces the same broken topology — the comparison is of
    routing adaptiveness, not of fault luck.  The full fault x algorithm
    x rate grid is one flat task list through the parallel runner and the
    result cache, like every other sweep driver.
    """
    if algorithms is None:
        algorithms = tuple(available_algorithms())
    counts = fault_counts if fault_counts is not None else scale.fault_counts
    if fault_kind == "link":
        generate = random_link_faults
    elif fault_kind == "router":
        generate = random_router_faults
    else:
        raise FaultError(
            f"unknown fault kind {fault_kind!r}; expected 'link' or 'router'"
        )
    schedules = {
        k: (
            generate(
                scale.width,
                scale.height,
                k=k,
                cycle=fault_cycle,
                seed=derive_task_seed(seed, f"faults/{fault_kind}/{k}"),
                topology=scale.topology,
            )
            if k
            else None
        )
        for k in counts
    }
    tasks = [
        SimTask(
            scale.config(
                routing=algorithm,
                traffic=pattern,
                faults=schedules[k],
                seed=seed,
            ),
            rate=rate,
            key=(k, algorithm, rate),
        )
        for k in counts
        for algorithm in algorithms
        for rate in scale.rates
    ]
    results = iter(run_tasks(tasks, jobs, cache=cache))
    entries = []
    for k in counts:
        for algorithm in algorithms:
            points = [
                resilience_point(next(results), rate) for rate in scale.rates
            ]
            entries.append(
                FaultSweepEntry(
                    routing=algorithm,
                    num_faults=k,
                    fault_kind=fault_kind,
                    zero_load_latency=points[0].avg_latency,
                    degraded_saturation=degraded_saturation_rate(points),
                    delivered_fraction=points[0].delivered_fraction,
                    points=points,
                )
            )
    return entries
