"""Persistent, content-addressed cache of simulation results.

Every simulation in this repository is a pure function of its
:class:`~repro.sim.config.SimulationConfig` (the config carries the seed,
the traffic spec — including trace events — and every knob the engine
reads).  That makes results cacheable across processes and sessions: the
cache key is a SHA-256 over the canonical JSON form of the config plus
the engine's :data:`~repro.sim.engine.ENGINE_VERSION` stamp, so any
change to either yields a different key and stale entries simply stop
being addressed — no explicit invalidation pass is needed.  The engine
*mode* (vector/skip/fast/legacy) is deliberately not part of the key:
all modes are bit-identical (``repro validate`` proves it per sweep), so
a result cached under one mode is equally valid for every other.

Entries are one JSON file per key under the cache directory (default
``.repro-cache/``, overridable with the ``REPRO_CACHE_DIR`` environment
variable or an explicit path).  Writes go through a temporary file and
an atomic :func:`os.replace`, so concurrent ``--jobs`` workers, parallel
experiment runs, and the experiment service's streams can share a
directory without torn entries; unreadable or corrupt files are treated
as misses and overwritten.  Writers also tolerate a ``prune``/``clear``
racing them (the store is retried once if the directory vanishes
mid-write), and ``prune`` sweeps temp files orphaned by dead writers.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from pathlib import Path

from repro.sim.config import SimulationConfig
from repro.sim.results import SimulationResult

#: Environment variable naming the cache directory.
CACHE_ENV = "REPRO_CACHE_DIR"

#: Directory used when neither an explicit path nor the env var is set.
DEFAULT_CACHE_DIR = ".repro-cache"

#: Age beyond which an orphaned ``.*.tmp`` file is fair game for
#: ``prune``: far longer than any single simulation's store, so a live
#: concurrent writer can never lose its in-progress temp file.
STALE_TMP_SECONDS = 3600.0


def default_cache_dir() -> Path:
    """The cache directory: ``$REPRO_CACHE_DIR`` or ``.repro-cache``."""
    return Path(os.environ.get(CACHE_ENV, "").strip() or DEFAULT_CACHE_DIR)


def config_cache_key(config: SimulationConfig) -> str:
    """Content hash addressing ``config``'s result on disk.

    Stable across processes and interpreter runs: the payload is
    canonical JSON (sorted keys, fixed separators) over the config's
    dict form plus the engine-version stamp.  Two configs differing in
    any field hash differently — except ``telemetry``, which is dropped
    from the payload: telemetry observes a run without changing it (the
    engine bit-identity tests assert this), so configs differing only in
    telemetry address the same simulated result.  Field ordering cannot
    matter because the serializer sorts keys.
    """
    # Imported lazily: the engine imports repro.sim.config, and the
    # harness modules keep engine imports out of module scope to avoid
    # the circular-import sweep (see repro.harness.parallel._run_task).
    from repro.sim.engine import ENGINE_VERSION

    config_dict = config.to_dict()
    config_dict.pop("telemetry", None)
    payload = {
        "engine_version": ENGINE_VERSION,
        "config": config_dict,
    }
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """On-disk result store with hit/miss accounting.

    ``get``/``put`` round-trip :class:`SimulationResult` through its
    JSON form, so a hit reproduces every observable statistic of the
    original run (full latency sample sets included).
    """

    def __init__(self, directory: str | os.PathLike | None = None) -> None:
        self.directory = (
            Path(directory) if directory is not None else default_cache_dir()
        )
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def _path(self, key: str) -> Path:
        return self.directory / f"{key}.json"

    def get(self, config: SimulationConfig) -> SimulationResult | None:
        """The cached result for ``config``, or ``None`` on a miss."""
        path = self._path(config_cache_key(config))
        try:
            data = json.loads(path.read_text())
            result = SimulationResult.from_dict(data)
        except (OSError, ValueError, KeyError, TypeError):
            # Missing, unreadable, or corrupt entry: report a miss; a
            # subsequent put() overwrites the bad file.
            self.misses += 1
            return None
        self.hits += 1
        return result

    def put(self, result: SimulationResult) -> None:
        """Store ``result``, atomically replacing any existing entry.

        Telemetry is stripped from the stored payload: the key ignores
        the telemetry config, so an entry must be exactly the simulated
        outcome any telemetry variant of the config would produce.

        Safe under concurrent writers and a racing ``prune``/``clear``:
        the write lands in a hidden temp file first and is published
        with one atomic :func:`os.replace`, and if the directory (or
        the temp file) vanishes mid-write — a concurrent sweep removed
        it — the store is retried once from ``mkdir`` up.
        """
        key = config_cache_key(result.config)
        payload = result.to_dict()
        payload["telemetry"] = None
        # The stored config is normalized the same way the key is, so a
        # hit never claims a telemetry setting it did not serve.
        payload["config"]["telemetry"] = None
        blob = json.dumps(payload, separators=(",", ":"))
        for attempt in (0, 1):
            self.directory.mkdir(parents=True, exist_ok=True)
            try:
                fd, tmp_name = tempfile.mkstemp(
                    dir=self.directory, prefix=f".{key}.", suffix=".tmp"
                )
            except FileNotFoundError:
                # Directory removed between mkdir and mkstemp.
                if attempt:
                    raise
                continue
            try:
                with os.fdopen(fd, "w") as handle:
                    handle.write(blob)
                os.replace(tmp_name, self._path(key))
                return
            except FileNotFoundError:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                if attempt:
                    raise
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise

    # ------------------------------------------------------------------
    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    def describe(self) -> str:
        """One-line hit/miss summary for experiment reports."""
        return (
            f"cache {self.directory}: {self.hits} hits, "
            f"{self.misses} misses"
        )

    # ------------------------------------------------------------------
    # Store management (the `repro cache` CLI)
    # ------------------------------------------------------------------
    def entry_paths(self) -> list[Path]:
        """Paths of all cache entries, sorted by name (i.e. by key)."""
        if not self.directory.is_dir():
            return []
        return sorted(
            p for p in self.directory.glob("*.json") if p.is_file()
        )

    def stats(self) -> dict[str, object]:
        """Entry count and total size of the on-disk store."""
        entries = self.entry_paths()
        total_bytes = 0
        for path in entries:
            try:
                total_bytes += path.stat().st_size
            except OSError:
                # Entry vanished mid-scan (concurrent prune/clear).
                pass
        return {
            "directory": str(self.directory),
            "entries": len(entries),
            "total_bytes": total_bytes,
        }

    def _sweep_tmp(self, max_age_seconds: float) -> int:
        """Remove orphaned ``.*.tmp`` files older than ``max_age_seconds``.

        A writer that died between ``mkstemp`` and ``os.replace`` leaks
        its temp file; ``prune`` sweeps ones old enough that no live
        writer can still own them, ``clear`` sweeps all.  Vanishing
        files (a racing sweep, or the owning writer publishing) are
        skipped.
        """
        if not self.directory.is_dir():
            return 0
        removed = 0
        now = time.time()
        for path in self.directory.glob(".*.tmp"):
            try:
                if now - path.stat().st_mtime >= max_age_seconds:
                    path.unlink()
                    removed += 1
            except OSError:
                pass
        return removed

    def clear(self) -> int:
        """Delete every entry (and temp file); return entries removed."""
        removed = 0
        for path in self.entry_paths():
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        self._sweep_tmp(0.0)
        return removed

    def prune(self, max_entries: int) -> int:
        """Keep the ``max_entries`` most recently written entries.

        Eviction is oldest-first by modification time (ties broken by
        name for determinism); returns the number of entries removed.
        Also sweeps temp files orphaned by dead writers (older than
        :data:`STALE_TMP_SECONDS`); entries that vanish mid-prune — a
        concurrent ``clear`` or another ``prune`` — are tolerated.
        """
        if max_entries < 0:
            raise ValueError("max_entries must be >= 0")
        self._sweep_tmp(STALE_TMP_SECONDS)
        entries = self.entry_paths()
        if len(entries) <= max_entries:
            return 0

        def age_key(path: Path) -> tuple[float, str]:
            try:
                mtime = path.stat().st_mtime
            except OSError:
                mtime = 0.0
            return (mtime, path.name)

        entries.sort(key=age_key)
        removed = 0
        excess = len(entries) - max_entries
        for path in entries[:excess]:
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed
