"""Textual rendering of experiment results.

Each renderer prints the same rows/series the paper's figure plots, as an
aligned text table, so benchmark output can be read (and diffed) without a
plotting stack.
"""

from __future__ import annotations

import math

from repro.harness.experiments import (
    FaultSweepEntry,
    Fig2Result,
    Fig8Result,
    Fig10Entry,
)
from repro.core.cost import CostModel
from repro.metrics.curves import LatencyThroughputCurve, render_curves, render_table


def report_fig5(
    results: dict[str, list[LatencyThroughputCurve]], title: str
) -> str:
    parts = []
    for pattern, curves in results.items():
        parts.append(render_curves(f"{title} — {pattern}", curves))
    return "\n\n".join(parts)


def report_fig7(
    results: dict[int, list[LatencyThroughputCurve]], pattern: str
) -> str:
    parts = []
    for vcs, curves in sorted(results.items()):
        parts.append(
            render_curves(f"Fig. 7 — {pattern}, {vcs} VCs", curves)
        )
    return "\n\n".join(parts)


def report_fig8(results: list[Fig8Result]) -> str:
    rows = [
        [
            r.pattern,
            f"{r.width}x{r.width}",
            f"{r.dbar_saturation:.3f}",
            f"{r.footprint_saturation:.3f}",
            f"{r.dbar_normalized:.3f}",
        ]
        for r in results
    ]
    return render_table(
        "Fig. 8 — saturation throughput, DBAR normalized to Footprint",
        ["pattern", "mesh", "dbar", "footprint", "dbar/footprint"],
        rows,
    )


def report_fig9(results: dict[str, list[tuple[float, float, bool]]]) -> str:
    algorithms = sorted(results)
    rates = sorted({rate for series in results.values() for rate, _, _ in series})
    rows = []
    for rate in rates:
        row = [f"{rate:.2f}"]
        for algorithm in algorithms:
            entry = next(
                (e for e in results[algorithm] if e[0] == rate), None
            )
            if entry is None:
                row.append("-")
            else:
                _, latency, drained = entry
                text = "sat" if math.isnan(latency) else f"{latency:.1f}"
                if not drained:
                    text += "*"
                row.append(text)
        rows.append(row)
    return render_table(
        "Fig. 9 — background latency vs hotspot injection rate "
        "(* = not drained)",
        ["hotspot_rate"] + algorithms,
        rows,
    )


def report_fig10(entries: list[Fig10Entry]) -> str:
    rows = [
        [
            "+".join(e.workloads),
            f"{e.dbar_latency:.1f}",
            f"{e.footprint_latency:.1f}",
            f"{100 * e.latency_improvement:+.1f}%",
            f"{100 * e.dbar_purity:.1f}%",
            f"{100 * e.footprint_purity:.1f}%",
            f"{e.dbar_hol_degree:.0f}",
            f"{e.footprint_hol_degree:.0f}",
        ]
        for e in entries
    ]
    return render_table(
        "Fig. 10 — PARSEC-like trace pairs (latency, purity, HoL degree)",
        [
            "pair",
            "dbar_lat",
            "fp_lat",
            "fp_gain",
            "dbar_pur",
            "fp_pur",
            "dbar_hol",
            "fp_hol",
        ],
        rows,
    )


def report_fig2(results: list[Fig2Result]) -> str:
    rows = []
    for r in results:
        for label, tree in (
            ("network(n10)", r.network_tree),
            ("endpoint(n13)", r.endpoint_tree),
        ):
            rows.append(
                [
                    r.routing,
                    label,
                    str(tree.num_branches),
                    str(tree.total_vcs),
                    str(tree.max_thickness),
                    f"{tree.mean_thickness:.2f}",
                ]
            )
    table = render_table(
        "Fig. 2 — congestion-tree shape per routing algorithm",
        ["routing", "tree", "branches", "vcs", "max_thick", "mean_thick"],
        rows,
    )
    growth = [
        [
            r.routing,
            label,
            " ".join(str(b) for b in series),
        ]
        for r in results
        if r.sample_cycles
        for label, series in (
            ("network(n10)", r.network_branch_series),
            ("endpoint(n13)", r.endpoint_branch_series),
        )
    ]
    if not growth:
        return table
    sampled = results[0].sample_cycles
    return "\n\n".join(
        [
            table,
            render_table(
                "Fig. 2 — tree growth, branches per sampled cycle "
                f"(cycles {sampled[0]}..{sampled[-1]})",
                ["routing", "tree", "branches over time"],
                growth,
            ),
        ]
    )


def report_fault_sweep(entries: list[FaultSweepEntry]) -> str:
    def fmt(value: float, spec: str) -> str:
        return "n/a" if math.isnan(value) else format(value, spec)

    rows = [
        [
            e.routing,
            str(e.num_faults),
            e.fault_kind,
            fmt(e.zero_load_latency, ".1f"),
            fmt(e.degraded_saturation, ".3f"),
            fmt(e.delivered_fraction, ".3f"),
        ]
        for e in entries
    ]
    return render_table(
        "Fault sweep — degraded saturation and delivered fraction "
        "vs. fault count",
        ["routing", "faults", "kind", "zl_lat", "degr_sat", "delivered"],
        rows,
    )


def report_table1(metrics: dict[str, dict[str, float]]) -> str:
    rows = [
        [name, f"{m['P_adapt']:.3f}", f"{m['VC_adapt']:.3f}"]
        for name, m in metrics.items()
    ]
    return render_table(
        "Table 1 — two-level adaptiveness (quantitative backing)",
        ["algorithm", "P_adapt", "VC_adapt"],
        rows,
    )


def report_cost(models: list[CostModel]) -> str:
    rows = [
        [
            str(m.num_nodes),
            str(m.num_vcs),
            str(m.owner_table_bits),
            str(m.state_bits),
            str(m.idle_counter_bits),
            str(m.total_bits_per_port),
            f"{m.overhead_vs_flit_buffer():.2f}",
        ]
        for m in models
    ]
    return render_table(
        "§4.4 — Footprint storage cost per port",
        ["nodes", "vcs", "owner_b", "state_b", "idle_b", "total_b", "flits"],
        rows,
    )
