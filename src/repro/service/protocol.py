"""JSON-lines framing shared by the service server and client.

Every request and response is one JSON object per ``\\n``-terminated
line, UTF-8 encoded.  Requests carry a ``verb`` field; responses carry
``ok`` (bool) and, on failure, ``error`` (string).  The line limit is
generous because ``result`` responses with ``full=true`` embed complete
:class:`~repro.sim.results.SimulationResult` payloads, latency sample
sets included.
"""

from __future__ import annotations

import json
from typing import Any

from repro.service import ServiceError

#: Maximum accepted line length (bytes) on both sides of the socket.
MAX_LINE = 64 * 1024 * 1024

#: Verbs the server understands.
VERBS = (
    "ping",
    "submit",
    "status",
    "result",
    "cancel",
    "streams",
    "leaderboard",
    "shutdown",
)


def encode(message: dict[str, Any]) -> bytes:
    """One wire line for ``message`` (compact JSON + newline)."""
    return json.dumps(message, separators=(",", ":")).encode("utf-8") + b"\n"


def decode(line: bytes) -> dict[str, Any]:
    """Parse one wire line; raises :class:`ServiceError` on garbage."""
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise ServiceError(f"malformed protocol line: {exc}") from None
    if not isinstance(message, dict):
        raise ServiceError(
            f"protocol line must be a JSON object, got "
            f"{type(message).__name__}"
        )
    return message


def error_response(message: str) -> dict[str, Any]:
    return {"ok": False, "error": message}
