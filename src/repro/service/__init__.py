"""Asynchronous experiment job service.

The CLI harness runs every sweep as a foreground process; this package
turns the simulator into a long-running backend.  A :class:`~repro.
service.server.ExperimentServer` accepts *jobs* — named grids of
:class:`~repro.harness.parallel.SimTask`s — from many concurrent client
*streams* over a JSON-lines socket protocol, interleaves their tasks
with a weighted-fair scheduler onto a bounded executor, dedupes work
against both in-flight jobs and the persistent
:class:`~repro.harness.cache.ResultCache`, and ingests finished jobs
into an append-only leaderboard store for per-scenario standings and
regression tracking.

Layout:

* :mod:`repro.service.jobs` — job model (``JobSpec``/``Job``/
  ``JobState``) and content hashing;
* :mod:`repro.service.scheduler` — the multi-stream weighted-fair
  scheduler and its dedup tables;
* :mod:`repro.service.protocol` — JSON-lines framing shared by server
  and client;
* :mod:`repro.service.server` — the asyncio server and verb handlers;
* :mod:`repro.service.client` — a thin blocking client (also the
  ``$REPRO_SERVICE`` backend for :func:`repro.harness.parallel.
  run_tasks`);
* :mod:`repro.service.leaderboard` — the persistent JSONL leaderboard
  store under the service state directory.

State lives under ``$REPRO_SERVICE_DIR`` (default ``.repro-service/``).
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.exceptions import ReproError

#: Environment variable naming the service state directory.
SERVICE_DIR_ENV = "REPRO_SERVICE_DIR"

#: Directory used when neither an explicit path nor the env var is set.
DEFAULT_SERVICE_DIR = ".repro-service"

#: Environment variable holding a ``host:port`` service address; when
#: set, :func:`repro.harness.parallel.run_tasks` routes its grids
#: through the service instead of the local pool.
SERVICE_ENV = "REPRO_SERVICE"

#: Default TCP port of ``repro serve``.
DEFAULT_PORT = 7455


class ServiceError(ReproError):
    """A service request failed (bad spec, unknown job, protocol error)."""


class ServiceUnreachable(ServiceError):
    """No server answered at the address (connect/transport failure).

    Distinct from :class:`ServiceError` so ambient users of
    ``$REPRO_SERVICE`` — the :func:`repro.harness.parallel.run_tasks`
    hook — can fall back to the local pool when the shared server is
    down, while real request failures (bad spec, failed job) still
    propagate.
    """


def default_state_dir() -> Path:
    """The state directory: ``$REPRO_SERVICE_DIR`` or ``.repro-service``."""
    return Path(
        os.environ.get(SERVICE_DIR_ENV, "").strip() or DEFAULT_SERVICE_DIR
    )


__all__ = [
    "DEFAULT_PORT",
    "DEFAULT_SERVICE_DIR",
    "SERVICE_DIR_ENV",
    "SERVICE_ENV",
    "ServiceError",
    "ServiceUnreachable",
    "default_state_dir",
]
