"""Multi-stream weighted-fair scheduler over a bounded executor.

Each client *stream* owns a FIFO of jobs; the scheduler interleaves
tasks from all active streams onto at most ``max_workers`` concurrent
simulations.  Fairness is start-time fair queueing over the harness's
deterministic cost model: every stream carries a *virtual time* that
advances by ``estimate_task_cycles(task) / weight`` whenever one of its
tasks starts simulating, and the dispatcher always serves the ready
stream with the smallest virtual time (ties broken by stream name).
Equal-weight streams therefore alternate in proportion to simulated
work; a weight-2 stream receives twice the share of a weight-1 stream.

Dedup happens at dispatch time, newest information first:

1. **in-flight** — a task whose cache key is currently simulating for
   any job *subscribes* to that run instead of dispatching again;
2. **cache** — a task whose key is already in the persistent
   :class:`~repro.harness.cache.ResultCache` completes immediately;
3. otherwise the task simulates on the executor and its result is
   stored back, so later submissions hit level 2.

Deduped completions cost no virtual time — they consume no executor
slot — which keeps the fair share defined over *actual compute*.

The scheduler is single-threaded asyncio: all bookkeeping runs on the
event loop, simulations run in worker threads (``max_workers == 1``) or
processes, and no locks are needed.  ``engine_mode`` is forwarded to
the harness worker per task, so ``"auto"`` re-resolves vector-vs-skip
from each task's offered load exactly as the pool does.
"""

from __future__ import annotations

import asyncio
import itertools
from collections import deque
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.harness.cache import ResultCache
from repro.harness.cost import estimate_task_cycles
from repro.harness.parallel import SimTask, _run_task, resolve_jobs
from repro.service import ServiceError
from repro.service.jobs import (
    KIND_CACHED,
    KIND_SHARED,
    KIND_SIMULATED,
    Job,
    JobSpec,
    JobState,
)
from repro.sim.results import SimulationResult


@dataclass
class StreamState:
    """One client stream: a FIFO of jobs plus its fair-share clock."""

    name: str
    weight: float = 1.0
    vtime: float = 0.0
    jobs: deque[Job] = field(default_factory=deque)
    dispatched: int = 0

    def next_ready(self) -> tuple[Job, int] | None:
        """First (job, task index) with a pending task, FIFO order."""
        for job in self.jobs:
            if job.state.terminal:
                continue
            index = job.next_pending()
            if index is not None:
                return job, index
        return None

    def compact(self) -> None:
        """Drop terminal jobs from the front of the FIFO."""
        while self.jobs and self.jobs[0].state.terminal:
            self.jobs.popleft()

    def info(self) -> dict[str, Any]:
        return {
            "stream": self.name,
            "weight": self.weight,
            "vtime": round(self.vtime, 1),
            "queued_jobs": sum(
                1 for job in self.jobs if not job.state.terminal
            ),
            "dispatched_tasks": self.dispatched,
        }


class _Inflight:
    """One running simulation plus the (job, task) pairs awaiting it."""

    __slots__ = ("owner", "waiters")

    def __init__(self, owner: tuple[Job, int]) -> None:
        self.owner = owner
        self.waiters: list[tuple[Job, int]] = []


class ExperimentScheduler:
    """Admits jobs, interleaves streams, dedupes, and runs tasks.

    ``run_task`` is the per-task worker callable (defaults to the
    harness's :func:`~repro.harness.parallel._run_task`); tests inject
    stubs here.  With ``jobs`` resolving to 1 the executor is a single
    worker thread — simulations block the thread, not the event loop —
    and above 1 it is a process pool sized to ``jobs``.
    """

    def __init__(
        self,
        jobs: int | str | None = None,
        cache: ResultCache | None = None,
        engine_mode: str | None = None,
        run_task: Callable[[SimTask, str | None], SimulationResult]
        | None = None,
        on_job_done: Callable[[Job], None] | None = None,
    ) -> None:
        self.max_workers = resolve_jobs(jobs)
        self.cache = cache
        self.engine_mode = engine_mode
        self.on_job_done = on_job_done
        self._run_task = run_task if run_task is not None else _run_task
        self._executor: Executor | None = None
        self._streams: dict[str, StreamState] = {}
        self._jobs: dict[str, Job] = {}
        self._jobs_by_hash: dict[str, Job] = {}
        self._inflight: dict[str, _Inflight] = {}
        self._active = 0
        self._reapers: set[asyncio.Task] = set()
        self._ids = itertools.count(1)
        #: Dispatch decisions, oldest first, for tests and `streams`:
        #: (stream, job id, task index, "simulate"|"cached"|"shared").
        self.dispatch_log: list[tuple[str, str, int, str]] = []
        self.total_simulated = 0
        self.total_cached = 0
        self.total_shared = 0

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    def submit(self, spec: JobSpec) -> tuple[Job, bool]:
        """Admit ``spec``; returns ``(job, deduped)``.

        A grid whose content hash matches a live or completed job is
        answered by that job (``deduped=True``) — nothing is scheduled.
        Failed or cancelled jobs do not block resubmission.
        """
        spec_hash = spec.spec_hash()
        existing = self._jobs_by_hash.get(spec_hash)
        if existing is not None and existing.state not in (
            JobState.FAILED,
            JobState.CANCELLED,
        ):
            return existing, True
        job = Job(id=f"j{next(self._ids)}", spec=spec)
        job.on_done = self._job_done
        self._jobs[job.id] = job
        self._jobs_by_hash[spec_hash] = job
        stream = self._streams.get(spec.stream)
        if stream is None:
            # A newborn stream starts at the minimum live vtime instead
            # of zero, so idling never banks unbounded credit.
            floor = min(
                (s.vtime for s in self._streams.values()), default=0.0
            )
            stream = StreamState(name=spec.stream, vtime=floor)
            self._streams[spec.stream] = stream
        stream.weight = spec.weight
        stream.jobs.append(job)
        self._pump()
        return job, False

    def _job_done(self, job: Job) -> None:
        if self.on_job_done is not None:
            self.on_job_done(job)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def get_job(self, job_id: str) -> Job:
        job = self._jobs.get(job_id)
        if job is None:
            raise ServiceError(f"unknown job '{job_id}'")
        return job

    def jobs(self) -> list[Job]:
        """All jobs, oldest first."""
        return list(self._jobs.values())

    def stream_info(self) -> list[dict[str, Any]]:
        return [
            self._streams[name].info() for name in sorted(self._streams)
        ]

    def totals(self) -> dict[str, int]:
        return {
            "jobs": len(self._jobs),
            "streams": len(self._streams),
            "active_workers": self._active,
            "max_workers": self.max_workers,
            KIND_SIMULATED: self.total_simulated,
            KIND_CACHED: self.total_cached,
            KIND_SHARED: self.total_shared,
        }

    # ------------------------------------------------------------------
    # Cancellation
    # ------------------------------------------------------------------
    def cancel(self, job_id: str) -> bool:
        """Cancel ``job_id``; True if it was still live.

        Pending and shared tasks are dropped immediately; tasks already
        simulating run to completion (feeding the cache and any other
        subscribers) but their results no longer count toward the job.
        """
        job = self.get_job(job_id)
        # Drop the job from every in-flight waiter list first so a
        # finishing simulation does not resurrect it.
        for entry in self._inflight.values():
            entry.waiters = [
                (wjob, widx)
                for wjob, widx in entry.waiters
                if wjob is not job
            ]
        cancelled = job.cancel()
        if cancelled:
            # A cancelled grid must not shadow future resubmissions.
            spec_hash = job.spec.spec_hash()
            if self._jobs_by_hash.get(spec_hash) is job:
                del self._jobs_by_hash[spec_hash]
            self._streams[job.spec.stream].compact()
            self._pump()
        return cancelled

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _pump(self) -> None:
        """Dispatch until no stream can make progress.

        Each round serves the smallest-vtime ready stream; when its head
        task needs an executor slot and none is free, the scan falls
        through to later streams so cache- and inflight-resolvable tasks
        never wait behind a full executor.
        """
        while True:
            progressed = False
            ready = sorted(
                (
                    stream
                    for stream in self._streams.values()
                    if stream.next_ready() is not None
                ),
                key=lambda stream: (stream.vtime, stream.name),
            )
            for stream in ready:
                picked = stream.next_ready()
                if picked is None:
                    continue
                job, index = picked
                key = job.task_key(index)
                entry = self._inflight.get(key)
                if entry is not None:
                    job.mark_shared(index)
                    entry.waiters.append((job, index))
                    self._log(stream, job, index, KIND_SHARED)
                    progressed = True
                    break
                cached = self._cache_get(job.spec.tasks[index])
                if cached is not None:
                    self.total_cached += 1
                    self._log(stream, job, index, KIND_CACHED)
                    job.finish_task(index, cached, KIND_CACHED)
                    progressed = True
                    break
                if self._active < self.max_workers:
                    self._start(stream, job, index, key)
                    progressed = True
                    break
            if not progressed:
                return

    def _start(
        self, stream: StreamState, job: Job, index: int, key: str
    ) -> None:
        task = job.spec.tasks[index]
        job.mark_running(index)
        self._inflight[key] = _Inflight(owner=(job, index))
        self._active += 1
        stream.vtime += estimate_task_cycles(task) / stream.weight
        stream.dispatched += 1
        self._log(stream, job, index, "simulate")
        loop = asyncio.get_running_loop()
        future = loop.run_in_executor(
            self._ensure_executor(), self._run_task, task, self.engine_mode
        )
        reaper = loop.create_task(self._reap(future, key))
        self._reapers.add(reaper)
        reaper.add_done_callback(self._reapers.discard)

    async def _reap(self, future: asyncio.Future, key: str) -> None:
        try:
            result = await future
            error = None
        except asyncio.CancelledError:
            raise
        except BaseException as exc:  # worker death included
            result, error = None, f"{type(exc).__name__}: {exc}"
        self._active -= 1
        entry = self._inflight.pop(key)
        job, index = entry.owner
        if error is not None:
            job.fail_task(index, error)
            for wjob, widx in entry.waiters:
                wjob.fail_task(widx, error)
        else:
            assert result is not None
            self._cache_put(result)
            self.total_simulated += 1
            job.finish_task(index, result, KIND_SIMULATED)
            for wjob, widx in entry.waiters:
                self.total_shared += 1
                wjob.finish_task(widx, result, KIND_SHARED)
        self._streams[job.spec.stream].compact()
        self._pump()

    def _log(
        self, stream: StreamState, job: Job, index: int, kind: str
    ) -> None:
        self.dispatch_log.append((stream.name, job.id, index, kind))
        if len(self.dispatch_log) > 4096:
            del self.dispatch_log[:2048]

    # ------------------------------------------------------------------
    # Cache and executor plumbing
    # ------------------------------------------------------------------
    def _cache_get(self, task: SimTask) -> SimulationResult | None:
        if self.cache is None:
            return None
        return self.cache.get(task.resolved_config())

    def _cache_put(self, result: SimulationResult) -> None:
        if self.cache is None:
            return
        try:
            self.cache.put(result)
        except OSError:
            # A full or vanished cache directory degrades dedup to the
            # in-flight table; it must not fail the job.
            pass

    def _ensure_executor(self) -> Executor:
        if self._executor is None:
            if self.max_workers > 1:
                self._executor = ProcessPoolExecutor(
                    max_workers=self.max_workers
                )
            else:
                self._executor = ThreadPoolExecutor(
                    max_workers=1, thread_name_prefix="repro-service"
                )
        return self._executor

    async def drain(self) -> None:
        """Wait for every in-flight simulation to settle (tests/shutdown)."""
        while self._reapers:
            await asyncio.gather(*list(self._reapers), return_exceptions=True)

    async def close(self) -> None:
        """Drain in-flight work and shut the executor down."""
        await self.drain()
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
