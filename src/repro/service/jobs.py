"""Job model of the experiment service.

A *job* is a named grid of :class:`~repro.harness.parallel.SimTask`s
submitted on a client *stream*.  Jobs are content-addressed: the job
hash is a SHA-256 over the sorted multiset of per-task result-cache
keys (:func:`repro.harness.cache.config_cache_key` of each resolved
config), so two submissions of the same grid — regardless of task order
or the submitting stream — hash identically and the scheduler can
answer the second from the first.  The same per-task keys drive the
finer dedup levels: a task already in the persistent cache completes
without simulating, and a task currently simulating for another job is
*shared* rather than re-run.

:class:`Job` is the mutable runtime record.  Its lifecycle is::

    QUEUED -> RUNNING -> DONE
                      -> FAILED
    QUEUED/RUNNING ---> CANCELLED

Per-task terminal states carry a *kind* — ``simulated``, ``cached`` or
``shared`` — so dedup is observable: a resubmitted grid finishes with
zero ``simulated`` tasks, and the acceptance demo's "overlapping tasks
run exactly once" claim is checked from these counters.
"""

from __future__ import annotations

import enum
import hashlib
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.harness.cache import config_cache_key
from repro.harness.parallel import SimTask
from repro.service import ServiceError
from repro.sim.config import SimulationConfig
from repro.sim.results import SimulationResult


class JobState(enum.Enum):
    """Lifecycle state of a job."""

    QUEUED = "queued"
    RUNNING = "running"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"

    @property
    def terminal(self) -> bool:
        return self in (JobState.DONE, JobState.FAILED, JobState.CANCELLED)


#: Per-task states.  ``pending`` and ``running`` are transient;
#: ``shared`` means the task is waiting on another job's identical
#: in-flight simulation; the rest are terminal.
TASK_PENDING = "pending"
TASK_RUNNING = "running"
TASK_SHARED = "shared"
TASK_DONE = "done"
TASK_FAILED = "failed"
TASK_CANCELLED = "cancelled"

#: Task kinds recorded on completion (how the result was obtained).
KIND_SIMULATED = "simulated"
KIND_CACHED = "cached"
KIND_SHARED = "shared"


@dataclass(frozen=True)
class JobSpec:
    """Immutable description of a submitted job.

    ``weight`` is the fair-share weight of the job's stream (>0; a
    stream's weight is set by the first job that names it and later
    submissions may update it).  Tasks requesting active telemetry are
    rejected: the service dedupes through the telemetry-blind result
    cache, so it could not honor a request for collected series.
    """

    name: str
    tasks: tuple[SimTask, ...]
    stream: str = "default"
    weight: float = 1.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ServiceError("job name must be non-empty")
        if not self.stream:
            raise ServiceError("stream name must be non-empty")
        if not self.tasks:
            raise ServiceError(f"job '{self.name}' has no tasks")
        if not (self.weight > 0.0):
            raise ServiceError(
                f"stream weight must be > 0, got {self.weight}"
            )
        for task in self.tasks:
            telemetry = task.resolved_config().telemetry
            if telemetry is not None and telemetry.active:
                raise ServiceError(
                    f"job '{self.name}' requests active telemetry; the "
                    f"service dedupes through the telemetry-blind result "
                    f"cache and cannot serve collected series — run "
                    f"telemetry configs through the local harness instead"
                )

    # ------------------------------------------------------------------
    def task_keys(self) -> tuple[str, ...]:
        """Per-task result-cache keys, in task order."""
        return tuple(
            config_cache_key(task.resolved_config()) for task in self.tasks
        )

    def spec_hash(self) -> str:
        """Content hash of the grid (order- and stream-insensitive)."""
        blob = "\n".join(sorted(self.task_keys()))
        return hashlib.sha256(blob.encode("ascii")).hexdigest()

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        """Wire form; inverse of :meth:`from_dict`."""
        return {
            "name": self.name,
            "stream": self.stream,
            "weight": self.weight,
            "tasks": [
                {
                    "config": task.config.to_dict(),
                    "rate": task.rate,
                }
                for task in self.tasks
            ],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "JobSpec":
        """Rebuild a spec from :meth:`to_dict` output (or parsed JSON)."""
        try:
            raw_tasks = data["tasks"]
            tasks = tuple(
                SimTask(
                    config=SimulationConfig.from_dict(item["config"]),
                    rate=item.get("rate"),
                )
                for item in raw_tasks
            )
            return cls(
                name=data["name"],
                tasks=tasks,
                stream=data.get("stream", "default"),
                weight=float(data.get("weight", 1.0)),
            )
        except ServiceError:
            raise
        except (KeyError, TypeError, ValueError) as exc:
            raise ServiceError(f"malformed job spec: {exc!r}") from None


@dataclass
class Job:
    """Mutable runtime record of one submitted job."""

    id: str
    spec: JobSpec
    state: JobState = JobState.QUEUED
    submitted_at: float = field(default_factory=time.time)
    finished_at: float | None = None
    error: str | None = None
    #: Per-task state (TASK_* constants), kind, and result, task-indexed.
    task_states: list[str] = field(default_factory=list)
    task_kinds: list[str | None] = field(default_factory=list)
    results: list[SimulationResult | None] = field(default_factory=list)
    #: Progress events: (wall time, message), oldest first, bounded.
    events: list[tuple[float, str]] = field(default_factory=list)
    #: Called once when the job reaches a terminal state.
    on_done: Callable[["Job"], None] | None = None

    MAX_EVENTS = 64

    def __post_init__(self) -> None:
        count = len(self.spec.tasks)
        self.task_states = [TASK_PENDING] * count
        self.task_kinds = [None] * count
        self.results = [None] * count
        self._keys = self.spec.task_keys()
        self.record(f"queued on stream '{self.spec.stream}' ({count} tasks)")

    # ------------------------------------------------------------------
    def task_key(self, index: int) -> str:
        return self._keys[index]

    def next_pending(self) -> int | None:
        """Index of the first task still awaiting dispatch, if any."""
        for index, state in enumerate(self.task_states):
            if state == TASK_PENDING:
                return index
        return None

    def counts(self) -> dict[str, int]:
        """Task totals by terminal kind plus live-state buckets."""
        out = {
            "total": len(self.task_states),
            "pending": 0,
            "running": 0,
            "shared_waiting": 0,
            "done": 0,
            "failed": 0,
            "cancelled": 0,
            KIND_SIMULATED: 0,
            KIND_CACHED: 0,
            KIND_SHARED: 0,
        }
        for state in self.task_states:
            if state == TASK_PENDING:
                out["pending"] += 1
            elif state == TASK_RUNNING:
                out["running"] += 1
            elif state == TASK_SHARED:
                out["shared_waiting"] += 1
            elif state == TASK_DONE:
                out["done"] += 1
            elif state == TASK_FAILED:
                out["failed"] += 1
            elif state == TASK_CANCELLED:
                out["cancelled"] += 1
        for kind in self.task_kinds:
            if kind is not None:
                out[kind] += 1
        return out

    def record(self, message: str) -> None:
        """Append a bounded progress event."""
        self.events.append((time.time(), message))
        if len(self.events) > self.MAX_EVENTS:
            del self.events[: len(self.events) - self.MAX_EVENTS]

    # ------------------------------------------------------------------
    # Transitions (driven by the scheduler)
    # ------------------------------------------------------------------
    def mark_running(self, index: int) -> None:
        self.task_states[index] = TASK_RUNNING
        self._now_running()

    def mark_shared(self, index: int) -> None:
        self.task_states[index] = TASK_SHARED
        self._now_running()

    def _now_running(self) -> None:
        if self.state == JobState.QUEUED:
            self.state = JobState.RUNNING
            self.record("running")

    def finish_task(
        self, index: int, result: SimulationResult, kind: str
    ) -> None:
        """Record one task's result; late results on a dead job are
        dropped (the simulation still fed the cache and any sharers)."""
        if self.state.terminal:
            return
        self.task_states[index] = TASK_DONE
        self.task_kinds[index] = kind
        self.results[index] = result
        self._now_running()
        counts = self.counts()
        self.record(
            f"task {index} {kind} ({counts['done']}/{counts['total']})"
        )
        self._maybe_finish()

    def fail_task(self, index: int, error: str) -> None:
        if self.state.terminal:
            return
        self.task_states[index] = TASK_FAILED
        self.record(f"task {index} failed: {error}")
        if self.error is None:
            self.error = error
        self._maybe_finish()

    def cancel(self) -> bool:
        """Cancel the job: drop undone tasks, keep finished results.

        Tasks currently simulating are not interrupted — their results
        still enter the cache (and satisfy sharers) but no longer count
        toward this job.  Returns False when already terminal.
        """
        if self.state.terminal:
            return False
        for index, state in enumerate(self.task_states):
            if state in (TASK_PENDING, TASK_RUNNING, TASK_SHARED):
                self.task_states[index] = TASK_CANCELLED
        self._finish(JobState.CANCELLED)
        return True

    def _maybe_finish(self) -> None:
        if any(
            state in (TASK_PENDING, TASK_RUNNING, TASK_SHARED)
            for state in self.task_states
        ):
            return
        failed = any(state == TASK_FAILED for state in self.task_states)
        self._finish(JobState.FAILED if failed else JobState.DONE)

    def _finish(self, state: JobState) -> None:
        self.state = state
        self.finished_at = time.time()
        self.record(state.value)
        if self.on_done is not None:
            callback, self.on_done = self.on_done, None
            callback(self)

    # ------------------------------------------------------------------
    def summary(self) -> dict[str, Any]:
        """Status-verb payload: state, counters, recent events."""
        counts = self.counts()
        elapsed = (
            (self.finished_at or time.time()) - self.submitted_at
        )
        return {
            "job_id": self.id,
            "name": self.spec.name,
            "stream": self.spec.stream,
            "state": self.state.value,
            "hash": self.spec.spec_hash(),
            "error": self.error,
            "counts": counts,
            "elapsed_s": round(elapsed, 3),
            "events": [
                [round(ts, 3), message] for ts, message in self.events[-8:]
            ],
        }

    def result_points(self) -> list[dict[str, Any]]:
        """Compact per-task outcome rows for the ``result`` verb."""
        points = []
        for task, state, kind, result in zip(
            self.spec.tasks, self.task_states, self.task_kinds, self.results
        ):
            config = task.resolved_config()
            point: dict[str, Any] = {
                "routing": config.routing,
                "traffic": config.traffic,
                "injection_rate": config.injection_rate,
                "state": state,
                "kind": kind,
            }
            if result is not None:
                avg = result.avg_latency
                point.update(
                    avg_latency=None if avg != avg else round(avg, 4),
                    accepted_rate=round(result.accepted_rate, 6),
                    offered_rate=round(result.offered_rate, 6),
                    drained=result.drained,
                )
            points.append(point)
        return points
