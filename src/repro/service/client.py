"""Blocking client for the experiment service.

:class:`ServiceClient` opens one TCP connection per call, writes one
JSON line, and reads one JSON line back — the protocol is stateless per
request, so there is no connection lifecycle to manage and the client
is safe to share across threads (each call owns its socket).

:func:`run_tasks_via_service` adapts the client to the harness's
:func:`~repro.harness.parallel.run_tasks` contract: submit the grid as
one job, wait for it, and return full :class:`~repro.sim.results.
SimulationResult` objects in task order.  Setting ``$REPRO_SERVICE`` to
``host:port`` makes ``run_tasks`` itself take this path, which turns
every existing figure driver into a service client with no code
changes.
"""

from __future__ import annotations

import os
import socket
import time
from typing import Any, Iterable

from repro.harness.parallel import SimTask
from repro.service import (
    DEFAULT_PORT,
    SERVICE_ENV,
    ServiceError,
    ServiceUnreachable,
)
from repro.service.jobs import JobSpec
from repro.service.protocol import MAX_LINE, decode, encode
from repro.sim.results import SimulationResult


def parse_address(address: str | None) -> tuple[str, int]:
    """Parse ``host:port`` / ``:port`` / ``port`` (default localhost)."""
    text = (address or "").strip()
    if not text:
        return "127.0.0.1", DEFAULT_PORT
    host, sep, port_text = text.rpartition(":")
    if not sep:
        host, port_text = "", text
    host = host or "127.0.0.1"
    try:
        port = int(port_text)
    except ValueError:
        raise ServiceError(
            f"malformed service address {address!r} "
            f"(expected host:port)"
        ) from None
    if not (0 < port < 65536):
        raise ServiceError(f"service port out of range: {port}")
    return host, port


class ServiceClient:
    """One experiment-service endpoint."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = DEFAULT_PORT,
        timeout: float = 60.0,
    ) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    @classmethod
    def from_address(
        cls, address: str | None = None, timeout: float = 60.0
    ) -> "ServiceClient":
        """Build a client from ``host:port`` (or ``$REPRO_SERVICE``)."""
        if address is None:
            address = os.environ.get(SERVICE_ENV, "")
        host, port = parse_address(address)
        return cls(host, port, timeout=timeout)

    # ------------------------------------------------------------------
    def call(self, verb: str, **payload: Any) -> dict[str, Any]:
        """One request/response round trip; raises on ``ok: false``."""
        request = {"verb": verb, **payload}
        try:
            with socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            ) as sock:
                sock.sendall(encode(request))
                line = self._read_line(sock)
        except OSError as exc:
            raise ServiceUnreachable(
                f"cannot reach service at {self.host}:{self.port}: {exc}"
            ) from None
        response = decode(line)
        if not response.get("ok"):
            raise ServiceError(
                response.get("error", "service returned an error")
            )
        return response

    @staticmethod
    def _read_line(sock: socket.socket) -> bytes:
        chunks = []
        total = 0
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            chunks.append(chunk)
            total += len(chunk)
            if chunk.endswith(b"\n"):
                break
            if total > MAX_LINE:
                raise ServiceError("service response exceeds line limit")
        if not chunks:
            raise ServiceError("service closed the connection mid-request")
        return b"".join(chunks)

    # ------------------------------------------------------------------
    # Verb wrappers
    # ------------------------------------------------------------------
    def ping(self) -> dict[str, Any]:
        return self.call("ping")

    def submit(self, spec: JobSpec) -> dict[str, Any]:
        return self.call("submit", **spec.to_dict())

    def submit_tasks(
        self,
        name: str,
        tasks: Iterable[SimTask],
        stream: str = "default",
        weight: float = 1.0,
    ) -> dict[str, Any]:
        spec = JobSpec(
            name=name, tasks=tuple(tasks), stream=stream, weight=weight
        )
        return self.submit(spec)

    def status(self, job_id: str | None = None) -> dict[str, Any]:
        if job_id is None:
            return self.call("status")
        return self.call("status", job_id=job_id)

    def result(self, job_id: str, full: bool = False) -> dict[str, Any]:
        return self.call("result", job_id=job_id, full=full)

    def cancel(self, job_id: str) -> dict[str, Any]:
        return self.call("cancel", job_id=job_id)

    def streams(self) -> dict[str, Any]:
        return self.call("streams")

    def leaderboard(self) -> dict[str, Any]:
        return self.call("leaderboard")

    def shutdown(self) -> dict[str, Any]:
        return self.call("shutdown")

    # ------------------------------------------------------------------
    def wait(
        self,
        job_id: str,
        poll_interval: float = 0.05,
        timeout: float | None = None,
    ) -> dict[str, Any]:
        """Poll until ``job_id`` is terminal; returns its final summary."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            job = self.status(job_id)["job"]
            if job["state"] in ("done", "failed", "cancelled"):
                return job
            if deadline is not None and time.monotonic() >= deadline:
                raise ServiceError(
                    f"timed out waiting for job {job_id} "
                    f"(state {job['state']})"
                )
            time.sleep(poll_interval)

    def results(self, job_id: str) -> list[SimulationResult]:
        """Full results of a finished job, in task order."""
        response = self.result(job_id, full=True)
        if not response["ready"]:
            raise ServiceError(
                f"job {job_id} is not done (state {response['state']}"
                f"{': ' + response['error'] if response['error'] else ''})"
            )
        return [
            SimulationResult.from_dict(data)
            for data in response["results"]
        ]


def run_tasks_via_service(
    tasks: Iterable[SimTask],
    address: str | None = None,
    stream: str | None = None,
    name: str | None = None,
    timeout: float | None = None,
) -> list[SimulationResult]:
    """Run a task grid through the service; drop-in for ``run_tasks``.

    The grid becomes one job on ``stream`` (default: this process's
    pid, so concurrent drivers land on distinct streams and get fair
    interleaving).  Blocks until the job finishes; raises
    :class:`ServiceError` if the service is unreachable or the job
    fails.
    """
    task_list = list(tasks)
    if not task_list:
        return []
    client = ServiceClient.from_address(address)
    if stream is None:
        stream = f"pid-{os.getpid()}"
    if name is None:
        name = f"grid-{len(task_list)}"
    submitted = client.submit_tasks(name, task_list, stream=stream)
    job = client.wait(submitted["job_id"], timeout=timeout)
    if job["state"] != "done":
        raise ServiceError(
            f"service job {submitted['job_id']} ended "
            f"{job['state']}: {job.get('error')}"
        )
    return client.results(submitted["job_id"])
