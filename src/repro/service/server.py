"""The asyncio experiment server.

One :class:`ExperimentServer` owns a
:class:`~repro.service.scheduler.ExperimentScheduler` and a
:class:`~repro.service.leaderboard.LeaderboardStore`, and speaks the
JSON-lines protocol of :mod:`repro.service.protocol` on a localhost TCP
socket.  Clients may hold a connection open and pipeline requests, or
reconnect per request — each line is answered independently.

Verbs::

    ping        -> {"ok", "version", "uptime_s", "totals"}
    submit      -> {"ok", "job_id", "hash", "deduped", "state", "tasks"}
    status      -> one job's summary, or all jobs + scheduler totals
    result      -> per-task outcome rows; "full": true adds complete
                   SimulationResult payloads (cache-format dicts)
    cancel      -> {"ok", "cancelled", "state"}
    streams     -> per-stream weight / vtime / queue depth
    leaderboard -> rendered standings text + structured tables
    shutdown    -> acks, then stops the server loop

Completed jobs are ingested into the leaderboard store as they finish
(idempotently — a deduped resubmission ingests nothing).
"""

from __future__ import annotations

import asyncio
import time
from typing import Any

from repro.harness.cache import ResultCache
from repro.service import ServiceError
from repro.service.jobs import JobSpec, JobState
from repro.service.leaderboard import LeaderboardStore
from repro.service.protocol import MAX_LINE, decode, encode, error_response
from repro.service.scheduler import ExperimentScheduler

#: Protocol/application version reported by ``ping``.
SERVICE_VERSION = 1


class ExperimentServer:
    """JSON-lines front end over one scheduler and one leaderboard."""

    def __init__(
        self,
        scheduler: ExperimentScheduler,
        store: LeaderboardStore,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.scheduler = scheduler
        self.store = store
        self.host = host
        self.port = port
        self.started_at = time.time()
        self._server: asyncio.AbstractServer | None = None
        self._shutdown = asyncio.Event()
        self._conn_tasks: set[asyncio.Task] = set()
        self._writers: set[asyncio.StreamWriter] = set()
        scheduler.on_job_done = self._on_job_done

    # ------------------------------------------------------------------
    def _on_job_done(self, job) -> None:
        if job.state is not JobState.DONE:
            return
        try:
            self.store.ingest_job(job)
        except OSError:
            # A read-only state dir loses history, not results.
            pass

    # ------------------------------------------------------------------
    async def start(self) -> int:
        """Bind and listen; returns the actual port (for ``port=0``)."""
        self._server = await asyncio.start_server(
            self._on_client, self.host, self.port, limit=MAX_LINE
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.port

    async def serve_until_shutdown(self) -> None:
        """Serve until a ``shutdown`` verb (or :meth:`request_shutdown`)."""
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._shutdown.wait()
        await self._close_connections()
        await self.scheduler.close()

    def request_shutdown(self) -> None:
        self._shutdown.set()

    async def close(self) -> None:
        """Immediate stop for tests: close the socket, drain the pool."""
        self.request_shutdown()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self._close_connections()
        await self.scheduler.close()

    async def _close_connections(self) -> None:
        """End open client handlers *normally* before the loop dies.

        Closing a connection's transport feeds EOF to its handler's
        ``readline()``, so the handler task finishes instead of being
        cancelled at loop teardown — where asyncio's stream machinery
        would log a spurious ``CancelledError`` for every parked
        connection (its done-callback calls ``task.exception()``
        unconditionally).
        """
        for writer in list(self._writers):
            writer.close()
        current = asyncio.current_task()
        tasks = [t for t in list(self._conn_tasks) if t is not current]
        if tasks:
            await asyncio.gather(*tasks, return_exceptions=True)

    # ------------------------------------------------------------------
    async def _on_client(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        self._writers.add(writer)
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ValueError, ConnectionError):
                    # Over-long line or reset peer: drop the connection.
                    break
                if not line:
                    break
                response = self.dispatch_line(line)
                writer.write(encode(response))
                try:
                    await writer.drain()
                except ConnectionError:
                    break
        finally:
            self._writers.discard(writer)
            if task is not None:
                self._conn_tasks.discard(task)
            # No wait_closed(): the transport flushes and closes on its
            # own, and awaiting it here turns loop teardown (e.g. the
            # shutdown verb) into spurious CancelledError noise.
            writer.close()

    def dispatch_line(self, line: bytes) -> dict[str, Any]:
        """Decode one request line and answer it (never raises)."""
        try:
            request = decode(line)
        except ServiceError as exc:
            return error_response(str(exc))
        return self.dispatch(request)

    def dispatch(self, request: dict[str, Any]) -> dict[str, Any]:
        verb = request.get("verb")
        handler = getattr(self, f"_verb_{verb}", None)
        if handler is None:
            return error_response(f"unknown verb {verb!r}")
        try:
            return handler(request)
        except ServiceError as exc:
            return error_response(str(exc))
        except Exception as exc:  # a verb bug must not kill the server
            return error_response(f"internal error: {exc!r}")

    # ------------------------------------------------------------------
    # Verbs
    # ------------------------------------------------------------------
    def _verb_ping(self, request: dict[str, Any]) -> dict[str, Any]:
        return {
            "ok": True,
            "version": SERVICE_VERSION,
            "uptime_s": round(time.time() - self.started_at, 3),
            "totals": self.scheduler.totals(),
        }

    def _verb_submit(self, request: dict[str, Any]) -> dict[str, Any]:
        spec = JobSpec.from_dict(request)
        job, deduped = self.scheduler.submit(spec)
        return {
            "ok": True,
            "job_id": job.id,
            "hash": spec.spec_hash(),
            "deduped": deduped,
            "state": job.state.value,
            "tasks": len(spec.tasks),
        }

    def _verb_status(self, request: dict[str, Any]) -> dict[str, Any]:
        job_id = request.get("job_id")
        if job_id is not None:
            return {"ok": True, "job": self.scheduler.get_job(job_id).summary()}
        return {
            "ok": True,
            "totals": self.scheduler.totals(),
            "jobs": [job.summary() for job in self.scheduler.jobs()],
        }

    def _verb_result(self, request: dict[str, Any]) -> dict[str, Any]:
        job = self.scheduler.get_job(request.get("job_id", ""))
        response: dict[str, Any] = {
            "ok": True,
            "job_id": job.id,
            "state": job.state.value,
            "ready": job.state is JobState.DONE,
            "error": job.error,
            "points": job.result_points(),
        }
        if request.get("full"):
            response["results"] = [
                result.to_dict() if result is not None else None
                for result in job.results
            ]
        return response

    def _verb_cancel(self, request: dict[str, Any]) -> dict[str, Any]:
        job_id = request.get("job_id", "")
        cancelled = self.scheduler.cancel(job_id)
        return {
            "ok": True,
            "job_id": job_id,
            "cancelled": cancelled,
            "state": self.scheduler.get_job(job_id).state.value,
        }

    def _verb_streams(self, request: dict[str, Any]) -> dict[str, Any]:
        return {
            "ok": True,
            "streams": self.scheduler.stream_info(),
            "totals": self.scheduler.totals(),
        }

    def _verb_leaderboard(self, request: dict[str, Any]) -> dict[str, Any]:
        return {
            "ok": True,
            "text": self.store.render(),
            "standings": self.store.standings(),
            "bench": self.store.bench_trajectory(),
        }

    def _verb_shutdown(self, request: dict[str, Any]) -> dict[str, Any]:
        self.request_shutdown()
        return {"ok": True, "stopping": True}


async def serve(
    host: str = "127.0.0.1",
    port: int = 0,
    state_dir: str | None = None,
    jobs: int | str | None = None,
    cache_dir: str | None = None,
    engine_mode: str | None = None,
) -> int:
    """Run a server until shutdown; the ``repro serve`` entry point.

    The result cache defaults to a ``cache/`` subdirectory of the state
    dir, so a bare ``repro serve`` gets persistent dedup without
    touching the CLI-facing ``.repro-cache`` store.
    """
    store = LeaderboardStore(state_dir)
    if cache_dir is None:
        cache_dir = str(store.directory / "cache")
    scheduler = ExperimentScheduler(
        jobs=jobs,
        cache=ResultCache(cache_dir),
        engine_mode=engine_mode,
    )
    server = ExperimentServer(scheduler, store, host=host, port=port)
    bound = await server.start()
    print(
        f"repro service listening on {host}:{bound} "
        f"(state {store.directory}, cache {cache_dir}, "
        f"workers {scheduler.max_workers})",
        flush=True,
    )
    try:
        await server.serve_until_shutdown()
    finally:
        totals = scheduler.totals()
        print(
            f"repro service stopped: {totals['jobs']} jobs, "
            f"{totals['simulated']} simulated, {totals['cached']} cached, "
            f"{totals['shared']} shared",
            flush=True,
        )
    return 0
