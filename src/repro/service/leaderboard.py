"""Persistent leaderboards and regression tracking.

The store is one append-only JSONL file, ``leaderboard.jsonl``, under
the service state directory (``$REPRO_SERVICE_DIR``, default
``.repro-service/``).  Two record kinds share the file:

* ``result`` — one simulated outcome: a *scenario* key (everything
  about the run except the routing algorithm), the routing algorithm as
  the contender, and its latency/throughput metrics.  Completed service
  jobs are ingested automatically; each record's ``source`` carries the
  job name and grid hash, and sources are ingested at most once, so
  resubmitted (deduped) jobs do not double-count.

* ``bench`` — one point of the committed ``BENCH_*.json`` trajectory:
  the engine benchmark's per-config cycles/sec and vector/skip speedup,
  keyed by the bench timestamp.  ``repro leaderboard --ingest-bench``
  folds the benchmarks directory in; re-ingesting is idempotent.

Rendering ranks routing algorithms per scenario by best average latency
(ties broken by accepted throughput) and annotates each contender with
the delta of its *latest* record against its *previous* one — the
regression-tracking view: a positive latency delta on an unchanged
scenario is a regression in whatever produced the newer record.
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path
from typing import Any, Iterable

from repro.service import default_state_dir
from repro.sim.config import SimulationConfig
from repro.sim.results import SimulationResult

#: File name of the store inside the state directory.
LEADERBOARD_FILE = "leaderboard.jsonl"


def scenario_key(config: SimulationConfig) -> str:
    """Everything that defines a scenario except the routing algorithm.

    Two runs with the same scenario key compete on the same leaderboard;
    the routing algorithm is the contender.
    """
    size = (
        f"{config.packet_size}f"
        if config.packet_size_range is None
        else f"{config.packet_size_range[0]}-{config.packet_size_range[1]}f"
    )
    traffic = config.traffic
    if traffic == "hotspot":
        traffic += (
            f"(hs={config.hotspot_rate:g},bg={config.background_rate:g})"
        )
    fault_note = f" faults={len(config.faults)}" if config.faults else ""
    return (
        f"{config.width}x{config.height} {traffic} "
        f"@ {config.injection_rate:.4f} {size} vcs={config.num_vcs} "
        f"seed={config.seed}{fault_note}"
    )


def result_record(result: SimulationResult, source: str) -> dict[str, Any]:
    """One leaderboard record for a finished simulation."""
    avg = result.avg_latency
    p99 = (
        result.latency.percentile(99) if result.latency.count else math.nan
    )
    return {
        "kind": "result",
        "scenario": scenario_key(result.config),
        "routing": result.config.routing,
        "avg_latency": None if math.isnan(avg) else round(avg, 4),
        "p99_latency": None if math.isnan(p99) else round(p99, 2),
        "accepted_rate": round(result.accepted_rate, 6),
        "offered_rate": round(result.offered_rate, 6),
        "drained": result.drained,
        "source": source,
        "recorded": round(time.time(), 3),
    }


class LeaderboardStore:
    """Append-only JSONL store with idempotent ingest."""

    def __init__(self, directory: str | Path | None = None) -> None:
        self.directory = (
            Path(directory) if directory is not None else default_state_dir()
        )
        self.path = self.directory / LEADERBOARD_FILE

    # ------------------------------------------------------------------
    def records(self) -> list[dict[str, Any]]:
        """All records, oldest first; corrupt lines are skipped."""
        try:
            lines = self.path.read_text().splitlines()
        except OSError:
            return []
        out = []
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError:
                continue
            if isinstance(record, dict) and "kind" in record:
                out.append(record)
        return out

    def sources(self) -> set[str]:
        """Every ``source`` already ingested (the idempotency set)."""
        return {
            record["source"]
            for record in self.records()
            if "source" in record
        }

    def append(self, records: Iterable[dict[str, Any]]) -> int:
        """Append ``records``; returns how many were written.

        One ``write`` call per batch: on POSIX, O_APPEND writes from
        concurrent processes land whole, so parallel ingests interleave
        by record, never mid-line.
        """
        blob = "".join(
            json.dumps(record, separators=(",", ":")) + "\n"
            for record in records
        )
        if not blob:
            return 0
        self.directory.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(blob)
        return blob.count("\n")

    # ------------------------------------------------------------------
    # Ingest
    # ------------------------------------------------------------------
    def ingest_job(self, job) -> int:
        """Ingest a finished job's results; idempotent per grid hash."""
        source = f"job:{job.spec.name}#{job.spec.spec_hash()[:12]}"
        if source in self.sources():
            return 0
        records = [
            result_record(result, source)
            for result in job.results
            if result is not None
        ]
        return self.append(records)

    def ingest_results(
        self, results: Iterable[SimulationResult], source: str
    ) -> int:
        """Ingest loose results under an explicit ``source`` label."""
        if source in self.sources():
            return 0
        return self.append(
            result_record(result, source) for result in results
        )

    def ingest_bench_dir(self, directory: str | Path) -> int:
        """Fold every ``BENCH_*.json`` under ``directory`` into the store.

        Each bench file contributes one record per engine-matrix entry,
        keyed by the file name — already-ingested files are skipped, so
        repeated ingests of a growing benchmarks directory only append
        the new trajectory points.
        """
        seen = self.sources()
        added = 0
        for path in sorted(Path(directory).glob("BENCH_*.json")):
            source = f"bench:{path.name}"
            if source in seen:
                continue
            try:
                payload = json.loads(path.read_text())
                entries = payload["engine"]["matrix"]
                timestamp = payload.get("timestamp", path.stem)
            except (OSError, ValueError, KeyError, TypeError):
                continue
            records = []
            for entry in entries:
                try:
                    records.append(
                        {
                            "kind": "bench",
                            "point": (
                                f"{entry['width']}x{entry['width']} "
                                f"{entry['routing']} "
                                f"@ {entry['injection_rate']:g}"
                            ),
                            "timestamp": timestamp,
                            "skip_cps": entry["skip_cycles_per_sec"],
                            "vector_cps": entry.get(
                                "vector_cycles_per_sec"
                            ),
                            "vector_speedup": entry.get("vector_speedup"),
                            "source": source,
                            "recorded": round(time.time(), 3),
                        }
                    )
                except (KeyError, TypeError):
                    continue
            added += self.append(records)
        return added

    def ingest_tune_file(self, path: str | Path) -> int:
        """Fold one ``TUNE_*.json`` artifact's frontier into the store.

        Every Pareto-frontier config becomes one ``result`` record at
        the tune scenario's latency rate, so tuned configs compete on
        the same per-scenario standings as service jobs.  The source
        label is ``tune:<filename>`` — re-ingesting the same file is a
        no-op.
        """
        path = Path(path)
        source = f"tune:{path.name}"
        if source in self.sources():
            return 0
        try:
            payload = json.loads(path.read_text())
            tune = payload["tune"]
            latency_rate = tune["scenario"]["latency_rate"]
            frontier_keys = set(tune["frontier"])
            evals = tune["evals"]
        except (OSError, ValueError, KeyError, TypeError):
            return 0
        records = []
        for entry in evals:
            try:
                key = "/".join(
                    f"{name}={value}"
                    for name, value in entry["candidate"]
                )
                if key not in frontier_keys:
                    continue
                config = SimulationConfig.from_dict(entry["config"])
                point = next(
                    p
                    for p in entry["points"]
                    if p["rate"] == latency_rate
                )
            except (KeyError, TypeError, StopIteration):
                continue
            records.append(
                {
                    "kind": "result",
                    "scenario": scenario_key(config),
                    "routing": config.routing,
                    "avg_latency": point["avg_latency"],
                    "p99_latency": None,
                    "accepted_rate": point["accepted_rate"],
                    "offered_rate": point["offered_rate"],
                    "drained": point["drained"],
                    "source": source,
                    "recorded": round(time.time(), 3),
                }
            )
        return self.append(records)

    def ingest_tune(self, path: str | Path) -> int:
        """Ingest one artifact, or every ``TUNE_*.json`` under a dir."""
        path = Path(path)
        if path.is_dir():
            return sum(
                self.ingest_tune_file(p)
                for p in sorted(path.glob("TUNE_*.json"))
            )
        return self.ingest_tune_file(path)

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def standings(self) -> dict[str, list[dict[str, Any]]]:
        """Per-scenario contender rows, ranked best-latency first.

        Each row aggregates every record of one (scenario, routing)
        pair: the best (lowest) average latency, the best accepted
        rate, the record count, and the latest-vs-previous latency
        delta for regression tracking (None with fewer than two
        records).  Contenders that never delivered a measured packet
        sort last.
        """
        by_pair: dict[tuple[str, str], list[dict[str, Any]]] = {}
        for record in self.records():
            if record.get("kind") != "result":
                continue
            key = (record["scenario"], record["routing"])
            by_pair.setdefault(key, []).append(record)

        tables: dict[str, list[dict[str, Any]]] = {}
        for (scenario, routing), history in by_pair.items():
            latencies = [
                r["avg_latency"]
                for r in history
                if r.get("avg_latency") is not None
            ]
            rates = [
                r["accepted_rate"]
                for r in history
                if r.get("accepted_rate") is not None
            ]
            delta = None
            if len(history) >= 2:
                latest = history[-1].get("avg_latency")
                previous = history[-2].get("avg_latency")
                if latest is not None and previous is not None:
                    delta = round(latest - previous, 4)
            tables.setdefault(scenario, []).append(
                {
                    "routing": routing,
                    "best_avg_latency": (
                        min(latencies) if latencies else None
                    ),
                    "best_accepted_rate": max(rates) if rates else None,
                    "runs": len(history),
                    "latest_delta": delta,
                    "drained": history[-1].get("drained"),
                }
            )
        for rows in tables.values():
            rows.sort(
                key=lambda row: (
                    row["best_avg_latency"] is None,
                    row["best_avg_latency"]
                    if row["best_avg_latency"] is not None
                    else 0.0,
                    -(row["best_accepted_rate"] or 0.0),
                    row["routing"],
                )
            )
        return tables

    def bench_trajectory(self) -> dict[str, list[dict[str, Any]]]:
        """Per-bench-point history rows, oldest first, with deltas."""
        by_point: dict[str, list[dict[str, Any]]] = {}
        for record in self.records():
            if record.get("kind") != "bench":
                continue
            by_point.setdefault(record["point"], []).append(record)
        out: dict[str, list[dict[str, Any]]] = {}
        for point, history in by_point.items():
            history.sort(key=lambda r: str(r.get("timestamp", "")))
            rows = []
            previous = None
            for record in history:
                speedup = record.get("vector_speedup")
                delta = (
                    round(speedup - previous, 3)
                    if speedup is not None and previous is not None
                    else None
                )
                rows.append(
                    {
                        "timestamp": record.get("timestamp"),
                        "skip_cps": record.get("skip_cps"),
                        "vector_speedup": speedup,
                        "delta": delta,
                    }
                )
                if speedup is not None:
                    previous = speedup
            out[point] = rows
        return out

    def render(self) -> str:
        """Human-readable standings + bench trajectory."""
        lines: list[str] = []
        tables = self.standings()
        if not tables and not self.bench_trajectory():
            return (
                f"leaderboard {self.path}: empty "
                f"(submit jobs or --ingest-bench to populate)"
            )
        for scenario in sorted(tables):
            lines.append(f"scenario: {scenario}")
            lines.append(
                f"  {'#':>2s} {'routing':<16s} {'avg_lat':>9s} "
                f"{'accepted':>9s} {'runs':>4s} {'Δlatest':>8s}"
            )
            for rank, row in enumerate(tables[scenario], start=1):
                latency = (
                    f"{row['best_avg_latency']:9.2f}"
                    if row["best_avg_latency"] is not None
                    else "      n/a"
                )
                rate = (
                    f"{row['best_accepted_rate']:9.4f}"
                    if row["best_accepted_rate"] is not None
                    else "      n/a"
                )
                delta = (
                    f"{row['latest_delta']:+8.2f}"
                    if row["latest_delta"] is not None
                    else "       -"
                )
                lines.append(
                    f"  {rank:>2d} {row['routing']:<16s} {latency} "
                    f"{rate} {row['runs']:>4d} {delta}"
                )
            lines.append("")
        trajectory = self.bench_trajectory()
        if trajectory:
            lines.append("bench trajectory (vector/skip at each point):")
            for point in sorted(trajectory):
                lines.append(f"  {point}")
                for row in trajectory[point]:
                    speedup = (
                        f"{row['vector_speedup']:.3f}x"
                        if row["vector_speedup"] is not None
                        else "n/a"
                    )
                    delta = (
                        f" ({row['delta']:+.3f})"
                        if row["delta"] is not None
                        else ""
                    )
                    lines.append(
                        f"    {row['timestamp']}: {speedup}{delta}"
                    )
        return "\n".join(lines).rstrip()
