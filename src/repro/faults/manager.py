"""Runtime fault state: the engine-facing half of the fault subsystem.

The :class:`FaultManager` turns a declarative
:class:`~repro.faults.schedule.FaultSchedule` into per-cycle queries the
simulation engine can afford in its hot loop:

* ``router_dead[node]`` — list of booleans, True while a router fault is
  active at ``node``;
* ``blocked_out[node]`` — per-node bitmask of output directions whose
  link must not launch flits this cycle (bit ``d`` set iff a link fault
  on ``(node, d)`` is active, or the downstream neighbor router is dead);
* ``credit_blocked(node, direction)`` — whether a credit arriving at
  ``node`` from ``direction`` must be held instead of delivered (the
  reverse wire of a faulted link, or any wire into a dead router).

State changes are precomputed as a sorted transition list (activation
and heal cycles), consumed monotonically by :meth:`advance_to`.  Heals
release held credits back to the engine in arrival order, preserving
bit-identical behavior across ``legacy``/``fast``/``skip`` engine modes;
:meth:`next_transition_cycle` lets the idle-skip lookahead clamp its
jump target so no transition cycle is skipped over.
"""

from __future__ import annotations

from repro.faults.schedule import KIND_LINK, FaultEvent, FaultSchedule
from repro.topology.base import Topology
from repro.topology.ports import Direction

_DEACTIVATE = 0
_ACTIVATE = 1


class FaultManager:
    """Tracks which links/routers are dead at the current cycle.

    Faults may overlap (two transient faults on the same link, a router
    fault shadowing link faults at the same node); the manager keeps
    reference counts so a component is live only when *no* covering fault
    is active.
    """

    def __init__(self, schedule: FaultSchedule, mesh: Topology) -> None:
        schedule.validate_for(mesh.width, mesh.height, topology=mesh.name)
        self.mesh = mesh
        self.schedule = schedule

        # (cycle, phase, seq, delta, event); phase orders heals before
        # activations at the same cycle so a zero-gap re-fault stays down.
        transitions: list[tuple[int, int, int, int, FaultEvent]] = []
        for seq, event in enumerate(schedule.events):
            transitions.append((event.cycle, _ACTIVATE, seq, +1, event))
            if event.end_cycle is not None:
                transitions.append((event.end_cycle, _DEACTIVATE, seq, -1, event))
        transitions.sort(key=lambda t: (t[0], t[1], t[2]))
        self._transitions = transitions
        self._idx = 0

        num_nodes = mesh.num_nodes
        self._link_count: dict[tuple[int, Direction], int] = {}
        self._router_count = [0] * num_nodes
        self.router_dead = [False] * num_nodes
        self.blocked_out = [0] * num_nodes
        # Held credits in arrival order: (node, direction, vc).
        self._held: list[tuple[int, Direction, int]] = []

    # ------------------------------------------------------------------
    # Transition processing
    # ------------------------------------------------------------------
    def pending_at(self, cycle: int) -> bool:
        """True if a transition at or before ``cycle`` is unprocessed."""
        idx = self._idx
        return idx < len(self._transitions) and self._transitions[idx][0] <= cycle

    def has_pending_transitions(self) -> bool:
        """True if any future activation/heal remains (for the watchdog)."""
        return self._idx < len(self._transitions)

    def next_transition_cycle(self) -> int | None:
        """Cycle of the next unprocessed transition, or ``None``."""
        if self._idx >= len(self._transitions):
            return None
        return self._transitions[self._idx][0]

    def advance_to(self, cycle: int) -> tuple[list[int], list[tuple[int, Direction, int]]]:
        """Apply all transitions due at or before ``cycle``.

        Returns ``(changed_nodes, released_credits)``: nodes whose
        ``blocked_out`` mask (or death state) may have changed and must
        be pushed to their routers, and held credits that are now
        deliverable (in original arrival order) following a heal.
        """
        transitions = self._transitions
        idx = self._idx
        affected: set[int] = set()
        healed = False
        while idx < len(transitions) and transitions[idx][0] <= cycle:
            _, _, _, delta, event = transitions[idx]
            idx += 1
            if delta < 0:
                healed = True
            if event.kind == KIND_LINK:
                key = (event.node, event.direction)
                count = self._link_count.get(key, 0) + delta
                if count:
                    self._link_count[key] = count
                else:
                    self._link_count.pop(key, None)
                affected.add(event.node)
            else:
                node = event.node
                self._router_count[node] += delta
                self.router_dead[node] = self._router_count[node] > 0
                affected.add(node)
                # A dead router blocks every inbound link's launch, so
                # all neighbors' masks change too.
                for direction in Direction:
                    if direction is Direction.LOCAL:
                        continue
                    nbr = self.mesh.neighbor(node, direction)
                    if nbr is not None:
                        affected.add(nbr)
        self._idx = idx

        for node in affected:
            self.blocked_out[node] = self._compute_mask(node)

        released: list[tuple[int, Direction, int]] = []
        if healed and self._held:
            still_held: list[tuple[int, Direction, int]] = []
            for entry in self._held:
                node, direction, _vc = entry
                if self.credit_blocked(node, direction):
                    still_held.append(entry)
                else:
                    released.append(entry)
            self._held = still_held
        return sorted(affected), released

    def _compute_mask(self, node: int) -> int:
        mask = 0
        for direction in Direction:
            if direction is Direction.LOCAL:
                continue
            nbr = self.mesh.neighbor(node, direction)
            if nbr is None:
                continue
            if self._link_count.get((node, direction), 0) or self.router_dead[nbr]:
                mask |= 1 << direction
        return mask

    # ------------------------------------------------------------------
    # Credit gating
    # ------------------------------------------------------------------
    def credit_blocked(self, node: int, direction: Direction) -> bool:
        """Whether a credit arriving at ``node`` via ``direction`` is blocked.

        ``direction`` is the input port the credit arrives on — the
        reverse wire of the data link ``(node, direction)``.  A link
        fault severs both wires of its channel; a dead router can neither
        receive nor process credits.
        """
        if self.router_dead[node]:
            return True
        return (
            direction is not Direction.LOCAL
            and self._link_count.get((node, direction), 0) > 0
        )

    def hold_credit(self, node: int, direction: Direction, vc: int) -> None:
        """Park a blocked credit until a heal makes its wire live again."""
        self._held.append((node, direction, vc))

    @property
    def held_credits(self) -> int:
        return len(self._held)

    # ------------------------------------------------------------------
    # Validation hooks (repro.validate)
    # ------------------------------------------------------------------
    def held_snapshot(self) -> list[tuple[int, Direction, int]]:
        """Copy of the held credits, keyed like ``credit_blocked``:
        (receiving node, its output direction, VC)."""
        return list(self._held)

    def mask_violation(self) -> str | None:
        """First node whose cached masks disagree with a recount, or
        ``None``."""
        for node in range(self.mesh.num_nodes):
            if self.router_dead[node] != (self._router_count[node] > 0):
                return (
                    f"node {node} death flag disagrees with its fault "
                    f"reference count {self._router_count[node]}"
                )
            expected = self._compute_mask(node)
            if self.blocked_out[node] != expected:
                return (
                    f"node {node} blocked-port mask "
                    f"{self.blocked_out[node]:#x} != recomputed "
                    f"{expected:#x}"
                )
        return None

    def describe(self) -> str:
        dead_routers = [n for n, dead in enumerate(self.router_dead) if dead]
        dead_links = sorted(
            (node, direction.name) for (node, direction) in self._link_count
        )
        return (
            f"dead routers: {dead_routers or 'none'}; "
            f"dead links: {dead_links or 'none'}; "
            f"held credits: {len(self._held)}; "
            f"pending transitions: {len(self._transitions) - self._idx}"
        )
