"""Declarative fault schedules: events, generators, and the CLI spec parser.

A :class:`FaultSchedule` is an immutable list of :class:`FaultEvent`
records — each a link or router fault that activates at a cycle and is
either permanent or transient (``duration`` cycles, after which the
component heals).  Schedules are plain frozen dataclasses so they

* serialize into :class:`~repro.sim.config.SimulationConfig` (and hence
  into result-cache keys — two runs differing only in their faults hash
  differently),
* pickle across the parallel runner's process boundary, and
* compare/hash by value.

Fault semantics (enforced by :mod:`repro.faults.manager` and the engine)
are *freeze*, not *drop*: a dead link stops launching flits and holds the
credits that would cross it; a dead router freezes entirely.  Nothing is
silently lost from the flow-control state, so transient faults heal into
a consistent network and results stay bit-identical across engine modes.

Generators (``k`` random link/router faults) draw from a private
``random.Random`` seeded explicitly, never from the simulation streams,
so the same seed yields the same fault pattern for every routing
algorithm under comparison.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass
from typing import Any, Iterable

from repro.exceptions import FaultError
from repro.topology.base import create_topology
from repro.topology.ports import Direction

#: Recognized fault kinds.
KIND_LINK = "link"
KIND_ROUTER = "router"
_KINDS = (KIND_LINK, KIND_ROUTER)

_DIRECTION_NAMES = {
    "e": Direction.EAST,
    "east": Direction.EAST,
    "w": Direction.WEST,
    "west": Direction.WEST,
    "n": Direction.NORTH,
    "north": Direction.NORTH,
    "s": Direction.SOUTH,
    "south": Direction.SOUTH,
}


@dataclass(frozen=True)
class FaultEvent:
    """One fault: a component, when it breaks, and (optionally) for how long.

    Attributes
    ----------
    cycle:
        Cycle at which the fault activates.
    kind:
        ``"link"`` (one unidirectional inter-router channel, identified by
        its upstream ``node`` and output ``direction``) or ``"router"``
        (the whole router at ``node`` goes dark, including its endpoint).
    node:
        The faulted router, or the upstream endpoint of the faulted link.
    direction:
        Output direction of the faulted link; must be ``None`` for router
        faults.  A link fault also severs the link's credit-return wire.
    duration:
        Active cycles (the fault spans ``[cycle, cycle + duration)``);
        ``None`` means permanent.
    """

    cycle: int
    kind: str
    node: int
    direction: Direction | None = None
    duration: int | None = None

    def __post_init__(self) -> None:
        if self.cycle < 0:
            raise FaultError(f"fault cycle must be >= 0, got {self.cycle}")
        if self.kind not in _KINDS:
            raise FaultError(
                f"unknown fault kind {self.kind!r}; expected one of {_KINDS}"
            )
        if self.node < 0:
            raise FaultError(f"fault node must be >= 0, got {self.node}")
        if self.kind == KIND_LINK:
            if self.direction is None:
                raise FaultError("link fault requires a direction")
            direction = Direction(self.direction)
            if direction is Direction.LOCAL:
                raise FaultError(
                    "link faults apply to inter-router channels; use a "
                    "router fault to take an endpoint down"
                )
            object.__setattr__(self, "direction", direction)
        elif self.direction is not None:
            raise FaultError("router fault takes no direction")
        if self.duration is not None and self.duration < 1:
            raise FaultError(
                f"fault duration must be >= 1 (or None for permanent), "
                f"got {self.duration}"
            )

    # ------------------------------------------------------------------
    @property
    def permanent(self) -> bool:
        return self.duration is None

    @property
    def end_cycle(self) -> int | None:
        """First cycle at which the fault is healed; ``None`` if permanent."""
        if self.duration is None:
            return None
        return self.cycle + self.duration

    def to_dict(self) -> dict[str, Any]:
        return {
            "cycle": self.cycle,
            "kind": self.kind,
            "node": self.node,
            "direction": (
                int(self.direction) if self.direction is not None else None
            ),
            "duration": self.duration,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FaultEvent":
        direction = data.get("direction")
        return cls(
            cycle=data["cycle"],
            kind=data["kind"],
            node=data["node"],
            direction=Direction(direction) if direction is not None else None,
            duration=data.get("duration"),
        )

    def describe(self) -> str:
        where = (
            f"link n{self.node}->{self.direction.name}"
            if self.kind == KIND_LINK
            else f"router n{self.node}"
        )
        span = (
            "permanent"
            if self.duration is None
            else f"for {self.duration} cycles"
        )
        return f"{where} down at cycle {self.cycle} ({span})"


def _event_sort_key(event: FaultEvent) -> tuple:
    return (
        event.cycle,
        event.kind,
        event.node,
        -1 if event.direction is None else int(event.direction),
        event.duration is None,
        event.duration or 0,
    )


@dataclass(frozen=True)
class FaultSchedule:
    """An immutable, normalized (sorted) list of fault events.

    An empty schedule is falsy and simulates exactly like ``faults=None``
    (the engine skips all fault machinery) — only the cache key differs,
    because the schedule is part of the serialized configuration.
    """

    events: tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        normalized = tuple(sorted(self.events, key=_event_sort_key))
        object.__setattr__(self, "events", normalized)

    def __bool__(self) -> bool:
        return bool(self.events)

    def __len__(self) -> int:
        return len(self.events)

    # ------------------------------------------------------------------
    def validate_for(
        self,
        width: int,
        height: int | None = None,
        topology: str = "mesh",
    ) -> None:
        """Raise :class:`FaultError` if any event is outside the topology.

        A link fault must name a channel the topology actually has: on a
        mesh, edge nodes lack outward links; on a torus every compass
        link exists (it wraps), so only the node bound can fail.
        """
        topo = create_topology(topology, width, height)
        for event in self.events:
            if not (0 <= event.node < topo.num_nodes):
                raise FaultError(
                    f"fault node {event.node} outside {topo!r} "
                    f"({event.describe()})"
                )
            if event.kind == KIND_LINK:
                assert event.direction is not None
                if topo.neighbor(event.node, event.direction) is None:
                    raise FaultError(
                        f"no {event.direction.name} link at node "
                        f"{event.node} in {topo!r} ({event.describe()})"
                    )

    def to_dict(self) -> dict[str, Any]:
        return {"events": [event.to_dict() for event in self.events]}

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "FaultSchedule":
        return cls(
            events=tuple(
                e if isinstance(e, FaultEvent) else FaultEvent.from_dict(e)
                for e in data.get("events", ())
            )
        )

    def describe(self) -> str:
        if not self.events:
            return "no faults"
        return "; ".join(event.describe() for event in self.events)


# ----------------------------------------------------------------------
# Seeded generators
# ----------------------------------------------------------------------
def random_link_faults(
    width: int,
    height: int | None = None,
    *,
    k: int,
    cycle: int = 0,
    duration: int | None = None,
    seed: int = 0,
    topology: str = "mesh",
) -> FaultSchedule:
    """``k`` distinct random link faults, deterministic in ``seed``.

    Channels are unidirectional (a mesh link contributes two, a torus
    wrap link likewise), matching :meth:`Topology.channels` — so the
    same seed faults different physical links on different topologies.
    """
    topo = create_topology(topology, width, height)
    channels = topo.channels()
    if not (0 <= k <= len(channels)):
        raise FaultError(
            f"cannot fault {k} links; {topo!r} has {len(channels)} channels"
        )
    rng = random.Random(seed)
    picks = sorted(rng.sample(range(len(channels)), k))
    return FaultSchedule(
        tuple(
            FaultEvent(cycle, KIND_LINK, channels[i][0], channels[i][1], duration)
            for i in picks
        )
    )


def random_router_faults(
    width: int,
    height: int | None = None,
    *,
    k: int,
    cycle: int = 0,
    duration: int | None = None,
    seed: int = 0,
    topology: str = "mesh",
) -> FaultSchedule:
    """``k`` distinct random router faults, deterministic in ``seed``."""
    topo = create_topology(topology, width, height)
    if not (0 <= k <= topo.num_nodes):
        raise FaultError(
            f"cannot fault {k} routers; {topo!r} has {topo.num_nodes} nodes"
        )
    rng = random.Random(seed)
    picks = sorted(rng.sample(range(topo.num_nodes), k))
    return FaultSchedule(
        tuple(
            FaultEvent(cycle, KIND_ROUTER, node, None, duration)
            for node in picks
        )
    )


# ----------------------------------------------------------------------
# CLI fault-spec parser
# ----------------------------------------------------------------------
#: One spec item: a body (kind plus colon-separated operands) followed by
#: optional ``@CYCLE`` / ``+DURATION`` / ``~SEED`` modifiers in any order.
_ITEM_RE = re.compile(
    r"^(?P<kind>[a-z]+):(?P<arg1>[0-9]+)(?::(?P<arg2>[a-z]+))?"
    r"(?P<mods>(?:[@+~][0-9]+)*)$"
)
_MOD_RE = re.compile(r"([@+~])([0-9]+)")

_SPEC_HELP = (
    "expected comma-separated items: 'link:NODE:DIR', 'router:NODE', "
    "'links:K', or 'routers:K', each with optional '@CYCLE' (activation, "
    "default 0), '+DURATION' (transient; default permanent) and, for the "
    "random generators, '~SEED' modifiers — e.g. "
    "'link:5:east,routers:2~7@100+500'"
)


def parse_fault_spec(
    text: str,
    width: int,
    height: int | None = None,
    default_seed: int = 0,
    topology: str = "mesh",
) -> FaultSchedule:
    """Parse a ``--faults`` command-line spec into a validated schedule.

    Grammar (items separated by commas)::

        link:NODE:DIR[@CYCLE][+DURATION]
        router:NODE[@CYCLE][+DURATION]
        links:K[@CYCLE][+DURATION][~SEED]
        routers:K[@CYCLE][+DURATION][~SEED]

    ``DIR`` is a compass name (``e``/``east``/...).  Random-generator
    items without an explicit ``~SEED`` derive one from ``default_seed``
    and the item's position, so repeated items draw different components.
    """
    events: list[FaultEvent] = []
    items = [item.strip() for item in text.split(",") if item.strip()]
    if not items:
        raise FaultError(f"empty fault spec {text!r}; {_SPEC_HELP}")
    for index, item in enumerate(items):
        match = _ITEM_RE.match(item.lower())
        if match is None:
            raise FaultError(f"malformed fault spec item {item!r}; {_SPEC_HELP}")
        kind = match.group("kind")
        cycle, duration, seed = 0, None, None
        seen = set()
        for mod, value in _MOD_RE.findall(match.group("mods")):
            if mod in seen:
                raise FaultError(
                    f"duplicate '{mod}' modifier in fault spec item {item!r}"
                )
            seen.add(mod)
            if mod == "@":
                cycle = int(value)
            elif mod == "+":
                duration = int(value)
            else:
                seed = int(value)
        if kind in ("link", "router"):
            if seed is not None:
                raise FaultError(
                    f"'~SEED' only applies to the random 'links:K'/"
                    f"'routers:K' items, not {item!r}"
                )
            node = int(match.group("arg1"))
            if kind == "link":
                dir_name = match.group("arg2")
                direction = _DIRECTION_NAMES.get(dir_name or "")
                if direction is None:
                    raise FaultError(
                        f"unknown link direction {dir_name!r} in {item!r}; "
                        f"expected one of {sorted(set(_DIRECTION_NAMES))}"
                    )
                events.append(FaultEvent(cycle, KIND_LINK, node, direction, duration))
            else:
                if match.group("arg2") is not None:
                    raise FaultError(
                        f"router fault takes a single node: {item!r}"
                    )
                events.append(FaultEvent(cycle, KIND_ROUTER, node, None, duration))
        elif kind in ("links", "routers"):
            if match.group("arg2") is not None:
                raise FaultError(f"malformed fault spec item {item!r}; {_SPEC_HELP}")
            k = int(match.group("arg1"))
            item_seed = seed if seed is not None else default_seed + index
            generator = (
                random_link_faults if kind == "links" else random_router_faults
            )
            generated = generator(
                width,
                height,
                k=k,
                cycle=cycle,
                duration=duration,
                seed=item_seed,
                topology=topology,
            )
            events.extend(generated.events)
        else:
            raise FaultError(
                f"unknown fault kind {kind!r} in {item!r}; {_SPEC_HELP}"
            )
    schedule = FaultSchedule(tuple(events))
    schedule.validate_for(width, height, topology=topology)
    return schedule


def merge_schedules(schedules: Iterable[FaultSchedule]) -> FaultSchedule:
    """Union of several schedules (events concatenated and re-normalized)."""
    events: list[FaultEvent] = []
    for schedule in schedules:
        events.extend(schedule.events)
    return FaultSchedule(tuple(events))
