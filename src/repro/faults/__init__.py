"""Deterministic fault injection for the NoC.

The fault subsystem has two halves:

* :mod:`repro.faults.schedule` — the declarative model: a
  :class:`~repro.faults.schedule.FaultSchedule` is an immutable, seedable
  list of link/router fault events that serializes into
  :class:`~repro.sim.config.SimulationConfig` (so cache keys and parallel
  workers see it);
* :mod:`repro.faults.manager` — the runtime: the engine consults a
  :class:`~repro.faults.manager.FaultManager` each cycle to freeze dead
  routers, gate faulted links, and hold credits crossing them.
"""

from repro.faults.schedule import (
    FaultEvent,
    FaultSchedule,
    parse_fault_spec,
    random_link_faults,
    random_router_faults,
)
from repro.faults.manager import FaultManager

__all__ = [
    "FaultEvent",
    "FaultSchedule",
    "FaultManager",
    "parse_fault_spec",
    "random_link_faults",
    "random_router_faults",
]
