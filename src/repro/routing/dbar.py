"""DBAR-style minimal fully-adaptive routing (Ma et al., ISCA 2011).

DBAR ("Destination-Based Adaptive Routing") is the fully-adaptive baseline
of the paper.  Its defining property, as the paper characterizes it
(Table 1), is high *port* adaptiveness with *oblivious* VC selection: the
port decision uses congestion information, but all adaptive VCs are then
requested indiscriminately.

Reproduction note: the original DBAR aggregates buffer-occupancy hints
from routers along each dimension within the destination's interval.  The
paper obtained the authors' code; we do not have it, so we implement the
port selection at the fidelity the paper describes for its configuration:
"the threshold to predict congestion is half of the number of VCs per
physical channel" — each candidate port is classified congested or
uncongested by comparing its idle-VC count with that threshold, an
uncongested port is preferred, and remaining ties break randomly
(:class:`DbarRouting`).

:class:`DbarFineRouting` (registry name ``dbar-fine``) is a deliberately
stronger local-greedy variant that breaks ties by exact free downstream
credit totals; it is used by the ablation benchmarks as an upper bound on
what local congestion information can buy a footprint-oblivious router.
"""

from __future__ import annotations

from repro.routing.base import RouteContext
from repro.routing.duato import DuatoAdaptiveRouting
from repro.routing.requests import Priority, VcRequest
from repro.topology.ports import Direction


class DbarRouting(DuatoAdaptiveRouting):
    """Minimal fully-adaptive routing with threshold-based congestion-aware
    port selection and oblivious (unprioritized) VC selection."""

    name = "dbar"

    def select_port(
        self, ctx: RouteContext, candidates: list[Direction]
    ) -> Direction:
        scored = []
        for d in candidates:
            idle = len(ctx.outputs[d].idle_vcs())
            uncongested = idle >= ctx.congestion_threshold
            scored.append((uncongested, d))
        best = max(score for score, _ in scored)
        tied = [d for score, d in scored if score == best]
        if len(tied) == 1:
            return tied[0]
        return tied[ctx.rng.randrange(len(tied))]

    def vc_requests(
        self, ctx: RouteContext, direction: Direction
    ) -> list[VcRequest]:
        view = ctx.outputs[direction]
        # Oblivious VC selection: any free adaptive VC, flat priority.
        return [
            VcRequest(direction, v, Priority.LOW) for v in view.idle_vcs()
        ]


class DbarFineRouting(DbarRouting):
    """DBAR with exact credit-count port selection (ablation baseline)."""

    name = "dbar-fine"

    def select_port(
        self, ctx: RouteContext, candidates: list[Direction]
    ) -> Direction:
        scored = []
        for d in candidates:
            view = ctx.outputs[d]
            idle = len(view.idle_vcs())
            uncongested = idle >= ctx.congestion_threshold
            scored.append(((uncongested, view.free_credit_total(), idle), d))
        best = max(score for score, _ in scored)
        tied = [d for score, d in scored if score == best]
        if len(tied) == 1:
            return tied[0]
        return tied[ctx.rng.randrange(len(tied))]
