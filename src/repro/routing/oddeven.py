"""Odd-Even turn-model routing (Chiu, 2000) — partially adaptive baseline.

The Odd-Even turn model forbids:

* Rule 1: EN turns at nodes in even columns and NW turns at nodes in odd
  columns;
* Rule 2: ES turns at nodes in even columns and SW turns at nodes in odd
  columns.

The resulting minimal routing function (Chiu's ``ROUTE`` algorithm, which
this module transcribes) is deadlock-free in a mesh without escape VCs, so
— like DOR — Odd-Even may use all VCs, and (per the paper's §4.2.1) it
re-allocates VCs non-atomically, giving it higher buffer utilization than
Duato-based algorithms.

Output-port selection among the permitted directions follows the paper's
configuration: "the number of idle VCs is used to select output ports".

The turn rules are *mesh-structural*: Chiu's deadlock-freedom proof keys
the forbidden turns off absolute column parity and relies on the absence
of wrap-around channels, neither of which survives on a torus (a wrap
link connects columns ``k-1`` and ``0`` — adjacent columns of equal
parity when ``k`` is even).  The algorithm therefore declares
``topologies = ("mesh",)`` and config validation rejects it elsewhere.
"""

from __future__ import annotations

from repro.routing.base import RouteContext, RoutingAlgorithm
from repro.routing.requests import Priority, VcRequest
from repro.topology.base import Topology
from repro.topology.ports import Direction


class OddEvenRouting(RoutingAlgorithm):
    """Minimal partially-adaptive Odd-Even routing."""

    name = "oddeven"
    uses_escape = False
    atomic_vc_reallocation = False
    topologies = ("mesh",)

    def select_output(self, ctx: RouteContext) -> Direction:
        if ctx.current == ctx.destination:
            return Direction.LOCAL
        candidates = self.allowed_directions(
            ctx.mesh, ctx.current, ctx.destination, ctx.source
        )
        if ctx.dead_ports:
            candidates = self.live_candidates(ctx, candidates)
        return self._select_port(ctx, candidates)

    def vc_requests_at(
        self, ctx: RouteContext, direction: Direction
    ) -> list[VcRequest]:
        if direction is Direction.LOCAL:
            return self.eject_requests(ctx)
        view = ctx.outputs[direction]
        return [
            VcRequest(direction, v, Priority.LOW) for v in view.idle_vcs()
        ]

    def _select_port(
        self, ctx: RouteContext, candidates: list[Direction]
    ) -> Direction:
        """Pick the candidate with the most idle downstream VCs."""
        if len(candidates) == 1:
            return candidates[0]
        scored = [(len(ctx.outputs[d].idle_vcs()), d) for d in candidates]
        best = max(score for score, _ in scored)
        tied = [d for score, d in scored if score == best]
        if len(tied) == 1:
            return tied[0]
        return tied[ctx.rng.randrange(len(tied))]

    def allowed_directions(
        self, mesh: Topology, current: int, destination: int, source: int
    ) -> list[Direction]:
        """Chiu's minimal ROUTE function for the Odd-Even turn model."""
        if current == destination:
            return [Direction.LOCAL]
        cx, cy = mesh.coords(current)
        dx, dy = mesh.coords(destination)
        sx, _sy = mesh.coords(source)
        e0 = dx - cx  # X offset (east positive)
        e1 = dy - cy  # Y offset (south positive)
        vertical = Direction.SOUTH if e1 > 0 else Direction.NORTH

        avail: list[Direction] = []
        if e0 == 0:
            # Destination in the same column: go vertically.
            avail.append(vertical)
        elif e0 > 0:
            # Destination to the east.
            if e1 == 0:
                avail.append(Direction.EAST)
            else:
                # EN/ES turns are forbidden at even columns, so turning
                # vertically here is only allowed at odd columns — except in
                # the source column, where no turn is being taken yet.
                if cx % 2 == 1 or cx == sx:
                    avail.append(vertical)
                # Continuing east must not strand the packet: if the
                # destination column is even, the final NW/SW-free approach
                # requires the vertical move to happen before it, so EAST is
                # only allowed if the destination column is odd or the
                # packet is not yet adjacent to it.
                if dx % 2 == 1 or e0 != 1:
                    avail.append(Direction.EAST)
        else:
            # Destination to the west: NW/SW turns are forbidden at odd
            # columns, so the vertical move may only be taken at even
            # columns; WEST itself is always productive.
            avail.append(Direction.WEST)
            if e1 != 0 and cx % 2 == 0:
                avail.append(vertical)
        return avail
