"""Structure-of-arrays VC-state view for batched routing decisions.

The vector engine (:mod:`repro.sim.vector`) keeps the whole network's
output-port VC state in a handful of dense numpy arrays indexed by
*global port id* ``g = node * NUM_PORTS + direction`` and VC index.
:class:`VcStateArrays` bundles those arrays (plus the few scalar
parameters routing decisions depend on) into the view consumed by
:meth:`repro.routing.base.RoutingAlgorithm.candidate_mask` — the batched
counterpart of the scalar per-packet ``vc_requests_at``.

The arrays are *live views*: the engine mutates them in place and the
container never copies.  For oracle tests, :meth:`VcStateArrays.capture`
builds a snapshot from scalar :class:`~repro.router.output.OutputPort`
objects so batched and scalar request generation can be compared on
identical state.

Semantics of each array (all shaped ``[G, V]``):

``busy``
    VC is allocated *or* draining — exactly the complement of the scalar
    ``grantable``.  Includes the escape VC.
``fresh``
    VC was released since the last allocation round (the scalar
    ``fresh_released`` set).  A fresh VC is always grantable.
``owner``
    Destination of the VC's current (or, while fresh, most recent)
    owner packet; ``-1`` before the first allocation.  Deliberately
    stale after release, matching the scalar owner register.
``adaptive``
    VCs a non-escape request may target: everything except the escape
    VC at non-LOCAL ports (ejection ports reserve no escape VC).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

import numpy as np

from repro.topology.ports import NUM_PORTS, Direction

if TYPE_CHECKING:
    from repro.router.output import OutputPort
    from repro.topology.mesh import Mesh2D


@dataclass
class VcStateArrays:
    """Dense ``[global port, vc]`` view of every output port's VC state."""

    width: int
    height: int
    num_vcs: int
    #: Congestion threshold in VCs (already scaled by ``num_vcs``).
    congestion_threshold: int
    footprint_vc_limit: int | None
    #: The reserved escape VC index, or ``None`` for non-Duato algorithms.
    escape_vc: int | None
    busy: np.ndarray
    fresh: np.ndarray
    owner: np.ndarray
    adaptive: np.ndarray

    @property
    def num_nodes(self) -> int:
        return self.width * self.height

    # ------------------------------------------------------------------
    @classmethod
    def empty(
        cls,
        width: int,
        height: int,
        num_vcs: int,
        *,
        congestion_threshold: int,
        footprint_vc_limit: int | None,
        escape_vc: int | None,
    ) -> "VcStateArrays":
        """A fully idle network: nothing busy, nothing fresh, no owners."""
        size = width * height * NUM_PORTS
        adaptive = np.ones((size, num_vcs), dtype=bool)
        if escape_vc is not None:
            non_local = np.arange(size) % NUM_PORTS != int(Direction.LOCAL)
            adaptive[non_local, escape_vc] = False
        return cls(
            width=width,
            height=height,
            num_vcs=num_vcs,
            congestion_threshold=congestion_threshold,
            footprint_vc_limit=footprint_vc_limit,
            escape_vc=escape_vc,
            busy=np.zeros((size, num_vcs), dtype=bool),
            fresh=np.zeros((size, num_vcs), dtype=bool),
            owner=np.full((size, num_vcs), -1, dtype=np.int32),
            adaptive=adaptive,
        )

    @classmethod
    def capture(
        cls,
        mesh: "Mesh2D",
        num_vcs: int,
        ports_by_node: "list[Mapping[Direction, OutputPort]]",
        *,
        congestion_threshold: int,
        footprint_vc_limit: int | None,
        escape_vc: int | None,
    ) -> "VcStateArrays":
        """Snapshot scalar :class:`OutputPort` state (oracle tests)."""
        state = cls.empty(
            mesh.width,
            mesh.height,
            num_vcs,
            congestion_threshold=congestion_threshold,
            footprint_vc_limit=footprint_vc_limit,
            escape_vc=escape_vc,
        )
        for node, ports in enumerate(ports_by_node):
            for direction, port in ports.items():
                g = node * NUM_PORTS + int(direction)
                for v in range(num_vcs):
                    state.busy[g, v] = port.allocated[v] or port._draining[v]
                    state.fresh[g, v] = v in port.fresh_released
                    owner = port.owner_dst[v]
                    if owner is not None:
                        state.owner[g, v] = owner
        return state

    # ------------------------------------------------------------------
    def dor_directions(
        self, current: np.ndarray, destination: np.ndarray
    ) -> np.ndarray:
        """Vectorized :meth:`Mesh2D.dor_direction` over node-id arrays.

        X is fully resolved before Y, ``LOCAL`` at the destination —
        bit-identical to the scalar mesh query.
        """
        width = self.width
        cx = current % width
        cy = current // width
        dx = destination % width
        dy = destination // width
        out = np.full(current.shape, int(Direction.LOCAL), dtype=np.int64)
        # Y first, then overwrite with X so the X offset wins when both
        # remain (dimension order).
        out[dy < cy] = int(Direction.NORTH)
        out[dy > cy] = int(Direction.SOUTH)
        out[dx < cx] = int(Direction.WEST)
        out[dx > cx] = int(Direction.EAST)
        return out
